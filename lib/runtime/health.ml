module Store = Qnet_core.Event_store
module Params = Qnet_core.Params

type violation =
  | Nan_latent of int
  | Negative_service of int * float
  | Departure_before_arrival of int
  | Fifo_violation of int * int
  | Chain_leak of int * int
  | Nonfinite_log_likelihood of float
  | Degenerate_rate of int * float
  | Sample_loss of int * int

let pp_violation ppf = function
  | Nan_latent i -> Format.fprintf ppf "nan-latent(%d)" i
  | Sample_loss (skipped, kept) ->
      Format.fprintf ppf "sample-loss(%d skipped / %d kept)" skipped kept
  | Negative_service (i, s) -> Format.fprintf ppf "negative-service(%d: %.3g)" i s
  | Departure_before_arrival i ->
      Format.fprintf ppf "departure-before-arrival(%d)" i
  | Fifo_violation (q, i) -> Format.fprintf ppf "fifo-violation(q%d, %d)" q i
  | Chain_leak (want, got) -> Format.fprintf ppf "chain-leak(%d/%d)" got want
  | Nonfinite_log_likelihood l ->
      Format.fprintf ppf "nonfinite-log-likelihood(%g)" l
  | Degenerate_rate (q, r) -> Format.fprintf ppf "degenerate-rate(q%d: %g)" q r

let describe = function
  | [] -> "healthy"
  | vs ->
      Format.asprintf "%d violation%s: %a" (List.length vs)
        (if List.length vs = 1 then "" else "s")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_violation)
        vs

let check ?(tol = 1e-9) ?(max_rate = 1e12) store params =
  let acc = ref [] in
  let push v = acc := v :: !acc in
  let n = Store.num_events store in
  (* Per-event: finite departures, non-negative services, causality. *)
  for i = 0 to n - 1 do
    let d = Store.departure store i in
    if not (Float.is_finite d) then push (Nan_latent i)
    else begin
      let a = Store.arrival store i in
      if Float.is_finite a && d < a -. tol then push (Departure_before_arrival i);
      let s = Store.service store i in
      if Float.is_finite s && s < -.tol then push (Negative_service (i, s))
    end
  done;
  (* Per-queue FIFO order along the fixed ρ chains, and chain
     coverage: every event must appear on exactly one chain. *)
  let walked = ref 0 in
  for q = 0 to Store.num_queues store - 1 do
    let order = Store.events_at_queue store q in
    walked := !walked + Array.length order;
    let prev_arrival = ref neg_infinity in
    Array.iter
      (fun i ->
        let a = Store.arrival store i in
        if Store.queue store i <> q then push (Fifo_violation (q, i))
        else if Float.is_finite a && a < !prev_arrival -. tol then
          push (Fifo_violation (q, i));
        if Float.is_finite a then prev_arrival := Float.max !prev_arrival a)
      order
  done;
  if !walked <> n then push (Chain_leak (n, !walked));
  (* Parameters: positive, finite, physically plausible rates. *)
  for q = 0 to Params.num_queues params - 1 do
    let r = Params.rate params q in
    if not (Float.is_finite r && r > 0.0) || r > max_rate then
      push (Degenerate_rate (q, r))
  done;
  (* Total log-likelihood must be finite: a -inf here means a negative
     service slipped past tolerance, +inf/NaN means numerical
     poisoning. Only meaningful when dimensions agree. *)
  if Params.num_queues params = Store.num_queues store then begin
    let llh = Store.log_likelihood store params in
    if not (Float.is_finite llh) then push (Nonfinite_log_likelihood llh)
  end;
  List.rev !acc

let of_accumulator w =
  let skipped = Qnet_prob.Statistics.Welford.skipped w in
  if skipped > 0 then [ Sample_loss (skipped, Qnet_prob.Statistics.Welford.count w) ]
  else []
