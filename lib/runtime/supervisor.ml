module Store = Qnet_core.Event_store
module Params = Qnet_core.Params
module Stem = Qnet_core.Stem
module Gibbs = Qnet_core.Gibbs
module Init = Qnet_core.Init
module Rng = Qnet_prob.Rng
module Statistics = Qnet_prob.Statistics
module Welford = Statistics.Welford
module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span
module Clock = Qnet_obs.Clock
module Diagnostics = Qnet_obs.Diagnostics

let log_src = Logs.Src.create "qnet.supervisor" ~doc:"Supervised multi-chain inference"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Supervisor lifecycle telemetry: every decision the supervisor makes
   about a chain (restart, quarantine, death, abandonment) leaves a
   durable counter, so a metrics snapshot explains *why* a run ended
   with the chains it did — the gap this subsystem exists to close. *)
let sup_counter name help = lazy (Metrics.Counter.create ~help name)

let m_rounds = sup_counter "qnet_supervisor_rounds_total" "Round barriers completed"

let m_restarts =
  sup_counter "qnet_supervisor_restarts_total"
    "Chain restarts from the last good checkpoint"

let m_quarantines =
  sup_counter "qnet_supervisor_quarantines_total"
    "Chains quarantined (health or divergence) after exhausting restarts"

let m_deaths =
  sup_counter "qnet_supervisor_deaths_total"
    "Chains declared dead (crash/stall exhaustion or abandonment)"

let m_stalls =
  sup_counter "qnet_supervisor_watchdog_stalls_total"
    "Stall events: first Stalled verdict for a chain in a round"

let m_abandoned =
  sup_counter "qnet_supervisor_abandoned_total"
    "Chains whose domain ignored cancellation and was abandoned"

let m_watchdog_misses =
  sup_counter "qnet_supervisor_watchdog_misses_total"
    "Deadline misses observed by watchdog polls"

let m_checkpoints =
  sup_counter "qnet_supervisor_checkpoints_total"
    "In-memory chain checkpoints captured at round barriers"

let m_samples_ok =
  sup_counter "qnet_supervisor_samples_accepted_total"
    "Finite per-queue mean-service samples accepted into chain accumulators"

let m_samples_bad =
  sup_counter "qnet_supervisor_samples_rejected_total"
    "Non-finite per-queue mean-service samples rejected from chain accumulators"

let m_checkpoint_seconds =
  lazy
    (Metrics.Histogram.create
       ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 |]
       ~help:"Wall time to capture one in-memory chain checkpoint"
       "qnet_supervisor_checkpoint_seconds")

(* Force every lazy family at run entry so a scrape (or the final
   snapshot) exports them all at 0 even when nothing bad happened —
   an absent quarantine counter is indistinguishable from a broken
   exporter, a present zero is evidence of health. *)
let register_metrics () =
  List.iter
    (fun m -> ignore (Lazy.force m : Metrics.Counter.t))
    [
      m_rounds; m_restarts; m_quarantines; m_deaths; m_stalls; m_abandoned;
      m_watchdog_misses; m_checkpoints; m_samples_ok; m_samples_bad;
    ];
  ignore (Lazy.force m_checkpoint_seconds : Metrics.Histogram.t)

let m_heartbeat_age chain =
  Metrics.Gauge.create
    ~labels:[ ("chain", string_of_int chain) ]
    ~help:"Seconds since the chain's last heartbeat, updated at each watchdog poll"
    "qnet_chain_heartbeat_age_seconds"

type config = {
  chains : int;
  min_chains : int;
  stem : Stem.config;
  round_iterations : int;
  sweep_deadline : float;
  poll_interval : float;
  stall_grace : float;
  max_restarts : int;
  rhat_threshold : float;
  ks_threshold : float;
}

let default_config =
  {
    chains = 4;
    min_chains = 2;
    stem = Stem.default_config;
    round_iterations = 10;
    sweep_deadline = 5.0;
    poll_interval = 0.005;
    stall_grace = 2.0;
    max_restarts = 2;
    rhat_threshold = 1.2;
    ks_threshold = 0.7;
  }

type chain_status = Healthy | Quarantined of string | Dead of string

type chain_verdict = {
  chain : int;
  status : chain_status;
  iterations_done : int;
  restarts : int;
  heartbeats : int;
  violations : Health.violation list;
  incidents : (int * string) list;
}

type ensemble_status = Quorum | Degraded | Failed

type result = {
  params : Params.t;
  mean_service : float array;
  rhat : float array;
  ess : float array;
  healthy_chains : int;
  status : ensemble_status;
  verdicts : chain_verdict array;
  wall_seconds : float;
}

let pp_chain_status ppf = function
  | Healthy -> Format.pp_print_string ppf "healthy"
  | Quarantined why -> Format.fprintf ppf "quarantined: %s" why
  | Dead why -> Format.fprintf ppf "dead: %s" why

let pp_ensemble_status ppf s =
  Format.pp_print_string ppf
    (match s with Quorum -> "quorum" | Degraded -> "degraded" | Failed -> "failed")

let pp_verdict ppf v =
  Format.fprintf ppf "chain %d: %a — %d iterations, %d restart%s, %d heartbeats"
    v.chain pp_chain_status v.status v.iterations_done v.restarts
    (if v.restarts = 1 then "" else "s")
    v.heartbeats;
  if v.violations <> [] then
    Format.fprintf ppf "; %s" (Health.describe v.violations);
  List.iter
    (fun (it, cause) -> Format.fprintf ppf "@\n    [it %d] %s" it cause)
    v.incidents

let pp_result ppf r =
  Format.fprintf ppf "status: %a (%d/%d chains healthy)" pp_ensemble_status
    r.status r.healthy_chains
    (Array.length r.verdicts);
  Array.iter (fun v -> Format.fprintf ppf "@\n  %a" pp_verdict v) r.verdicts;
  Format.fprintf ppf "@\n  pooled mean service:";
  Array.iteri (fun q ms -> Format.fprintf ppf " q%d=%.4f" q ms) r.mean_service;
  Format.fprintf ppf "@\n  split-Rhat:";
  Array.iteri (fun q v -> Format.fprintf ppf " q%d=%.3f" q v) r.rhat;
  Format.fprintf ppf "@\n  pooled ESS:";
  Array.iteri (fun q v -> Format.fprintf ppf " q%d=%.1f" q v) r.ess;
  Format.fprintf ppf "@\n  wall: %.2fs" r.wall_seconds

let ks_outlier_scores chains =
  let n = Array.length chains in
  if n < 2 then invalid_arg "Supervisor.ks_outlier_scores: need >= 2 chains";
  Array.init n (fun i ->
      let others =
        Array.concat
          (List.filteri (fun j _ -> j <> i) (Array.to_list chains))
      in
      Statistics.ks_two_sample chains.(i) others)

(* ------------------------------------------------------------------ *)
(* Per-chain supervised state.                                         *)
(* ------------------------------------------------------------------ *)

type armed_fault = { spec : Fault.chain_fault; mutable fired : bool }  (* qnet-lint: racy-ok C001 flipped by the round domain, read by the supervisor only between rounds (join is the barrier) *)

type round_outcome = Round_ok | Round_crashed of string

type chain_state = {
  id : int;
  store : Store.t;
  rng : Rng.t;
  anchor : Params.t;
  history : Params.t array;  (* iterates; the valid prefix is [0, it) *)
  llh : float array;
  samples : float array array;
      (* realized mean service per queue per iteration — kept alongside
         [history] so the Welford accumulators can be rebuilt over the
         surviving prefix after a rollback, preserving NaN-skip
         accounting over exactly the samples that still count *)
  hb : Watchdog.Heartbeat.t;
  age_gauge : Metrics.Gauge.t;
  cancel : bool Atomic.t;
  faults : armed_fault array;
  mutable params : Params.t;  (* qnet-lint: racy-ok C003 round-barrier hand-off: the spawned round domain owns st until join; supervisor touches it only between rounds *)
  mutable it : int;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable restarts : int;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable incidents : (int * string) list;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable status : chain_status;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable last_good : Checkpoint.t option;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable outcome : round_outcome;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable stall_flagged : bool;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable abandoned : bool;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable warmed : bool;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
  mutable welford : Welford.t array;  (* qnet-lint: racy-ok C001 round-barrier hand-off (see params) *)
}

(* Same clamped time source as Runtime.now: watchdog deadlines and
   heartbeat ages must agree with telemetry timestamps across domains. *)
let now () = Qnet_obs.Clock.now ()

let fresh_welford nq = Array.init nq (fun _ -> Welford.create ())

let init_chain cfg ~seed ~init make_store faults id =
  let store = make_store () in
  let rng = Rng.create ~seed:(seed + (id * 7919)) () in
  let anchor =
    match init with Some p -> p | None -> Stem.initial_guess store
  in
  let nq = Store.num_queues store in
  let iterations = cfg.stem.Stem.iterations in
  let st =
    {
      id;
      store;
      rng;
      anchor;
      history = Array.make iterations anchor;
      llh = Array.make iterations Float.nan;
      samples = Array.init iterations (fun _ -> Array.make nq Float.nan);
      hb = Watchdog.Heartbeat.create ();
      age_gauge = m_heartbeat_age id;
      cancel = Atomic.make false;
      faults =
        List.filter (fun f -> f.Fault.chain = id) faults
        |> List.map (fun spec -> { spec; fired = false })
        |> Array.of_list;
      params = anchor;
      it = 0;
      restarts = 0;
      incidents = [];
      status = Healthy;
      last_good = None;
      outcome = Round_ok;
      stall_flagged = false;
      abandoned = false;
      warmed = false;
      welford = fresh_welford nq;
    }
  in
  (match
     Init.feasible ~strategy:cfg.stem.Stem.init_strategy ~target:anchor store
   with
  | Ok () -> ()
  | Error msg -> st.status <- Dead ("initialization failed: " ^ msg));
  st

(* ------------------------------------------------------------------ *)
(* The chain worker — runs on its own domain, one round at a time.     *)
(* ------------------------------------------------------------------ *)

let fire_pre_step_faults st =
  Array.iter
    (fun af ->
      if (not af.fired) && af.spec.Fault.at_iteration = st.it then
        match af.spec.Fault.kind with
        | Fault.Chain_stall d ->
            af.fired <- true;
            Unix.sleepf d
        | Fault.Chain_crash ->
            af.fired <- true;
            raise (Fault.Injected_crash { chain = st.id; iteration = st.it })
        | Fault.Chain_corrupt_latent -> ())
    st.faults

let fire_post_step_faults st =
  Array.iter
    (fun af ->
      if (not af.fired) && af.spec.Fault.at_iteration = st.it then
        match af.spec.Fault.kind with
        | Fault.Chain_corrupt_latent ->
            af.fired <- true;
            ignore (Fault.corrupt_one_latent st.store)
        | Fault.Chain_stall _ | Fault.Chain_crash -> ())
    st.faults

let run_round cfg st ~stop_at =
  Span.with_span "chain.round"
    ~attrs:
      [ ("chain", string_of_int st.id); ("stop_at", string_of_int stop_at) ]
  @@ fun () ->
  let c = cfg.stem in
  (try
     if not st.warmed then begin
       for k = 1 to c.Stem.warmup_sweeps do
         if not (Atomic.get st.cancel) then begin
           Watchdog.Heartbeat.beat st.hb ~now:(now ())
             ~sweep:(k - c.Stem.warmup_sweeps - 1);
           Gibbs.sweep ~shuffle:c.Stem.shuffle st.rng st.store st.params
         end
       done;
       st.warmed <- true
     end;
     let prior =
       if c.Stem.prior_strength > 0.0 then
         Some (c.Stem.prior_strength, st.anchor)
       else None
     in
     while st.it < stop_at && not (Atomic.get st.cancel) do
       Watchdog.Heartbeat.beat st.hb ~now:(now ()) ~sweep:st.it;
       fire_pre_step_faults st;
       Gibbs.sweep ~shuffle:c.Stem.shuffle st.rng st.store st.params;
       let p =
         Stem.mle_step ?prior st.store ~previous:st.params
           ~min_queue_events:c.Stem.min_queue_events
       in
       (* Latent corruption lands after the M-step: the damage shows in
          this iteration's recorded sample (Welford skips the NaN) and,
          if it survives the next sweep, in the barrier health check. *)
       fire_post_step_faults st;
       st.params <- p;
       st.history.(st.it) <- p;
       st.llh.(st.it) <- Store.log_likelihood st.store p;
       let realized = Store.mean_service_by_queue st.store in
       Array.blit realized 0 st.samples.(st.it) 0 (Array.length realized);
       Array.iteri (fun q v -> Welford.add st.welford.(q) v) realized;
       if Metrics.enabled () then begin
         let ok = ref 0 and bad = ref 0 in
         Array.iter
           (fun v -> if Float.is_finite v then incr ok else incr bad)
           realized;
         if !ok > 0 then
           Metrics.Counter.inc ~by:(float_of_int !ok) (Lazy.force m_samples_ok);
         if !bad > 0 then
           Metrics.Counter.inc ~by:(float_of_int !bad) (Lazy.force m_samples_bad);
         Diagnostics.observe_iteration Diagnostics.default ~chain:st.id
           ~waiting:(Store.mean_waiting_by_queue st.store)
           realized
       end;
       st.it <- st.it + 1
     done
   with exn -> st.outcome <- Round_crashed (Printexc.to_string exn));
  Watchdog.Heartbeat.mark_done st.hb

(* ------------------------------------------------------------------ *)
(* Barrier-side control: recovery, health checks, divergence.          *)
(* ------------------------------------------------------------------ *)

let capture st =
  let instrumented = Metrics.enabled () in
  let t0 = if instrumented then Clock.now () else 0.0 in
  let ck =
    {
      Checkpoint.iteration = st.it;
      rng_state = Rng.state st.rng;
      params = st.params;
      anchor = st.anchor;
      snapshot = Store.snapshot st.store;
      history = Array.sub st.history 0 st.it;
      llh = Array.sub st.llh 0 st.it;
    }
  in
  if instrumented then begin
    Metrics.Histogram.observe (Lazy.force m_checkpoint_seconds) (Clock.now () -. t0);
    Metrics.Counter.inc (Lazy.force m_checkpoints)
  end;
  ck

let rebuild_accumulators st =
  let nq = Array.length st.welford in
  st.welford <- fresh_welford nq;
  for i = 0 to st.it - 1 do
    for q = 0 to nq - 1 do
      Welford.add st.welford.(q) st.samples.(i).(q)
    done
  done

(* Roll a failed chain back to its last good checkpoint (or to scratch
   if it never produced one) and re-jitter the latents. The RNG is
   deliberately NOT restored: it has advanced past the failure, so the
   retry explores a different sampling path instead of replaying the
   one that just died. [fatal] failures (crash/stall) exhaust into
   [Dead]; recoverable ones (health/divergence) into [Quarantined]. *)
let recover cfg st ~fatal ~cause =
  if st.restarts >= cfg.max_restarts then begin
    st.status <- (if fatal then Dead cause else Quarantined cause);
    Log.warn (fun m ->
        m "chain %d %s after %d restarts: %s" st.id
          (if fatal then "dead" else "quarantined")
          st.restarts cause);
    if Metrics.enabled () then
      Metrics.Counter.inc
        (Lazy.force (if fatal then m_deaths else m_quarantines))
  end
  else begin
    st.restarts <- st.restarts + 1;
    Log.info (fun m ->
        m "chain %d restart %d/%d (%s): rolling back to iteration %d" st.id
          st.restarts cfg.max_restarts cause
          (match st.last_good with Some ck -> ck.Checkpoint.iteration | None -> 0));
    if Metrics.enabled () then Metrics.Counter.inc (Lazy.force m_restarts);
    (match st.last_good with
    | Some ck ->
        Store.restore st.store ck.Checkpoint.snapshot;
        st.params <- ck.Checkpoint.params;
        st.it <- ck.Checkpoint.iteration
    | None ->
        st.params <- st.anchor;
        st.it <- 0;
        st.warmed <- false);
    (match
       Init.feasible ~strategy:cfg.stem.Stem.init_strategy ~target:st.anchor
         st.store
     with
    | Ok () -> ()
    | Error msg -> st.status <- Dead ("restart re-initialization failed: " ^ msg));
    rebuild_accumulators st
  end

let barrier_check cfg st =
  match st.outcome with
  | Round_crashed cause ->
      let cause = "crash: " ^ cause in
      st.incidents <- (st.it, cause) :: st.incidents;
      recover cfg st ~fatal:true ~cause
  | Round_ok ->
      if st.stall_flagged then recover cfg st ~fatal:true ~cause:"stall"
        (* incident already logged when the watchdog flagged it *)
      else begin
        match Health.check st.store st.params with
        | [] -> st.last_good <- Some (capture st)
        | vs ->
            let cause = "health: " ^ Health.describe vs in
            st.incidents <- (st.it, cause) :: st.incidents;
            recover cfg st ~fatal:false ~cause
      end

(* Cross-chain divergence monitor. Gated on the split-R̂ of the pooled
   post-burn-in mean-service iterates over {e service} queues only —
   the arrival queue's trace is nearly deterministic within a chain
   (see the Stem.run_chains caveat) and would trip the gate spuriously.
   When the gate trips, the chain with the largest KS distance against
   the pooled rest is quarantined — at most one per barrier, so a
   single bad chain cannot drag the healthy majority out with it.
   Needs at least three healthy chains: with two, the KS statistic is
   symmetric and cannot tell the outlier from the consensus. *)
let divergence_pass cfg chains =
  let healthy =
    Array.to_list chains |> List.filter (fun st -> st.status = Healthy)
  in
  if List.length healthy >= 3 then begin
    let burn = cfg.stem.Stem.burn_in in
    let window =
      List.fold_left (fun acc st -> Stdlib.min acc (st.it - burn)) max_int
        healthy
    in
    if window >= 8 then begin
      let first = List.hd healthy in
      let nq = Params.num_queues first.anchor in
      let aq = first.anchor.Params.arrival_queue in
      let service_queues =
        List.filter (fun q -> q <> aq) (List.init nq Fun.id)
      in
      let trace st q =
        Array.init window (fun k ->
            Params.mean_service st.history.(st.it - window + k) q)
      in
      let rhat_max =
        List.fold_left
          (fun acc q ->
            let traces =
              Array.of_list (List.map (fun st -> trace st q) healthy)
            in
            Float.max acc (Statistics.split_gelman_rubin traces))
          0.0 service_queues
      in
      if rhat_max > cfg.rhat_threshold then begin
        let score st =
          List.fold_left
            (fun acc q ->
              let pooled =
                Array.concat
                  (List.filter_map
                     (fun o -> if o == st then None else Some (trace o q))
                     healthy)
              in
              Float.max acc (Statistics.ks_two_sample (trace st q) pooled))
            0.0 service_queues
        in
        let worst =
          List.fold_left
            (fun acc st ->
              let s = score st in
              match acc with
              | Some (_, s') when s' >= s -> acc
              | _ -> Some (st, s))
            None healthy
        in
        match worst with
        | Some (st, s) when s > cfg.ks_threshold ->
            let cause =
              Printf.sprintf
                "divergence: split-Rhat %.3f > %.2f, KS %.3f vs pooled rest"
                rhat_max cfg.rhat_threshold s
            in
            st.incidents <- (st.it, cause) :: st.incidents;
            recover cfg st ~fatal:false ~cause
        | _ -> ()
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Watchdog loop: poll heartbeats until every chain in the round is    *)
(* done or abandoned.                                                  *)
(* ------------------------------------------------------------------ *)

let watch cfg runnable =
  let arr = Array.of_list runnable in
  let wd =
    Watchdog.create ~deadline:cfg.sweep_deadline
      (Array.map (fun st -> st.hb) arr)
  in
  let first_stalled = Hashtbl.create 8 in
  let abandoned = ref [] in
  let settled st =
    Watchdog.Heartbeat.is_done st.hb || List.memq st !abandoned
  in
  let all_settled () = Array.for_all settled arr in
  let instrumented = Metrics.enabled () in
  while not (all_settled ()) do
    let t = now () in
    let verdicts = Watchdog.poll ~now:t wd in
    if instrumented then
      Array.iter
        (fun st ->
          Metrics.Gauge.set st.age_gauge
            (if Watchdog.Heartbeat.is_done st.hb then 0.0
             else Watchdog.Heartbeat.age st.hb ~now:t))
        arr;
    Array.iteri
      (fun i v ->
        let st = arr.(i) in
        match v with
        | Watchdog.Stalled age when not (List.memq st !abandoned) ->
            if not st.stall_flagged then begin
              st.stall_flagged <- true;
              Log.warn (fun m ->
                  m "chain %d stalled: no heartbeat for %.3fs (deadline %.3gs)"
                    st.id age cfg.sweep_deadline);
              if instrumented then Metrics.Counter.inc (Lazy.force m_stalls);
              let _, sweep = Watchdog.Heartbeat.last st.hb in
              st.incidents <-
                ( sweep,
                  Printf.sprintf
                    "watchdog: no heartbeat for %.3fs (deadline %.3gs); \
                     cancelling"
                    age cfg.sweep_deadline )
                :: st.incidents;
              Atomic.set st.cancel true;
              Hashtbl.replace first_stalled st.id t
            end
            else begin
              let since =
                t
                -. (try Hashtbl.find first_stalled st.id
                    with Not_found -> t)
              in
              if since > cfg.stall_grace then begin
                Log.err (fun m ->
                    m "chain %d unresponsive %.3fs past cancellation; abandoning"
                      st.id since);
                abandoned := st :: !abandoned
              end
            end
        | _ -> ())
      verdicts;
    if not (all_settled ()) then Unix.sleepf cfg.poll_interval
  done;
  if instrumented then begin
    let n = Watchdog.misses wd in
    if n > 0 then
      Metrics.Counter.inc ~by:(float_of_int n) (Lazy.force m_watchdog_misses);
    List.iter
      (fun _ -> Metrics.Counter.inc (Lazy.force m_abandoned))
      !abandoned
  end;
  !abandoned

(* ------------------------------------------------------------------ *)
(* Final pooling and verdicts.                                         *)
(* ------------------------------------------------------------------ *)

let verdict_of st =
  let merged =
    Array.fold_left Welford.merge (Welford.create ()) st.welford
  in
  {
    chain = st.id;
    status = st.status;
    iterations_done =
      (* an abandoned chain's [it] races with its zombie domain; the
         heartbeat's sweep index is the last trustworthy reading *)
      (if st.abandoned then snd (Watchdog.Heartbeat.last st.hb) else st.it);
    restarts = st.restarts;
    heartbeats = Watchdog.Heartbeat.beats st.hb;
    violations = Health.of_accumulator merged;
    incidents = List.rev st.incidents;
  }

let finalize cfg chains t0 =
  let burn = cfg.stem.Stem.burn_in in
  let all = Array.to_list chains in
  let healthy = List.filter (fun st -> st.status = Healthy) all in
  let n_healthy = List.length healthy in
  let status =
    if n_healthy >= cfg.min_chains then Quorum
    else if n_healthy > 0 then Degraded
    else Failed
  in
  (* Pool over healthy chains; if none survived, salvage from any
     non-abandoned chain that got past burn-in so the caller still
     gets a number (clearly marked [Failed]). *)
  let contributors =
    if healthy <> [] then healthy
    else List.filter (fun st -> (not st.abandoned) && st.it > burn) all
  in
  let anchor0 = chains.(0).anchor in
  let nq = Params.num_queues anchor0 in
  let aq = anchor0.Params.arrival_queue in
  let post_burn st q =
    Array.init (st.it - burn) (fun k ->
        Params.mean_service st.history.(burn + k) q)
  in
  let params, mean_service =
    match List.filter (fun st -> st.it > burn) contributors with
    | [] -> (anchor0, Array.init nq (Params.mean_service anchor0))
    | cs ->
        let ms =
          Array.init nq (fun q ->
              let w = Welford.create () in
              List.iter
                (fun st -> Array.iter (Welford.add w) (post_burn st q))
                cs;
              Welford.mean w)
        in
        let p =
          try
            Params.create
              ~rates:(Array.map (fun m -> 1.0 /. m) ms)
              ~arrival_queue:aq
          with Invalid_argument _ -> anchor0
        in
        (p, ms)
  in
  let diag_chains =
    List.filter (fun st -> st.it - burn >= 4) healthy
  in
  let rhat, ess =
    match diag_chains with
    | [] -> (Array.make nq Float.nan, Array.make nq Float.nan)
    | cs ->
        let per_queue f =
          Array.init nq (fun q ->
              let traces =
                Array.of_list (List.map (fun st -> post_burn st q) cs)
              in
              try f traces with Invalid_argument _ -> Float.nan)
        in
        ( per_queue Statistics.split_gelman_rubin,
          per_queue Statistics.pooled_effective_sample_size )
  in
  {
    params;
    mean_service;
    rhat;
    ess;
    healthy_chains = n_healthy;
    status;
    verdicts = Array.map verdict_of chains;
    wall_seconds = now () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let validate cfg faults =
  let fail msg = invalid_arg ("Supervisor.run: " ^ msg) in
  if cfg.chains < 1 then fail "chains must be >= 1";
  if cfg.min_chains < 1 || cfg.min_chains > cfg.chains then
    fail "min_chains must be in [1, chains]";
  if cfg.round_iterations < 1 then fail "round_iterations must be >= 1";
  if cfg.stem.Stem.iterations < 1 then fail "stem.iterations must be >= 1";
  if cfg.stem.Stem.burn_in < 0 || cfg.stem.Stem.burn_in >= cfg.stem.Stem.iterations
  then fail "stem.burn_in must be in [0, iterations)";
  if not (Float.is_finite cfg.sweep_deadline && cfg.sweep_deadline > 0.0) then
    fail "sweep_deadline must be finite and positive";
  if not (Float.is_finite cfg.poll_interval && cfg.poll_interval > 0.0) then
    fail "poll_interval must be finite and positive";
  if not (Float.is_finite cfg.stall_grace && cfg.stall_grace >= 0.0) then
    fail "stall_grace must be finite and non-negative";
  if cfg.max_restarts < 0 then fail "max_restarts must be >= 0";
  List.iter
    (fun f ->
      if f.Fault.chain < 0 || f.Fault.chain >= cfg.chains then
        fail
          (Printf.sprintf "fault targets chain %d outside [0, %d)"
             f.Fault.chain cfg.chains);
      if f.Fault.at_iteration < 0 then fail "fault at_iteration must be >= 0")
    faults

let chain_status_string = function
  | Healthy -> "healthy"
  | Quarantined c -> "quarantined: " ^ c
  | Dead c -> "dead: " ^ c

let export_diag_statuses chains =
  Array.iter
    (fun st ->
      Diagnostics.set_chain_status Diagnostics.default ~chain:st.id
        (chain_status_string st.status))
    chains

let run ?(config = default_config) ?init ?(faults = []) ~seed make_store =
  validate config faults;
  if Metrics.enabled () then begin
    register_metrics ();
    Diagnostics.register_metrics ();
    Diagnostics.reset Diagnostics.default;
    Diagnostics.set_ensemble_status Diagnostics.default "running"
  end;
  Span.with_span "supervisor.run"
    ~attrs:[ ("chains", string_of_int config.chains) ]
  @@ fun () ->
  let t0 = now () in
  let chains =
    Array.init config.chains (init_chain config ~seed ~init make_store faults)
  in
  if Metrics.enabled () then
    Diagnostics.set_arrival_queue Diagnostics.default
      chains.(0).anchor.Params.arrival_queue;
  let iterations = config.stem.Stem.iterations in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ do
    let runnable =
      Array.to_list chains
      |> List.filter (fun st -> st.status = Healthy && st.it < iterations)
    in
    if runnable = [] then continue_ := false
    else begin
      Span.with_span "supervisor.round"
        ~attrs:[ ("round", string_of_int !round) ]
      @@ fun () ->
      incr round;
      let t = now () in
      List.iter
        (fun st ->
          Atomic.set st.cancel false;
          st.stall_flagged <- false;
          st.outcome <- Round_ok;
          Watchdog.Heartbeat.arm st.hb ~now:t)
        runnable;
      let doms =
        List.map
          (fun st ->
            let stop_at =
              Stdlib.min iterations (st.it + config.round_iterations)
            in
            (st, Domain.spawn (fun () -> run_round config st ~stop_at)))
          runnable
      in
      let abandoned = watch config runnable in
      (* Join everything that reached its barrier; abandoned domains
         are leaked on purpose — joining would block forever. *)
      List.iter
        (fun (st, d) -> if not (List.memq st abandoned) then Domain.join d)
        doms;
      List.iter
        (fun st ->
          if List.memq st abandoned then begin
            st.abandoned <- true;
            if Metrics.enabled () then Metrics.Counter.inc (Lazy.force m_deaths);
            st.status <-
              Dead
                (Printf.sprintf
                   "watchdog: unresponsive for %.3gs past the %.3gs deadline; \
                    domain abandoned"
                   config.stall_grace config.sweep_deadline)
          end
          else barrier_check config st)
        runnable;
      divergence_pass config chains;
      if Metrics.enabled () then begin
        Metrics.Counter.inc (Lazy.force m_rounds);
        (* Barrier-side diagnostics export: verdict strings plus one
           GC sample. Ticking GC here (supervisor domain) rather than
           per-iteration keeps the chain domains' deltas from
           interleaving; heap/major figures stay meaningful, minor
           words are supervisor-local — an accepted approximation. *)
        export_diag_statuses chains;
        Diagnostics.gc_tick Diagnostics.default
      end
    end
  done;
  let r = finalize config chains t0 in
  if Metrics.enabled () then begin
    export_diag_statuses chains;
    Diagnostics.set_ensemble_status Diagnostics.default
      (match r.status with
      | Quorum -> "quorum"
      | Degraded -> "degraded"
      | Failed -> "failed");
    Diagnostics.publish Diagnostics.default
  end;
  Log.info (fun m ->
      m "run finished: %a, %d/%d chains healthy in %.2fs" pp_ensemble_status
        r.status r.healthy_chains (Array.length r.verdicts) r.wall_seconds);
  r
