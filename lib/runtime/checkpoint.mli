(** Atomic, versioned checkpoints of the sampler state.

    A checkpoint captures everything needed to continue a stochastic-EM
    run bit-for-bit: the latent state of the {!Qnet_core.Event_store}
    (departures plus the chain structure a routing move may have
    rearranged), the current and anchor parameters, the full iterate
    history (so post-burn-in averages survive the restart), and the raw
    xoshiro256++ RNG state. The on-disk format is a little-endian
    binary codec with a magic tag, an explicit version word, and a
    trailing FNV-1a checksum; writes go to a temporary file that is
    renamed into place, so a crash mid-write can never destroy the
    previous good checkpoint. *)

type t = {
  iteration : int;  (** iterations completed when the state was captured *)
  rng_state : int64 array;  (** 4-word xoshiro256++ state *)
  params : Qnet_core.Params.t;  (** current iterate *)
  anchor : Qnet_core.Params.t;
      (** the initial parameters anchoring the M-step's MAP prior —
          without it a resumed run would re-derive a different prior
          and diverge from the uninterrupted one *)
  snapshot : Qnet_core.Event_store.snapshot;
  history : Qnet_core.Params.t array;  (** iterates [0 .. iteration-1] *)
  llh : float array;  (** log-likelihood per completed iteration *)
}

val version : int
(** Current codec version (readers reject other versions). *)

val to_bytes : t -> string
val of_bytes : string -> (t, string) result

val save : path:string -> t -> unit
(** Atomic: encodes to [path ^ ".tmp"], then renames over [path].
    Raises [Sys_error] on I/O failure. *)

val load : path:string -> (t, string) result
(** Reads and decodes; [Error] on I/O failure, bad magic, version
    mismatch, checksum mismatch, or a malformed payload. Never
    raises. *)
