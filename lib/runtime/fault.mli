(** Deterministic fault injection for trace CSVs.

    Reproduces the corruption modes real trace pipelines exhibit —
    at-least-once duplication, truncated writes, NaN fields from broken
    exporters, cross-host clock skew, reversed intervals, and arbitrary
    reordering — so lenient ingestion ({!Qnet_trace.Trace.of_csv_lenient})
    can be exercised by tests and demos against a known-good file.
    Injection is a pure function of the input text and the RNG state:
    the same seed always produces the same corrupted file. *)

type mode =
  | Duplicate  (** re-emit records (at-least-once delivery) *)
  | Truncate  (** cut lines short mid-field (torn writes) *)
  | Nan_field  (** replace a departure with ["nan"] *)
  | Clock_skew  (** shift one arrival off its predecessor's departure *)
  | Reversed  (** swap arrival/departure, departure < arrival *)
  | Reorder  (** shuffle the line order of the whole file *)

val all_modes : mode list
val mode_label : mode -> string

val inject :
  ?modes:mode list ->
  ?per_mode:int ->
  Qnet_prob.Rng.t ->
  string ->
  string * (mode * int) list
(** [inject rng csv] corrupts [per_mode] (default [max 1 (lines/25)])
    randomly chosen data lines per requested mode (default
    {!all_modes}) and returns the corrupted text together with the
    number of corruptions actually applied per mode (a mode can fall
    short when no line is eligible — e.g. no non-initial line for
    [Clock_skew]). The header line is never touched. *)
