(** Deterministic fault injection for trace CSVs.

    Reproduces the corruption modes real trace pipelines exhibit —
    at-least-once duplication, truncated writes, NaN fields from broken
    exporters, cross-host clock skew, reversed intervals, and arbitrary
    reordering — so lenient ingestion ({!Qnet_trace.Trace.of_csv_lenient})
    can be exercised by tests and demos against a known-good file.
    Injection is a pure function of the input text and the RNG state:
    the same seed always produces the same corrupted file. *)

type mode =
  | Duplicate  (** re-emit records (at-least-once delivery) *)
  | Truncate  (** cut lines short mid-field (torn writes) *)
  | Nan_field  (** replace a departure with ["nan"] *)
  | Clock_skew  (** shift one arrival off its predecessor's departure *)
  | Reversed  (** swap arrival/departure, departure < arrival *)
  | Reorder  (** shuffle the line order of the whole file *)

val all_modes : mode list
val mode_label : mode -> string

val inject :
  ?modes:mode list ->
  ?per_mode:int ->
  Qnet_prob.Rng.t ->
  string ->
  string * (mode * int) list
(** [inject rng csv] corrupts [per_mode] (default [max 1 (lines/25)])
    randomly chosen data lines per requested mode (default
    {!all_modes}) and returns the corrupted text together with the
    number of corruptions actually applied per mode (a mode can fall
    short when no line is eligible — e.g. no non-initial line for
    [Clock_skew]). The header line is never touched. *)

(** {1 Chain-level fault injection}

    Deterministic injections for the multi-chain supervisor
    ({!Supervisor}): instead of corrupting the {e input} trace, these
    faults hit a {e running} chain at a chosen iteration, exercising
    the watchdog (stall), crash recovery (crash), and divergence
    quarantine (latent corruption) paths. Each fault fires at most
    once: a chain restarted from its last good checkpoint re-runs the
    faulted iteration cleanly, which is exactly the recovery being
    tested. *)

type chain_fault_kind =
  | Chain_stall of float
      (** the chain sleeps this many seconds mid-iteration — a stuck
          sweep from the watchdog's point of view *)
  | Chain_crash  (** raises {!Injected_crash} mid-iteration *)
  | Chain_corrupt_latent
      (** overwrites one unobserved departure with NaN after the
          M-step, the way real memory corruption would — caught by
          {!Health.check} at the next barrier *)

type chain_fault = { chain : int; at_iteration : int; kind : chain_fault_kind }

exception Injected_crash of { chain : int; iteration : int }

val chain_fault_label : chain_fault -> string

val corrupt_one_latent : Qnet_core.Event_store.t -> bool
(** Set the middle unobserved departure to NaN (via snapshot/restore,
    bypassing [set_departure]'s NaN guard the way real corruption
    does). Returns [false] when the store has no latent events. *)

val parse_chain_fault : string -> (chain_fault, string) result
(** Parse a [CHAIN:KIND[=ARG]@ITER] spec as accepted by
    [qnet_infer --chain-fault]: ["1:stall@5"] (default 0.25 s),
    ["1:stall=0.4@5"], ["2:crash@8"], ["3:corrupt@6"]. *)

(** {1 Service-level fault injection}

    Faults for the serving layer ({!Qnet_serve.Daemon}): where chain
    faults hit a sampler at a chosen {e iteration}, service faults hit
    a {e shard} of the long-running daemon at a chosen wall-clock
    offset from daemon start — the natural trigger for a soak test
    that streams load while the failure fires. Each fault fires at
    most once (except [Slow_consumer], which opens a throttling window
    of the given duration). *)

type service_fault_kind =
  | Ingest_stall of float
      (** the shard's ingest loop sleeps this many seconds without
          draining its queue — upstream sees queue growth, shedding
          and HTTP 429 *)
  | Shard_crash
      (** raises {!Injected_shard_crash} in the shard worker — the
          daemon must restart the shard with backoff from its retry
          budget *)
  | Checkpoint_write_failure
      (** the shard's next checkpoint write fails as a [Sys_error] —
          the shard must keep serving and retry at the next round *)
  | Slow_consumer of float
      (** for this many seconds the shard drains at most one event per
          poll — sustained backpressure rather than a one-shot stall *)
  | Torn_write
      (** tear the shard's durable event log mid-frame: the current
          tail is chopped inside a record, the torn segment rotated
          aside, and log compaction suspended so the damage survives to
          the next start — replay must truncate back to the last valid
          frame *)
  | Bit_flip
      (** flip one payload bit in a durable-log frame and suspend
          compaction — replay must quarantine exactly that frame and
          resume from the surviving ones *)
  | Overload of float
      (** from the arm time onward the shard drains at most this many
          events per second — sustained overload that forces admission
          sampling and the degradation ladder, recovering only when
          offered load drops *)

type service_fault = {
  shard : int;
  after : float;  (** seconds after daemon start *)
  kind : service_fault_kind;
}

exception Injected_shard_crash of { shard : int }

val service_fault_label : service_fault -> string

val parse_service_fault : string -> (service_fault, string) result
(** Parse a [SHARD:KIND[=ARG]@SECONDS] spec as accepted by
    [qnet_serve --fault]: ["0:ingest-stall=1.5@4"] (default 1 s),
    ["1:crash@6"], ["0:ckpt-fail@8"], ["1:slow=2@3"] (default 2 s),
    ["0:torn-write@6"], ["0:bit-flip@8"], ["1:overload=50@3"]
    (argument required: max drain rate in events/s). *)
