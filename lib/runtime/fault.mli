(** Deterministic fault injection for trace CSVs.

    Reproduces the corruption modes real trace pipelines exhibit —
    at-least-once duplication, truncated writes, NaN fields from broken
    exporters, cross-host clock skew, reversed intervals, and arbitrary
    reordering — so lenient ingestion ({!Qnet_trace.Trace.of_csv_lenient})
    can be exercised by tests and demos against a known-good file.
    Injection is a pure function of the input text and the RNG state:
    the same seed always produces the same corrupted file. *)

type mode =
  | Duplicate  (** re-emit records (at-least-once delivery) *)
  | Truncate  (** cut lines short mid-field (torn writes) *)
  | Nan_field  (** replace a departure with ["nan"] *)
  | Clock_skew  (** shift one arrival off its predecessor's departure *)
  | Reversed  (** swap arrival/departure, departure < arrival *)
  | Reorder  (** shuffle the line order of the whole file *)

val all_modes : mode list
val mode_label : mode -> string

val inject :
  ?modes:mode list ->
  ?per_mode:int ->
  Qnet_prob.Rng.t ->
  string ->
  string * (mode * int) list
(** [inject rng csv] corrupts [per_mode] (default [max 1 (lines/25)])
    randomly chosen data lines per requested mode (default
    {!all_modes}) and returns the corrupted text together with the
    number of corruptions actually applied per mode (a mode can fall
    short when no line is eligible — e.g. no non-initial line for
    [Clock_skew]). The header line is never touched. *)

(** {1 Chain-level fault injection}

    Deterministic injections for the multi-chain supervisor
    ({!Supervisor}): instead of corrupting the {e input} trace, these
    faults hit a {e running} chain at a chosen iteration, exercising
    the watchdog (stall), crash recovery (crash), and divergence
    quarantine (latent corruption) paths. Each fault fires at most
    once: a chain restarted from its last good checkpoint re-runs the
    faulted iteration cleanly, which is exactly the recovery being
    tested. *)

type chain_fault_kind =
  | Chain_stall of float
      (** the chain sleeps this many seconds mid-iteration — a stuck
          sweep from the watchdog's point of view *)
  | Chain_crash  (** raises {!Injected_crash} mid-iteration *)
  | Chain_corrupt_latent
      (** overwrites one unobserved departure with NaN after the
          M-step, the way real memory corruption would — caught by
          {!Health.check} at the next barrier *)

type chain_fault = { chain : int; at_iteration : int; kind : chain_fault_kind }

exception Injected_crash of { chain : int; iteration : int }

val chain_fault_label : chain_fault -> string

val corrupt_one_latent : Qnet_core.Event_store.t -> bool
(** Set the middle unobserved departure to NaN (via snapshot/restore,
    bypassing [set_departure]'s NaN guard the way real corruption
    does). Returns [false] when the store has no latent events. *)

val parse_chain_fault : string -> (chain_fault, string) result
(** Parse a [CHAIN:KIND[=ARG]@ITER] spec as accepted by
    [qnet_infer --chain-fault]: ["1:stall@5"] (default 0.25 s),
    ["1:stall=0.4@5"], ["2:crash@8"], ["3:corrupt@6"]. *)
