module Heartbeat = struct
  (* One immutable cell swapped atomically per beat: the chain domain
     is the only writer, the supervisor domain the only reader, so a
     plain [Atomic.set] of a fresh record is race-free and lock-free. *)
  type cell = { at : float; sweep : int; beats : int; done_ : bool }
  type t = cell Atomic.t

  let create () = Atomic.make { at = 0.0; sweep = 0; beats = 0; done_ = true }

  let arm t ~now =
    let c = Atomic.get t in
    Atomic.set t { at = now; sweep = c.sweep; beats = c.beats; done_ = false }  (* qnet-lint: racy-ok C005 single writer: only the supervisor arms *)

  let beat t ~now ~sweep =
    let c = Atomic.get t in
    Atomic.set t { at = now; sweep; beats = c.beats + 1; done_ = c.done_ }  (* qnet-lint: racy-ok C005 single writer: only the watched chain beats *)

  let mark_done t =
    let c = Atomic.get t in
    Atomic.set t { c with done_ = true }  (* qnet-lint: racy-ok C005 single writer: only the watched chain marks done *)

  let is_done t = (Atomic.get t).done_

  let last t =
    let c = Atomic.get t in
    (c.at, c.sweep)

  let beats t = (Atomic.get t).beats

  let age t ~now =
    let c = Atomic.get t in
    Float.max 0.0 (now -. c.at)
end

type verdict = Done | Alive of float | Stalled of float

let pp_verdict ppf = function
  | Done -> Format.pp_print_string ppf "done"
  | Alive age -> Format.fprintf ppf "alive (%.3fs since last beat)" age
  | Stalled age -> Format.fprintf ppf "STALLED (%.3fs since last beat)" age

type t = { deadline : float; hbs : Heartbeat.t array; misses : int Atomic.t }

let create ~deadline hbs =
  if not (Float.is_finite deadline && deadline > 0.0) then
    invalid_arg "Watchdog.create: deadline must be finite and positive";
  { deadline; hbs; misses = Atomic.make 0 }

let deadline t = t.deadline

let judge t ~now hb =
  if Heartbeat.is_done hb then Done
  else begin
    let at, _ = Heartbeat.last hb in
    let age = now -. at in
    if age > t.deadline then Stalled age else Alive age
  end

let misses t = Atomic.get t.misses

let poll ~now t =
  Array.map
    (fun hb ->
      let v = judge t ~now hb in
      (match v with
      | Stalled _ -> Atomic.incr t.misses
      | Done | Alive _ -> ());
      v)
    t.hbs

let stalled ~now t =
  let acc = ref [] in
  Array.iteri
    (fun i hb -> match judge t ~now hb with Stalled _ -> acc := i :: !acc | _ -> ())
    t.hbs;
  List.rev !acc
