module Rng = Qnet_prob.Rng

type mode = Duplicate | Truncate | Nan_field | Clock_skew | Reversed | Reorder

let all_modes = [ Duplicate; Truncate; Nan_field; Clock_skew; Reversed; Reorder ]

let mode_label = function
  | Duplicate -> "duplicate"
  | Truncate -> "truncate"
  | Nan_field -> "nan-field"
  | Clock_skew -> "clock-skew"
  | Reversed -> "reversed"
  | Reorder -> "reorder"

type fields = {
  task : string;
  state : string;
  queue : string;
  arrival : float;
  departure : float;
}

let parse_fields line =
  match String.split_on_char ',' line with
  | [ task; state; queue; arrival; departure ] -> (
      match (float_of_string_opt arrival, float_of_string_opt departure) with
      | Some a, Some d when Float.is_finite a && Float.is_finite d ->
          Some { task; state; queue; arrival = a; departure = d }
      | _ -> None)
  | _ -> None

let unparse f =
  Printf.sprintf "%s,%s,%s,%.17g,%.17g" f.task f.state f.queue f.arrival f.departure

let inject ?(modes = all_modes) ?per_mode rng csv =
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> String.trim l <> "")
  in
  let header, data =
    match lines with
    | h :: rest when String.length h >= 4 && String.sub h 0 4 = "task" -> (Some h, rest)
    | rest -> (None, rest)
  in
  let data = ref (Array.of_list data) in
  let n0 = Array.length !data in
  let per_mode = match per_mode with Some k -> k | None -> Stdlib.max 1 (n0 / 25) in
  let applied = ref [] in
  (* Pick a random data line satisfying [eligible]; a bounded number of
     draws keeps injection total even when few lines qualify. *)
  let pick eligible =
    let a = !data in
    let n = Array.length a in
    if n = 0 then None
    else begin
      let rec try_ attempts =
        if attempts = 0 then None
        else
          let i = Rng.int rng n in
          match parse_fields a.(i) with
          | Some f when eligible f -> Some (i, f)
          | _ -> try_ (attempts - 1)
      in
      try_ (4 * n)
    end
  in
  let apply mode =
    let count = ref 0 in
    (match mode with
    | Reorder ->
        Rng.shuffle_in_place rng !data;
        count := Array.length !data
    | Duplicate ->
        for _ = 1 to per_mode do
          match pick (fun _ -> true) with
          | Some (i, _) ->
              let a = !data in
              data :=
                Array.concat
                  [ Array.sub a 0 (i + 1); [| a.(i) |];
                    Array.sub a (i + 1) (Array.length a - i - 1) ];
              incr count
          | None -> ()
        done
    | Truncate ->
        for _ = 1 to per_mode do
          match pick (fun _ -> true) with
          | Some (i, _) ->
              let line = !data.(i) in
              (* cut at a comma so the line loses whole fields *)
              let commas =
                String.fold_left
                  (fun (j, acc) c -> (j + 1, if c = ',' then j :: acc else acc))
                  (0, []) line
                |> snd
              in
              (match commas with
              | [] -> ()
              | cs ->
                  let cut = List.nth cs (Rng.int rng (List.length cs)) in
                  !data.(i) <- String.sub line 0 cut;
                  incr count)
          | None -> ()
        done
    | Nan_field ->
        for _ = 1 to per_mode do
          match pick (fun _ -> true) with
          | Some (i, f) ->
              !data.(i) <- Printf.sprintf "%s,%s,%s,%.17g,nan" f.task f.state f.queue f.arrival;
              incr count
          | None -> ()
        done
    | Clock_skew ->
        for _ = 1 to per_mode do
          (* only non-initial events: skewing an arrival of 0 would
             read as a missing initial event, a different mode *)
          match pick (fun f -> f.arrival > 0.0) with
          | Some (i, f) ->
              let skew = 0.1 +. Rng.float_unit rng in
              !data.(i) <- unparse { f with arrival = f.arrival +. skew; departure = f.departure +. skew };
              incr count
          | None -> ()
        done
    | Reversed ->
        for _ = 1 to per_mode do
          match pick (fun f -> f.departure > f.arrival && f.arrival > 0.0) with
          | Some (i, f) ->
              !data.(i) <- unparse { f with arrival = f.departure; departure = f.arrival };
              incr count
          | None -> ()
        done);
    applied := (mode, !count) :: !applied
  in
  (* Apply Reorder last so it scrambles the corrupted lines too. *)
  let reorder, others = List.partition (fun m -> m = Reorder) modes in
  List.iter apply others;
  List.iter apply reorder;
  let buf = Buffer.create (String.length csv + 256) in
  (match header with
  | Some h ->
      Buffer.add_string buf h;
      Buffer.add_char buf '\n'
  | None -> ());
  Array.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    !data;
  (Buffer.contents buf, List.rev !applied)

(* --- chain-level fault injection ---------------------------------- *)

module Store = Qnet_core.Event_store

type chain_fault_kind =
  | Chain_stall of float
  | Chain_crash
  | Chain_corrupt_latent

type chain_fault = { chain : int; at_iteration : int; kind : chain_fault_kind }

exception Injected_crash of { chain : int; iteration : int }

let () =
  Printexc.register_printer (function
    | Injected_crash { chain; iteration } ->
        Some
          (Printf.sprintf "Fault.Injected_crash(chain %d, iteration %d)" chain
             iteration)
    | _ -> None)

let chain_fault_label f =
  let kind =
    match f.kind with
    | Chain_stall s -> Printf.sprintf "stall(%.3gs)" s
    | Chain_crash -> "crash"
    | Chain_corrupt_latent -> "corrupt-latent"
  in
  Printf.sprintf "chain %d: %s @ iteration %d" f.chain kind f.at_iteration

let corrupt_one_latent store =
  let u = Store.unobserved_events store in
  if Array.length u = 0 then false
  else begin
    (* Event_store.set_departure refuses NaN by design, so corrupt the
       state the way real memory corruption would: through a snapshot,
       which asks no one's permission. *)
    let s = Store.snapshot store in
    s.Store.s_departure.(u.(Array.length u / 2)) <- nan;
    Store.restore store s;
    true
  end

(* --- service-level fault injection -------------------------------- *)

type service_fault_kind =
  | Ingest_stall of float
  | Shard_crash
  | Checkpoint_write_failure
  | Slow_consumer of float
  | Torn_write
  | Bit_flip
  | Overload of float

type service_fault = {
  shard : int;
  after : float;
  kind : service_fault_kind;
}

exception Injected_shard_crash of { shard : int }

let () =
  Printexc.register_printer (function
    | Injected_shard_crash { shard } ->
        Some (Printf.sprintf "Fault.Injected_shard_crash(shard %d)" shard)
    | _ -> None)

let service_fault_label f =
  let kind =
    match f.kind with
    | Ingest_stall s -> Printf.sprintf "ingest-stall(%.3gs)" s
    | Shard_crash -> "crash"
    | Checkpoint_write_failure -> "ckpt-fail"
    | Slow_consumer s -> Printf.sprintf "slow(%.3gs)" s
    | Torn_write -> "torn-write"
    | Bit_flip -> "bit-flip"
    | Overload rps -> Printf.sprintf "overload(%.3g/s)" rps
  in
  Printf.sprintf "shard %d: %s @ t+%.3gs" f.shard kind f.after

let parse_service_fault spec =
  (* SHARD:KIND[=ARG]@SECONDS, e.g. "0:ingest-stall=1.5@4", "1:crash@6",
     "0:ckpt-fail@8", "1:slow=2@3", "0:torn-write@6", "0:bit-flip@8",
     "1:overload=50@3" *)
  let fail () =
    Error
      (Printf.sprintf
         "bad service-fault spec %S (want SHARD:KIND[=ARG]@SECONDS with KIND \
          one of ingest-stall, crash, ckpt-fail, slow, torn-write, bit-flip, \
          overload=RPS)"
         spec)
  in
  match String.index_opt spec ':' with
  | None -> fail ()
  | Some colon -> (
      let shard_s = String.sub spec 0 colon in
      let rest = String.sub spec (colon + 1) (String.length spec - colon - 1) in
      match String.index_opt rest '@' with
      | None -> fail ()
      | Some at -> (
          let kind_s = String.sub rest 0 at in
          let after_s = String.sub rest (at + 1) (String.length rest - at - 1) in
          let kind_s, arg =
            match String.index_opt kind_s '=' with
            | None -> (kind_s, None)
            | Some eq ->
                ( String.sub kind_s 0 eq,
                  float_of_string_opt
                    (String.sub kind_s (eq + 1) (String.length kind_s - eq - 1)) )
          in
          match (int_of_string_opt shard_s, float_of_string_opt after_s) with
          | Some shard, Some after
            when shard >= 0 && after >= 0.0 && Float.is_finite after -> (
              let pos = function
                | Some s when s > 0.0 && Float.is_finite s -> Some s
                | _ -> None
              in
              match (kind_s, arg) with
              | "ingest-stall", None ->
                  Ok { shard; after; kind = Ingest_stall 1.0 }
              | "ingest-stall", a -> (
                  match pos a with
                  | Some s -> Ok { shard; after; kind = Ingest_stall s }
                  | None -> fail ())
              | "crash", None -> Ok { shard; after; kind = Shard_crash }
              | "ckpt-fail", None ->
                  Ok { shard; after; kind = Checkpoint_write_failure }
              | "slow", None -> Ok { shard; after; kind = Slow_consumer 2.0 }
              | "slow", a -> (
                  match pos a with
                  | Some s -> Ok { shard; after; kind = Slow_consumer s }
                  | None -> fail ())
              | "torn-write", None -> Ok { shard; after; kind = Torn_write }
              | "bit-flip", None -> Ok { shard; after; kind = Bit_flip }
              | "overload", a -> (
                  match pos a with
                  | Some rps -> Ok { shard; after; kind = Overload rps }
                  | None -> fail ())
              | _ -> fail ())
          | _ -> fail ()))

let parse_chain_fault spec =
  (* CHAIN:KIND[=ARG]@ITERATION, e.g. "1:stall@5", "2:crash@8",
     "0:stall=0.4@3", "3:corrupt@6" *)
  let fail () =
    Error
      (Printf.sprintf
         "bad chain-fault spec %S (want CHAIN:KIND[=ARG]@ITER with KIND one of \
          stall, crash, corrupt)"
         spec)
  in
  match String.index_opt spec ':' with
  | None -> fail ()
  | Some colon -> (
      let chain_s = String.sub spec 0 colon in
      let rest = String.sub spec (colon + 1) (String.length spec - colon - 1) in
      match String.index_opt rest '@' with
      | None -> fail ()
      | Some at -> (
          let kind_s = String.sub rest 0 at in
          let iter_s = String.sub rest (at + 1) (String.length rest - at - 1) in
          let kind_s, arg =
            match String.index_opt kind_s '=' with
            | None -> (kind_s, None)
            | Some eq ->
                ( String.sub kind_s 0 eq,
                  float_of_string_opt
                    (String.sub kind_s (eq + 1) (String.length kind_s - eq - 1)) )
          in
          match (int_of_string_opt chain_s, int_of_string_opt iter_s) with
          | Some chain, Some at_iteration when chain >= 0 && at_iteration >= 0 -> (
              match (kind_s, arg) with
              | "stall", None -> Ok { chain; at_iteration; kind = Chain_stall 0.25 }
              | "stall", Some s when s > 0.0 && Float.is_finite s ->
                  Ok { chain; at_iteration; kind = Chain_stall s }
              | "crash", None -> Ok { chain; at_iteration; kind = Chain_crash }
              | "corrupt", None ->
                  Ok { chain; at_iteration; kind = Chain_corrupt_latent }
              | _ -> fail ())
          | _ -> fail ()))
