(** Fault-tolerant driver for stochastic-EM inference.

    The paper's deployment story — localizing performance problems from
    ~1% samples of production traces — implies long sampling runs over
    dirty data. This module wraps the Gibbs/StEM loop of
    {!Qnet_core.Stem} in a production harness:

    - {b checkpointing}: every [checkpoint_every] iterations the full
      sampler state (latents, parameters, iterate history, RNG) is
      captured; with a [checkpoint_path] it is also written atomically
      to disk ({!Checkpoint}), so a killed process resumes exactly
      where it stopped — bit-identical to the uninterrupted run.
    - {b validation}: every [validate_every] iterations (and at every
      checkpoint boundary, so a checkpoint is never poisoned)
      {!Health.check} asserts the model's invariants.
    - {b recovery}: a violation or an exception rolls the state back to
      the last good checkpoint, re-jitters the latents via
      {!Qnet_core.Init.feasible} (the RNG has advanced, so the retry
      explores a different sampling path), and doubles the validation
      interval — exponential backoff. After [max_retries] recoveries
      the run aborts cleanly, still returning every sample collected.
    - {b budgets}: an optional wall-clock budget ends the run
      gracefully with the partial posterior instead of a SIGKILL
      losing everything. *)

type config = {
  stem : Qnet_core.Stem.config;  (** the wrapped StEM configuration *)
  checkpoint_every : int;
      (** iterations between checkpoints; 0 disables both the on-disk
          write and the in-memory rollback point refresh (default 25) *)
  checkpoint_path : string option;
      (** where to persist checkpoints; [None] keeps them in memory
          only (rollback still works, resume after kill does not) *)
  validate_every : int;  (** iterations between health checks (default 10) *)
  max_retries : int;  (** rollback attempts before aborting (default 3) *)
  max_seconds : float option;  (** wall-clock budget; [None] = unlimited *)
}

val default_config : config

type status =
  | Completed
  | Budget_exhausted  (** wall-clock budget hit; partial posterior returned *)
  | Aborted of string  (** retries exhausted; partial posterior returned *)

type incident = {
  at_iteration : int;
  cause : string;  (** health violations or a caught exception *)
}

type report = {
  iterations_done : int;
  retries : int;
  incidents : incident list;  (** oldest first *)
  checkpoints_written : int;  (** on-disk writes, not in-memory refreshes *)
  resumed_at : int option;  (** iteration a resumed run continued from *)
  wall_seconds : float;
}

type result = {
  params : Qnet_core.Params.t;
      (** post-burn-in average, or over whatever prefix completed *)
  params_last : Qnet_core.Params.t;
  history : Qnet_core.Params.t array;  (** length [report.iterations_done] *)
  mean_service : float array;
  log_likelihood_history : float array;
  status : status;
  report : report;
}

val pp_status : Format.formatter -> status -> unit
val pp_report : Format.formatter -> report -> unit

val run :
  ?config:config ->
  ?init:Qnet_core.Params.t ->
  ?resume:Checkpoint.t ->
  ?chaos:(int -> Qnet_core.Event_store.t -> unit) ->
  Qnet_prob.Rng.t ->
  Qnet_core.Event_store.t ->
  result
(** [run rng store] mirrors {!Qnet_core.Stem.run} (initialization,
    warmup, E/M iterations, post-burn-in averaging) under the harness
    above. With [resume] the initialization phase is skipped entirely:
    the store, parameters, history, and RNG are restored from the
    checkpoint and iteration [ck.iteration] continues as if the
    process had never died. Raises [Invalid_argument] if the
    checkpoint's dimensions do not match [store], or on a nonsensical
    config. [chaos] is a test-only hook called after each iteration's
    M-step — fault-injection harnesses use it to corrupt the state
    in a controlled way; it must not consume [rng]. *)

val resume_file :
  ?config:config ->
  ?chaos:(int -> Qnet_core.Event_store.t -> unit) ->
  path:string ->
  Qnet_prob.Rng.t ->
  Qnet_core.Event_store.t ->
  (result, string) Stdlib.result
(** Load a checkpoint from [path] and continue. [Error] on I/O or
    decode failure, or when the checkpoint does not fit [store]. *)
