(** State validation for long inference runs.

    A Gibbs/StEM run over hours of samples is only as good as its
    invariants: one NaN latent or one collapsed rate silently poisons
    every subsequent sweep. [Health.check] asserts the deterministic
    constraints of the paper's model (Section 2) plus numerical
    sanity on the current sampler state, and returns every violation
    found so the runtime can decide to roll back. *)

type violation =
  | Nan_latent of int  (** event index with a NaN/±inf departure *)
  | Negative_service of int * float  (** event index, service value *)
  | Departure_before_arrival of int
  | Fifo_violation of int * int
      (** (queue, event): within-queue arrival order broken *)
  | Chain_leak of int * int
      (** (expected, walked): the per-queue ρ chains do not cover every
          event exactly once — corrupted chain pointers *)
  | Nonfinite_log_likelihood of float
      (** total complete-data log-likelihood is NaN/±inf *)
  | Degenerate_rate of int * float
      (** (queue, rate): non-positive, non-finite, or collapsed beyond
          [max_rate] — the runaway-MLE failure mode *)
  | Sample_loss of int * int
      (** (skipped, kept): a streaming accumulator silently dropped
          NaN samples. {!Qnet_prob.Statistics.Welford} skips NaN
          inputs so one corrupt draw does not poison a long run's
          moments — but each skip is data loss, and a chain that loses
          samples without anyone noticing reports moments over a
          different (censored) sample than it claims. Produced by
          {!of_accumulator}, not by {!check}. *)

val pp_violation : Format.formatter -> violation -> unit

val describe : violation list -> string
(** One-line summary ("3 violations: nan-latent(17), ...") for logs
    and abort messages. *)

val check :
  ?tol:float ->
  ?max_rate:float ->
  Qnet_core.Event_store.t ->
  Qnet_core.Params.t ->
  violation list
(** [check store params] returns every invariant violation of the
    current latent state and parameters, in event order; [[]] means
    healthy. [tol] (default 1e-9) is the slack used for time
    comparisons, matching [Event_store.validate]. [max_rate] (default
    1e12) bounds plausible rates: the exponential M-step can ratchet
    rates toward infinity under sparse observation, and a rate beyond
    any physical service time is a collapse, not an estimate. The
    check never raises and never consumes randomness, so it can run
    inside a reproducible sampling loop. *)

val of_accumulator : Qnet_prob.Statistics.Welford.t -> violation list
(** [of_accumulator w] is [[Sample_loss (skipped, kept)]] when the
    accumulator has dropped NaN inputs, [[]] otherwise — the bridge
    that makes {!Qnet_prob.Statistics.Welford}'s silent NaN-skip
    accounting visible in health verdicts (the multi-chain supervisor
    attaches it to each chain's report). *)
