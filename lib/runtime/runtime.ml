module Rng = Qnet_prob.Rng
module Store = Qnet_core.Event_store
module Params = Qnet_core.Params
module Stem = Qnet_core.Stem
module Gibbs = Qnet_core.Gibbs
module Init = Qnet_core.Init
module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span

let m_incidents =
  lazy
    (Metrics.Counter.create
       ~help:"Validation failures and exceptions recovered by rollback-and-retry"
       "qnet_runtime_incidents_total")

let m_iterations =
  lazy
    (Metrics.Counter.create ~help:"Checkpointed-runtime iterations committed"
       "qnet_runtime_iterations_total")

type config = {
  stem : Stem.config;
  checkpoint_every : int;
  checkpoint_path : string option;
  validate_every : int;
  max_retries : int;
  max_seconds : float option;
}

let default_config =
  {
    stem = Stem.default_config;
    checkpoint_every = 25;
    checkpoint_path = None;
    validate_every = 10;
    max_retries = 3;
    max_seconds = None;
  }

type status = Completed | Budget_exhausted | Aborted of string

type incident = { at_iteration : int; cause : string }

type report = {
  iterations_done : int;
  retries : int;
  incidents : incident list;
  checkpoints_written : int;
  resumed_at : int option;
  wall_seconds : float;
}

type result = {
  params : Params.t;
  params_last : Params.t;
  history : Params.t array;
  mean_service : float array;
  log_likelihood_history : float array;
  status : status;
  report : report;
}

let pp_status ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Budget_exhausted -> Format.pp_print_string ppf "budget-exhausted"
  | Aborted m -> Format.fprintf ppf "aborted (%s)" m

let pp_report ppf r =
  Format.fprintf ppf
    "runtime: %d iterations in %.2fs, %d retries, %d checkpoints written%a@."
    r.iterations_done r.wall_seconds r.retries r.checkpoints_written
    (fun ppf -> function
      | Some it -> Format.fprintf ppf ", resumed at iteration %d" it
      | None -> ())
    r.resumed_at;
  List.iter
    (fun i -> Format.fprintf ppf "  incident at iteration %d: %s@." i.at_iteration i.cause)
    r.incidents

(* Single clamped time source for the whole runtime (D001): wall time
   only ever flows through the high-water-marked telemetry clock. *)
let now () = Qnet_obs.Clock.now ()

let run ?(config = default_config) ?init ?resume ?chaos rng store =
  Span.with_span "runtime.run" @@ fun () ->
  let c = config.stem in
  if c.Stem.iterations < 1 then invalid_arg "Runtime.run: need at least one iteration";
  if c.Stem.burn_in < 0 || c.Stem.burn_in >= c.Stem.iterations then
    invalid_arg "Runtime.run: burn_in must be in [0, iterations)";
  if config.validate_every < 1 then
    invalid_arg "Runtime.run: validate_every must be >= 1";
  if config.checkpoint_every < 0 then
    invalid_arg "Runtime.run: checkpoint_every must be >= 0";
  if config.max_retries < 0 then invalid_arg "Runtime.run: max_retries must be >= 0";
  let t0 = now () in
  let nq = Store.num_queues store in
  let iterations = c.Stem.iterations in
  let anchor, start_it, history, llh =
    match resume with
    | Some ck ->
        if Array.length ck.Checkpoint.snapshot.Store.s_departure <> Store.num_events store
        then invalid_arg "Runtime.run: checkpoint event count does not match store";
        if Params.num_queues ck.Checkpoint.params <> nq then
          invalid_arg "Runtime.run: checkpoint queue count does not match store";
        if ck.Checkpoint.iteration > iterations then
          invalid_arg "Runtime.run: checkpoint is beyond the configured iteration count";
        Store.restore store ck.Checkpoint.snapshot;
        Rng.set_state rng ck.Checkpoint.rng_state;
        let history = Array.make iterations ck.Checkpoint.params in
        let llh = Array.make iterations nan in
        Array.blit ck.Checkpoint.history 0 history 0 ck.Checkpoint.iteration;
        Array.blit ck.Checkpoint.llh 0 llh 0 ck.Checkpoint.iteration;
        (ck.Checkpoint.anchor, ck.Checkpoint.iteration, history, llh)
    | None ->
        let params0 = match init with Some p -> p | None -> Stem.initial_guess store in
        (match Init.feasible ~strategy:c.Stem.init_strategy ~target:params0 store with
        | Ok () -> ()
        | Error msg -> failwith ("Runtime.run: initialization failed: " ^ msg));
        Gibbs.run ~shuffle:c.Stem.shuffle ~sweeps:c.Stem.warmup_sweeps rng store params0;
        (params0, 0, Array.make iterations params0, Array.make iterations nan)
  in
  let params = ref (match resume with Some ck -> ck.Checkpoint.params | None -> anchor) in
  let make_ck it =
    {
      Checkpoint.iteration = it;
      rng_state = Rng.state rng;
      params = !params;
      anchor;
      snapshot = Store.snapshot store;
      history = Array.sub history 0 it;
      llh = Array.sub llh 0 it;
    }
  in
  let checkpoints_written = ref 0 in
  let persist ck =
    match config.checkpoint_path with
    | Some path ->
        Checkpoint.save ~path ck;
        incr checkpoints_written
    | None -> ()
  in
  (* The rollback point. Even with checkpointing disabled we keep the
     initial state so the first recovery has somewhere to go. *)
  let last_good = ref (make_ck start_it) in
  let incidents = ref [] in
  let retries = ref 0 in
  let validate_every = ref config.validate_every in
  let it = ref start_it in
  let stop = ref None in
  let prior =
    if c.Stem.prior_strength > 0.0 then Some (c.Stem.prior_strength, anchor) else None
  in
  while !stop = None && !it < iterations do
    let outcome =
      try
        Gibbs.sweep ~shuffle:c.Stem.shuffle rng store !params;
        let p =
          Stem.mle_step ?prior store ~previous:!params
            ~min_queue_events:c.Stem.min_queue_events
        in
        (match chaos with Some f -> f !it store | None -> ());
        let next = !it + 1 in
        let at_validation = next mod !validate_every = 0 || next = iterations in
        let at_checkpoint =
          config.checkpoint_every > 0 && next mod config.checkpoint_every = 0
        in
        (* Always validate what is about to become a rollback point: a
           poisoned "last good" state would make recovery a no-op. *)
        if at_validation || at_checkpoint then begin
          match Health.check store p with
          | [] -> Ok p
          | vs -> Error (Health.describe vs)
        end
        else Ok p
      with exn -> Error ("exception: " ^ Printexc.to_string exn)
    in
    (match outcome with
    | Ok p ->
        params := p;
        history.(!it) <- p;
        llh.(!it) <- Store.log_likelihood store p;
        incr it;
        if Metrics.enabled () then Metrics.Counter.inc (Lazy.force m_iterations);
        if config.checkpoint_every > 0 && !it mod config.checkpoint_every = 0 then begin
          let ck = make_ck !it in
          last_good := ck;
          persist ck
        end
    | Error cause ->
        incidents := { at_iteration = !it; cause } :: !incidents;
        if Metrics.enabled () then Metrics.Counter.inc (Lazy.force m_incidents);
        if !retries >= config.max_retries then
          stop :=
            Some
              (Aborted
                 (Printf.sprintf "%d retries exhausted; last incident: %s"
                    config.max_retries cause))
        else begin
          incr retries;
          (* Roll back to the last state that passed validation... *)
          let ck = !last_good in
          Store.restore store ck.Checkpoint.snapshot;
          params := ck.Checkpoint.params;
          it := ck.Checkpoint.iteration;
          (* ...re-jitter the latents (Init restores feasibility even
             if the rollback state was somehow damaged in memory), and
             take one fresh sweep: the RNG has advanced past the state
             that led into the fault, so the retry follows a different
             sampling path instead of replaying the crash. *)
          (match Init.feasible ~strategy:c.Stem.init_strategy ~target:anchor store with
          | Ok () -> ()
          | Error msg ->
              stop := Some (Aborted ("re-initialization failed: " ^ msg)));
          if !stop = None then begin
            Gibbs.sweep ~shuffle:c.Stem.shuffle rng store !params;
            (* Exponential backoff on the validation cadence: repeated
               transient violations should not thrash rollback. *)
            validate_every := Stdlib.min (2 * !validate_every) iterations
          end
        end);
    match config.max_seconds with
    | Some budget when !stop = None && !it < iterations && now () -. t0 >= budget ->
        stop := Some Budget_exhausted
    | _ -> ()
  done;
  let done_ = !it in
  (* Persist the final state when it is not already on disk, so a
     budget-exhausted or completed run can be extended later. *)
  if config.checkpoint_every > 0 && done_ > 0 && done_ mod config.checkpoint_every <> 0
  then persist (make_ck done_);
  let mean_service =
    if done_ = 0 then Array.init nq (fun q -> Params.mean_service !params q)
    else begin
      let burn = if done_ > c.Stem.burn_in then c.Stem.burn_in else 0 in
      let kept = done_ - burn in
      let acc = Array.make nq 0.0 in
      for i = burn to done_ - 1 do
        for q = 0 to nq - 1 do
          acc.(q) <- acc.(q) +. (Params.mean_service history.(i) q /. float_of_int kept)
        done
      done;
      acc
    end
  in
  let averaged =
    Params.create
      ~rates:(Array.map (fun s -> 1.0 /. s) mean_service)
      ~arrival_queue:(Store.arrival_queue store)
  in
  {
    params = averaged;
    params_last = !params;
    history = Array.sub history 0 done_;
    mean_service;
    log_likelihood_history = Array.sub llh 0 done_;
    status = (match !stop with Some s -> s | None -> Completed);
    report =
      {
        iterations_done = done_;
        retries = !retries;
        incidents = List.rev !incidents;
        checkpoints_written = !checkpoints_written;
        resumed_at = Option.map (fun ck -> ck.Checkpoint.iteration) resume;
        wall_seconds = now () -. t0;
      };
  }

let resume_file ?config ?chaos ~path rng store =
  match Checkpoint.load ~path with
  | Error m -> Error m
  | Ok ck -> (
      try Ok (run ?config ~resume:ck ?chaos rng store)
      with Invalid_argument m -> Error m)
