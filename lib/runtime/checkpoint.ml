module Store = Qnet_core.Event_store
module Params = Qnet_core.Params
module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span
module Clock = Qnet_obs.Clock

let m_bytes =
  lazy
    (Metrics.Histogram.create
       ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 |]
       ~help:"Encoded size of persisted checkpoints, bytes" "qnet_checkpoint_bytes")

let m_write_seconds =
  lazy
    (Metrics.Histogram.create
       ~buckets:[| 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]
       ~help:"Wall time to encode, write and atomically rename one checkpoint"
       "qnet_checkpoint_write_seconds")

let m_written =
  lazy
    (Metrics.Counter.create ~help:"Checkpoints persisted to disk"
       "qnet_checkpoints_written_total")

type t = {
  iteration : int;
  rng_state : int64 array;
  params : Params.t;
  anchor : Params.t;
  snapshot : Store.snapshot;
  history : Params.t array;
  llh : float array;
}

let magic = "QNETCKPT"
let version = 1

(* --- FNV-1a 64-bit, over the encoded payload ---------------------- *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a s ~pos ~len =
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) fnv_prime
  done;
  !h

(* --- encoding ----------------------------------------------------- *)

let add_i64 buf v = Buffer.add_int64_le buf v
let add_int buf v = add_i64 buf (Int64.of_int v)
let add_float buf v = add_i64 buf (Int64.bits_of_float v)

let add_int_array buf a =
  add_int buf (Array.length a);
  Array.iter (add_int buf) a

let add_float_array buf a =
  add_int buf (Array.length a);
  Array.iter (add_float buf) a

let add_params buf p =
  add_int buf p.Params.arrival_queue;
  add_float_array buf p.Params.rates

let to_bytes ck =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_int buf version;
  add_int buf ck.iteration;
  add_int buf (Array.length ck.rng_state);
  Array.iter (add_i64 buf) ck.rng_state;
  add_params buf ck.params;
  add_params buf ck.anchor;
  add_float_array buf ck.snapshot.Store.s_departure;
  add_int_array buf ck.snapshot.Store.s_queue;
  add_int_array buf ck.snapshot.Store.s_rho;
  add_int_array buf ck.snapshot.Store.s_rho_inv;
  add_int_array buf ck.snapshot.Store.s_heads;
  add_int buf (Array.length ck.history);
  Array.iter (fun p -> add_params buf p) ck.history;
  add_float_array buf ck.llh;
  let payload = Buffer.contents buf in
  let sum = fnv1a payload ~pos:0 ~len:(String.length payload) in
  let buf = Buffer.create (String.length payload + 8) in
  Buffer.add_string buf payload;
  add_i64 buf sum;
  Buffer.contents buf

(* --- decoding ----------------------------------------------------- *)

exception Malformed of string

let of_bytes s =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length s - 8 then raise (Malformed "truncated payload")
  in
  let get_i64 () =
    need 8;
    let v = String.get_int64_le s !pos in
    pos := !pos + 8;
    v
  in
  let get_int () =
    let v = Int64.to_int (get_i64 ()) in
    if v < 0 || v > 0x3FFFFFFF then raise (Malformed "implausible count");
    v
  in
  let get_float () = Int64.float_of_bits (get_i64 ()) in
  let get_signed_int () = Int64.to_int (get_i64 ()) in
  let get_int_array () =
    let n = get_int () in
    Array.init n (fun _ -> get_signed_int ())
  in
  let get_float_array () =
    let n = get_int () in
    Array.init n (fun _ -> get_float ())
  in
  let get_params () =
    let arrival_queue = get_int () in
    let rates = get_float_array () in
    try Params.create ~rates ~arrival_queue
    with Invalid_argument m -> raise (Malformed ("bad parameters: " ^ m))
  in
  try
    if String.length s < String.length magic + 16 then Error "file too short"
    else if String.sub s 0 (String.length magic) <> magic then
      Error "bad magic (not a qnet checkpoint)"
    else begin
      let stored_sum =
        String.get_int64_le s (String.length s - 8)
      in
      let sum = fnv1a s ~pos:0 ~len:(String.length s - 8) in
      if not (Int64.equal sum stored_sum) then
        Error "checksum mismatch (corrupt or truncated checkpoint)"
      else begin
        pos := String.length magic;
        let v = get_int () in
        if v <> version then
          Error (Printf.sprintf "unsupported checkpoint version %d (want %d)" v version)
        else begin
          let iteration = get_int () in
          let nwords = get_int () in
          if nwords <> 4 then raise (Malformed "bad rng state size");
          let rng_state = Array.init nwords (fun _ -> get_i64 ()) in
          let params = get_params () in
          let anchor = get_params () in
          let s_departure = get_float_array () in
          let s_queue = get_int_array () in
          let s_rho = get_int_array () in
          let s_rho_inv = get_int_array () in
          let s_heads = get_int_array () in
          let h = get_int () in
          let history = Array.init h (fun _ -> get_params ()) in
          let llh = get_float_array () in
          if h <> iteration then raise (Malformed "history length disagrees with iteration");
          if Array.length llh <> h then raise (Malformed "llh length disagrees with history");
          let n = Array.length s_departure in
          if Array.length s_queue <> n || Array.length s_rho <> n
             || Array.length s_rho_inv <> n
          then raise (Malformed "snapshot arrays disagree on event count");
          Ok
            {
              iteration;
              rng_state;
              params;
              anchor;
              snapshot = { Store.s_departure; s_queue; s_rho; s_rho_inv; s_heads };
              history;
              llh;
            }
        end
      end
    end
  with Malformed m -> Error ("malformed checkpoint: " ^ m)

(* --- file I/O ----------------------------------------------------- *)

let save ~path ck =
  Span.with_span "checkpoint.save" @@ fun () ->
  let instrumented = Metrics.enabled () in
  let t0 = if instrumented then Clock.now () else 0.0 in
  let bytes = to_bytes ck in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc bytes);
  Sys.rename tmp path;
  if instrumented then begin
    Metrics.Histogram.observe (Lazy.force m_bytes)
      (float_of_int (String.length bytes));
    Metrics.Histogram.observe (Lazy.force m_write_seconds) (Clock.now () -. t0);
    Metrics.Counter.inc (Lazy.force m_written)
  end

let load ~path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        of_bytes (really_input_string ic len))
  with Sys_error m -> Error m
