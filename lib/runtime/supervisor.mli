(** Supervised multi-chain stochastic-EM inference.

    {!run} executes N independent StEM chains on OCaml 5 domains and
    babysits them from the main domain: every chain beats a
    {!Watchdog.Heartbeat} once per sweep, a watchdog enforces a
    per-sweep deadline, a cross-chain monitor computes split-R̂ /
    effective sample size over the pooled iterates, and chains that
    crash, stall, fail a {!Health} check, or diverge from the ensemble
    are quarantined and restarted from their last good {!Checkpoint}
    with re-jittered latents. When a chain exhausts its restart budget
    the supervisor degrades gracefully to the surviving chains; the
    final estimate pools whatever quorum remains and reports a
    per-chain verdict either way.

    {b Execution model.} Chains advance in {e rounds} of
    [round_iterations] StEM iterations. Each round the supervisor
    spawns one domain per active chain, polls heartbeats while they
    run, and joins them at a barrier where all control decisions
    happen: health checks, checkpoint capture, crash/stall recovery,
    divergence quarantine. Putting every decision at a deterministic
    barrier (rather than in racing signal handlers) means a run with a
    fixed seed and no faults makes identical decisions every time, and
    unfaulted chains are bit-for-bit reproducible even when sibling
    chains are being killed and restarted around them — each chain
    owns a private store and a private RNG stream derived from
    [seed + 7919·chain] (the {!Qnet_core.Stem.run_chains} convention).

    {b Stalls.} An OCaml domain cannot be preempted. A stalled chain
    is cancelled cooperatively (a flag it checks at each iteration
    boundary); one that never reaches a boundary is abandoned after
    [stall_grace] seconds and its domain deliberately leaked — the
    price of never blocking the healthy majority on a zombie. *)

type config = {
  chains : int;  (** number of independent chains (default 4) *)
  min_chains : int;
      (** quorum: healthy chains required for a {!Quorum} verdict
          (default 2) *)
  stem : Qnet_core.Stem.config;  (** per-chain StEM configuration *)
  round_iterations : int;
      (** iterations per supervision round — the granularity of
          checkpoints, health checks and divergence tests (default 10) *)
  sweep_deadline : float;
      (** watchdog deadline in seconds between heartbeats; a chain
          quieter than this is stalled (default 5.0) *)
  poll_interval : float;
      (** supervisor heartbeat-polling period in seconds
          (default 0.005) *)
  stall_grace : float;
      (** seconds a stalled chain may ignore cancellation before its
          domain is abandoned (default 2.0) *)
  max_restarts : int;
      (** per-chain restart budget; the next failure is terminal
          (default 2) *)
  rhat_threshold : float;
      (** divergence gate: the outlier hunt only runs when the maximal
          split-R̂ over service queues exceeds this (default 1.2) *)
  ks_threshold : float;
      (** a chain is quarantined as the outlier only when its KS
          distance against the pooled rest exceeds this (default 0.7) *)
}

val default_config : config

type chain_status =
  | Healthy
  | Quarantined of string
      (** excluded from the pooled estimate (diverged or failed a
          health check) after exhausting its restart budget *)
  | Dead of string
      (** crashed or stalled beyond recovery; the string is the cause *)

type chain_verdict = {
  chain : int;
  status : chain_status;
  iterations_done : int;
  restarts : int;
  heartbeats : int;  (** total sweeps the watchdog saw from this chain *)
  violations : Health.violation list;
      (** residual accumulator violations — notably
          [Health.Sample_loss] when the chain's Welford moments
          silently dropped NaN samples that survived to the end *)
  incidents : (int * string) list;
      (** (iteration, cause) log of everything that went wrong, oldest
          first — including incidents later repaired by a restart *)
}

type ensemble_status =
  | Quorum  (** at least [min_chains] chains finished healthy *)
  | Degraded
      (** fewer than [min_chains] but at least one healthy chain; the
          estimate stands on thinner evidence *)
  | Failed  (** no healthy chain; the result is a best-effort salvage *)

type result = {
  params : Qnet_core.Params.t;
      (** pooled post-burn-in estimate over contributing chains *)
  mean_service : float array;  (** pooled [1/μ̂_q] per queue *)
  rhat : float array;
      (** per-queue split-R̂ across healthy chains ([nan] when fewer
          than one usable chain). The arrival queue's entry inherits
          the {!Qnet_core.Stem.run_chains} caveat: its within-chain
          variance is nearly zero, so its R̂ is inflated and not used
          for divergence decisions. *)
  ess : float array;
      (** pooled effective sample size per queue ([nan] when unusable) *)
  healthy_chains : int;
  status : ensemble_status;
  verdicts : chain_verdict array;  (** indexed by chain *)
  wall_seconds : float;
}

val pp_chain_status : Format.formatter -> chain_status -> unit
val pp_ensemble_status : Format.formatter -> ensemble_status -> unit
val pp_verdict : Format.formatter -> chain_verdict -> unit

val pp_result : Format.formatter -> result -> unit
(** Multi-line report: ensemble status line, one verdict line per
    chain, pooled diagnostics. *)

val ks_outlier_scores : float array array -> float array
(** [ks_outlier_scores chains] scores each chain's draws by their
    two-sample KS distance against the concatenation of every other
    chain — the statistic the divergence monitor thresholds with
    [ks_threshold]. Raises [Invalid_argument] with fewer than two
    chains. Exposed for testing and external monitors. *)

val run :
  ?config:config ->
  ?init:Qnet_core.Params.t ->
  ?faults:Fault.chain_fault list ->
  seed:int ->
  (unit -> Qnet_core.Event_store.t) ->
  result
(** [run ~seed make_store] supervises [config.chains] StEM chains,
    each on a fresh store from [make_store] (stores must be
    independent values — they are mutated concurrently). [init]
    overrides the data-driven {!Qnet_core.Stem.initial_guess} anchor.
    [faults] injects deterministic chain-level faults (each fires at
    most once, so a restarted chain re-runs the faulted iteration
    cleanly). Never raises on chain failure — failures are reported in
    the verdicts; raises [Invalid_argument] only for a malformed
    config or a fault naming a chain out of range. *)
