(** Heartbeat monitoring for inference chains running on OCaml 5
    domains.

    Each chain owns a {!Heartbeat.t} and beats it once per Gibbs sweep
    (and once per warmup sweep); the supervisor's watchdog polls all
    heartbeats against a per-sweep deadline from the main domain. A
    chain whose last beat is older than the deadline is {e stalled}:
    the watchdog cannot preempt an OCaml domain, so the verdict's job
    is to (a) flag the chain so its samples are excluded from the
    pooled estimate, and (b) trigger the supervisor's cooperative
    cancellation, which a chain honours at its next iteration
    boundary. A chain stuck {e inside} a single Gibbs move never
    reaches that boundary — the supervisor abandons it after a grace
    period and degrades to fewer chains.

    Heartbeats are single-writer (the chain) / single-reader (the
    supervisor) atomics; beating and polling are lock-free, never
    raise, and consume no randomness. *)

module Heartbeat : sig
  type t

  val create : unit -> t

  val arm : t -> now:float -> unit
  (** Start (or restart) the deadline clock — called by the supervisor
      just before the chain's domain is spawned, so a chain that never
      manages a single beat still times out. Also clears the done
      flag. *)

  val beat : t -> now:float -> sweep:int -> unit
  (** Record liveness at sweep [sweep]. *)

  val mark_done : t -> unit
  (** The chain finished its round (normally or by catching its own
      crash); the watchdog stops judging it. *)

  val is_done : t -> bool

  val last : t -> float * int
  (** Time and sweep index of the most recent beat (arm time and the
      armed sweep if the chain has not beaten since {!arm}). *)

  val beats : t -> int
  (** Total beats over the heartbeat's lifetime (survives {!arm}). *)
end

type verdict =
  | Done  (** round finished; not subject to the deadline *)
  | Alive of float  (** seconds since the last beat, within deadline *)
  | Stalled of float  (** seconds since the last beat, beyond deadline *)

val pp_verdict : Format.formatter -> verdict -> unit

type t

val create : deadline:float -> Heartbeat.t array -> t
(** [create ~deadline hbs] watches [hbs] with a per-sweep deadline of
    [deadline] seconds. Raises [Invalid_argument] unless [deadline] is
    finite and positive. *)

val deadline : t -> float

val poll : now:float -> t -> verdict array
(** Judge every heartbeat at time [now]: done chains are [Done], the
    rest [Alive age] or [Stalled age] by comparing the age of their
    last beat against the deadline. *)

val stalled : now:float -> t -> int list
(** Indices of chains currently [Stalled], ascending. *)
