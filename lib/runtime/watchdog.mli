(** Heartbeat monitoring for inference chains running on OCaml 5
    domains.

    Each chain owns a {!Heartbeat.t} and beats it once per Gibbs sweep
    (and once per warmup sweep); the supervisor's watchdog polls all
    heartbeats against a per-sweep deadline from the main domain. A
    chain whose last beat is older than the deadline is {e stalled}:
    the watchdog cannot preempt an OCaml domain, so the verdict's job
    is to trigger the supervisor's cooperative cancellation, which a
    chain honours at its next iteration boundary; at the round barrier
    the supervisor rolls the chain back to its last good checkpoint
    and restarts it with re-jittered latents, exhausting the restart
    budget into a [Dead] verdict. A chain stuck {e inside} a single
    Gibbs move never reaches the cancellation point — the supervisor
    abandons its domain after a grace period and the run degrades to
    the surviving chains. (Divergence {e quarantine} is a separate
    mechanism, driven by cross-chain statistics in the supervisor, not
    by this watchdog.)

    Heartbeats are single-writer (the chain) / single-reader (the
    supervisor) atomics; beating and polling are lock-free, never
    raise, and consume no randomness. The watchdog additionally keeps
    a deadline-miss count ({!misses}) and exposes per-heartbeat ages
    ({!Heartbeat.age}) so the telemetry layer can export supervision
    health as metrics. *)

module Heartbeat : sig
  type t

  val create : unit -> t

  val arm : t -> now:float -> unit
  (** Start (or restart) the deadline clock — called by the supervisor
      just before the chain's domain is spawned, so a chain that never
      manages a single beat still times out. Also clears the done
      flag. *)

  val beat : t -> now:float -> sweep:int -> unit
  (** Record liveness at sweep [sweep]. *)

  val mark_done : t -> unit
  (** The chain finished its round (normally or by catching its own
      crash); the watchdog stops judging it. *)

  val is_done : t -> bool

  val last : t -> float * int
  (** Time and sweep index of the most recent beat (arm time and the
      armed sweep if the chain has not beaten since {!arm}). *)

  val beats : t -> int
  (** Total beats over the heartbeat's lifetime (survives {!arm}). *)

  val age : t -> now:float -> float
  (** Seconds since the last beat (or since {!arm} if the chain has
      not beaten yet), clamped to be non-negative. *)
end

type verdict =
  | Done  (** round finished; not subject to the deadline *)
  | Alive of float  (** seconds since the last beat, within deadline *)
  | Stalled of float  (** seconds since the last beat, beyond deadline *)

val pp_verdict : Format.formatter -> verdict -> unit

type t

val create : deadline:float -> Heartbeat.t array -> t
(** [create ~deadline hbs] watches [hbs] with a per-sweep deadline of
    [deadline] seconds. Raises [Invalid_argument] unless [deadline] is
    finite and positive. *)

val deadline : t -> float

val poll : now:float -> t -> verdict array
(** Judge every heartbeat at time [now]: done chains are [Done], the
    rest [Alive age] or [Stalled age] by comparing the age of their
    last beat against the deadline. Every [Stalled] verdict also
    increments the deadline-miss count. *)

val misses : t -> int
(** Cumulative count of [Stalled] verdicts returned by {!poll} over
    this watchdog's lifetime — the metrics hooks export it as the
    deadline-miss counter. ({!stalled} is a read-only probe and does
    not count.) *)

val stalled : now:float -> t -> int list
(** Indices of chains currently [Stalled], ascending. *)
