(** The syntactic rule registry. Rules are conservative Parsetree
    approximations of the determinism / domain-safety / exception-
    hygiene invariants documented in DESIGN.md §10. *)

type ctx = {
  path : string;  (** root-relative, '/'-separated *)
  report : Finding.t -> unit;
}

type rule = {
  code : string;
  title : string;
  doc : string;
  applies : string -> bool;  (** path filter (allowlists live here) *)
  check : ctx -> Parsetree.structure -> unit;
}

val all : rule list
(** D001 nondeterminism, D002 top-level mutable state, E001 catch-all
    handlers, E002 unprotected Mutex.lock, P001 raw printing in lib/,
    O001 Obj escape hatches, F001 structural float-literal equality. *)

val find : string -> rule option

val catalogue : (string * string * string) list
(** (code, title, doc) for every code the tool can emit, including the
    non-Parsetree codes M001 (missing .mli), X001 (parse failure) and
    S001 (malformed suppression directive). *)

val has_prefix : string -> string -> bool
(** [has_prefix p s]: [s] starts with [p]. Shared with the driver. *)
