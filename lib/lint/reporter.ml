(* Text and JSON rendering of a driver outcome. Pure string builders:
   the lint library never touches stdout itself (P001 applies to us
   too). *)

module Jsonx = Qnet_obs.Jsonx

let summary_line (o : Driver.outcome) =
  Printf.sprintf
    "qnet_lint: %d finding(s), %d suppressed, %d baselined, %d files scanned"
    (List.length o.Driver.findings)
    (List.length o.Driver.suppressed)
    (List.length o.Driver.baselined)
    o.Driver.files_scanned

let text ?(verbose = false) (o : Driver.outcome) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n')
    o.Driver.findings;
  if verbose then begin
    List.iter
      (fun (f, reason) ->
        Buffer.add_string buf
          (Printf.sprintf "%s (suppressed: %s)\n" (Finding.to_string f) reason))
      o.Driver.suppressed;
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "%s (baselined)\n" (Finding.to_string f)))
      o.Driver.baselined
  end;
  Buffer.add_string buf (summary_line o);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let finding_fields (f : Finding.t) =
  [
    ("code", Jsonx.Str f.Finding.code);
    ("severity", Jsonx.Str (Finding.severity_label f.Finding.severity));
    ("file", Jsonx.Str f.Finding.file);
    ("line", Jsonx.Num (float_of_int f.Finding.line));
    ("col", Jsonx.Num (float_of_int f.Finding.col));
    ("message", Jsonx.Str f.Finding.message);
  ]

let json (o : Driver.outcome) =
  Jsonx.render
    (Jsonx.Obj
       [
         ( "findings",
           Jsonx.Arr
             (List.map (fun f -> Jsonx.Obj (finding_fields f)) o.Driver.findings)
         );
         ( "suppressed",
           Jsonx.Arr
             (List.map
                (fun (f, reason) ->
                  Jsonx.Obj (finding_fields f @ [ ("reason", Jsonx.Str reason) ]))
                o.Driver.suppressed) );
         ( "baselined",
           Jsonx.Arr
             (List.map
                (fun f -> Jsonx.Obj (finding_fields f))
                o.Driver.baselined) );
         ("files_scanned", Jsonx.Num (float_of_int o.Driver.files_scanned));
         ("ok", Jsonx.Bool (o.Driver.findings = []));
       ])
