(* Text and JSON rendering of a driver outcome. Pure string builders:
   the lint library never touches stdout itself (P001 applies to us
   too). *)

module Jsonx = Qnet_obs.Jsonx

let summary_line (o : Driver.outcome) =
  Printf.sprintf
    "qnet_lint: %d finding(s), %d suppressed, %d baselined, %d files scanned"
    (List.length o.Driver.findings)
    (List.length o.Driver.suppressed)
    (List.length o.Driver.baselined)
    o.Driver.files_scanned

(* The --stats line: one glance at analyzer coverage and cost. *)
let stats_line (o : Driver.outcome) =
  match o.Driver.deep with
  | None -> None
  | Some (r, wall_ms) ->
      let s = r.Concurrency.r_stats in
      let pct =
        if s.Concurrency.st_accesses = 0 then 100.
        else
          100.
          *. float_of_int s.Concurrency.st_guarded
          /. float_of_int s.Concurrency.st_accesses
      in
      Some
        (Printf.sprintf
           "qnet_lint --deep: %d modules indexed (%d concurrency-active), %d \
            mutable bindings, %d state accesses (%.0f%% guarded), %d spawn \
            sites, %d mutexes, %d lock-order edges, %d cycle(s), %.1f ms"
           s.Concurrency.st_units s.Concurrency.st_active
           s.Concurrency.st_entities s.Concurrency.st_accesses pct
           s.Concurrency.st_spawns s.Concurrency.st_mutexes
           s.Concurrency.st_edges
           (List.length r.Concurrency.r_cycles)
           wall_ms)

let text ?(verbose = false) (o : Driver.outcome) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n')
    o.Driver.findings;
  if verbose then begin
    List.iter
      (fun (f, reason) ->
        Buffer.add_string buf
          (Printf.sprintf "%s (suppressed: %s)\n" (Finding.to_string f) reason))
      o.Driver.suppressed;
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "%s (baselined)\n" (Finding.to_string f)))
      o.Driver.baselined
  end;
  (match stats_line o with
  | Some line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (summary_line o);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let finding_fields (f : Finding.t) =
  [
    ("code", Jsonx.Str f.Finding.code);
    ("severity", Jsonx.Str (Finding.severity_label f.Finding.severity));
    ("file", Jsonx.Str f.Finding.file);
    ("line", Jsonx.Num (float_of_int f.Finding.line));
    ("col", Jsonx.Num (float_of_int f.Finding.col));
    ("message", Jsonx.Str f.Finding.message);
  ]

(* The machine-readable half of --deep: stats plus the full lock-order
   graph so external tooling (or a reviewer) can plot acquisition
   order without re-running the analysis. *)
let deep_json (r : Concurrency.report) wall_ms =
  let s = r.Concurrency.r_stats in
  Jsonx.Obj
    [
      ( "stats",
        Jsonx.Obj
          [
            ("modules", Jsonx.Num (float_of_int s.Concurrency.st_units));
            ("active_modules", Jsonx.Num (float_of_int s.Concurrency.st_active));
            ( "mutable_bindings",
              Jsonx.Num (float_of_int s.Concurrency.st_entities) );
            ("state_accesses", Jsonx.Num (float_of_int s.Concurrency.st_accesses));
            ( "guarded_accesses",
              Jsonx.Num (float_of_int s.Concurrency.st_guarded) );
            ("spawn_sites", Jsonx.Num (float_of_int s.Concurrency.st_spawns));
            ("mutexes", Jsonx.Num (float_of_int s.Concurrency.st_mutexes));
            ("wall_ms", Jsonx.Num wall_ms);
          ] );
      ( "lock_graph",
        Jsonx.Obj
          [
            ( "nodes",
              Jsonx.Arr
                (List.map
                   (fun (n : Concurrency.node) ->
                     Jsonx.Obj
                       [
                         ("id", Jsonx.Str n.Concurrency.n_key);
                         ("mutex", Jsonx.Str n.Concurrency.n_display);
                         ("file", Jsonx.Str n.Concurrency.n_file);
                         ("line", Jsonx.Num (float_of_int n.Concurrency.n_line));
                       ])
                   r.Concurrency.r_nodes) );
            ( "edges",
              Jsonx.Arr
                (List.map
                   (fun (e : Concurrency.edge) ->
                     Jsonx.Obj
                       [
                         ("from", Jsonx.Str e.Concurrency.e_from);
                         ("to", Jsonx.Str e.Concurrency.e_to);
                         ("file", Jsonx.Str e.Concurrency.e_file);
                         ("line", Jsonx.Num (float_of_int e.Concurrency.e_line));
                         ("via", Jsonx.Str e.Concurrency.e_via);
                       ])
                   r.Concurrency.r_edges) );
          ] );
      ( "cycles",
        Jsonx.Arr
          (List.map
             (fun members ->
               Jsonx.Arr (List.map (fun m -> Jsonx.Str m) members))
             r.Concurrency.r_cycles) );
    ]

let json (o : Driver.outcome) =
  let deep_fields =
    match o.Driver.deep with
    | None -> []
    | Some (r, wall_ms) -> [ ("deep", deep_json r wall_ms) ]
  in
  Jsonx.render
    (Jsonx.Obj
       ([
         ( "findings",
           Jsonx.Arr
             (List.map (fun f -> Jsonx.Obj (finding_fields f)) o.Driver.findings)
         );
         ( "suppressed",
           Jsonx.Arr
             (List.map
                (fun (f, reason) ->
                  Jsonx.Obj (finding_fields f @ [ ("reason", Jsonx.Str reason) ]))
                o.Driver.suppressed) );
         ( "baselined",
           Jsonx.Arr
             (List.map
                (fun f -> Jsonx.Obj (finding_fields f))
                o.Driver.baselined) );
         ("files_scanned", Jsonx.Num (float_of_int o.Driver.files_scanned));
         ("ok", Jsonx.Bool (o.Driver.findings = []));
       ]
       @ deep_fields))
