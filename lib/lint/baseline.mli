(** The committed-findings baseline: grandfathered violations that do
    not fail the build. Format: one [CODE<TAB>file<TAB>line] per line;
    ['#'] comments and blank lines are ignored. *)

type entry = { code : string; file : string; line : int }

val of_string : string -> (entry list, string) result

val load : string -> (entry list, string) result
(** A missing file is an empty baseline, not an error. *)

val to_string : Finding.t list -> string
(** Render findings as baseline text (sorted, with the header). *)

val save : string -> Finding.t list -> unit

val covers : entry list -> Finding.t -> bool
