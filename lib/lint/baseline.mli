(** The committed-findings baseline: grandfathered violations that do
    not fail the build. Format: one [CODE<TAB>file<TAB>line] per line;
    ['#'] comments and blank lines are ignored. *)

type entry = { code : string; file : string; line : int }

val of_string : string -> (entry list, string) result

val load : string -> (entry list, string) result
(** A missing file is an empty baseline, not an error. *)

val normalize_path : string -> string
(** '\\' to '/', leading "./" segments stripped — so baselines written
    on different machines or from different cwds compare equal. *)

val to_string : Finding.t list -> string
(** Render findings as baseline text: header, then one entry per line
    with normalized paths, sorted by (code, path, line), duplicates
    dropped — deterministic regardless of walk order. *)

val save : string -> Finding.t list -> unit

val covers : entry list -> Finding.t -> bool
(** Path comparison is normalization-insensitive. *)
