(** A single diagnostic produced by a lint rule. *)

type severity = Error | Warning

type t = {
  code : string;  (** rule code, e.g. ["D001"] *)
  severity : severity;
  file : string;  (** path relative to the lint root, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based column, as compilers report *)
  message : string;
}

val severity_label : severity -> string

val v :
  ?severity:severity ->
  code:string ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val of_location :
  ?severity:severity -> code:string -> file:string -> Location.t -> string -> t
(** Build a finding from a compiler-libs location (its start position). *)

val compare_by_pos : t -> t -> int
(** Order by file, then line, then column, then code. *)

val to_string : t -> string
(** [file:line:col: severity CODE: message] — the text-reporter line. *)
