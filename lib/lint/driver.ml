(* Walk the tree, parse every .ml/.mli with the compiler's own parser,
   run the rule registry, then subtract in-source suppressions and the
   committed baseline. The driver is a pure library (no printing, no
   exit): bin/qnet_lint.ml owns the process boundary. *)

type options = {
  root : string;
  dirs : string list;
  baseline_path : string option;
  only : string list option;  (* restrict to these rule codes *)
}

let default_dirs = [ "lib"; "bin" ]
let default_baseline = "lint-baseline.txt"

let default_options root =
  { root; dirs = default_dirs; baseline_path = None; only = None }

type outcome = {
  findings : Finding.t list;  (* unsuppressed, unbaselined: these fail *)
  suppressed : (Finding.t * string) list;  (* finding, reason *)
  baselined : Finding.t list;
  files_scanned : int;
}

let exit_code outcome = if outcome.findings = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)

let hidden name = name = "" || name.[0] = '.' || name.[0] = '_'

let walk root dirs =
  let files = ref [] in
  let rec go rel abs =
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | true ->
        let entries = Sys.readdir abs in
        Array.sort compare entries;
        Array.iter
          (fun name ->
            if not (hidden name) then
              go (if rel = "" then name else rel ^ "/" ^ name)
                (Filename.concat abs name))
          entries
    | false ->
        if
          Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
        then files := rel :: !files
  in
  List.iter
    (fun dir -> if dir <> "" then go dir (Filename.concat root dir))
    dirs;
  List.rev !files

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                   *)

let parse_error_finding ~path exn =
  let from_loc (loc : Location.t) msg =
    Finding.of_location ~code:"X001" ~file:path loc msg
  in
  match exn with
  | Syntaxerr.Error err ->
      from_loc (Syntaxerr.location_of_error err) "syntax error"
  | Lexer.Error (_, loc) -> from_loc loc "lexer error"
  | exn ->
      Finding.v ~code:"X001" ~file:path ~line:1 ~col:0
        ("cannot parse: " ^ Printexc.to_string exn)

let active_rules only =
  match only with
  | None -> Rules.all
  | Some codes -> List.filter (fun r -> List.mem r.Rules.code codes) Rules.all

let wants only code =
  match only with None -> true | Some codes -> List.mem code codes

(* Raw findings for one source text: AST rules, parse failures and
   malformed suppression directives — before suppression/baseline
   filtering. Also returns the scanned directives. *)
let raw_findings ?only ~path source =
  let acc = ref [] in
  let report f = acc := f :: !acc in
  let scan = Suppress.scan source in
  if wants only "S001" then
    List.iter
      (fun (line, what) ->
        report (Finding.v ~code:"S001" ~file:path ~line ~col:0 what))
      scan.Suppress.malformed;
  (if Filename.check_suffix path ".ml" then begin
     let lexbuf = Lexing.from_string source in
     Lexing.set_filename lexbuf path;
     match Parse.implementation lexbuf with
     | str ->
         List.iter
           (fun r ->
             if r.Rules.applies path then
               r.Rules.check { Rules.path; report } str)
           (active_rules only)
     | exception exn ->
         if wants only "X001" then report (parse_error_finding ~path exn)
   end
   else
     let lexbuf = Lexing.from_string source in
     Lexing.set_filename lexbuf path;
     match Parse.interface lexbuf with
     | (_ : Parsetree.signature) -> ()
     | exception exn ->
         if wants only "X001" then report (parse_error_finding ~path exn));
  (List.sort Finding.compare_by_pos !acc, scan.Suppress.directives)

let split_suppressed directives findings =
  List.partition_map
    (fun (f : Finding.t) ->
      match
        Suppress.find directives ~code:f.Finding.code ~line:f.Finding.line
      with
      | Some d -> Right (f, d.Suppress.reason)
      | None -> Left f)
    findings

let lint_source ?only ~path source =
  let findings, directives = raw_findings ?only ~path source in
  split_suppressed directives findings

(* ------------------------------------------------------------------ *)
(* Whole-tree run                                                      *)

let missing_mli_findings ~only files =
  if not (wants only "M001") then []
  else
    let have_mli = Hashtbl.create 64 in
    List.iter
      (fun f ->
        if Filename.check_suffix f ".mli" then
          Hashtbl.replace have_mli (Filename.remove_extension f) ())
      files;
    List.filter_map
      (fun f ->
        if
          Filename.check_suffix f ".ml"
          && Rules.has_prefix "lib/" f
          && not (Hashtbl.mem have_mli (Filename.remove_extension f))
        then
          Some
            (Finding.v ~code:"M001" ~file:f ~line:1 ~col:0
               "library module has no .mli; write one so its contract is \
                explicit")
        else None)
      files

let run options =
  let files = walk options.root options.dirs in
  let baseline_path =
    match options.baseline_path with
    | Some p -> p
    | None -> Filename.concat options.root default_baseline
  in
  let baseline =
    match Baseline.load baseline_path with Ok e -> e | Error _ -> []
  in
  let all_findings = ref [] and all_suppressed = ref [] in
  List.iter
    (fun rel ->
      match read_file (Filename.concat options.root rel) with
      | exception Sys_error _ -> ()
      | source ->
          let active, suppressed =
            lint_source ?only:options.only ~path:rel source
          in
          all_findings := List.rev_append active !all_findings;
          all_suppressed := List.rev_append suppressed !all_suppressed)
    files;
  all_findings :=
    List.rev_append (missing_mli_findings ~only:options.only files)
      !all_findings;
  let baselined, findings =
    List.partition (Baseline.covers baseline) !all_findings
  in
  {
    findings = List.sort Finding.compare_by_pos findings;
    suppressed =
      List.sort
        (fun (a, _) (b, _) -> Finding.compare_by_pos a b)
        !all_suppressed;
    baselined = List.sort Finding.compare_by_pos baselined;
    files_scanned = List.length files;
  }
