(* Walk the tree, parse every .ml/.mli with the compiler's own parser,
   run the rule registry, then subtract in-source suppressions and the
   committed baseline. With [deep] set, each parsed implementation is
   also fed to the per-unit concurrency indexer and the merged index
   runs the cross-module rules C001–C005 (plus the S002 orphan audit
   of racy-ok directives). The driver is a pure library (no printing,
   no exit): bin/qnet_lint.ml owns the process boundary. *)

type options = {
  root : string;
  dirs : string list;
  baseline_path : string option;
  only : string list option;  (* restrict to these rule codes *)
  deep : bool;  (* also run the cross-module concurrency pass *)
}

let default_dirs = [ "lib"; "bin" ]
let default_baseline = "lint-baseline.txt"

let default_options root =
  { root; dirs = default_dirs; baseline_path = None; only = None; deep = false }

type outcome = {
  findings : Finding.t list;  (* unsuppressed, unbaselined: these fail *)
  suppressed : (Finding.t * string) list;  (* finding, reason *)
  baselined : Finding.t list;
  files_scanned : int;
  deep : (Concurrency.report * float) option;  (* report, wall ms *)
}

let exit_code outcome = if outcome.findings = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)

let hidden name = name = "" || name.[0] = '.' || name.[0] = '_'

let walk root dirs =
  let files = ref [] in
  let rec go rel abs =
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | true ->
        let entries = Sys.readdir abs in
        Array.sort compare entries;
        Array.iter
          (fun name ->
            if not (hidden name) then
              go (if rel = "" then name else rel ^ "/" ^ name)
                (Filename.concat abs name))
          entries
    | false ->
        if
          Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
        then files := rel :: !files
  in
  List.iter
    (fun dir -> if dir <> "" then go dir (Filename.concat root dir))
    dirs;
  List.rev !files

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                   *)

let parse_error_finding ~path exn =
  let from_loc (loc : Location.t) msg =
    Finding.of_location ~code:"X001" ~file:path loc msg
  in
  match exn with
  | Syntaxerr.Error err ->
      from_loc (Syntaxerr.location_of_error err) "syntax error"
  | Lexer.Error (_, loc) -> from_loc loc "lexer error"
  | exn ->
      Finding.v ~code:"X001" ~file:path ~line:1 ~col:0
        ("cannot parse: " ^ Printexc.to_string exn)

let active_rules only =
  match only with
  | None -> Rules.all
  | Some codes -> List.filter (fun r -> List.mem r.Rules.code codes) Rules.all

let wants only code =
  match only with None -> true | Some codes -> List.mem code codes

(* One file, parsed once: raw rule findings, the scanned suppression
   directives, and (for implementations) the parse tree so the deep
   pass can index it without re-parsing. *)
type scanned = {
  sc_findings : Finding.t list;  (* raw: before suppression/baseline *)
  sc_directives : Suppress.directive list;
  sc_structure : Parsetree.structure option;
}

let scan_source ?only ~path source =
  let acc = ref [] in
  let report f = acc := f :: !acc in
  let scan = Suppress.scan source in
  if wants only "S001" then
    List.iter
      (fun (line, what) ->
        report (Finding.v ~code:"S001" ~file:path ~line ~col:0 what))
      scan.Suppress.malformed;
  let structure =
    if Filename.check_suffix path ".ml" then begin
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | str ->
          List.iter
            (fun r ->
              if r.Rules.applies path then
                r.Rules.check { Rules.path; report } str)
            (active_rules only);
          Some str
      | exception exn ->
          if wants only "X001" then report (parse_error_finding ~path exn);
          None
    end
    else begin
      (let lexbuf = Lexing.from_string source in
       Lexing.set_filename lexbuf path;
       match Parse.interface lexbuf with
       | (_ : Parsetree.signature) -> ()
       | exception exn ->
           if wants only "X001" then report (parse_error_finding ~path exn));
      None
    end
  in
  {
    sc_findings = List.sort Finding.compare_by_pos !acc;
    sc_directives = scan.Suppress.directives;
    sc_structure = structure;
  }

let raw_findings ?only ~path source =
  let sc = scan_source ?only ~path source in
  (sc.sc_findings, sc.sc_directives)

let split_suppressed directives findings =
  List.partition_map
    (fun (f : Finding.t) ->
      match
        Suppress.find directives ~code:f.Finding.code ~line:f.Finding.line
      with
      | Some d -> Right (f, d.Suppress.reason)
      | None -> Left f)
    findings

let lint_source ?only ~path source =
  let findings, directives = raw_findings ?only ~path source in
  split_suppressed directives findings

(* ------------------------------------------------------------------ *)
(* Deep pass: suppression and the racy-ok orphan audit                 *)

(* A deep finding is silenced by a directive for its code on its site
   line (allow or racy-ok), or by a racy-ok on the declaration line of
   the entity it is about — so one annotated [mutable] field covers
   every access site. Every racy-ok that ends up silencing nothing is
   an orphan: S002. *)
let filter_deep ~only ~directives_of (report : Concurrency.report) =
  let used : (string * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let mark file (d : Suppress.directive) =
    Hashtbl.replace used (file, d.Suppress.at) ()
  in
  let active, suppressed =
    List.partition_map
      (fun (dfi : Concurrency.deep_finding) ->
        let f = dfi.Concurrency.df in
        let site_dirs = directives_of f.Finding.file in
        match
          Suppress.find site_dirs ~code:f.Finding.code ~line:f.Finding.line
        with
        | Some d ->
            mark f.Finding.file d;
            Either.Right (f, d.Suppress.reason)
        | None -> (
            match dfi.Concurrency.df_entity with
            | None -> Either.Left f
            | Some (decl_file, decl_line) -> (
                match
                  List.find_opt
                    (fun (d : Suppress.directive) ->
                      d.Suppress.kind = Suppress.Racy_ok
                      && d.Suppress.code = f.Finding.code
                      && d.Suppress.covers = decl_line)
                    (directives_of decl_file)
                with
                | Some d ->
                    mark decl_file d;
                    Either.Right (f, d.Suppress.reason)
                | None -> Either.Left f)))
      (List.filter
         (fun (dfi : Concurrency.deep_finding) ->
           wants only dfi.Concurrency.df.Finding.code)
         report.Concurrency.r_findings)
  in
  (active, suppressed, used)

let orphan_racy_ok ~only ~files ~directives_of ~used =
  if not (wants only "S002") then []
  else
    List.concat_map
      (fun file ->
        List.filter_map
          (fun (d : Suppress.directive) ->
            if
              d.Suppress.kind = Suppress.Racy_ok
              && not (Hashtbl.mem used (file, d.Suppress.at))
            then
              Some
                (Finding.v ~code:"S002" ~file ~line:d.Suppress.at ~col:0
                   (Printf.sprintf
                      "orphan racy-ok %s (%s): no %s finding is suppressed \
                       here; the hazard it documents no longer exists — \
                       remove the annotation or re-audit"
                      d.Suppress.code d.Suppress.reason d.Suppress.code))
            else None)
          (directives_of file))
      files

(* ------------------------------------------------------------------ *)
(* Whole-tree run                                                      *)

let missing_mli_findings ~only files =
  if not (wants only "M001") then []
  else
    let have_mli = Hashtbl.create 64 in
    List.iter
      (fun f ->
        if Filename.check_suffix f ".mli" then
          Hashtbl.replace have_mli (Filename.remove_extension f) ())
      files;
    List.filter_map
      (fun f ->
        if
          Filename.check_suffix f ".ml"
          && Rules.has_prefix "lib/" f
          && not (Hashtbl.mem have_mli (Filename.remove_extension f))
        then
          Some
            (Finding.v ~code:"M001" ~file:f ~line:1 ~col:0
               "library module has no .mli; write one so its contract is \
                explicit")
        else None)
      files

let run options =
  let files = walk options.root options.dirs in
  let baseline_path =
    match options.baseline_path with
    | Some p -> p
    | None -> Filename.concat options.root default_baseline
  in
  let baseline =
    match Baseline.load baseline_path with Ok e -> e | Error _ -> []
  in
  let all_findings = ref [] and all_suppressed = ref [] in
  let dir_tbl : (string, Suppress.directive list) Hashtbl.t =
    Hashtbl.create 64
  in
  let structures = ref [] in
  List.iter
    (fun rel ->
      match read_file (Filename.concat options.root rel) with
      | exception Sys_error _ -> ()
      | source ->
          let sc = scan_source ?only:options.only ~path:rel source in
          Hashtbl.replace dir_tbl rel sc.sc_directives;
          (match sc.sc_structure with
          | Some str when options.deep -> structures := (rel, str) :: !structures
          | _ -> ());
          let active, suppressed =
            split_suppressed sc.sc_directives sc.sc_findings
          in
          all_findings := List.rev_append active !all_findings;
          all_suppressed := List.rev_append suppressed !all_suppressed)
    files;
  all_findings :=
    List.rev_append (missing_mli_findings ~only:options.only files)
      !all_findings;
  let directives_of file =
    Option.value ~default:[] (Hashtbl.find_opt dir_tbl file)
  in
  let deep =
    if not options.deep then None
    else begin
      let t0 = Qnet_obs.Clock.now () in
      let units =
        List.rev_map
          (fun (rel, str) -> Index.of_structure ~path:rel str)
          !structures
      in
      let report = Concurrency.analyze units in
      let active, suppressed, used =
        filter_deep ~only:options.only ~directives_of report
      in
      let orphans =
        orphan_racy_ok ~only:options.only ~files ~directives_of ~used
      in
      let orphan_active, orphan_suppressed =
        List.partition_map
          (fun (f : Finding.t) ->
            match
              Suppress.find (directives_of f.Finding.file) ~code:f.Finding.code
                ~line:f.Finding.line
            with
            | Some d -> Either.Right (f, d.Suppress.reason)
            | None -> Either.Left f)
          orphans
      in
      all_findings :=
        List.rev_append active (List.rev_append orphan_active !all_findings);
      all_suppressed :=
        List.rev_append suppressed
          (List.rev_append orphan_suppressed !all_suppressed);
      Some (report, (Qnet_obs.Clock.now () -. t0) *. 1000.)
    end
  in
  let baselined, findings =
    List.partition (Baseline.covers baseline) !all_findings
  in
  {
    findings = List.sort Finding.compare_by_pos findings;
    suppressed =
      List.sort
        (fun (a, _) (b, _) -> Finding.compare_by_pos a b)
        !all_suppressed;
    baselined = List.sort Finding.compare_by_pos baselined;
    files_scanned = List.length files;
    deep;
  }
