type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let v ?(severity = Error) ~code ~file ~line ~col message =
  { code; severity; file; line; col; message }

let of_location ?severity ~code ~file (loc : Location.t) message =
  let p = loc.Location.loc_start in
  v ?severity ~code ~file ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

let compare_by_pos a b =
  match compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> (
          match compare a.col b.col with 0 -> compare a.code b.code | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d: %s %s: %s" f.file f.line f.col
    (severity_label f.severity) f.code f.message
