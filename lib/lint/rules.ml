(* The rule registry. Every rule is a purely syntactic check over the
   Parsetree: we deliberately stop before the typer, so rules are
   conservative approximations of the invariants in DESIGN.md §10 —
   cheap to run on every build, precise enough that each firing is
   either a real hazard or worth an explicit, reasoned suppression. *)

open Parsetree
module I = Ast_iterator

type ctx = { path : string; report : Finding.t -> unit }

type rule = {
  code : string;
  title : string;
  doc : string;
  applies : string -> bool;
  check : ctx -> Parsetree.structure -> unit;
}

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let in_lib path = has_prefix "lib/" path
let in_experiments path = has_prefix "lib/experiments/" path
let in_analytic path = has_prefix "lib/analytic/" path

(* Longident.flatten raises on functor applications; we never need
   those, so flatten defensively. *)
let ident_name lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> acc
  in
  String.concat "." (go [] lid)

let report ctx ~code ~loc message =
  ctx.report (Finding.of_location ~code ~file:ctx.path loc message)

(* Visit every expression of a structure, including those nested in
   submodules, classes and functors. *)
let iter_exprs f str =
  let it =
    {
      I.default_iterator with
      expr =
        (fun self e ->
          f e;
          I.default_iterator.expr self e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* D001: nondeterminism sources.                                       *)

let d001_banned name =
  name = "Unix.gettimeofday" || name = "Unix.time" || name = "Random"
  || has_prefix "Random." name

let d001 =
  {
    code = "D001";
    title = "nondeterminism source";
    doc =
      "stdlib Random or wall-clock reads (Unix.gettimeofday / Unix.time) \
       outside lib/obs/clock.ml. Samplers must draw all randomness from \
       Qnet_prob.Rng and all time from Qnet_obs.Clock, or checkpoint/resume \
       and multi-chain replay stop being bit-identical.";
    applies = (fun path -> path <> "lib/obs/clock.ml");
    check =
      (fun ctx str ->
        let it =
          {
            I.default_iterator with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_ident { txt; loc } when d001_banned (ident_name txt) ->
                    report ctx ~code:"D001" ~loc
                      (Printf.sprintf
                         "%s is a nondeterminism source; use Qnet_prob.Rng \
                          for randomness and Qnet_obs.Clock.now for time"
                         (ident_name txt))
                | _ -> ());
                I.default_iterator.expr self e);
            module_expr =
              (fun self m ->
                (match m.pmod_desc with
                | Pmod_ident { txt; loc }
                  when ident_name txt = "Random" ->
                    report ctx ~code:"D001" ~loc
                      "aliasing the stdlib Random module; use Qnet_prob.Rng"
                | _ -> ());
                I.default_iterator.module_expr self m);
          }
        in
        it.structure it str);
  }

(* ------------------------------------------------------------------ *)
(* D002: top-level mutable state in multi-domain libraries.            *)

let d002_ctors =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Weak.create" ]

(* Scan a top-level binding's right-hand side without descending into
   function bodies or lazy thunks: state created per call or on forced
   demand is not shared at module init. *)
let d002_scan ctx e0 =
  let it =
    {
      I.default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ | Pexp_object _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
            when List.mem (ident_name txt) d002_ctors ->
              report ctx ~code:"D002" ~loc
                (Printf.sprintf
                   "top-level %s is mutable state shared across domains; use \
                    Atomic, guard it with a mutex, or suppress with a reason"
                   (ident_name txt));
              I.default_iterator.expr self e
          | _ -> I.default_iterator.expr self e);
    }
  in
  it.expr it e0

let d002 =
  {
    code = "D002";
    title = "top-level mutable state";
    doc =
      "a module-level ref / Hashtbl / Queue / Stack / Buffer in a library \
       linked into the multi-domain Supervisor. Unsynchronised shared state \
       races under Domain.spawn; use Atomic, a mutex-guarded structure, or \
       Domain.DLS.";
    applies =
      (fun path ->
        in_lib path && (not (in_experiments path)) && not (in_analytic path));
    check =
      (fun ctx str ->
        let rec items its = List.iter item its
        and item si =
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter (fun vb -> d002_scan ctx vb.pvb_expr) vbs
          | Pstr_module { pmb_expr; _ } -> module_expr pmb_expr
          | Pstr_recmodule mbs ->
              List.iter (fun mb -> module_expr mb.pmb_expr) mbs
          | Pstr_include { pincl_mod; _ } -> module_expr pincl_mod
          | _ -> ()
        and module_expr m =
          match m.pmod_desc with
          | Pmod_structure s -> items s
          | Pmod_functor (_, body) -> module_expr body
          | Pmod_constraint (m, _) -> module_expr m
          | _ -> ()
        in
        items str);
  }

(* ------------------------------------------------------------------ *)
(* E001: catch-all exception handlers that swallow everything.         *)

let rec catch_all_binding p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var { txt; _ } -> Some (Some txt)
  | Ppat_alias (inner, { txt; _ }) -> (
      match catch_all_binding inner with
      | Some _ -> Some (Some txt)
      | None -> None)
  | Ppat_constraint (inner, _) -> catch_all_binding inner
  | _ -> None

let reraise_idents =
  [ "raise"; "raise_notrace"; "reraise"; "Printexc.raise_with_backtrace" ]

let handler_reraises_or_inspects bound body =
  let found = ref false in
  let check e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        let n = ident_name txt in
        if List.mem n reraise_idents then found := true;
        (match bound with Some v when n = v -> found := true | _ -> ())
    | _ -> ()
  in
  let it =
    {
      I.default_iterator with
      expr =
        (fun self e ->
          check e;
          I.default_iterator.expr self e);
    }
  in
  it.expr it body;
  !found

let e001 =
  {
    code = "E001";
    title = "catch-all exception handler";
    doc =
      "a [try ... with _ ->] (or an unused catch-all variable) that neither \
       re-raises nor inspects the exception. It silently swallows \
       Out_of_memory, Stack_overflow and assertion failures; match the \
       specific exceptions the expression can raise.";
    applies = (fun _ -> true);
    check =
      (fun ctx str ->
        iter_exprs
          (fun e ->
            match e.pexp_desc with
            | Pexp_try (_, cases) ->
                List.iter
                  (fun c ->
                    match catch_all_binding c.pc_lhs with
                    | Some bound
                      when not (handler_reraises_or_inspects bound c.pc_rhs)
                      ->
                        report ctx ~code:"E001" ~loc:c.pc_lhs.ppat_loc
                          "catch-all handler swallows every exception \
                           (including Out_of_memory / Stack_overflow); match \
                           the specific exceptions or re-raise"
                    | _ -> ())
                  cases
            | _ -> ())
          str);
  }

(* ------------------------------------------------------------------ *)
(* E002: unbalanced mutex discipline.                                  *)

let e002 =
  {
    code = "E002";
    title = "unprotected Mutex.lock";
    doc =
      "a function that calls Mutex.lock without a matching Mutex.unlock in \
       the same top-level binding and without Fun.protect / Mutex.protect. \
       An exception between lock and unlock deadlocks every other domain.";
    applies = (fun _ -> true);
    check =
      (fun ctx str ->
        let check_binding vb =
          let locks = ref [] and unlocks = ref 0 and guarded = ref false in
          iter_exprs
            (fun e ->
              match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                  match ident_name txt with
                  | "Mutex.lock" -> locks := loc :: !locks
                  | "Mutex.unlock" -> incr unlocks
                  | "Fun.protect" | "Mutex.protect" -> guarded := true
                  | _ -> ())
              | _ -> ())
            [
              {
                pstr_desc = Pstr_value (Asttypes.Nonrecursive, [ vb ]);
                pstr_loc = vb.pvb_loc;
              };
            ];
          let locks = List.rev !locks in
          if
            (not !guarded)
            && List.length locks > !unlocks
            && locks <> []
          then
            report ctx ~code:"E002" ~loc:(List.hd locks)
              "Mutex.lock without a matching unlock in this binding; wrap \
               the critical section in Fun.protect (or Mutex.protect)"
        in
        let it =
          {
            I.default_iterator with
            structure_item =
              (fun self si ->
                (match si.pstr_desc with
                | Pstr_value (_, vbs) -> List.iter check_binding vbs
                | _ -> ());
                I.default_iterator.structure_item self si);
          }
        in
        it.structure it str);
  }

(* ------------------------------------------------------------------ *)
(* P001: raw stdout/stderr printing inside libraries.                  *)

let p001_banned =
  [ "Printf.printf"; "Printf.eprintf"; "print_endline"; "print_string";
    "print_newline"; "prerr_endline"; "prerr_string"; "prerr_newline";
    "Format.printf"; "Format.eprintf" ]

let p001 =
  {
    code = "P001";
    title = "raw printing in library code";
    doc =
      "Printf.printf / print_endline / prerr_endline (and friends) inside \
       lib/. Library code must report through Logs or the telemetry \
       registry so the CLI owns stdout; lib/experiments is allowlisted \
       (its tables are its output).";
    applies = (fun path -> in_lib path && not (in_experiments path));
    check =
      (fun ctx str ->
        iter_exprs
          (fun e ->
            match e.pexp_desc with
            | Pexp_ident { txt; loc } when List.mem (ident_name txt) p001_banned
              ->
                report ctx ~code:"P001" ~loc
                  (Printf.sprintf
                     "%s writes to the process's std channels from library \
                      code; use Logs or the telemetry registry"
                     (ident_name txt))
            | _ -> ())
          str);
  }

(* ------------------------------------------------------------------ *)
(* O001: Obj escape hatches.                                           *)

let o001 =
  {
    code = "O001";
    title = "Obj escape hatch";
    doc =
      "Obj.magic / Obj.repr (any Obj.* use). Undefined behaviour under the \
       OCaml 5 runtime's flat-float and mixed-block rules; there is no \
       sanctioned use in this codebase.";
    applies = (fun _ -> true);
    check =
      (fun ctx str ->
        iter_exprs
          (fun e ->
            match e.pexp_desc with
            | Pexp_ident { txt; loc }
              when has_prefix "Obj." (ident_name txt) ->
                report ctx ~code:"O001" ~loc
                  (ident_name txt ^ " defeats the type system; remove it")
            | _ -> ())
          str);
  }

(* ------------------------------------------------------------------ *)
(* F001: structural equality on float literals.                        *)

let f001_float_ish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "-."); _ }; _ },
        [ (_, { pexp_desc = Pexp_constant (Pconst_float _); _ }) ] ) ->
      true
  | Pexp_ident { txt; _ } -> (
      match ident_name txt with
      | "nan" | "Float.nan" | "infinity" | "neg_infinity" -> true
      | _ -> false)
  | _ -> false

let f001 =
  {
    code = "F001";
    title = "structural equality on a float literal";
    doc =
      "polymorphic = / <> with a float literal (or nan / infinity) operand. \
       Polymorphic compare on floats is slow, [x = nan] is always false, \
       and the intent is invisible; use Float.equal or an explicit \
       tolerance.";
    applies = (fun _ -> true);
    check =
      (fun ctx str ->
        iter_exprs
          (fun e ->
            match e.pexp_desc with
            | Pexp_apply
                ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc }; _ },
                  [ (_, a); (_, b) ] )
              when f001_float_ish a || f001_float_ish b ->
                report ctx ~code:"F001" ~loc
                  (Printf.sprintf
                     "structural %s on a float literal; use Float.equal (or \
                      an explicit tolerance)"
                     op)
            | _ -> ())
          str);
  }

(* ------------------------------------------------------------------ *)

let all = [ d001; d002; e001; e002; p001; o001; f001 ]

let find code = List.find_opt (fun r -> r.code = code) all

(* Codes produced outside the Parsetree rules, listed here so
   [--list-rules] documents the full catalogue. *)
let extra_catalogue =
  [
    ( "M001",
      "missing interface",
      "a lib/ module without a sibling .mli; every library module must \
       state its contract" );
    ( "X001",
      "unparseable source",
      "the file does not parse with the OCaml 5.1 grammar; nothing else \
       can be checked" );
    ( "S001",
      "malformed suppression",
      "a (* qnet-lint: ... *) directive with an unknown verb, a missing \
       rule code, or no reason" );
    ( "S002",
      "orphan racy-ok",
      "a (* qnet-lint: racy-ok ... *) annotation that suppresses no \
       --deep finding; the documented hazard no longer exists, so the \
       annotation is stale (deep runs only)" );
    ( "C001",
      "unguarded spawned-closure state",
      "cross-module (--deep): mutable state with no lock discipline \
       anywhere in the program is reachable from a Domain.spawn or \
       Thread.create closure; guard it, make it Atomic, or declare the \
       race with racy-ok C001 on the declaration" );
    ( "C002",
      "lock-order cycle",
      "cross-module (--deep): the mutex acquisition graph — built from \
       Mutex.lock/protect nesting and from calls made while holding a \
       mutex into functions that acquire more — contains a cycle: a \
       potential deadlock; pick one global acquisition order" );
    ( "C003",
      "guard inconsistency",
      "cross-module (--deep): the same mutable binding is accessed under \
       a mutex at some sites but bare from a spawn-reachable context at \
       others; either every concurrent access takes the lock or none \
       should" );
    ( "C004",
      "blocking call under mutex",
      "cross-module (--deep): a blocking primitive (Unix.*, channel I/O, \
       Thread.delay/join) runs — directly or through calls — while a \
       mutex is held, stalling every other thread that needs it" );
    ( "C005",
      "split atomic read-modify-write",
      "cross-module (--deep): Atomic.get and Atomic.set of the same \
       target in one function with no compare_and_set/fetch_and_add is \
       a lost-update window under concurrent writers" );
  ]

let catalogue =
  List.map (fun r -> (r.code, r.title, r.doc)) all @ extra_catalogue
