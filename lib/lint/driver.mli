(** Orchestration: file discovery, parsing, rule dispatch, and
    suppression / baseline filtering. Pure — printing and process exit
    belong to bin/qnet_lint.ml. *)

type options = {
  root : string;  (** repo root; [dirs] are resolved against it *)
  dirs : string list;  (** default [["lib"; "bin"]] *)
  baseline_path : string option;
      (** default [root/lint-baseline.txt]; missing file = empty *)
  only : string list option;  (** restrict to these rule codes *)
  deep : bool;
      (** also index every implementation and run the cross-module
          concurrency rules C001–C005 plus the S002 orphan audit *)
}

val default_dirs : string list
val default_baseline : string
val default_options : string -> options

type outcome = {
  findings : Finding.t list;  (** unsuppressed, unbaselined — these fail *)
  suppressed : (Finding.t * string) list;  (** finding, suppression reason *)
  baselined : Finding.t list;
  files_scanned : int;
  deep : (Concurrency.report * float) option;
      (** with [options.deep]: the raw concurrency report (lock graph,
          cycles, stats; its findings are pre-suppression) and the
          analysis wall time in milliseconds *)
}

val exit_code : outcome -> int
(** 0 iff [findings] is empty. *)

val lint_source :
  ?only:string list ->
  path:string ->
  string ->
  Finding.t list * (Finding.t * string) list
(** Lint one source text as if it lived at [path] (relative,
    '/'-separated — rules use it for their allowlists). Returns
    (active findings, suppressed findings with reasons). The file-set
    rule M001 does not apply here. *)

val walk : string -> string list -> string list
(** [walk root dirs]: every .ml/.mli under [root]/[dirs], as sorted
    root-relative paths; directories starting with '.' or '_' are
    skipped. *)

val run : options -> outcome
