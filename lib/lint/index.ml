(* Per-compilation-unit concurrency index.

   One [unit_info] summarizes everything the cross-module pass in
   Concurrency needs to know about a .ml file: which top-level mutable
   state, mutexes and atomics it declares; which state every function
   touches and under which locks; which mutexes are acquired while
   which others are held; which blocking primitives run inside
   critical sections; which closures are handed to Domain.spawn /
   Thread.create; and the per-function Atomic.get/set op mix.

   Everything here is syntactic — no typing pass — so references are
   recorded as unresolved [sref]s and resolved against the merged
   index by Concurrency. The walk tracks three pieces of context:

   - the lock set: a linear, source-order approximation of which
     mutexes are held ([Mutex.lock]/[unlock] sequencing,
     [Mutex.protect] and the [Mutex.lock m; Fun.protect
     ~finally:(fun () -> Mutex.unlock m)] idiom are all understood);
   - the local scope: let/fun/match-bound names shadow unit-level
     bindings, so a local [cache] never resolves to a global one;
   - spawn position: the body of a closure passed to [Domain.spawn] or
     [Thread.create] is summarized as its own pseudo-function entered
     with an empty lock set. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Summary types                                                       *)

type entity_kind =
  | Mutable_binding of string  (* constructor, e.g. "ref", "Hashtbl.create" *)
  | Mutable_field of string  (* declaring record type name *)

type entity = {
  e_name : string;  (* binding name (submodule-qualified) or field name *)
  e_kind : entity_kind;
  e_line : int;
  e_col : int;
}

type mutex_decl = {
  m_name : string;  (* binding or field name *)
  m_field : bool;
  m_line : int;
}

type atomic_decl = { at_name : string; at_field : bool; at_line : int }

(* An unresolved reference to a value or a field. A field reference
   deliberately drops its receiver: without types the field name is
   the only handle, and Concurrency resolves it against declared
   mutable / mutex / atomic fields. *)
type sref =
  | Rident of string list * string  (* module path components, name *)
  | Rfield of string list * string  (* module qualifier (if any), field *)

type access = {
  a_ref : sref;
  a_write : bool;
  a_held : sref list;  (* innermost first *)
  a_line : int;
  a_col : int;
}

type lock_event = {
  l_outer : sref list;  (* held when [l_inner] was acquired *)
  l_inner : sref;
  l_line : int;
}

type blocking_call = {
  b_name : string;
  b_held : sref list;  (* nonempty by construction *)
  b_line : int;
}

type call = { c_ref : sref; c_held : sref list; c_line : int }

type atomic_op = {
  o_path : string;  (* rendered target, e.g. "t.stopping" *)
  o_get : int option;  (* line of first Atomic.get *)
  o_set : int option;  (* line of first Atomic.set *)
  o_rmw : bool;  (* compare_and_set / fetch_and_add / exchange / incr *)
}

type fn = {
  f_name : string;  (* submodule-qualified binding name *)
  f_line : int;
  f_init : bool;  (* RHS is not a function: runs once at module init *)
  f_spawn : (string * int) option;  (* Some (kind, line) for spawn bodies *)
  mutable f_accesses : access list;
  mutable f_calls : call list;
  mutable f_locks : lock_event list;
  mutable f_blocking : blocking_call list;
  mutable f_atomics : (string, atomic_op) Hashtbl.t;
  mutable f_spawn_entries : (string * int * sref) list;
      (* Domain.spawn f / Thread.create f where f is a named function *)
}

type unit_info = {
  u_path : string;  (* root-relative source path *)
  u_modname : string;  (* "metrics.ml" -> "Metrics" *)
  u_dir : string;  (* "lib/obs" *)
  u_aliases : (string * string list) list;  (* module M = A.B *)
  u_fields : string list;  (* every record field the unit declares,
                              mutable or not: a field reference inside
                              the unit never resolves elsewhere *)
  u_entities : entity list;
  u_mutexes : mutex_decl list;
  u_atomics : atomic_decl list;
  u_fns : fn list;  (* includes one pseudo-fn per spawn closure *)
  u_active : bool;  (* mentions domains, threads, mutexes or atomics *)
}

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)

let lid_components lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> acc
  in
  go [] lid

let sref_to_string = function
  | Rident (path, n) -> String.concat "." (path @ [ n ])
  | Rfield (path, f) -> String.concat "." (path @ [ "." ^ f ])

(* Extract a state/mutex reference from an expression, if it has a
   simple enough shape. *)
let rec sref_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (lid_components txt) with
      | n :: rpath -> Some (Rident (List.rev rpath, n))
      | [] -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (lid_components txt) with
      | f :: rpath -> Some (Rfield (List.rev rpath, f))
      | [] -> None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> sref_of e
  | _ -> None

(* Rendered receiver path for C005 keying: "t", "t.stopping", ... *)
let rec path_string e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (lid_components txt))
  | Pexp_field (r, { txt; _ }) -> (
      match (path_string r, List.rev (lid_components txt)) with
      | Some rs, f :: _ -> Some (rs ^ "." ^ f)
      | _ -> None)
  | Pexp_constraint (e, _) -> path_string e
  | _ -> None

let line_of e = e.pexp_loc.Location.loc_start.Lexing.pos_lnum
let col_of e =
  let p = e.pexp_loc.Location.loc_start in
  p.Lexing.pos_cnum - p.Lexing.pos_bol

(* ------------------------------------------------------------------ *)
(* Catalogues                                                          *)

let mutable_ctors =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Weak.create"; "Array.make"; "Array.create_float"; "Array.init";
    "Bytes.create"; "Bytes.make" ]

(* Container operations whose named argument (by index) mutates it. *)
let mutators =
  [ ("Hashtbl.add", 0); ("Hashtbl.replace", 0); ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0); ("Hashtbl.clear", 0); ("Queue.add", 1);
    ("Queue.push", 1); ("Queue.pop", 0); ("Queue.take", 0); ("Queue.clear", 0);
    ("Queue.transfer", 0); ("Stack.push", 1); ("Stack.pop", 0);
    ("Stack.clear", 0); ("Buffer.clear", 0); ("Buffer.reset", 0);
    ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Array.blit", 2); ("Bytes.set", 0); ("Bytes.fill", 0); ("Bytes.blit", 2) ]

let buffer_add_prefix = "Buffer.add_"

(* Primitives that can park the calling thread (or hit the disk /
   network) — the C004 catalogue. Condition.wait is deliberately
   absent: it releases the mutex, which is the sanctioned pattern. *)
let blocking_calls =
  [ "Thread.delay"; "Thread.join"; "Unix.sleep"; "Unix.sleepf"; "Unix.select";
    "Unix.accept"; "Unix.connect"; "Unix.read"; "Unix.write"; "Unix.recv";
    "Unix.send"; "Unix.waitpid"; "Unix.system"; "Domain.join"; "input_line";
    "input"; "really_input"; "really_input_string"; "input_char"; "input_byte";
    "output_string"; "output_bytes"; "output_char"; "output"; "flush";
    "Printf.fprintf"; "Format.fprintf"; "open_in"; "open_in_bin"; "open_out";
    "open_out_bin"; "open_out_gen"; "close_in"; "close_out"; "read_line" ]

(* ------------------------------------------------------------------ *)
(* Scope                                                               *)

module S = Set.Make (String)

let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> S.add txt acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars (S.add txt acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pat_vars acc p
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pat_vars acc p) acc fields
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p)
  | Ppat_exception p ->
      pat_vars acc p
  | _ -> acc

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

type wctx = {
  fn : fn;
  spawns : fn list ref;  (* freshly minted spawn pseudo-fns, in order *)
  spawn_counter : int ref;
}

let fresh_fn ~name ~line ~init ~spawn =
  {
    f_name = name;
    f_line = line;
    f_init = init;
    f_spawn = spawn;
    f_accesses = [];
    f_calls = [];
    f_locks = [];
    f_blocking = [];
    f_atomics = Hashtbl.create 4;
    f_spawn_entries = [];
  }

let record_access ctx ~scope ~held ~write e =
  match sref_of e with
  | None -> ()
  | Some (Rident ([], n)) when S.mem n scope -> ()  (* shadowed local *)
  | Some r ->
      ctx.fn.f_accesses <-
        { a_ref = r; a_write = write; a_held = held; a_line = line_of e;
          a_col = col_of e }
        :: ctx.fn.f_accesses

let record_atomic ctx e ~op =
  match path_string e with
  | None -> ()
  | Some p ->
      let line = line_of e in
      let cur =
        match Hashtbl.find_opt ctx.fn.f_atomics p with
        | Some o -> o
        | None -> { o_path = p; o_get = None; o_set = None; o_rmw = false }
      in
      let cur =
        match op with
        | `Get -> if cur.o_get = None then { cur with o_get = Some line } else cur
        | `Set -> if cur.o_set = None then { cur with o_set = Some line } else cur
        | `Rmw -> { cur with o_rmw = true }
      in
      Hashtbl.replace ctx.fn.f_atomics p cur

let remove_first x xs =
  let rec go = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: go rest
  in
  go xs

(* walk returns the lock set after the expression. *)
let rec walk ctx scope held e =
  let w = walk ctx scope in
  match e.pexp_desc with
  | Pexp_ident _ ->
      record_access ctx ~scope ~held ~write:false e;
      held
  | Pexp_field (recv, _) ->
      record_access ctx ~scope ~held ~write:false e;
      ignore (w held recv);
      held
  | Pexp_setfield (recv, { txt; _ }, v) ->
      (match List.rev (lid_components txt) with
      | f :: rpath ->
          ctx.fn.f_accesses <-
            { a_ref = Rfield (List.rev rpath, f); a_write = true; a_held = held;
              a_line = line_of e; a_col = col_of e }
            :: ctx.fn.f_accesses
      | [] -> ());
      ignore (w held recv);
      ignore (w held v);
      held
  | Pexp_sequence (a, b) ->
      let held = w held a in
      w held b
  | Pexp_let (rf, vbs, body) ->
      let scope' =
        List.fold_left (fun acc vb -> pat_vars acc vb.pvb_pat) scope vbs
      in
      let rhs_scope = if rf = Asttypes.Recursive then scope' else scope in
      let held =
        List.fold_left (fun h vb -> walk ctx rhs_scope h vb.pvb_expr) held vbs
      in
      walk ctx scope' held body
  | Pexp_fun (_, default, pat, body) ->
      (match default with Some d -> ignore (w held d) | None -> ());
      (* callbacks usually run where they are built: keep the ambient
         lock set (spawned closures are special-cased at the apply) *)
      ignore (walk ctx (pat_vars scope pat) held body);
      held
  | Pexp_function cases ->
      walk_cases ctx scope held cases;
      held
  | Pexp_apply (f, args) -> walk_apply ctx scope held e f args
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let held = w held scrut in
      walk_cases ctx scope held cases;
      held
  | Pexp_ifthenelse (c, a, b) ->
      let held = w held c in
      ignore (w held a);
      (match b with Some b -> ignore (w held b) | None -> ());
      held
  | Pexp_while (c, body) ->
      ignore (w held c);
      ignore (w held body);
      held
  | Pexp_for (pat, lo, hi, _, body) ->
      ignore (w held lo);
      ignore (w held hi);
      ignore (walk ctx (pat_vars scope pat) held body);
      held
  | Pexp_tuple es | Pexp_array es ->
      List.iter (fun e -> ignore (w held e)) es;
      held
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      (match arg with Some a -> ignore (w held a) | None -> ());
      held
  | Pexp_record (fields, base) ->
      List.iter (fun (_, v) -> ignore (w held v)) fields;
      (match base with Some b -> ignore (w held b) | None -> ());
      held
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_lazy e
  | Pexp_assert e | Pexp_newtype (_, e) | Pexp_open (_, e)
  | Pexp_letexception (_, e) | Pexp_poly (e, _) ->
      w held e
  | Pexp_letmodule (_, _, body) -> w held body
  | Pexp_letop { let_; ands; body; _ } ->
      ignore (w held let_.pbop_exp);
      List.iter (fun a -> ignore (w held a.pbop_exp)) ands;
      let scope' =
        List.fold_left
          (fun acc b -> pat_vars acc b.pbop_pat)
          (pat_vars scope let_.pbop_pat) ands
      in
      ignore (walk ctx scope' held body);
      held
  | Pexp_send (e, _) -> w held e
  | _ -> held

and walk_cases ctx scope held cases =
  List.iter
    (fun c ->
      let scope' = pat_vars scope c.pc_lhs in
      (match c.pc_guard with
      | Some g -> ignore (walk ctx scope' held g)
      | None -> ());
      ignore (walk ctx scope' held c.pc_rhs))
    cases

and walk_apply ctx scope held app f args =
  let fname =
    match f.pexp_desc with
    | Pexp_ident { txt; _ } -> String.concat "." (lid_components txt)
    | _ -> ""
  in
  let plain = List.map snd args in
  let walk_args held = List.iter (fun a -> ignore (walk ctx scope held a)) plain in
  match (fname, plain) with
  | "Mutex.lock", [ m ] -> (
      match sref_of m with
      | Some mr ->
          ctx.fn.f_locks <-
            { l_outer = held; l_inner = mr; l_line = line_of app }
            :: ctx.fn.f_locks;
          mr :: held
      | None -> held)
  | "Mutex.unlock", [ m ] -> (
      match sref_of m with
      | Some mr -> remove_first mr held
      | None -> held)
  | ("Mutex.protect" | "Mutex.with_lock"), m :: rest -> (
      match sref_of m with
      | Some mr ->
          ctx.fn.f_locks <-
            { l_outer = held; l_inner = mr; l_line = line_of app }
            :: ctx.fn.f_locks;
          let inner = mr :: held in
          List.iter
            (fun arg ->
              match arg.pexp_desc with
              | Pexp_fun (_, _, pat, body) ->
                  ignore (walk ctx (pat_vars scope pat) inner body)
              | _ -> (
                  ignore (walk ctx scope inner arg);
                  (* a named thunk runs under the lock *)
                  match sref_of arg with
                  | Some (Rident ([], n)) when S.mem n scope -> ()
                  | Some r ->
                      ctx.fn.f_calls <-
                        { c_ref = r; c_held = inner; c_line = line_of arg }
                        :: ctx.fn.f_calls
                  | None -> ()))
            rest;
          held
      | None ->
          walk_args held;
          held)
  | "Fun.protect", _ ->
      (* main thunk first (under the current lock set), then finally —
         so [Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock
         m) body] leaves the lock set balanced. *)
      let finally, body =
        List.partition
          (fun (lbl, _) ->
            match lbl with
            | Asttypes.Labelled "finally" | Asttypes.Optional "finally" -> true
            | _ -> false)
          args
      in
      List.iter (fun (_, a) -> ignore (walk ctx scope held a)) body;
      List.fold_left (fun h (_, a) -> walk ctx scope h a) held finally
  | ("Domain.spawn" | "Thread.create"), fn_arg :: rest ->
      let kind = if fname = "Domain.spawn" then "domain" else "thread" in
      (match fn_arg.pexp_desc with
      | Pexp_fun (_, _, pat, body) ->
          incr ctx.spawn_counter;
          let sfn =
            fresh_fn
              ~name:
                (Printf.sprintf "%s.<spawn#%d>" ctx.fn.f_name !(ctx.spawn_counter))
              ~line:(line_of fn_arg) ~init:false
              ~spawn:(Some (kind, line_of fn_arg))
          in
          let sctx = { ctx with fn = sfn } in
          ignore (walk sctx (pat_vars scope pat) [] body);
          ctx.spawns := sfn :: !(ctx.spawns)
      | _ -> (
          match sref_of fn_arg with
          | Some (Rident ([], n)) when S.mem n scope -> ()
          | Some r ->
              ctx.fn.f_spawn_entries <-
                (kind, line_of fn_arg, r) :: ctx.fn.f_spawn_entries
          | None -> ignore (walk ctx scope held fn_arg)));
      List.iter (fun a -> ignore (walk ctx scope held a)) rest;
      held
  | "Atomic.get", [ a ] ->
      record_atomic ctx a ~op:`Get;
      held
  | "Atomic.set", [ a; v ] ->
      record_atomic ctx a ~op:`Set;
      ignore (walk ctx scope held v);
      held
  | ( ("Atomic.compare_and_set" | "Atomic.exchange" | "Atomic.fetch_and_add"
      | "Atomic.incr" | "Atomic.decr"),
      a :: rest ) ->
      record_atomic ctx a ~op:`Rmw;
      List.iter (fun v -> ignore (walk ctx scope held v)) rest;
      held
  | ":=", [ l; r ] ->
      record_access ctx ~scope ~held ~write:true l;
      ignore (walk ctx scope held r);
      held
  | "!", [ l ] ->
      record_access ctx ~scope ~held ~write:false l;
      held
  | ("incr" | "decr"), [ l ] ->
      record_access ctx ~scope ~held ~write:true l;
      held
  | _ ->
      (* generic application: a call edge for the head, blocking check,
         mutation upgrades for known container operations, then the
         arguments in order *)
      (match f.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match List.rev (lid_components txt) with
          | n :: rpath ->
              let path = List.rev rpath in
              if not (path = [] && S.mem n scope) then
                ctx.fn.f_calls <-
                  { c_ref = Rident (path, n); c_held = held; c_line = line_of app }
                  :: ctx.fn.f_calls
          | [] -> ())
      | _ -> ignore (walk ctx scope held f));
      if
        held <> []
        && (List.mem fname blocking_calls
           || (String.length fname >= String.length buffer_add_prefix
              && String.sub fname 0 (String.length buffer_add_prefix)
                 = buffer_add_prefix
              && fname = "Buffer.add_channel"))
      then
        ctx.fn.f_blocking <-
          { b_name = fname; b_held = held; b_line = line_of app }
          :: ctx.fn.f_blocking;
      (match List.assoc_opt fname mutators with
      | Some idx -> (
          match List.nth_opt plain idx with
          | Some target -> record_access ctx ~scope ~held ~write:true target
          | None -> ())
      | None -> ());
      walk_args held;
      held

(* ------------------------------------------------------------------ *)
(* Structure traversal: bindings, types, submodules                    *)

let qualify prefix name = if prefix = "" then name else prefix ^ "." ^ name

let binding_name vb =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go vb.pvb_pat

let rec peel_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_constraint e
  | _ -> e

let rec is_function e =
  match (peel_constraint e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) -> is_function e
  | _ -> false

(* Classify a top-level RHS: what kind of shared state does it create? *)
let classify_rhs mutable_field_names e =
  let e = peel_constraint e in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      let n = String.concat "." (lid_components txt) in
      if n = "Mutex.create" then `Mutex
      else if n = "Atomic.make" then `Atomic
      else if List.mem n mutable_ctors then `Mutable n
      else `Plain)
  | Pexp_array (_ :: _) -> `Mutable "array literal"
  | Pexp_record (fields, _)
    when List.exists
           (fun ({ Location.txt; _ }, _) ->
             match List.rev (lid_components txt) with
             | f :: _ -> List.mem f mutable_field_names
             | [] -> false)
           fields ->
      `Mutable "mutable record"
  | _ -> `Plain

let core_type_head ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> String.concat "." (lid_components txt)
  | _ -> ""

type builder = {
  mutable entities : entity list;
  mutable mutexes : mutex_decl list;
  mutable atomics : atomic_decl list;
  mutable fns : fn list;
  mutable aliases : (string * string list) list;
  mutable fields : string list;
  mutable saw_concurrency : bool;
  b_spawn_counter : int ref;
}

let add_type_decl b td =
  match td.ptype_kind with
  | Ptype_record labels ->
      List.iter
        (fun ld ->
          let name = ld.pld_name.Location.txt in
          let line = ld.pld_loc.Location.loc_start.Lexing.pos_lnum in
          let head = core_type_head ld.pld_type in
          if not (List.mem name b.fields) then b.fields <- name :: b.fields;
          if head = "Mutex.t" then begin
            b.mutexes <- { m_name = name; m_field = true; m_line = line } :: b.mutexes;
            b.saw_concurrency <- true
          end
          else if head = "Atomic.t" then begin
            b.atomics <- { at_name = name; at_field = true; at_line = line } :: b.atomics;
            b.saw_concurrency <- true
          end
          else if ld.pld_mutable = Asttypes.Mutable then
            b.entities <-
              {
                e_name = name;
                e_kind = Mutable_field td.ptype_name.Location.txt;
                e_line = line;
                e_col =
                  ld.pld_loc.Location.loc_start.Lexing.pos_cnum
                  - ld.pld_loc.Location.loc_start.Lexing.pos_bol;
              }
              :: b.entities)
        labels
  | _ -> ()

let rec add_structure b ~prefix str = List.iter (add_item b ~prefix) str

and add_item b ~prefix si =
  match si.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let name =
            match binding_name vb with
            | Some n -> qualify prefix n
            | None -> qualify prefix "(pattern)"
          in
          let line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum in
          let col =
            vb.pvb_loc.Location.loc_start.Lexing.pos_cnum
            - vb.pvb_loc.Location.loc_start.Lexing.pos_bol
          in
          let mutable_field_names =
            List.filter_map
              (fun e ->
                match e.e_kind with Mutable_field _ -> Some e.e_name | _ -> None)
              b.entities
          in
          (match classify_rhs mutable_field_names vb.pvb_expr with
          | `Mutex ->
              b.mutexes <-
                { m_name = name; m_field = false; m_line = line } :: b.mutexes;
              b.saw_concurrency <- true
          | `Atomic ->
              b.atomics <-
                { at_name = name; at_field = false; at_line = line } :: b.atomics;
              b.saw_concurrency <- true
          | `Mutable ctor ->
              b.entities <-
                { e_name = name; e_kind = Mutable_binding ctor; e_line = line;
                  e_col = col }
                :: b.entities
          | `Plain -> ());
          let fn =
            fresh_fn ~name ~line
              ~init:(not (is_function vb.pvb_expr))
              ~spawn:None
          in
          let spawns = ref [] in
          let ctx = { fn; spawns; spawn_counter = b.b_spawn_counter } in
          ignore (walk ctx S.empty [] vb.pvb_expr);
          b.fns <- List.rev !spawns @ (fn :: b.fns))
        vbs
  | Pstr_type (_, tds) -> List.iter (add_type_decl b) tds
  | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } ->
      add_module_expr b ~prefix:(qualify prefix m) pmb_expr
  | Pstr_module { pmb_name = { txt = None; _ }; pmb_expr; _ } ->
      add_module_expr b ~prefix pmb_expr
  | Pstr_recmodule mbs ->
      List.iter
        (fun mb ->
          let prefix =
            match mb.pmb_name.Location.txt with
            | Some m -> qualify prefix m
            | None -> prefix
          in
          add_module_expr b ~prefix mb.pmb_expr)
        mbs
  | Pstr_include { pincl_mod; _ } -> add_module_expr b ~prefix pincl_mod
  | _ -> ()

and add_module_expr b ~prefix m =
  match m.pmod_desc with
  | Pmod_structure s -> add_structure b ~prefix s
  | Pmod_functor (_, body) -> add_module_expr b ~prefix body
  | Pmod_constraint (m, _) -> add_module_expr b ~prefix m
  | Pmod_ident { txt; _ } ->
      (* module M = A.B at any level: record the alias under its
         qualified name *)
      if prefix <> "" then b.aliases <- (prefix, lid_components txt) :: b.aliases
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let modname_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

let of_structure ~path str =
  let b =
    {
      entities = [];
      mutexes = [];
      atomics = [];
      fns = [];
      aliases = [];
      fields = [];
      saw_concurrency = false;
      b_spawn_counter = ref 0;
    }
  in
  add_structure b ~prefix:"" str;
  let fns = List.rev b.fns in
  let active =
    b.saw_concurrency
    || List.exists
         (fun f ->
           f.f_spawn <> None || f.f_spawn_entries <> [] || f.f_locks <> []
           || Hashtbl.length f.f_atomics > 0
           || List.exists
                (fun c ->
                  match c.c_ref with
                  | Rident (("Domain" | "Thread" | "Mutex" | "Atomic") :: _, _)
                    ->
                      true
                  | _ -> false)
                f.f_calls)
         fns
  in
  {
    u_path = path;
    u_modname = modname_of_path path;
    u_dir = Filename.dirname path;
    u_aliases = b.aliases;
    u_fields = b.fields;
    u_entities = List.rev b.entities;
    u_mutexes = List.rev b.mutexes;
    u_atomics = List.rev b.atomics;
    u_fns = fns;
    u_active = active;
  }
