(** Per-compilation-unit concurrency index.

    [of_structure] summarizes one parsed .ml file for the cross-module
    analysis in {!Concurrency}: declared mutable state, mutexes and
    atomics; per-function state accesses with the lock set held at
    each; mutex acquisition nesting; blocking calls inside critical
    sections; spawned closures; and Atomic op mixes. Purely syntactic —
    references stay unresolved ({!sref}) until the merge. *)

type entity_kind =
  | Mutable_binding of string  (** constructor, e.g. ["ref"] *)
  | Mutable_field of string  (** declaring record type name *)

type entity = {
  e_name : string;
  e_kind : entity_kind;
  e_line : int;
  e_col : int;
}

type mutex_decl = { m_name : string; m_field : bool; m_line : int }
type atomic_decl = { at_name : string; at_field : bool; at_line : int }

(** Unresolved reference: a (possibly module-qualified) value name, or
    a record field projection with the receiver dropped (the field's
    own module qualifier, as in [trace.Trace.events], is kept). *)
type sref = Rident of string list * string | Rfield of string list * string

type access = {
  a_ref : sref;
  a_write : bool;
  a_held : sref list;  (** mutexes held at the access, innermost first *)
  a_line : int;
  a_col : int;
}

type lock_event = {
  l_outer : sref list;  (** held when [l_inner] was acquired *)
  l_inner : sref;
  l_line : int;
}

type blocking_call = { b_name : string; b_held : sref list; b_line : int }
type call = { c_ref : sref; c_held : sref list; c_line : int }

type atomic_op = {
  o_path : string;
  o_get : int option;
  o_set : int option;
  o_rmw : bool;
}

type fn = {
  f_name : string;
  f_line : int;
  f_init : bool;  (** RHS is not a function: runs at module init *)
  f_spawn : (string * int) option;
      (** [Some (kind, line)] when this is a spawned-closure body *)
  mutable f_accesses : access list;
  mutable f_calls : call list;
  mutable f_locks : lock_event list;
  mutable f_blocking : blocking_call list;
  mutable f_atomics : (string, atomic_op) Hashtbl.t;
  mutable f_spawn_entries : (string * int * sref) list;
}

type unit_info = {
  u_path : string;
  u_modname : string;
  u_dir : string;
  u_aliases : (string * string list) list;
  u_fields : string list;
      (** every record field name the unit declares, mutable or not —
          a field reference inside the unit never resolves elsewhere *)
  u_entities : entity list;
  u_mutexes : mutex_decl list;
  u_atomics : atomic_decl list;
  u_fns : fn list;
  u_active : bool;
      (** the unit itself mentions domains, threads, mutexes or
          atomics; only active units contribute entities *)
}

val sref_to_string : sref -> string
val modname_of_path : string -> string
val of_structure : path:string -> Parsetree.structure -> unit_info
