(** Render a {!Driver.outcome} for humans (text) or tooling (JSON).
    Pure string builders — the caller owns the channels. *)

val summary_line : Driver.outcome -> string

val stats_line : Driver.outcome -> string option
(** The [--stats] line for deep runs: modules indexed, mutable
    bindings, guarded-access percentage, spawn sites, lock-graph size
    and analysis wall time. [None] when the outcome has no deep
    report. *)

val text : ?verbose:bool -> Driver.outcome -> string
(** One [file:line:col: severity CODE: message] line per finding plus
    the summary; [verbose] also lists suppressed and baselined
    findings. Deep outcomes include the stats line. *)

val json : Driver.outcome -> string
(** Single JSON object: findings / suppressed / baselined arrays,
    [files_scanned], an ["ok"] flag and — for deep runs — a ["deep"]
    object carrying the stats, the full lock-order graph (nodes +
    provenance-annotated edges) and any cycles. *)
