(** Render a {!Driver.outcome} for humans (text) or tooling (JSON).
    Pure string builders — the caller owns the channels. *)

val summary_line : Driver.outcome -> string

val text : ?verbose:bool -> Driver.outcome -> string
(** One [file:line:col: severity CODE: message] line per finding plus
    the summary; [verbose] also lists suppressed and baselined
    findings. *)

val json : Driver.outcome -> string
(** Single JSON object: findings / suppressed / baselined arrays,
    [files_scanned], and an ["ok"] flag. *)
