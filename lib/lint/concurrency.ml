(* Cross-module concurrency analysis over merged per-unit indexes.

   Resolution is name-based (no typing pass): a module path resolves
   through recorded [module M = ...] aliases to a compilation unit by
   its rightmost component that names one; a field reference resolves
   against declared mutable / Mutex.t / Atomic.t fields, preferring
   the referencing unit, then a unique global candidate, then a
   same-directory candidate, and is otherwise dropped — unresolved
   references never produce findings.

   Only *active* units (ones that themselves mention domains, threads,
   mutexes or atomics) contribute state entities: a ref in a module
   with no concurrency vocabulary is single-domain by construction and
   is D002's business, not ours.

   The rules:

   C001  mutable state reachable unguarded from a spawned closure,
         with no lock discipline anywhere in the program;
   C002  cycles in the cross-module lock-order graph (edges from both
         syntactic Mutex.lock/protect nesting and calls made while a
         mutex is held into functions that acquire more locks);
   C003  guard inconsistency: state locked at some sites but accessed
         bare from a spawn-reachable context;
   C004  blocking primitives (Unix.*, channel I/O, Thread.delay/join)
         executed — directly or through a call — while holding a mutex;
   C005  an Atomic.get and Atomic.set of the same target in the same
         function with no RMW primitive: a lost-update window.

   C001/C003 share one reachability pass: BFS from every spawned
   closure over the resolved call graph, tracking whether the current
   context is guarded (entered through a call made while a lock was
   held). Bare accesses only count as violations in unguarded
   contexts; module-initialization code is only visited if a spawned
   context actually calls it, so construct-then-publish patterns don't
   fire. *)

type site = { s_file : string; s_line : int; s_col : int }

type deep_finding = {
  df : Finding.t;
  df_entity : (string * int) option;
      (* declaration file/line: a racy-ok there also covers this *)
}

type node = {
  n_key : string;
  n_display : string;
  n_file : string;
  n_line : int;
}

type edge = {
  e_from : string;  (* node keys *)
  e_to : string;
  e_file : string;
  e_line : int;
  e_via : string;
}

type stats = {
  st_units : int;
  st_active : int;
  st_entities : int;
  st_accesses : int;  (* accesses that resolved to a state entity *)
  st_guarded : int;  (* of those, made while holding a mutex *)
  st_spawns : int;
  st_mutexes : int;
  st_edges : int;
}

type report = {
  r_findings : deep_finding list;
  r_nodes : node list;
  r_edges : edge list;
  r_cycles : string list list;  (* node display names, one list per cycle *)
  r_stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Resolution environment                                              *)

type uinfo = {
  u : Index.unit_info;
  ents : (string, Index.entity) Hashtbl.t;
  muts : (string, Index.mutex_decl) Hashtbl.t;
  atos : (string, Index.atomic_decl) Hashtbl.t;
  fn_tbl : (string, Index.fn) Hashtbl.t;
}

type env = {
  uinfos : uinfo list;
  by_mod : (string, uinfo list) Hashtbl.t;
  field_ent : (string, (uinfo * Index.entity) list) Hashtbl.t;
  field_mut : (string, (uinfo * Index.mutex_decl) list) Hashtbl.t;
}

let last_component name =
  match List.rev (String.split_on_char '.' name) with
  | x :: _ -> x
  | [] -> name

let add_multi tbl k v =
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
  Hashtbl.replace tbl k (cur @ [ v ])

let build_env units =
  let uinfos =
    List.map
      (fun (u : Index.unit_info) ->
        let ents = Hashtbl.create 16 in
        let muts = Hashtbl.create 4 in
        let atos = Hashtbl.create 4 in
        let fn_tbl = Hashtbl.create 32 in
        List.iter
          (fun (e : Index.entity) ->
            if not (Hashtbl.mem ents e.Index.e_name) then
              Hashtbl.add ents e.Index.e_name e;
            let l = last_component e.Index.e_name in
            if not (Hashtbl.mem ents l) then Hashtbl.add ents l e)
          u.Index.u_entities;
        List.iter
          (fun (m : Index.mutex_decl) ->
            if not (Hashtbl.mem muts m.Index.m_name) then
              Hashtbl.add muts m.Index.m_name m;
            let l = last_component m.Index.m_name in
            if not (Hashtbl.mem muts l) then Hashtbl.add muts l m)
          u.Index.u_mutexes;
        List.iter
          (fun (a : Index.atomic_decl) ->
            if not (Hashtbl.mem atos a.Index.at_name) then
              Hashtbl.add atos a.Index.at_name a;
            let l = last_component a.Index.at_name in
            if not (Hashtbl.mem atos l) then Hashtbl.add atos l a)
          u.Index.u_atomics;
        List.iter
          (fun (f : Index.fn) ->
            if not (Hashtbl.mem fn_tbl f.Index.f_name) then
              Hashtbl.add fn_tbl f.Index.f_name f;
            let l = last_component f.Index.f_name in
            if not (Hashtbl.mem fn_tbl l) then Hashtbl.add fn_tbl l f)
          u.Index.u_fns;
        { u; ents; muts; atos; fn_tbl })
      units
  in
  let by_mod = Hashtbl.create 64 in
  let field_ent = Hashtbl.create 64 in
  let field_mut = Hashtbl.create 16 in
  List.iter
    (fun ui ->
      add_multi by_mod ui.u.Index.u_modname ui;
      if ui.u.Index.u_active then
        List.iter
          (fun (e : Index.entity) ->
            match e.Index.e_kind with
            | Index.Mutable_field _ -> add_multi field_ent e.Index.e_name (ui, e)
            | Index.Mutable_binding _ -> ())
          ui.u.Index.u_entities;
      List.iter
        (fun (m : Index.mutex_decl) ->
          if m.Index.m_field then add_multi field_mut m.Index.m_name (ui, m))
        ui.u.Index.u_mutexes)
    uinfos;
  { uinfos; by_mod; field_ent; field_mut }

(* Pick among global candidates: the referencing unit itself, else a
   unique candidate, else a unique same-directory candidate. *)
let pick_candidate ~(from : uinfo) candidates =
  match List.filter (fun (ui, _) -> ui.u.Index.u_path = from.u.Index.u_path) candidates with
  | [ c ] -> Some c
  | _ -> (
      match candidates with
      | [ c ] -> Some c
      | _ -> (
          match
            List.filter
              (fun (ui, _) -> ui.u.Index.u_dir = from.u.Index.u_dir)
              candidates
          with
          | [ c ] -> Some c
          | _ -> None))

let expand_alias (from : uinfo) path =
  match path with
  | first :: rest -> (
      match List.assoc_opt first from.u.Index.u_aliases with
      | Some target -> target @ rest
      | None -> path)
  | [] -> path

(* Locate the unit a qualified path refers to; returns the unit and
   the intra-unit qualifier (submodule components right of the unit
   name). Scans right-to-left so [Qnet_obs.Metrics.Counter] hits
   [Metrics] rather than the library wrapper. *)
let target_unit env ~(from : uinfo) path =
  let path = expand_alias from path in
  let arr = Array.of_list path in
  let n = Array.length arr in
  let rec scan i =
    if i < 0 then None
    else
      match Hashtbl.find_opt env.by_mod arr.(i) with
      | Some (_ :: _ as cands) ->
          let rest = Array.to_list (Array.sub arr (i + 1) (n - i - 1)) in
          let ui =
            match
              List.filter (fun ui -> ui.u.Index.u_dir = from.u.Index.u_dir) cands
            with
            | [ ui ] -> ui
            | _ -> List.hd cands
          in
          Some (ui, rest)
      | _ -> scan (i - 1)
  in
  scan (n - 1)

type target =
  | T_entity of uinfo * Index.entity
  | T_mutex of uinfo * Index.mutex_decl
  | T_atomic
  | T_fn of uinfo * Index.fn
  | T_unknown

let lookup_in (ui : uinfo) name =
  match Hashtbl.find_opt ui.muts name with
  | Some m -> T_mutex (ui, m)
  | None -> (
      match Hashtbl.find_opt ui.atos name with
      | Some _ -> T_atomic
      | None -> (
          match Hashtbl.find_opt ui.ents name with
          | Some e -> T_entity (ui, e)
          | None -> (
              match Hashtbl.find_opt ui.fn_tbl name with
              | Some f -> T_fn (ui, f)
              | None -> T_unknown)))

let resolve env ~(from : uinfo) (r : Index.sref) =
  match r with
  | Index.Rident ([], n) -> lookup_in from n
  | Index.Rident (path, n) -> (
      match target_unit env ~from path with
      | None -> T_unknown
      | Some (ui, rest) -> (
          let qualified = String.concat "." (rest @ [ n ]) in
          match lookup_in ui qualified with
          | T_unknown when rest <> [] -> lookup_in ui n
          | t -> t))
  | Index.Rfield (qual, f) when qual <> [] -> (
      (* A qualified projection like [trace.Trace.events] names the
         declaring unit explicitly: resolve the field there or nowhere —
         never against a same-named field in an unrelated unit. *)
      match target_unit env ~from qual with
      | None -> T_unknown
      | Some (ui, _) -> (
          match Hashtbl.find_opt ui.muts f with
          | Some m when m.Index.m_field -> T_mutex (ui, m)
          | _ -> (
              match Hashtbl.find_opt ui.atos f with
              | Some a when a.Index.at_field -> T_atomic
              | _ -> (
                  match Hashtbl.find_opt ui.ents f with
                  | Some ({ Index.e_kind = Index.Mutable_field _; _ } as e) ->
                      T_entity (ui, e)
                  | _ -> T_unknown))))
  | Index.Rfield (_, f) -> (
      (* own unit's field declarations win *)
      let own_mut =
        match Hashtbl.find_opt from.muts f with
        | Some m when m.Index.m_field -> Some m
        | _ -> None
      in
      let own_ato =
        match Hashtbl.find_opt from.atos f with
        | Some a when a.Index.at_field -> Some a
        | _ -> None
      in
      let own_ent =
        match Hashtbl.find_opt from.ents f with
        | Some ({ Index.e_kind = Index.Mutable_field _; _ } as e) -> Some e
        | _ -> None
      in
      match (own_mut, own_ato, own_ent) with
      | Some m, _, _ -> T_mutex (from, m)
      | None, Some _, _ -> T_atomic
      | None, None, Some e -> T_entity (from, e)
      | None, None, None ->
          (* A unit that declares the field name at all — even as an
             immutable field of its own record — resolves it locally;
             falling through to a same-named mutable field elsewhere
             would misattribute most of the program's [n]s and
             [params]s. *)
          if List.mem f from.u.Index.u_fields then T_unknown
          else (
            let muts =
              Option.value ~default:[] (Hashtbl.find_opt env.field_mut f)
            in
            match pick_candidate ~from muts with
            | Some (ui, m) -> T_mutex (ui, m)
            | None -> (
                let ents =
                  Option.value ~default:[] (Hashtbl.find_opt env.field_ent f)
                in
                match pick_candidate ~from ents with
                | Some (ui, e) -> T_entity (ui, e)
                | None -> T_unknown)))

let resolve_state env ~from r =
  match resolve env ~from r with
  | T_entity (ui, e) when ui.u.Index.u_active -> Some (ui, e)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Mutex nodes                                                         *)

let mnode_of env ~(from : uinfo) (r : Index.sref) ~site_line =
  match resolve env ~from r with
  | T_mutex (ui, m) ->
      {
        n_key = ui.u.Index.u_path ^ "#" ^ m.Index.m_name;
        n_display = ui.u.Index.u_modname ^ "." ^ m.Index.m_name;
        n_file = ui.u.Index.u_path;
        n_line = m.Index.m_line;
      }
  | _ ->
      (* lock of something we cannot name globally: keep it as a
         unit-local node so intra-module ordering still applies *)
      {
        n_key = from.u.Index.u_path ^ "#?" ^ Index.sref_to_string r;
        n_display = from.u.Index.u_modname ^ ":" ^ Index.sref_to_string r;
        n_file = from.u.Index.u_path;
        n_line = site_line;
      }

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)

let fn_key (ui : uinfo) (f : Index.fn) = ui.u.Index.u_path ^ "#" ^ f.Index.f_name

let compare_site a b =
  match compare a.s_file b.s_file with
  | 0 -> (
      match compare a.s_line b.s_line with
      | 0 -> compare a.s_col b.s_col
      | c -> c)
  | c -> c

let finding ~code ~site message =
  Finding.v ~code ~file:site.s_file ~line:site.s_line ~col:site.s_col message

module SS = Set.Make (String)

let analyze units =
  let env = build_env units in
  let nodes : (string, node) Hashtbl.t = Hashtbl.create 32 in
  let note_node n = if not (Hashtbl.mem nodes n.n_key) then Hashtbl.add nodes n.n_key n in
  let all_fns =
    List.concat_map
      (fun ui -> List.map (fun f -> (ui, f)) ui.u.Index.u_fns)
      env.uinfos
  in
  let fn_index : (string, uinfo * Index.fn) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (ui, f) ->
      let k = fn_key ui f in
      if not (Hashtbl.mem fn_index k) then Hashtbl.add fn_index k (ui, f))
    all_fns;
  let callee_key ui (c : Index.call) =
    match resolve env ~from:ui c.Index.c_ref with
    | T_fn (cui, cf) -> Some (fn_key cui cf)
    | _ -> None
  in

  (* ---- C001 / C003: reachability from spawned contexts ------------ *)
  (* state per fn: 0 = unvisited, 1 = guarded only, 2 = unguarded *)
  let reach : (string, int * string) Hashtbl.t = Hashtbl.create 128 in
  let queue = Queue.create () in
  let push key ~guarded ~origin =
    let level = if guarded then 1 else 2 in
    match Hashtbl.find_opt reach key with
    | Some (l, _) when l >= level -> ()
    | _ ->
        Hashtbl.replace reach key (level, origin);
        Queue.add (key, guarded, origin) queue
  in
  List.iter
    (fun (ui, (f : Index.fn)) ->
      (match f.Index.f_spawn with
      | Some (kind, line) ->
          let origin =
            Printf.sprintf "%s closure at %s:%d"
              (if kind = "domain" then "Domain.spawn" else "Thread.create")
              ui.u.Index.u_path line
          in
          push (fn_key ui f) ~guarded:false ~origin
      | None -> ());
      List.iter
        (fun (kind, line, r) ->
          match resolve env ~from:ui r with
          | T_fn (cui, cf) ->
              let origin =
                Printf.sprintf "%s %s at %s:%d"
                  (if kind = "domain" then "Domain.spawn" else "Thread.create")
                  cf.Index.f_name ui.u.Index.u_path line
              in
              push (fn_key cui cf) ~guarded:false ~origin
          | _ -> ())
        f.Index.f_spawn_entries)
    all_fns;
  while not (Queue.is_empty queue) do
    let key, guarded, origin = Queue.pop queue in
    match Hashtbl.find_opt fn_index key with
    | None -> ()
    | Some (ui, f) ->
        List.iter
          (fun (c : Index.call) ->
            match callee_key ui c with
            | Some ck ->
                push ck ~guarded:(guarded || c.Index.c_held <> []) ~origin
            | None -> ())
          f.Index.f_calls
  done;

  (* entity evidence tables *)
  let ent_key (ui : uinfo) (e : Index.entity) =
    ui.u.Index.u_path ^ "#" ^ e.Index.e_name
  in
  let locked_at : (string, site * string) Hashtbl.t = Hashtbl.create 64 in
  let bare_hits : (string, (site * string) list) Hashtbl.t = Hashtbl.create 64 in
  let ent_info : (string, uinfo * Index.entity) Hashtbl.t = Hashtbl.create 64 in
  let ent_written : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let n_state_accesses = ref 0 and n_guarded_accesses = ref 0 in
  List.iter
    (fun (ui, (f : Index.fn)) ->
      let ctx = Hashtbl.find_opt reach (fn_key ui f) in
      List.iter
        (fun (a : Index.access) ->
          match resolve_state env ~from:ui a.Index.a_ref with
          | None -> ()
          | Some (eui, e) ->
              incr n_state_accesses;
              if a.Index.a_held <> [] then incr n_guarded_accesses;
              let k = ent_key eui e in
              if not (Hashtbl.mem ent_info k) then
                Hashtbl.add ent_info k (eui, e);
              if a.Index.a_write then Hashtbl.replace ent_written k ();
              let st =
                { s_file = ui.u.Index.u_path; s_line = a.Index.a_line;
                  s_col = a.Index.a_col }
              in
              if a.Index.a_held <> [] then begin
                let m = mnode_of env ~from:ui (List.hd a.Index.a_held)
                          ~site_line:a.Index.a_line in
                match Hashtbl.find_opt locked_at k with
                | Some (prev, _) when compare_site prev st <= 0 -> ()
                | _ -> Hashtbl.replace locked_at k (st, m.n_display)
              end
              else
                match ctx with
                | Some (2, origin) ->
                    let cur =
                      Option.value ~default:[] (Hashtbl.find_opt bare_hits k)
                    in
                    Hashtbl.replace bare_hits k ((st, origin) :: cur)
                | _ -> ())
        (List.rev f.Index.f_accesses))
    all_fns;
  let c001_c003 =
    Hashtbl.fold (fun k hits acc -> (k, hits) :: acc) bare_hits []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    (* never-written state (lookup tables, precomputed arrays) is
       effectively immutable data: reads cannot race *)
    |> List.filter (fun (k, _) -> Hashtbl.mem ent_written k)
    |> List.filter_map (fun (k, hits) ->
           let eui, e = Hashtbl.find ent_info k in
           let site, origin =
             List.fold_left
               (fun (bs, bo) (s, o) ->
                 if compare_site s bs < 0 then (s, o) else (bs, bo))
               (List.hd hits) (List.tl hits)
           in
           let decl = (eui.u.Index.u_path, e.Index.e_line) in
           let what =
             match e.Index.e_kind with
             | Index.Mutable_binding ctor ->
                 Printf.sprintf "mutable binding %s.%s (%s, declared at %s:%d)"
                   eui.u.Index.u_modname e.Index.e_name ctor
                   eui.u.Index.u_path e.Index.e_line
             | Index.Mutable_field ty ->
                 Printf.sprintf "mutable field %s.%s.%s (declared at %s:%d)"
                   eui.u.Index.u_modname ty e.Index.e_name
                   eui.u.Index.u_path e.Index.e_line
           in
           match Hashtbl.find_opt locked_at k with
           | Some (lsite, mutex) ->
               Some
                 {
                   df =
                     finding ~code:"C003" ~site
                       (Printf.sprintf
                          "%s is guarded by %s at %s:%d but accessed bare here \
                           in a context reachable from %s; take the lock or \
                           annotate the declaration racy-ok C003"
                          what mutex lsite.s_file lsite.s_line origin);
                   df_entity = Some decl;
                 }
           | None ->
               Some
                 {
                   df =
                     finding ~code:"C001" ~site
                       (Printf.sprintf
                          "%s is accessed with no lock discipline anywhere and \
                           is reachable from %s; guard it with a mutex, make \
                           it Atomic, or annotate the declaration racy-ok C001"
                          what origin);
                   df_entity = Some decl;
                 })
  in

  (* ---- lock graph and C002 ---------------------------------------- *)
  let edges : (string * string, edge) Hashtbl.t = Hashtbl.create 64 in
  let note_edge e =
    if e.e_from <> e.e_to then
      match Hashtbl.find_opt edges (e.e_from, e.e_to) with
      | Some prev
        when compare (prev.e_file, prev.e_line) (e.e_file, e.e_line) <= 0 ->
          ()
      | _ -> Hashtbl.replace edges (e.e_from, e.e_to) e
  in
  (* direct nesting edges + per-fn direct acquisition sets *)
  let direct_acq : (string, SS.t) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun (ui, (f : Index.fn)) ->
      let acq = ref SS.empty in
      List.iter
        (fun (l : Index.lock_event) ->
          let inner = mnode_of env ~from:ui l.Index.l_inner ~site_line:l.Index.l_line in
          note_node inner;
          acq := SS.add inner.n_key !acq;
          List.iter
            (fun o ->
              let outer = mnode_of env ~from:ui o ~site_line:l.Index.l_line in
              note_node outer;
              note_edge
                {
                  e_from = outer.n_key;
                  e_to = inner.n_key;
                  e_file = ui.u.Index.u_path;
                  e_line = l.Index.l_line;
                  e_via =
                    Printf.sprintf "%s acquired in %s.%s while holding %s"
                      inner.n_display ui.u.Index.u_modname f.Index.f_name
                      outer.n_display;
                })
            l.Index.l_outer)
        f.Index.f_locks;
      Hashtbl.replace direct_acq (fn_key ui f) !acq)
    all_fns;
  (* Acquires*(fn): fixpoint over the call graph *)
  let acq_star : (string, SS.t) Hashtbl.t = Hashtbl.copy direct_acq in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (ui, (f : Index.fn)) ->
        let k = fn_key ui f in
        let cur = Option.value ~default:SS.empty (Hashtbl.find_opt acq_star k) in
        let next =
          List.fold_left
            (fun acc (c : Index.call) ->
              match callee_key ui c with
              | Some ck ->
                  SS.union acc
                    (Option.value ~default:SS.empty (Hashtbl.find_opt acq_star ck))
              | None -> acc)
            cur f.Index.f_calls
        in
        if not (SS.equal next cur) then begin
          Hashtbl.replace acq_star k next;
          changed := true
        end)
      all_fns
  done;
  (* interprocedural edges: held at a call -> anything the callee
     (transitively) acquires *)
  List.iter
    (fun (ui, (f : Index.fn)) ->
      List.iter
        (fun (c : Index.call) ->
          if c.Index.c_held <> [] then
            match callee_key ui c with
            | None -> ()
            | Some ck ->
                let acq =
                  Option.value ~default:SS.empty (Hashtbl.find_opt acq_star ck)
                in
                if not (SS.is_empty acq) then
                  let cui, cf = Hashtbl.find fn_index ck in
                  List.iter
                    (fun h ->
                      let hn = mnode_of env ~from:ui h ~site_line:c.Index.c_line in
                      note_node hn;
                      SS.iter
                        (fun a ->
                          match Hashtbl.find_opt nodes a with
                          | None -> ()
                          | Some an ->
                              note_edge
                                {
                                  e_from = hn.n_key;
                                  e_to = an.n_key;
                                  e_file = ui.u.Index.u_path;
                                  e_line = c.Index.c_line;
                                  e_via =
                                    Printf.sprintf
                                      "call to %s.%s under %s reaches an \
                                       acquisition of %s"
                                      cui.u.Index.u_modname cf.Index.f_name
                                      hn.n_display an.n_display;
                                })
                        acq)
                    c.Index.c_held)
        f.Index.f_calls)
    all_fns;
  let edge_list =
    Hashtbl.fold (fun _ e acc -> e :: acc) edges []
    |> List.sort (fun a b ->
           compare (a.e_from, a.e_to, a.e_file, a.e_line)
             (b.e_from, b.e_to, b.e_file, b.e_line))
  in
  (* SCCs (Kosaraju) over the edge set *)
  let adj : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let radj : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let graph_nodes = ref SS.empty in
  List.iter
    (fun e ->
      graph_nodes := SS.add e.e_from (SS.add e.e_to !graph_nodes);
      add_multi adj e.e_from e.e_to;
      add_multi radj e.e_to e.e_from)
    edge_list;
  let order = ref [] in
  let seen = Hashtbl.create 32 in
  let rec dfs1 v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      List.iter dfs1 (Option.value ~default:[] (Hashtbl.find_opt adj v));
      order := v :: !order
    end
  in
  SS.iter dfs1 !graph_nodes;
  let comp = Hashtbl.create 32 in
  let rec dfs2 root v =
    if not (Hashtbl.mem comp v) then begin
      Hashtbl.add comp v root;
      List.iter (dfs2 root) (Option.value ~default:[] (Hashtbl.find_opt radj v))
    end
  in
  List.iter (fun v -> dfs2 v v) !order;
  let sccs : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  SS.iter
    (fun v ->
      let r = Hashtbl.find comp v in
      add_multi sccs r v)
    !graph_nodes;
  let cycles =
    Hashtbl.fold
      (fun _ members acc ->
        if List.length members >= 2 then List.sort compare members :: acc
        else acc)
      sccs []
    |> List.sort compare
  in
  let c002 =
    List.map
      (fun members ->
        let mset = SS.of_list members in
        let internal =
          List.filter
            (fun e -> SS.mem e.e_from mset && SS.mem e.e_to mset)
            edge_list
        in
        let first =
          List.fold_left
            (fun best e ->
              if compare (e.e_file, e.e_line) (best.e_file, best.e_line) < 0
              then e
              else best)
            (List.hd internal) (List.tl internal)
        in
        let display k =
          match Hashtbl.find_opt nodes k with
          | Some n -> n.n_display
          | None -> k
        in
        let desc =
          List.map
            (fun e ->
              Printf.sprintf "%s -> %s (%s:%d)" (display e.e_from)
                (display e.e_to) e.e_file e.e_line)
            internal
          |> String.concat "; "
        in
        {
          df =
            finding ~code:"C002"
              ~site:{ s_file = first.e_file; s_line = first.e_line; s_col = 0 }
              (Printf.sprintf
                 "lock-order cycle between %s: %s; acquire these mutexes in \
                  one global order"
                 (String.concat ", " (List.map display members))
                 desc);
          df_entity = None;
        })
      cycles
  in

  (* ---- C004: blocking while holding a mutex ----------------------- *)
  let direct_c004 =
    List.concat_map
      (fun (ui, (f : Index.fn)) ->
        List.map
          (fun (b : Index.blocking_call) ->
            let m =
              mnode_of env ~from:ui (List.hd b.Index.b_held)
                ~site_line:b.Index.b_line
            in
            {
              df =
                finding ~code:"C004"
                  ~site:{ s_file = ui.u.Index.u_path; s_line = b.Index.b_line;
                          s_col = 0 }
                  (Printf.sprintf
                     "%s called while holding %s in %s.%s; move the blocking \
                      call outside the critical section or annotate racy-ok \
                      C004"
                     b.Index.b_name m.n_display ui.u.Index.u_modname
                     f.Index.f_name);
              df_entity = None;
            })
          (List.rev f.Index.f_blocking))
      all_fns
  in
  (* breach(fn): some blocking primitive reachable through calls *)
  let breach : (string, string * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ui, (f : Index.fn)) ->
      match List.rev f.Index.f_blocking with
      | b :: _ ->
          Hashtbl.replace breach (fn_key ui f)
            ( b.Index.b_name,
              Printf.sprintf "%s:%d" ui.u.Index.u_path b.Index.b_line )
      | [] -> ())
    all_fns;
  (* also seed with fns whose blocking calls happen with no lock held:
     those are not in f_blocking, so rescan calls for blocking names *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (ui, (f : Index.fn)) ->
        let k = fn_key ui f in
        if not (Hashtbl.mem breach k) then
          List.iter
            (fun (c : Index.call) ->
              if not (Hashtbl.mem breach k) then
                match callee_key ui c with
                | Some ck when ck <> k -> (
                    match Hashtbl.find_opt breach ck with
                    | Some (prim, where) ->
                        Hashtbl.replace breach k (prim, where);
                        changed := true
                    | None -> ())
                | _ -> ())
            f.Index.f_calls)
      all_fns
  done;
  let indirect_c004 =
    List.concat_map
      (fun (ui, (f : Index.fn)) ->
        if f.Index.f_blocking <> [] then []
        else
          List.filter_map
            (fun (c : Index.call) ->
              if c.Index.c_held = [] then None
              else
                match callee_key ui c with
                | Some ck when ck <> fn_key ui f -> (
                    match Hashtbl.find_opt breach ck with
                    | Some (prim, where) ->
                        let cui, cf = Hashtbl.find fn_index ck in
                        let m =
                          mnode_of env ~from:ui (List.hd c.Index.c_held)
                            ~site_line:c.Index.c_line
                        in
                        Some
                          {
                            df =
                              finding ~code:"C004"
                                ~site:{ s_file = ui.u.Index.u_path;
                                        s_line = c.Index.c_line; s_col = 0 }
                                (Printf.sprintf
                                   "call to %s.%s while holding %s can block: \
                                    it reaches %s (%s); move the call outside \
                                    the critical section or annotate racy-ok \
                                    C004"
                                   cui.u.Index.u_modname cf.Index.f_name
                                   m.n_display prim where);
                            df_entity = None;
                          }
                    | None -> None)
                | _ -> None)
            f.Index.f_calls)
      all_fns
  in

  (* ---- C005: split atomic read-modify-write ----------------------- *)
  let c005 =
    List.concat_map
      (fun (ui, (f : Index.fn)) ->
        Hashtbl.fold (fun _ (o : Index.atomic_op) acc -> o :: acc)
          f.Index.f_atomics []
        |> List.sort (fun a b -> compare a.Index.o_path b.Index.o_path)
        |> List.filter_map (fun (o : Index.atomic_op) ->
               match (o.Index.o_get, o.Index.o_set, o.Index.o_rmw) with
               | Some gl, Some sl, false ->
                   Some
                     {
                       df =
                         finding ~code:"C005"
                           ~site:{ s_file = ui.u.Index.u_path;
                                   s_line = max gl sl; s_col = 0 }
                           (Printf.sprintf
                              "%s.%s reads %s with Atomic.get (line %d) and \
                               writes it with Atomic.set (line %d): a lost \
                               update window; use compare_and_set / \
                               fetch_and_add, or annotate racy-ok C005 if \
                               single-writer"
                              ui.u.Index.u_modname f.Index.f_name
                              o.Index.o_path gl sl);
                       df_entity = None;
                     }
               | _ -> None))
      all_fns
  in

  (* ---- assemble ---------------------------------------------------- *)
  let findings =
    c001_c003 @ c002 @ direct_c004 @ indirect_c004 @ c005
    |> List.sort (fun a b -> Finding.compare_by_pos a.df b.df)
  in
  let node_list =
    Hashtbl.fold (fun _ n acc -> n :: acc) nodes []
    |> List.sort (fun a b -> compare a.n_key b.n_key)
  in
  let n_spawns =
    List.fold_left
      (fun acc (_, (f : Index.fn)) ->
        acc
        + (if f.Index.f_spawn <> None then 1 else 0)
        + List.length f.Index.f_spawn_entries)
      0 all_fns
  in
  let active = List.filter (fun ui -> ui.u.Index.u_active) env.uinfos in
  let stats =
    {
      st_units = List.length env.uinfos;
      st_active = List.length active;
      st_entities =
        List.fold_left
          (fun acc ui -> acc + List.length ui.u.Index.u_entities)
          0 active;
      st_accesses = !n_state_accesses;
      st_guarded = !n_guarded_accesses;
      st_spawns = n_spawns;
      st_mutexes =
        List.fold_left
          (fun acc ui -> acc + List.length ui.u.Index.u_mutexes)
          0 active;
      st_edges = List.length edge_list;
    }
  in
  {
    r_findings = findings;
    r_nodes = node_list;
    r_edges = edge_list;
    r_cycles =
      List.map
        (List.map (fun k ->
             match Hashtbl.find_opt nodes k with
             | Some n -> n.n_display
             | None -> k))
        cycles;
    r_stats = stats;
  }
