(** [(* qnet-lint: allow CODE reason *)] and
    [(* qnet-lint: racy-ok CODE reason *)] suppression comments.

    A trailing comment covers the line it starts on; a standalone
    comment covers the first line after it ends. Directives without a
    mandatory reason are reported as malformed (surfaced by the driver
    as S001 findings). [racy-ok] is restricted to the concurrency
    rules (C-codes); in deep runs it may sit either on a finding's
    site line or on the offending entity's declaration line, and one
    that suppresses nothing is itself an S002 finding. *)

type kind = Allow | Racy_ok

type directive = {
  kind : kind;
  code : string;
  reason : string;
  covers : int;  (** line whose findings this directive silences *)
  at : int;  (** line the comment starts on *)
}

type scan_result = {
  directives : directive list;
  malformed : (int * string) list;  (** line, what is wrong *)
}

val scan : string -> scan_result
(** Scan raw OCaml source text. String and character literals and
    nested comments are tracked so directive-shaped text inside them
    is ignored. *)

val find : directive list -> code:string -> line:int -> directive option
(** The directive (if any) that suppresses [code] on [line]. *)
