(** Cross-module concurrency analysis (the [--deep] rules C001–C005).

    [analyze] merges the per-unit indexes from {!Index}, resolves
    cross-module references by name, and reports:

    - C001: mutable state reachable unguarded from a spawned
      domain/thread closure, with no lock discipline anywhere;
    - C002: cycles in the cross-module lock-order graph;
    - C003: state guarded at some sites but accessed bare from a
      spawn-reachable context;
    - C004: blocking primitives executed (directly or through calls)
      while holding a mutex;
    - C005: Atomic.get + Atomic.set of one target in one function with
      no RMW primitive.

    Unresolved references never produce findings, and only units that
    themselves mention concurrency vocabulary contribute state
    entities, so purely sequential modules stay D002's business. *)

type site = { s_file : string; s_line : int; s_col : int }

type deep_finding = {
  df : Finding.t;
  df_entity : (string * int) option;
      (** declaring file/line of the offending entity: a [racy-ok]
          directive covering that line also suppresses this finding *)
}

type node = {
  n_key : string;
  n_display : string;
  n_file : string;
  n_line : int;
}

type edge = {
  e_from : string;
  e_to : string;
  e_file : string;
  e_line : int;
  e_via : string;
}

type stats = {
  st_units : int;
  st_active : int;
  st_entities : int;
  st_accesses : int;
  st_guarded : int;
  st_spawns : int;
  st_mutexes : int;
  st_edges : int;
}

type report = {
  r_findings : deep_finding list;
  r_nodes : node list;
  r_edges : edge list;
  r_cycles : string list list;
  r_stats : stats;
}

val analyze : Index.unit_info list -> report
