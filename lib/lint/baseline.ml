(* Grandfathered findings. The committed baseline is empty — the whole
   point of the PR that introduced qnet_lint was to fix every true
   positive — but the mechanism stays so a future rule can land before
   its last fix does, without loosening the exit code for new code. *)

type entry = { code : string; file : string; line : int }

let header =
  "# qnet_lint baseline: grandfathered findings, one per line as\n\
   # CODE<TAB>file<TAB>line. Regenerate with `qnet_lint --write-baseline`.\n\
   # An empty baseline is the healthy state.\n"

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char '\t' line with
    | [ code; file; ln ] -> (
        match int_of_string_opt ln with
        | Some n -> Ok (Some { code; file; line = n })
        | None -> Error (Printf.sprintf "baseline line %d: bad line number" lineno))
    | _ ->
        Error
          (Printf.sprintf
             "baseline line %d: expected CODE<TAB>file<TAB>line" lineno)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line lineno l with
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some e) -> go (lineno + 1) (e :: acc) rest
        | Error _ as err -> err)
  in
  go 1 [] lines

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          of_string (really_input_string ic len))
    with Sys_error msg -> Error msg

let to_string findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  List.iter
    (fun (f : Finding.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%d\n" f.Finding.code f.Finding.file
           f.Finding.line))
    (List.sort Finding.compare_by_pos findings);
  Buffer.contents buf

let save path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string findings))

let covers entries (f : Finding.t) =
  List.exists
    (fun e ->
      e.code = f.Finding.code && e.file = f.Finding.file
      && e.line = f.Finding.line)
    entries
