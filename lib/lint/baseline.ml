(* Grandfathered findings. The committed baseline is empty — the whole
   point of the PR that introduced qnet_lint was to fix every true
   positive — but the mechanism stays so a future rule can land before
   its last fix does, without loosening the exit code for new code. *)

type entry = { code : string; file : string; line : int }

let header =
  "# qnet_lint baseline: grandfathered findings, one per line as\n\
   # CODE<TAB>file<TAB>line. Regenerate with `qnet_lint --write-baseline`.\n\
   # An empty baseline is the healthy state.\n"

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char '\t' line with
    | [ code; file; ln ] -> (
        match int_of_string_opt ln with
        | Some n -> Ok (Some { code; file; line = n })
        | None -> Error (Printf.sprintf "baseline line %d: bad line number" lineno))
    | _ ->
        Error
          (Printf.sprintf
             "baseline line %d: expected CODE<TAB>file<TAB>line" lineno)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line lineno l with
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some e) -> go (lineno + 1) (e :: acc) rest
        | Error _ as err -> err)
  in
  go 1 [] lines

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          of_string (really_input_string ic len))
    with Sys_error msg -> Error msg

(* Baselines are committed and diffed, so entries must not depend on
   the walk order, the platform's directory separator, or how the
   root was spelled on the command line: normalize separators, strip
   any root/./ prefix, sort by (code, path, line) and drop exact
   duplicates. *)
let normalize_path path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let rec strip p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      strip (String.sub p 2 (String.length p - 2))
    else p
  in
  strip path

let entry_of_finding (f : Finding.t) =
  { code = f.Finding.code; file = normalize_path f.Finding.file;
    line = f.Finding.line }

let to_string findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  let entries =
    List.map entry_of_finding findings
    |> List.sort_uniq (fun a b ->
           match compare a.code b.code with
           | 0 -> (
               match compare a.file b.file with
               | 0 -> compare a.line b.line
               | c -> c)
           | c -> c)
  in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%d\n" e.code e.file e.line))
    entries;
  Buffer.contents buf

let save path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string findings))

let covers entries (f : Finding.t) =
  let file = normalize_path f.Finding.file in
  List.exists
    (fun e ->
      e.code = f.Finding.code
      && normalize_path e.file = file
      && e.line = f.Finding.line)
    entries
