(* In-source suppression of lint findings.

   A comment of the form

     (* qnet-lint: allow D001 sampler seeds the demo rng on purpose *)

   silences findings with that code. A trailing comment (code earlier
   on the same line) covers its own line; a standalone comment covers
   the first line after the comment ends. The reason is mandatory —
   a directive without one is itself reported (S001) so that
   suppressions stay auditable. *)

type kind = Allow | Racy_ok

type directive = {
  kind : kind;
  code : string;
  reason : string;
  covers : int;  (* line whose findings this directive silences *)
  at : int;  (* line the comment starts on *)
}

type scan_result = {
  directives : directive list;
  malformed : (int * string) list;
}

let prefix = "qnet-lint:"

let is_code_token s =
  String.length s >= 2
  && (match s.[0] with 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'A' .. 'Z' | '0' .. '9' -> true | _ -> false)
       s

(* Split on runs of blanks, at most once: (first word, rest). *)
let split_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.trim (String.sub s i (String.length s - i)))

(* racy-ok declares a cell deliberately racy, so it only makes sense
   for the concurrency rules (and is itself audited: a racy-ok that
   suppresses nothing is an S002 finding in --deep runs). *)
let concurrency_code code =
  String.length code >= 2
  && code.[0] = 'C'
  && String.for_all (function '0' .. '9' -> true | _ -> false)
       (String.sub code 1 (String.length code - 1))

let parse_directive ~start_line ~end_line ~standalone content acc =
  let body = String.trim content in
  let n = String.length prefix in
  if String.length body < n || String.sub body 0 n <> prefix then acc
  else begin
    let rest = String.trim (String.sub body n (String.length body - n)) in
    let verb, rest = split_word rest in
    let directives, malformed = acc in
    match
      match verb with
      | "allow" -> Some Allow
      | "racy-ok" -> Some Racy_ok
      | _ -> None
    with
    | None ->
        ( directives,
          (start_line, "unknown qnet-lint verb " ^ verb) :: malformed )
    | Some kind ->
        let code, reason = split_word rest in
        if not (is_code_token code) then
          ( directives,
            ( start_line,
              Printf.sprintf "qnet-lint: %s needs a rule code (e.g. %s)" verb
                (if kind = Racy_ok then "C001" else "D001") )
            :: malformed )
        else if kind = Racy_ok && not (concurrency_code code) then
          ( directives,
            ( start_line,
              Printf.sprintf
                "racy-ok only applies to concurrency rules (C...), not %s"
                code )
            :: malformed )
        else if reason = "" then
          ( directives,
            (start_line, Printf.sprintf "suppression of %s needs a reason" code)
            :: malformed )
        else
          let covers = if standalone then end_line + 1 else start_line in
          ( { kind; code; reason; covers; at = start_line } :: directives,
            malformed )
  end

(* A small lexer over the raw source: tracks strings, char literals
   and nested comments well enough to find comment bodies and to know
   whether a comment shares its first line with code. *)
let scan src =
  let n = String.length src in
  let line = ref 1 in
  let seen_code = ref false in
  let acc = ref ([], []) in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      seen_code := false;
      incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let standalone = not !seen_code in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      let in_str = ref false in
      i := !i + 2;
      while !depth > 0 && !i < n do
        let c = src.[!i] in
        bump c;
        if !in_str then begin
          if c = '\\' && !i + 1 < n then begin
            Buffer.add_char buf c;
            incr i;
            bump src.[!i];
            Buffer.add_char buf src.[!i]
          end
          else begin
            if c = '"' then in_str := false;
            Buffer.add_char buf c
          end;
          incr i
        end
        else if c = '"' then begin
          in_str := true;
          Buffer.add_char buf c;
          incr i
        end
        else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      acc :=
        parse_directive ~start_line ~end_line:!line ~standalone
          (Buffer.contents buf) !acc
    end
    else if c = '"' then begin
      seen_code := true;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        let c = src.[!i] in
        bump c;
        if c = '\\' && !i + 1 < n then begin
          incr i;
          bump src.[!i];
          incr i
        end
        else begin
          if c = '"' then fin := true;
          incr i
        end
      done
    end
    else if c = '\'' then begin
      seen_code := true;
      (* 'x' and '\n'-style literals; a lone quote is a type variable
         or primed identifier and consumes just itself *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        i := !i + 2;
        while !i < n && src.[!i] <> '\'' do
          bump src.[!i];
          incr i
        done;
        incr i
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\n' then
        i := !i + 3
      else incr i
    end
    else begin
      if c <> ' ' && c <> '\t' && c <> '\r' then seen_code := true;
      incr i
    end
  done;
  let directives, malformed = !acc in
  { directives = List.rev directives; malformed = List.rev malformed }

let find directives ~code ~line =
  List.find_opt (fun d -> d.code = code && d.covers = line) directives
