module Stats = Qnet_prob.Statistics
module Topologies = Qnet_des.Topologies
module Stem = Qnet_core.Stem

type observation = {
  structure : string;
  fraction : float;
  repetition : int;
  queue : int;
  service_error : float;
  waiting_error : float;
  true_waiting : float;
}

type config = {
  fractions : float list;
  repetitions : int;
  num_tasks : int;
  stem_iterations : int;
  seed : int;
}

let default_config =
  {
    fractions = [ 0.05; 0.10; 0.25 ];
    repetitions = 10;
    num_tasks = 1000;
    stem_iterations = 200;
    seed = 1;
  }

let quick_config =
  { default_config with repetitions = 2; num_tasks = 300; stem_iterations = 120 }

let true_mean_service = 0.2 (* all queues have mu = 5 in the paper's setup *)

let run ?(progress = fun _ -> ()) config =
  let out = ref [] in
  List.iteri
    (fun si (structure, net) ->
      List.iter
        (fun fraction ->
          for rep = 0 to config.repetitions - 1 do
            let seed =
              config.seed + (si * 7919) + (rep * 104729)
              + int_of_float (fraction *. 1e6)
            in
            let r =
              Common.run_pipeline ~iterations:config.stem_iterations ~seed ~fraction
                ~num_tasks:config.num_tasks net
            in
            let nq = Qnet_core.Event_store.num_queues r.Common.store in
            for q = 1 to nq - 1 do
              let tw = Common.true_mean_waiting r.Common.trace q in
              out :=
                {
                  structure;
                  fraction;
                  repetition = rep;
                  queue = q;
                  service_error =
                    Float.abs (r.Common.stem.Stem.mean_service.(q) -. true_mean_service);
                  waiting_error = Float.abs (r.Common.waiting.(q) -. tw);
                  true_waiting = tw;
                }
                :: !out
            done;
            progress
              (Printf.sprintf "fig4: %s fraction=%.2f rep=%d done" structure fraction rep)
          done)
        config.fractions)
    Topologies.paper_structures;
  List.rev !out

let summarize observations =
  let fractions =
    List.sort_uniq compare (List.map (fun o -> o.fraction) observations)
  in
  List.map
    (fun fraction ->
      let cell = List.filter (fun o -> o.fraction = fraction) observations in
      let service = Array.of_list (List.map (fun o -> o.service_error) cell) in
      let waiting = Array.of_list (List.map (fun o -> o.waiting_error) cell) in
      ( fraction,
        Stats.median service,
        Stats.quantile service 0.9,
        Stats.median waiting,
        Stats.quantile waiting 0.9 ))
    fractions

let print_report observations =
  Common.print_header
    "Figure 4: StEM accuracy vs fraction of arrivals observed (5 structures)";
  Common.print_row
    [ "fraction"; "serv-med"; "serv-p90"; "wait-med"; "wait-p90"; "n" ];
  List.iter
    (fun (fraction, sm, s90, wm, w90) ->
      let n =
        List.length (List.filter (fun o -> o.fraction = fraction) observations)
      in
      Common.print_row
        [
          Printf.sprintf "%.2f" fraction;
          Common.cell_f sm;
          Common.cell_f s90;
          Common.cell_f wm;
          Common.cell_f w90;
          string_of_int n;
        ])
    (summarize observations);
  (* the paper's headline: at 5% the median service error is 0.033 and
     the median waiting error 1.35; overloaded queues dominate the
     waiting error *)
  (match List.find_opt (fun (f, _, _, _, _) -> Float.equal f 0.05) (summarize observations) with
  | Some (_, sm, _, wm, _) ->
      Printf.printf
        "paper (5%%): serv-med 0.0330, wait-med 1.3500 | ours: serv-med %.4f, wait-med %.4f\n"
        sm wm
  | None -> ());
  let overloaded =
    List.filter (fun o -> o.true_waiting > 1.0) observations
  in
  if overloaded <> [] then begin
    let ratio =
      List.map (fun o -> o.true_waiting /. true_mean_service) overloaded
      |> Array.of_list |> Stats.median
    in
    Printf.printf
      "overloaded queues: median true waiting / service ratio = %.1fx (paper: \"an order of magnitude\")\n"
      ratio
  end

let to_csv observations =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "structure,fraction,repetition,queue,service_error,waiting_error,true_waiting\n";
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.4f,%d,%d,%.8g,%.8g,%.8g\n" o.structure o.fraction
           o.repetition o.queue o.service_error o.waiting_error o.true_waiting))
    observations;
  Buffer.contents buf
