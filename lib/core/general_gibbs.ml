module Rng = Qnet_prob.Rng
module D = Qnet_prob.Distributions
module Slice = Qnet_prob.Slice
module Store = Event_store
module Metrics = Qnet_obs.Metrics
module Clock = Qnet_obs.Clock

let m_sweep_seconds =
  lazy
    (Metrics.Histogram.create
       ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]
       ~help:"Wall time of one slice-sampling sweep (general service models)"
       "qnet_general_sweep_seconds")

let m_events =
  lazy
    (Metrics.Counter.create
       ~help:"Events resampled by general-service slice sweeps"
       "qnet_general_events_resampled_total")

(* Shrink-rate telemetry: the diagnostics hub reads these back by name
   (Diagnostics.register_metrics force-registers the same families), so
   a rising shrinks/steps ratio is visible on the dashboard as the
   slice conditionals getting peaky relative to their windows. *)
let m_slice_steps =
  lazy
    (Metrics.Counter.create ~help:"Slice-sampler transitions attempted"
       "qnet_slice_steps_total")

let m_slice_shrinks =
  lazy
    (Metrics.Counter.create
       ~help:"Shrink rejections inside slice transitions"
       "qnet_slice_shrinks_total")

(* Feasibility window: identical bounds to the exponential kernel
   (Gibbs.local_density); a test asserts they agree. *)
let window store f =
  let lower = ref (Store.start_service store f) in
  let upper = ref None in
  let tighten_upper u =
    match !upper with
    | None -> upper := Some u
    | Some u0 -> if u < u0 then upper := Some u
  in
  let e = Store.pi_inv store f in
  let g = Store.rho_inv store f in
  if e >= 0 then begin
    tighten_upper (Store.departure store e);
    let rho_e = Store.rho store e in
    if rho_e >= 0 && rho_e <> f then
      lower := Float.max !lower (Store.arrival store rho_e);
    let next_e = Store.rho_inv store e in
    if next_e >= 0 then tighten_upper (Store.arrival store next_e)
  end;
  if g >= 0 && g <> e then tighten_upper (Store.departure store g);
  (!lower, !upper)

let log_conditional store model f d =
  let lower, upper = window store f in
  let inside = d >= lower && (match upper with None -> true | Some u -> d <= u) in
  if not inside then neg_infinity
  else begin
    let qf = Store.queue store f in
    let b_f = Store.start_service store f in
    let acc = ref (Service_model.log_pdf model qf (d -. b_f)) in
    let e = Store.pi_inv store f in
    let g = Store.rho_inv store f in
    if e >= 0 then begin
      let qe = Store.queue store e in
      let de = Store.departure store e in
      let rho_e = Store.rho store e in
      let start_e =
        if rho_e < 0 || rho_e = f then d
        else Float.max d (Store.departure store rho_e)
      in
      acc := !acc +. Service_model.log_pdf model qe (de -. start_e)
    end;
    if g >= 0 && g <> e then begin
      let dg = Store.departure store g in
      let start_g = Float.max (Store.arrival store g) d in
      acc := !acc +. Service_model.log_pdf model qf (dg -. start_g)
    end;
    !acc
  end

let degenerate_width = 1e-12

let resample_event rng store model f =
  if Store.observed store f then
    invalid_arg "General_gibbs.resample_event: event is observed";
  let lower, upper = window store f in
  match upper with
  | None ->
      (* exact draw from the service distribution's tail case *)
      let s = D.sample rng (Service_model.service model (Store.queue store f)) in
      let s = if s > 0.0 then s else Float.min_float in
      Store.set_departure store f (lower +. s)
  | Some u ->
      if u -. lower <= degenerate_width then Store.set_departure store f lower
      else begin
        let density d = log_conditional store model f d in
        (* keep the slice seed strictly inside the window: densities
           like the lognormal vanish at zero service *)
        let pad = 1e-9 *. (u -. lower) in
        let current =
          Float.max (lower +. pad) (Float.min (u -. pad) (Store.departure store f))
        in
        let current =
          if Float.is_finite (density current) then current
          else 0.5 *. (lower +. u)
        in
        if Float.is_finite (density current) then begin
          let x, shrinks =
            Slice.step_stats rng ~log_density:density ~lower ~upper:u ~current
          in
          if Metrics.enabled () then begin
            Metrics.Counter.inc (Lazy.force m_slice_steps);
            if shrinks > 0 then
              Metrics.Counter.inc ~by:(float_of_int shrinks)
                (Lazy.force m_slice_shrinks)
          end;
          Store.set_departure store f x
        end
        (* else: pathological corner (measure zero) — keep the state *)
      end

let sweep ?(shuffle = false) rng store model =
  let order = Store.unobserved_events store in
  if shuffle then Rng.shuffle_in_place rng order;
  if not (Metrics.enabled ()) then
    Array.iter (fun f -> resample_event rng store model f) order
  else begin
    let t0 = Clock.now () in
    Array.iter (fun f -> resample_event rng store model f) order;
    Metrics.Histogram.observe (Lazy.force m_sweep_seconds) (Clock.now () -. t0);
    Metrics.Counter.inc ~by:(float_of_int (Array.length order)) (Lazy.force m_events)
  end

let run ?shuffle ~sweeps rng store model =
  if sweeps < 0 then invalid_arg "General_gibbs.run: negative sweep count";
  for _ = 1 to sweeps do
    sweep ?shuffle rng store model
  done
