(** The latent-variable view of a trace: the mutable state on which
    the Gibbs sampler operates.

    Every event [e = (k_e, σ_e, q_e, a_e, d_e)] of the paper's model
    (Section 2) is represented by a dense index. The only free
    variables are the {e departures}: by the deterministic constraint
    [a_e = d_{π(e)}], the arrival of an event is the departure of its
    within-task predecessor (0 for initial events), so the store keeps
    a single mutable [departure] array. Within-queue predecessor
    pointers ρ follow the {e true} arrival order of the trace and stay
    fixed throughout inference — this is the paper's "event counter"
    assumption, which guarantees that a Gibbs move only touches a
    bounded neighbourhood of the moved event.

    Indices follow the canonical ordering of [Trace.events] (sorted by
    task, then arrival). Pointer accessors return [-1] for "none". *)

type t

val of_trace : ?observed:bool array -> Qnet_trace.Trace.t -> t
(** [of_trace ~observed trace] builds the linked structure.
    [observed.(i)] marks the departure of event [i] (in the trace's
    canonical order) as measured and immutable; the default marks
    everything observed (a fully-observed store is useful for scoring
    and testing). Raises [Invalid_argument] if [observed] has the
    wrong length. *)

(** {1 Sizes} *)

val num_events : t -> int
val num_queues : t -> int
val num_tasks : t -> int

(** {1 Per-event accessors} *)

val task : t -> int -> int
val state : t -> int -> int
val queue : t -> int -> int

val arrival : t -> int -> float
(** [arrival t i] is [departure t (pi t i)], or [0.] for an initial
    event — always consistent with the current latent state. *)

val departure : t -> int -> float
val observed : t -> int -> bool

val start_service : t -> int -> float
(** [max (arrival t i) (departure t (rho t i))] — when event [i]'s
    service began under FIFO. *)

val service : t -> int -> float
(** [departure t i -. start_service t i]. *)

val waiting : t -> int -> float
(** [start_service t i -. arrival t i]. *)

val pi : t -> int -> int
(** Within-task predecessor ([-1] for initial events). *)

val pi_inv : t -> int -> int
(** Within-task successor ([-1] for a task's last event). *)

val rho : t -> int -> int
(** Within-queue predecessor in arrival order ([-1] for the first
    arrival at a queue). *)

val rho_inv : t -> int -> int
(** Within-queue successor ([-1] for the last arrival). *)

val set_departure : t -> int -> float -> unit
(** Overwrite a latent departure. Raises [Invalid_argument] on an
    observed event. No constraint checking — the sampler guarantees
    feasibility; call {!validate} in tests. *)

val move_event : t -> int -> queue:int -> unit
(** [move_event t i ~queue] re-homes event [i] to another queue: it is
    unlinked from its current within-queue (ρ) chain and inserted into
    the target chain at the position determined by its current arrival
    time. Used by the Metropolis–Hastings routing move ({!Qnet_core.
    Path_move}) when FSM paths are themselves uncertain. The chain
    structure stays consistent; service-time feasibility is the
    caller's responsibility (the M–H move rejects infeasible
    proposals). Raises [Invalid_argument] for initial events or the
    arrival queue. *)

(** {1 Topology} *)

val events_of_task : t -> int -> int array
(** Event indices of a task in path order. *)

val events_at_queue : t -> int -> int array
(** Event indices at a queue in (fixed) arrival order. *)

val unobserved_events : t -> int array
(** Indices with latent departures, ascending. *)

val arrival_queue : t -> int
(** The queue of the initial events (q0). *)

val generation : t -> int
(** Structure-generation counter: starts at 0 and increments every
    time the queue assignment or within-queue ρ chains change —
    {!move_event}, and {!restore} when the restored snapshot carries a
    different structure. Departure-only updates ({!set_departure},
    Gibbs sweeps, departure-only restores) never change it. Caches
    keyed on the event topology (e.g. a {!Parallel_gibbs} plan) record
    the generation at build time and compare it to detect staleness
    instead of silently operating on a rearranged store. *)

(** {1 Whole-state operations} *)

val to_trace : t -> Qnet_trace.Trace.t
(** Export the current latent state as a trace (revalidates). *)

val copy : t -> t
(** Deep copy (shares immutable topology, copies departures). *)

type snapshot = {
  s_departure : float array;
  s_queue : int array;
  s_rho : int array;
  s_rho_inv : int array;
  s_heads : int array;
}
(** The complete mutable state of a store — departures plus the queue
    assignment and within-queue chains that {!move_event} may have
    rearranged. Fields are exposed so a checkpoint codec can
    serialize them; treat them as read-only. *)

val snapshot : t -> snapshot
(** [snapshot t] captures the current mutable state (deep copy). *)

val restore : t -> snapshot -> unit
(** [restore t s] overwrites the mutable state of [t] with [s]. The
    snapshot must come from a store with the same topology (same event
    count and queue count); raises [Invalid_argument] on a dimension
    mismatch. No other validation is performed — callers restoring
    untrusted state should follow with {!validate}. *)

val validate : t -> (unit, string) result
(** Check every deterministic constraint of the model on the current
    state: non-negative services, per-queue arrival order consistent
    with the fixed ρ chains, observed departures untouched. *)

val log_likelihood : t -> Params.t -> float
(** Eq. 1's log-density of the current complete state (service-time
    factors only; the routing factors are constant because paths are
    held fixed). *)

val service_sufficient_stats : t -> (int * float) array
(** Per queue: event count and total service time under the current
    state — the sufficient statistics of the M-step. *)

val mean_waiting_by_queue : t -> float array
(** Mean waiting time per queue under the current state. *)

val mean_service_by_queue : t -> float array
(** Mean realized service time per queue under the current state. *)
