module Rng = Qnet_prob.Rng
module Piecewise = Qnet_prob.Piecewise
module Store = Event_store
module Metrics = Qnet_obs.Metrics
module Clock = Qnet_obs.Clock
module Prof = Qnet_obs.Prof

(* Telemetry handles, created on first use. Hot-path sites are gated
   on [Metrics.enabled] — one atomic load when instrumentation is off. *)
let sweep_buckets = [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let m_sweep_seconds =
  lazy
    (Metrics.Histogram.create ~buckets:sweep_buckets
       ~help:"Wall time of one Gibbs sweep over the unobserved events"
       "qnet_gibbs_sweep_seconds")

let m_event_seconds =
  lazy
    (Metrics.Histogram.create
       ~buckets:[| 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2 |]
       ~help:"Wall time to rebuild and resample one event's conditional"
       "qnet_gibbs_event_seconds")

let m_events =
  lazy
    (Metrics.Counter.create
       ~help:"Unobserved events resampled by Gibbs sweeps"
       "qnet_gibbs_events_resampled_total")

let m_kernel kind =
  Metrics.Counter.create ~labels:[ ("kind", kind) ]
    ~help:"Compiled conditional kind drawn from (point/tail/bounded)"
    "qnet_gibbs_kernel_total"

let m_kernel_point = lazy (m_kernel "point")
let m_kernel_tail = lazy (m_kernel "tail")
let m_kernel_bounded = lazy (m_kernel "bounded")

type local_density = {
  event : int;
  lower : float;
  upper : float option;
  linear : float;
  hinges : Piecewise.hinge list;
}

let local_density store params f =
  if Store.observed store f then
    invalid_arg "Gibbs.local_density: event is observed";
  let mu_f = Params.rate params (Store.queue store f) in
  let lower = ref (Store.start_service store f) in
  let upper = ref None in
  let linear = ref (-.mu_f) in
  let hinges = ref [] in
  let tighten_upper u =
    match !upper with
    | None -> upper := Some u
    | Some u0 -> if u < u0 then upper := Some u
  in
  let e = Store.pi_inv store f in
  let g = Store.rho_inv store f in
  (* Within-task successor e: its arrival is the value being moved. *)
  if e >= 0 then begin
    let mu_e = Params.rate params (Store.queue store e) in
    tighten_upper (Store.departure store e);
    let rho_e = Store.rho store e in
    if rho_e = f then
      (* The task queues directly behind itself: e's service starts at
         max(d, d) = d, so the term is linear in d with no breakpoint. *)
      linear := !linear +. mu_e
    else if rho_e < 0 then
      (* e is the first arrival at its queue: service starts at a_e = d. *)
      linear := !linear +. mu_e
    else begin
      (* Breakpoint where d overtakes the previous departure at e's
         queue; below it the term is constant. *)
      hinges := { Piecewise.knee = Store.departure store rho_e; slope = mu_e } :: !hinges;
      (* Keep e's position in its queue's arrival order. *)
      lower := Float.max !lower (Store.arrival store rho_e)
    end;
    let next_e = Store.rho_inv store e in
    if next_e >= 0 then tighten_upper (Store.arrival store next_e)
  end;
  (* Within-queue successor g: its FIFO service start is max(a_g, d). *)
  if g >= 0 && g <> e then begin
    tighten_upper (Store.departure store g);
    hinges := { Piecewise.knee = Store.arrival store g; slope = mu_f } :: !hinges
  end;
  { event = f; lower = !lower; upper = !upper; linear = !linear; hinges = !hinges }

let degenerate_width = 1e-12

let compile ld =
  match ld.upper with
  | None ->
      (* Only the self term remains: an exponential tail with rate
         mu_f = -linear (no hinges can exist without e or g). *)
      assert (ld.hinges = []);
      let rate = -.ld.linear in
      if Float.is_finite ld.lower && rate > 0.0 && Float.is_finite rate then
        `Tail (ld.lower, rate)
      else `Point ld.lower
  | Some u ->
      (* [not (width > eps)] rather than [width <= eps]: a NaN bound
         (corrupted latent state) must also collapse to a point rather
         than reach Piecewise.compile or poison the sample. *)
      if not (u -. ld.lower > degenerate_width) then
        `Point (if Float.is_nan ld.lower then u else ld.lower)
      else if not (Float.is_finite ld.lower && Float.is_finite u) then
        `Point (if Float.is_finite ld.lower then ld.lower else u)
      else
        `Bounded
          (Piecewise.compile ~lower:ld.lower ~upper:u ~linear:ld.linear
             ~hinges:ld.hinges)

let log_conditional ld x =
  let inside =
    x >= ld.lower && (match ld.upper with None -> true | Some u -> x <= u)
  in
  if not inside then neg_infinity
  else
    List.fold_left
      (fun acc { Piecewise.knee; slope } ->
        acc +. (slope *. Float.max 0.0 (x -. knee)))
      (ld.linear *. x) ld.hinges

let sample_compiled rng compiled =
  match compiled with
  | `Point x -> x
  | `Tail (origin, rate) -> origin +. (-.log (Rng.float_pos rng) /. rate)
  | `Bounded pw -> Piecewise.sample rng pw

let sample_local rng ld =
  let compiled = compile ld in
  if Metrics.enabled () then
    Metrics.Counter.inc
      (Lazy.force
         (match compiled with
         | `Point _ -> m_kernel_point
         | `Tail _ -> m_kernel_tail
         | `Bounded _ -> m_kernel_bounded));
  sample_compiled rng compiled

let sample_event rng store params f =
  sample_local rng (local_density store params f)

let resample_event rng store params f =
  Store.set_departure store f (sample_event rng store params f)

(* Telemetry fast path (DESIGN.md section 14): per-event clock reads
   and per-event counter bumps are too expensive to leave on — the
   event loop runs in ~400ns. Instead the enabled branch (a) tallies
   kernel kinds into local ints and flushes one Counter.inc per kind
   per sweep, and (b) stride-samples the per-event timing: every
   [timing_stride]-th event is bracketed by raw clock reads and
   observed with the weight of the events it stands for, so the
   histogram's count still matches the true event count while paying
   for two gettimeofday calls per 32 events instead of one per event. *)
let timing_stride = 32

let instrumented_sweep ~metrics ~profiling rng store params order =
  let t0 = if metrics then Clock.now () else 0.0 in
  let per_event = if metrics then Some (Lazy.force m_event_seconds) else None in
  let n = Array.length order in
  let pt = ref 0 and tl = ref 0 and bd = ref 0 in
  for k = 0 to n - 1 do
    let f = order.(k) in
    let timed = metrics && k land (timing_stride - 1) = 0 in
    let te = if timed then Clock.now_raw () else 0.0 in
    let compiled = compile (local_density store params f) in
    (match compiled with
    | `Point _ -> incr pt
    | `Tail _ -> incr tl
    | `Bounded _ -> incr bd);
    Store.set_departure store f (sample_compiled rng compiled);
    (* [timed] implies [metrics] implies the handle exists *)
    if timed then
      Metrics.Histogram.observe_n (Option.get per_event)
        ~n:(Int.min timing_stride (n - k))
        (Float.max 0.0 (Clock.now_raw () -. te));
    (* Probe at the same stride the timing samples use: frequent
       enough to catch collection stalls inside one sweep, rare
       enough that quick_stat stays off the per-event path. *)
    if profiling && k land (timing_stride - 1) = 0 then Prof.pause_probe ()
  done;
  if metrics then begin
    if !pt > 0 then
      Metrics.Counter.inc ~by:(float_of_int !pt) (Lazy.force m_kernel_point);
    if !tl > 0 then
      Metrics.Counter.inc ~by:(float_of_int !tl) (Lazy.force m_kernel_tail);
    if !bd > 0 then
      Metrics.Counter.inc ~by:(float_of_int !bd) (Lazy.force m_kernel_bounded);
    Metrics.Histogram.observe (Lazy.force m_sweep_seconds) (Clock.now () -. t0);
    Metrics.Counter.inc ~by:(float_of_int n) (Lazy.force m_events)
  end

let sweep ?(shuffle = false) rng store params =
  let order = Store.unobserved_events store in
  if shuffle then Rng.shuffle_in_place rng order;
  let metrics = Metrics.enabled () in
  let profiling = Prof.running () in
  if (not metrics) && not profiling then
    (* Plain path: zero clock reads, zero probes, zero Memprof
       callbacks from this module — two atomic loads per sweep. *)
    Array.iter (fun f -> resample_event rng store params f) order
  else if profiling then
    Prof.with_phase "gibbs.sweep" (fun () ->
        instrumented_sweep ~metrics ~profiling rng store params order)
  else instrumented_sweep ~metrics ~profiling rng store params order

let run ?shuffle ?(on_sweep = fun _ -> ()) ~sweeps rng store params =
  if sweeps < 0 then invalid_arg "Gibbs.run: negative sweep count";
  for s = 1 to sweeps do
    sweep ?shuffle rng store params;
    on_sweep s
  done
