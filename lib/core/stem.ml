module Store = Event_store
module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span
module Clock = Qnet_obs.Clock
module Diagnostics = Qnet_obs.Diagnostics
module Prof = Qnet_obs.Prof

let m_iteration_seconds =
  lazy
    (Metrics.Histogram.create
       ~buckets:[| 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]
       ~help:"Wall time of one StEM iteration (E-step sweep + M-step)"
       "qnet_stem_iteration_seconds")

let m_iterations =
  lazy
    (Metrics.Counter.create ~help:"StEM iterations completed"
       "qnet_stem_iterations_total")

(* M-step acceptance: a queue's rate is updated only when enough
   imputed services support it; held queues keep their previous rate. *)
let m_mstep_updates =
  lazy
    (Metrics.Counter.create
       ~help:"Per-queue M-step rate updates accepted (enough imputed services)"
       "qnet_stem_mstep_updates_total")

let m_mstep_holds =
  lazy
    (Metrics.Counter.create
       ~help:"Per-queue M-step rate updates held back (too few imputed services)"
       "qnet_stem_mstep_holds_total")

type config = {
  iterations : int;
  burn_in : int;
  warmup_sweeps : int;
  init_strategy : Init.strategy;
  shuffle : bool;
  min_queue_events : int;
  prior_strength : float;
}

let default_config =
  {
    iterations = 200;
    burn_in = 100;
    warmup_sweeps = 10;
    init_strategy = Init.Targeted;
    shuffle = true;
    min_queue_events = 1;
    prior_strength = 0.05;
  }

type result = {
  params : Params.t;
  params_last : Params.t;
  history : Params.t array;
  mean_service : float array;
  log_likelihood_history : float array;
}

let initial_guess store =
  let nq = Store.num_queues store in
  let m = Store.num_events store in
  let q0 = Store.arrival_queue store in
  let horizon = ref 0.0 in
  for i = 0 to m - 1 do
    if Store.observed store i then
      horizon := Float.max !horizon (Store.departure store i)
  done;
  let horizon = if !horizon > 0.0 then !horizon else 1.0 in
  let mean_service_guess q =
    let order = Store.events_at_queue store q in
    let n = Array.length order in
    (* (a) Exact services where the whole neighbourhood is observed. *)
    let exact_sum = ref 0.0 and exact_count = ref 0 in
    (* (b) Mean response of observed events: upper bound on service
       (meaningless at q0, where "response" is the entry time). *)
    let resp_sum = ref 0.0 and resp_count = ref 0 in
    (* (c) Mean inter-departure gap between observed events at known
       order indices — the event counter makes the index gap known.
       At q0 this estimates 1/λ exactly; elsewhere it upper-bounds the
       mean service via utilization <= 1. *)
    let first = ref None and last = ref None in
    Array.iteri
      (fun k i ->
        let obs j = j < 0 || Store.observed store j in
        if Store.observed store i then begin
          (match !first with None -> first := Some (k, Store.departure store i) | Some _ -> ());
          last := Some (k, Store.departure store i);
          if obs (Store.pi store i) && obs (Store.rho store i) then begin
            exact_sum := !exact_sum +. Store.service store i;
            incr exact_count
          end
          else if q <> q0 && obs (Store.pi store i) then begin
            resp_sum := !resp_sum +. (Store.departure store i -. Store.arrival store i);
            incr resp_count
          end
        end)
      order;
    let candidates = ref [] in
    if !exact_count >= 3 && !exact_sum > 0.0 then
      candidates := (!exact_sum /. float_of_int !exact_count) :: !candidates;
    if !resp_count >= 3 && !resp_sum > 0.0 then
      candidates := (!resp_sum /. float_of_int !resp_count) :: !candidates;
    (match (!first, !last) with
    | Some (k0, d0), Some (k1, d1) when k1 > k0 && d1 > d0 ->
        candidates := ((d1 -. d0) /. float_of_int (k1 - k0)) :: !candidates
    | _ -> ());
    match !candidates with
    | [] ->
        (* no observation at this queue at all: fall back to the
           horizon-based throughput bound *)
        Float.min (horizon /. float_of_int (Stdlib.max n 1)) horizon
    | cs ->
        (* every candidate is an upper bound on the mean service (or,
           at q0, an estimate of it); take the tightest *)
        List.fold_left Float.min infinity cs
  in
  let rates =
    Array.init nq (fun q -> 1.0 /. Float.max 1e-9 (mean_service_guess q))
  in
  Params.create ~rates ~arrival_queue:q0

let mle_step ?prior store ~previous ~min_queue_events =
  let stats = Store.service_sufficient_stats store in
  let instrumented = Metrics.enabled () in
  Params.map_rates previous (fun q prev ->
      let count, total = stats.(q) in
      if count >= min_queue_events && total > 0.0 then begin
        if instrumented then Metrics.Counter.inc (Lazy.force m_mstep_updates);
        match prior with
        | None -> float_of_int count /. total
        | Some (strength, anchor) ->
            (* MAP under a Gamma prior with pseudo-service mass
               [strength * count * anchor mean]: invisible when the
               imputed services carry real information, but it stops
               the collapse feedback (rates ratcheting to infinity by
               hiding all time in density-free waiting) that pure
               maximum likelihood allows under very sparse
               observation. *)
            let pseudo = strength *. float_of_int count *. Params.mean_service anchor q in
            (float_of_int count +. 1.0) /. (total +. pseudo)
      end
      else begin
        if instrumented then Metrics.Counter.inc (Lazy.force m_mstep_holds);
        prev
      end)

let run_impl ~config ?init ?route_fsm ~diag_chain ~on_iteration rng store =
  if config.iterations < 1 then invalid_arg "Stem.run: need at least one iteration";
  if config.burn_in < 0 || config.burn_in >= config.iterations then
    invalid_arg "Stem.run: burn_in must be in [0, iterations)";
  let params0 = match init with Some p -> p | None -> initial_guess store in
  (match Init.feasible ~strategy:config.init_strategy ~target:params0 store with
  | Ok () -> ()
  | Error msg -> failwith ("Stem.run: initialization failed: " ^ msg));
  Span.with_span "stem.warmup" (fun () ->
      Prof.with_phase "stem.warmup" (fun () ->
          Gibbs.run ~shuffle:config.shuffle ~sweeps:config.warmup_sweeps rng
            store params0));
  let history = Array.make config.iterations params0 in
  let llh = Array.make config.iterations nan in
  let params = ref params0 in
  let instrumented = Metrics.enabled () in
  if instrumented then
    Diagnostics.set_arrival_queue Diagnostics.default (Store.arrival_queue store);
  for it = 0 to config.iterations - 1 do
    let t0 = if instrumented then Clock.now () else 0.0 in
    Prof.with_phase "stem.iteration" (fun () ->
    (* Stochastic E-step: one sweep under the current parameters, plus
       a routing sweep when paths are uncertain. *)
    Gibbs.sweep ~shuffle:config.shuffle rng store !params;
    (match route_fsm with
    | Some fsm -> ignore (Path_move.sweep rng store !params fsm)
    | None -> ());
    (* M-step (MAP when prior_strength > 0). *)
    let prior =
      if config.prior_strength > 0.0 then Some (config.prior_strength, params0)
      else None
    in
    params :=
      Prof.with_phase "stem.mstep" (fun () ->
          mle_step ?prior store ~previous:!params
            ~min_queue_events:config.min_queue_events);
    history.(it) <- !params;
    llh.(it) <-
      Prof.with_phase "stem.loglik" (fun () ->
          Store.log_likelihood store !params));
    if instrumented then begin
      Metrics.Histogram.observe (Lazy.force m_iteration_seconds) (Clock.now () -. t0);
      Metrics.Counter.inc (Lazy.force m_iterations);
      (* Convergence diagnostics track the realized (imputed) per-queue
         means of this iterate — the same stochastic quantity the
         supervisor samples — not the smoothed parameter estimate. *)
      Diagnostics.observe_iteration Diagnostics.default ~chain:diag_chain
        ~waiting:(Store.mean_waiting_by_queue store)
        (Store.mean_service_by_queue store);
      Diagnostics.gc_tick Diagnostics.default
    end;
    on_iteration it !params
  done;
  (* Average post-burn-in iterates in mean-service space. *)
  let nq = Store.num_queues store in
  let kept = config.iterations - config.burn_in in
  let mean_service = Array.make nq 0.0 in
  for it = config.burn_in to config.iterations - 1 do
    for q = 0 to nq - 1 do
      mean_service.(q) <-
        mean_service.(q) +. (Params.mean_service history.(it) q /. float_of_int kept)
    done
  done;
  let averaged =
    Params.create
      ~rates:(Array.map (fun s -> 1.0 /. s) mean_service)
      ~arrival_queue:(Store.arrival_queue store)
  in
  {
    params = averaged;
    params_last = !params;
    history;
    mean_service;
    log_likelihood_history = llh;
  }

let run ?(config = default_config) ?init ?route_fsm ?(diag_chain = 0)
    ?(on_iteration = fun _ _ -> ()) rng store =
  Span.with_span "stem.run" (fun () ->
      run_impl ~config ?init ?route_fsm ~diag_chain ~on_iteration rng store)

let estimate_waiting ?(sweeps = 100) ?(burn_in = 50) rng store params =
  if burn_in < 0 || burn_in >= sweeps then
    invalid_arg "Stem.estimate_waiting: burn_in must be in [0, sweeps)";
  Span.with_span "stem.estimate_waiting" (fun () ->
      Prof.with_phase "stem.estimate_waiting" @@ fun () ->
      let nq = Store.num_queues store in
      let acc = Array.make nq 0.0 in
      let kept = sweeps - burn_in in
      for sweep = 0 to sweeps - 1 do
        Gibbs.sweep ~shuffle:true rng store params;
        if sweep >= burn_in then begin
          let w = Store.mean_waiting_by_queue store in
          for q = 0 to nq - 1 do
            acc.(q) <- acc.(q) +. (w.(q) /. float_of_int kept)
          done
        end
      done;
      acc)

let run_chains ?(config = default_config) ?(chains = 4) ~seed make_store =
  if chains < 2 then invalid_arg "Stem.run_chains: need at least two chains";
  let results =
    Array.init chains (fun c ->
        let rng = Qnet_prob.Rng.create ~seed:(seed + (c * 7919)) () in
        run ~config ~diag_chain:c rng (make_store ()))
  in
  let nq = Params.num_queues results.(0).params in
  let kept = config.iterations - config.burn_in in
  let rhat =
    Array.init nq (fun q ->
        let traces =
          Array.map
            (fun r ->
              Array.init kept (fun i ->
                  Params.mean_service r.history.(config.burn_in + i) q))
            results
        in
        Qnet_prob.Statistics.gelman_rubin traces)
  in
  (results, rhat)
