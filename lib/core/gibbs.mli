(** The Gibbs sampler for M/M/1/FIFO queueing networks (Section 3 of
    the paper).

    Each move resamples the departure time [d] of one unobserved event
    [f] — equivalently the arrival time of its within-task successor —
    holding fixed the FSM paths and the per-queue arrival orders. The
    full conditional [p(d | everything else)] factors into at most
    three exponential service-time terms:

    - the service of [f] itself: [-μ_f · (d − max(a_f, d_ρ(f)))];
    - the service of [f]'s within-queue successor [g = ρ⁻¹(f)], whose
      service under FIFO starts at [max(a_g, d)]:
      [-μ_f · (d_g − max(a_g, d))];
    - the service of [f]'s within-task successor [e = π⁻¹(f)], which
      arrives at [a_e = d]: [-μ_e · (d_e − max(d, d_ρ(e)))];

    subject to box constraints keeping every service non-negative and
    the arrival order at [e]'s queue unchanged. The result is a
    piecewise log-linear density with at most two interior breakpoints
    — exactly the paper's Figure 3 / Eq. (3)–(4) sampler, including the
    δμ = μ_e − μ_f middle piece — which is sampled exactly via
    {!Qnet_prob.Piecewise}. The derivation here additionally covers
    the cases the paper's formula leaves implicit: missing neighbours,
    the task's final event, initial (q0) events, and a task queueing
    directly behind itself at the same queue ([g = e]). *)

type local_density = {
  event : int;
  lower : float;  (** hard lower bound L *)
  upper : float option;  (** hard upper bound U; [None] = unbounded tail *)
  linear : float;  (** global log-density slope *)
  hinges : Qnet_prob.Piecewise.hinge list;
      (** breakpoint terms from the two [max] expressions *)
}

val local_density : Event_store.t -> Params.t -> int -> local_density
(** The full-conditional shape for one unobserved event. Raises
    [Invalid_argument] if the event's departure is observed. *)

val compile :
  local_density -> [ `Bounded of Qnet_prob.Piecewise.t | `Tail of float * float | `Point of float ]
(** [`Bounded pw] for a finite window, [`Tail (origin, rate)] for an
    exponential right tail [origin + Exp rate], [`Point x] when the
    window is degenerate: width below 1e-12, negative, or involving a
    non-finite bound (a corrupted latent neighbourhood collapses to a
    point instead of raising or emitting NaN — the runtime's health
    checker is responsible for flagging the corruption itself). *)

val log_conditional : local_density -> float -> float
(** Unnormalized conditional log-density at a point (≡ the relevant
    terms of Eq. 1 up to a constant); [neg_infinity] outside the
    window. For tests. *)

val sample_event : Qnet_prob.Rng.t -> Event_store.t -> Params.t -> int -> float
(** Draw a new departure for one event from its full conditional (does
    not write it back). *)

val resample_event : Qnet_prob.Rng.t -> Event_store.t -> Params.t -> int -> unit
(** {!sample_event} and write back via [Event_store.set_departure]. *)

val sweep :
  ?shuffle:bool -> Qnet_prob.Rng.t -> Event_store.t -> Params.t -> unit
(** One full Gibbs sweep: resample every unobserved event once, in
    index order, or in a fresh uniform random order when [shuffle]
    (default [false]). *)

val run :
  ?shuffle:bool ->
  ?on_sweep:(int -> unit) ->
  sweeps:int ->
  Qnet_prob.Rng.t ->
  Event_store.t ->
  Params.t ->
  unit
(** [run ~sweeps rng store params] applies {!sweep} [sweeps] times.
    [on_sweep] is called after each sweep with the 1-based sweep
    number — the hook point used by the fault-tolerant runtime for
    periodic validation and checkpointing. The hook must not consume
    [rng] if reproducibility across checkpoint/resume matters. *)
