module Rng = Qnet_prob.Rng
module Store = Event_store

type t = {
  classes : int array array; (* per colour: the latent events of that colour *)
  num_domains : int;
  generation : int; (* Store.generation at plan time; staleness guard *)
}

(* Everything a move on [f] reads (beyond its own departure): the
   write set is only d_f, so two latent events conflict iff one is in
   the other's read set. *)
let blanket store f =
  let acc = ref [] in
  let add i = if i >= 0 then acc := i :: !acc in
  let p = Store.pi store f in
  let r = Store.rho store f in
  let e = Store.pi_inv store f in
  let g = Store.rho_inv store f in
  add p;
  add r;
  add e;
  add g;
  if e >= 0 then begin
    let re = Store.rho store e in
    add re;
    if re >= 0 then add (Store.pi store re);
    let ne = Store.rho_inv store e in
    add ne;
    if ne >= 0 then add (Store.pi store ne)
  end;
  if g >= 0 then add (Store.pi store g);
  !acc

let plan ?num_domains store =
  let num_domains =
    match num_domains with
    | Some d ->
        if d < 1 then invalid_arg "Parallel_gibbs.plan: need >= 1 domain";
        d
    | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1)
  in
  let latent = Store.unobserved_events store in
  let is_latent = Array.make (Store.num_events store) false in
  Array.iter (fun i -> is_latent.(i) <- true) latent;
  (* adjacency over latent events *)
  let neighbours = Hashtbl.create (Array.length latent * 2) in
  let add_edge a b =
    if a <> b then begin
      let cur = try Hashtbl.find neighbours a with Not_found -> [] in
      Hashtbl.replace neighbours a (b :: cur)
    end
  in
  Array.iter
    (fun f ->
      List.iter
        (fun x ->
          if is_latent.(x) then begin
            add_edge f x;
            add_edge x f
          end)
        (blanket store f))
    latent;
  (* greedy colouring in index order *)
  let color = Hashtbl.create (Array.length latent) in
  let max_color = ref 0 in
  Array.iter
    (fun f ->
      let used =
        List.filter_map
          (fun x -> Hashtbl.find_opt color x)
          (try Hashtbl.find neighbours f with Not_found -> [])
      in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      let c = first_free 0 in
      Hashtbl.replace color f c;
      if c > !max_color then max_color := c)
    latent;
  let classes = Array.make (!max_color + 1) [] in
  (* reverse order so the final arrays are in ascending event order *)
  for k = Array.length latent - 1 downto 0 do
    let f = latent.(k) in
    let c = Hashtbl.find color f in
    classes.(c) <- f :: classes.(c)
  done;
  {
    classes = Array.map Array.of_list classes;
    num_domains;
    generation = Store.generation store;
  }

let num_colors t = Array.length t.classes
let num_domains t = t.num_domains
let is_stale t store = Store.generation store <> t.generation
let refresh t store = if is_stale t store then plan ~num_domains:t.num_domains store else t

let check_fresh who t store =
  if is_stale t store then
    invalid_arg
      (Printf.sprintf
         "%s: stale plan (event-store structure changed: plan generation %d, store \
          generation %d); rebuild with Parallel_gibbs.plan or Parallel_gibbs.refresh"
         who t.generation (Store.generation store))

let process_slice rng store params events lo hi =
  for k = lo to hi - 1 do
    Gibbs.resample_event rng store params events.(k)
  done

let sweep rng t store params =
  check_fresh "Parallel_gibbs.sweep" t store;
  Array.iter
    (fun events ->
      let n = Array.length events in
      if n > 0 then begin
        let d = Stdlib.min t.num_domains (Stdlib.max 1 (n / 16)) in
        if d <= 1 then begin
          let local = Rng.split rng in
          process_slice local store params events 0 n
        end
        else begin
          (* per-domain independent streams, derived from the sweep rng *)
          let streams = Array.init d (fun _ -> Rng.split rng) in
          let chunk = (n + d - 1) / d in
          let workers =
            Array.init (d - 1) (fun w ->
                let lo = (w + 1) * chunk in
                let hi = Stdlib.min n (lo + chunk) in
                Domain.spawn (fun () ->
                    if lo < hi then
                      process_slice streams.(w + 1) store params events lo hi))
          in
          process_slice streams.(0) store params events 0 (Stdlib.min chunk n);
          Array.iter Domain.join workers
        end
      end)
    t.classes

let run ~sweeps rng t store params =
  if sweeps < 0 then invalid_arg "Parallel_gibbs.run: negative sweep count";
  check_fresh "Parallel_gibbs.run" t store;
  for _ = 1 to sweeps do
    sweep rng t store params
  done
