(** Stochastic EM for queueing-network parameters (Section 4 of the
    paper).

    Each iteration replaces the unobserved departures with {e one}
    Gibbs sweep (the stochastic E-step) and then applies the
    closed-form exponential MLE to the imputed complete data (the
    M-step): [μ̂_q = n_q / Σ_e s_e], with the arrival rate λ̂ arising
    as the rate of the arrival queue q0. Point estimates average the
    post-burn-in iterates, which tames the stationary jitter StEM is
    known for. *)

type config = {
  iterations : int;  (** total StEM iterations (default 200) *)
  burn_in : int;  (** iterations discarded before averaging (default 100) *)
  warmup_sweeps : int;
      (** Gibbs sweeps under the initial parameters before the first
          M-step, letting the latent state decorrelate from the
          initializer (default 10) *)
  init_strategy : Init.strategy;  (** default [Targeted] *)
  shuffle : bool;  (** randomize sweep order each iteration (default true) *)
  min_queue_events : int;
      (** M-step guard: queues with fewer imputed events than this
          keep their previous rate (default 1) *)
  prior_strength : float;
      (** MAP stabilizer: a Gamma prior contributing
          [strength · n_q · (initial mean service)] of pseudo service
          mass per queue. The complete-data likelihood is unbounded
          (all time can hide in density-free waiting while rates grow
          without limit), and under very sparse observation raw StEM
          can ratchet into that degeneracy; a small value (default
          0.05) caps the divergence at a few percent of bias. Set 0
          to recover the paper's plain MLE M-step. *)
}

val default_config : config

type result = {
  params : Params.t;  (** post-burn-in average (in mean-service space) *)
  params_last : Params.t;  (** final iterate *)
  history : Params.t array;  (** every iterate, for diagnostics *)
  mean_service : float array;  (** [1/μ̂_q] per queue, the Figure 4/5 estimate *)
  log_likelihood_history : float array;
      (** complete-data log-likelihood after each iteration *)
}

val initial_guess : Event_store.t -> Params.t
(** A data-driven starting point computed from observed values only:
    exact service MLE where an event's full neighbourhood is observed,
    the inverse mean observed response time otherwise, and a
    throughput-based estimate as the last resort. *)

val mle_step :
  ?prior:float * Params.t ->
  Event_store.t ->
  previous:Params.t ->
  min_queue_events:int ->
  Params.t
(** The M-step on the current imputed state: per-queue exponential
    rate MLE, or MAP when [prior] = (strength, anchor params) is
    given. *)

val run :
  ?config:config ->
  ?init:Params.t ->
  ?route_fsm:Qnet_fsm.Fsm.t ->
  ?diag_chain:int ->
  ?on_iteration:(int -> Params.t -> unit) ->
  Qnet_prob.Rng.t ->
  Event_store.t ->
  result
(** [run rng store] initializes the latent state ({!Init.feasible}),
    warms up, and runs StEM. [init] overrides {!initial_guess}.
    When metrics are enabled, every iteration feeds the realized
    per-queue means into {!Qnet_obs.Diagnostics.default} under chain
    id [diag_chain] (default 0 — set it when running several chains in
    one process so their traces stay separate).
    When [route_fsm] is given, the routing of unobserved events is
    treated as latent too: every E-step additionally runs one
    Metropolis–Hastings routing sweep ({!Path_move.sweep}) under that
    FSM — the paper's "outer Metropolis-Hastings step" for unknown
    paths. The store is left at the final imputed state. Raises
    [Failure] if initialization fails (inconsistent observations).
    [on_iteration] is called after each M-step with the 0-based
    iteration index and the fresh iterate — a progress/monitoring
    hook (the fault-tolerant runtime in [Qnet_runtime] drives its own
    loop to be able to roll back, but external monitors use this). *)

val estimate_waiting :
  ?sweeps:int ->
  ?burn_in:int ->
  Qnet_prob.Rng.t ->
  Event_store.t ->
  Params.t ->
  float array
(** Posterior-mean waiting time per queue under fixed parameters
    (the paper's final step): run the Gibbs sampler for [sweeps]
    (default 100) sweeps, discard [burn_in] (default 50), and average
    each queue's mean waiting time across retained sweeps. *)

val run_chains :
  ?config:config ->
  ?chains:int ->
  seed:int ->
  (unit -> Event_store.t) ->
  result array * float array
(** [run_chains ~seed make_store] runs [chains] (default 4)
    independent StEM chains — fresh stores from [make_store], distinct
    seeds derived from [seed] — and returns the per-chain results
    together with the Gelman–Rubin R̂ of each queue's mean-service
    trajectory (post-burn-in). Values near 1 certify that the reported
    estimates do not depend on the Monte Carlo path; the experiment
    harness treats R̂ > 1.2 as a red flag. Caveat: statistics that are
    almost deterministic within a chain — notably the arrival rate,
    whose sufficient statistic telescopes to the (anchored) horizon —
    have vanishing within-chain variance and can show inflated R̂
    while agreeing across chains to a fraction of a percent; compare
    the actual estimates in that case. *)
