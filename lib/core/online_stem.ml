module Trace = Qnet_trace.Trace
module Store = Event_store
module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span
module Clock = Qnet_obs.Clock

let m_window_seconds =
  lazy
    (Metrics.Histogram.create
       ~buckets:[| 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]
       ~help:"Wall time to fit one online window" "qnet_online_window_seconds")

let m_windows kind =
  Metrics.Counter.create ~labels:[ ("status", kind) ]
    ~help:"Online windows fitted vs. skipped for lack of tasks"
    "qnet_online_windows_total"

let m_windows_run = lazy (m_windows "run")
let m_windows_skipped = lazy (m_windows "skipped")

let m_tasks_dropped =
  lazy
    (Metrics.Counter.create
       ~help:"Tasks dropped during online windowing (corrupt or missing entry events)"
       "qnet_online_tasks_dropped_total")

type step = {
  window : float * float;
  num_tasks : int;
  params : Params.t;
  mean_service : float array;
}

type config = { num_windows : int; iterations : int; min_tasks : int }

let default_config = { num_windows = 6; iterations = 80; min_tasks = 10 }

(* entry time of each task = departure of its initial event *)
let entry_times trace =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      if Float.equal e.Trace.arrival 0.0 then Hashtbl.replace tbl e.Trace.task e.Trace.departure)
    trace.Trace.events;
  tbl

let run ?(config = default_config) ?init ?(on_window = fun _ -> ())
    ?(on_warning = fun _ -> ()) rng trace ~mask =
  if config.num_windows < 1 then invalid_arg "Online_stem.run: need >= 1 window";
  if Array.length mask <> Array.length trace.Trace.events then
    invalid_arg "Online_stem.run: mask length mismatch";
  let entries = entry_times trace in
  (* A corrupted logger field must cost one task, not the whole
     trajectory: drop tasks whose entry timestamp is NaN/±inf. *)
  let corrupt =
    Hashtbl.fold
      (fun task t acc -> if Float.is_finite t then acc else task :: acc)
      entries []
  in
  if corrupt <> [] then begin
    List.iter (Hashtbl.remove entries) corrupt;
    if Metrics.enabled () then
      Metrics.Counter.inc
        ~by:(float_of_int (List.length corrupt))
        (Lazy.force m_tasks_dropped);
    on_warning
      (Printf.sprintf "dropped %d task(s) with non-finite entry timestamps"
         (List.length corrupt))
  end;
  (* Tasks with no entry event at all (malformed ingestion) cannot be
     assigned to a window. *)
  let missing = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      if not (Hashtbl.mem entries e.Trace.task) then
        Hashtbl.replace missing e.Trace.task ())
    trace.Trace.events;
  if Hashtbl.length missing > 0 then begin
    if Metrics.enabled () then
      Metrics.Counter.inc
        ~by:(float_of_int (Hashtbl.length missing))
        (Lazy.force m_tasks_dropped);
    on_warning
      (Printf.sprintf "dropped %d task(s) with no usable entry event"
         (Hashtbl.length missing))
  end;
  if Hashtbl.length entries = 0 then
    invalid_arg "Online_stem.run: no task has a finite entry timestamp";
  (* Windows are assigned by timestamp value, so out-of-order arrival
     of entries is harmless (equivalent to sorting first) — but it
     usually means the ingestion pipeline reordered the log, which is
     worth flagging. *)
  let by_task =
    Hashtbl.fold (fun task t acc -> (task, t) :: acc) entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let ordered =
    fst
      (List.fold_left
         (fun (ok, prev) (_, t) -> (ok && t >= prev, Float.max prev t))
         (true, neg_infinity) by_task)
  in
  if not ordered then
    on_warning
      "entry timestamps out of task order; windows assigned by timestamp \
       value (equivalent to sorting)";
  let lo = List.fold_left (fun acc (_, t) -> Float.min acc t) infinity by_task in
  let hi =
    List.fold_left (fun acc (_, t) -> Float.max acc t) neg_infinity by_task
  in
  let width =
    let w = (hi -. lo) /. float_of_int config.num_windows in
    if w > 0.0 then w
    else begin
      (* every surviving task entered at the same instant: fall back to
         unit-width windows so [t0 < t1] always holds and window 0
         takes all tasks, instead of producing an empty or inverted
         window *)
      on_warning
        "degenerate time span: all entry timestamps coincide; using \
         unit-width windows";
      1.0
    end
  in
  let window_of task =
    match Hashtbl.find_opt entries task with
    | None -> -1 (* dropped task: matches no window *)
    | Some t ->
        Stdlib.min (config.num_windows - 1) (int_of_float ((t -. lo) /. width))
  in
  let steps = ref [] in
  let previous = ref init in
  for w = 0 to config.num_windows - 1 do
    let t0 = lo +. (float_of_int w *. width) in
    let t1 = t0 +. width in
    (* Whole tasks whose entry falls in the window, with their mask.
       Times are shifted so the window starts near 0: the q0 service
       sum telescopes to the last entry time, so without the shift the
       window's arrival-rate estimate would absorb all the time since
       the trace began. *)
    let shift e =
      {
        e with
        Trace.arrival = (if Float.equal e.Trace.arrival 0.0 then 0.0 else e.Trace.arrival -. t0);
        departure = e.Trace.departure -. t0;
      }
    in
    let events = ref [] and mask_rev = ref [] in
    Array.iteri
      (fun i e ->
        if window_of e.Trace.task = w then begin
          events := shift e :: !events;
          mask_rev := mask.(i) :: !mask_rev
        end)
      trace.Trace.events;
    let events = List.rev !events in
    let sub_mask = Array.of_list (List.rev !mask_rev) in
    let num_tasks =
      List.sort_uniq compare (List.map (fun e -> e.Trace.task) events) |> List.length
    in
    if num_tasks >= config.min_tasks then begin
      let t_start = if Metrics.enabled () then Clock.now () else 0.0 in
      Span.with_span "online.window"
        ~attrs:
          [ ("window", string_of_int w); ("tasks", string_of_int num_tasks) ]
      @@ fun () ->
      let sub_trace = Trace.create ~num_queues:trace.Trace.num_queues events in
      (* Trace.create sorts by (task, arrival): rebuild the mask in that
         order by matching (task, departure) keys *)
      let key e = (e.Trace.task, e.Trace.queue, e.Trace.departure) in
      let mask_by_key = Hashtbl.create (Array.length sub_mask) in
      List.iteri
        (fun i e -> Hashtbl.replace mask_by_key (key e) sub_mask.(i))
        events;
      let observed =
        Array.map (fun e -> Hashtbl.find mask_by_key (key e)) sub_trace.Trace.events
      in
      let store = Store.of_trace ~observed sub_trace in
      let stem_config =
        {
          Stem.default_config with
          Stem.iterations = config.iterations;
          burn_in = config.iterations / 2;
        }
      in
      let result =
        match !previous with
        | None -> Stem.run ~config:stem_config rng store
        | Some p -> Stem.run ~config:stem_config ~init:p rng store
      in
      previous := Some result.Stem.params;
      let step =
        {
          window = (t0, t1);
          num_tasks;
          params = result.Stem.params;
          mean_service = result.Stem.mean_service;
        }
      in
      on_window step;
      steps := step :: !steps;
      if Metrics.enabled () then begin
        Metrics.Histogram.observe (Lazy.force m_window_seconds)
          (Clock.now () -. t_start);
        Metrics.Counter.inc (Lazy.force m_windows_run)
      end
    end
    else if Metrics.enabled () then
      Metrics.Counter.inc (Lazy.force m_windows_skipped)
  done;
  List.rev !steps

let arrival_rate_trajectory steps =
  List.map
    (fun s ->
      let t0, t1 = s.window in
      (0.5 *. (t0 +. t1), Params.arrival_rate s.params))
    steps
