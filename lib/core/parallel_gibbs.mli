(** Chromatic parallel Gibbs sweeps on OCaml 5 domains — the
    "distributed inference" direction the paper's §6 closes with.

    A Gibbs move on event [f] reads and writes only [f]'s Markov
    blanket (its π/ρ neighbours and their π-predecessors, at most nine
    events). Two unobserved events whose blankets are disjoint can
    therefore be resampled {e concurrently} without changing the
    chain's stationary distribution — the classic chromatic Gibbs
    sampler: colour the conflict graph so no two adjacent latent
    events share a colour, then process each colour class in parallel,
    classes in sequence.

    The colouring is computed once per store (the conflict graph is
    the fixed event topology) and reused across sweeps. Each domain
    samples from its own {!Qnet_prob.Rng} stream, so runs are
    deterministic {e given the number of domains} but differ between
    domain counts (the per-event streams regroup).

    With one domain this is exactly {!Gibbs.sweep} in colour order. *)

type t
(** A reusable parallel sweep plan for one store (colouring + per-class
    event lists). *)

val plan : ?num_domains:int -> Event_store.t -> t
(** [plan store] colours the store's unobserved events.
    [num_domains] defaults to [Domain.recommended_domain_count - 1],
    at least 1. The plan records the store's structure generation
    ({!Event_store.generation}): it is invalidated by
    {!Event_store.move_event} and by structure-changing
    {!Event_store.restore} (the conflict graph changes), and
    {!sweep}/{!run} refuse to use it afterwards. Rebuild with [plan]
    or {!refresh} after routing moves. *)

val num_colors : t -> int
val num_domains : t -> int

val is_stale : t -> Event_store.t -> bool
(** [is_stale t store] is true when the store's structure has changed
    since [t] was planned, so the colouring no longer matches the
    conflict graph. *)

val refresh : t -> Event_store.t -> t
(** [refresh t store] is [t] when still valid, or a fresh
    [plan ~num_domains:(num_domains t) store] when stale — the
    auto-replan idiom for samplers that interleave routing moves with
    parallel sweeps. *)

val sweep : Qnet_prob.Rng.t -> t -> Event_store.t -> Params.t -> unit
(** One full parallel sweep: every unobserved event is resampled
    exactly once. [rng] seeds the per-domain streams for this sweep
    (it is advanced once per domain). Raises [Invalid_argument] if the
    plan is stale for [store] ({!is_stale}) — failing fast beats
    corrupting the chain with a colouring that no longer guarantees
    disjoint Markov blankets. *)

val run : sweeps:int -> Qnet_prob.Rng.t -> t -> Event_store.t -> Params.t -> unit
