module Trace = Qnet_trace.Trace

type t = {
  num_queues : int;
  num_tasks : int;
  task : int array;
  state : int array;
  queue : int array; (* mutable through move_event *)
  departure : float array;
  observed : bool array;
  pi : int array;
  pi_inv : int array;
  rho : int array; (* within-queue chains; mutable through move_event *)
  rho_inv : int array;
  heads : int array; (* first event (in arrival order) per queue, -1 if none *)
  by_task : int array array;
  arrival_queue : int;
  task_ids : int array; (* dense task index -> original task id *)
  mutable generation : int;
      (* bumped whenever the queue/ρ-chain structure changes, so
         structure-dependent caches (Parallel_gibbs plans) can detect
         staleness instead of silently corrupting the chain *)
}

let of_trace ?observed trace =
  let events = trace.Trace.events in
  let n = Array.length events in
  if n = 0 then invalid_arg "Event_store.of_trace: empty trace";
  let observed =
    match observed with
    | None -> Array.make n true
    | Some o ->
        if Array.length o <> n then
          invalid_arg "Event_store.of_trace: observed mask length mismatch";
        Array.copy o
  in
  let task_ids =
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    Array.iter
      (fun e ->
        if not (Hashtbl.mem seen e.Trace.task) then begin
          Hashtbl.add seen e.Trace.task ();
          acc := e.Trace.task :: !acc
        end)
      events;
    let a = Array.of_list !acc in
    Array.sort compare a;
    a
  in
  let task_index = Hashtbl.create (Array.length task_ids) in
  Array.iteri (fun i id -> Hashtbl.add task_index id i) task_ids;
  let task = Array.map (fun e -> Hashtbl.find task_index e.Trace.task) events in
  let state = Array.map (fun e -> e.Trace.state) events in
  let queue = Array.map (fun e -> e.Trace.queue) events in
  let departure = Array.map (fun e -> e.Trace.departure) events in
  let arrival0 = Array.map (fun e -> e.Trace.arrival) events in
  (* Within-task chains: events are sorted by (task, arrival). *)
  let pi = Array.make n (-1) in
  let pi_inv = Array.make n (-1) in
  for i = 1 to n - 1 do
    if task.(i) = task.(i - 1) then begin
      pi.(i) <- i - 1;
      pi_inv.(i - 1) <- i
    end
  done;
  (* Group by task. *)
  let num_tasks = Array.length task_ids in
  let by_task =
    let buckets = Array.make num_tasks [] in
    for i = n - 1 downto 0 do
      buckets.(task.(i)) <- i :: buckets.(task.(i))
    done;
    Array.map Array.of_list buckets
  in
  (* Initial events must be first per task and at a common queue. *)
  let arrival_queue = queue.(by_task.(0).(0)) in
  Array.iter
    (fun evs ->
      if Array.length evs = 0 then invalid_arg "Event_store.of_trace: empty task";
      let first = evs.(0) in
      if not (Float.equal arrival0.(first) 0.0) then
        invalid_arg "Event_store.of_trace: task without initial event";
      if queue.(first) <> arrival_queue then
        invalid_arg "Event_store.of_trace: inconsistent arrival queue";
      (* Only initial events may sit at the arrival queue: routing back
         to q0 would break the paper's convention. *)
      Array.iteri
        (fun k e ->
          if k > 0 && queue.(e) = arrival_queue then
            invalid_arg "Event_store.of_trace: a task revisits the arrival queue")
        evs)
    by_task;
  (* Within-queue chains from the true arrival order (ties broken by
     departure, then index, so q0's simultaneous arrivals order by
     entry time). This order is the fixed "event counter" data. *)
  let by_queue =
    let buckets = Array.make trace.Trace.num_queues [] in
    for i = n - 1 downto 0 do
      buckets.(queue.(i)) <- i :: buckets.(queue.(i))
    done;
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort
          (fun i j ->
            match compare arrival0.(i) arrival0.(j) with
            | 0 -> (
                match compare departure.(i) departure.(j) with
                | 0 -> compare i j
                | c -> c)
            | c -> c)
          a;
        a)
      buckets
  in
  let rho = Array.make n (-1) in
  let rho_inv = Array.make n (-1) in
  let heads = Array.make trace.Trace.num_queues (-1) in
  Array.iteri
    (fun q order ->
      if Array.length order > 0 then heads.(q) <- order.(0);
      for k = 1 to Array.length order - 1 do
        rho.(order.(k)) <- order.(k - 1);
        rho_inv.(order.(k - 1)) <- order.(k)
      done)
    by_queue;
  {
    num_queues = trace.Trace.num_queues;
    num_tasks;
    task;
    state;
    queue;
    departure;
    observed;
    pi;
    pi_inv;
    rho;
    rho_inv;
    heads;
    by_task;
    arrival_queue;
    task_ids;
    generation = 0;
  }

let num_events t = Array.length t.departure
let num_queues t = t.num_queues
let num_tasks t = t.num_tasks
let task t i = t.task.(i)
let state t i = t.state.(i)
let queue t i = t.queue.(i)
let departure t i = t.departure.(i)
let observed t i = t.observed.(i)
let pi t i = t.pi.(i)
let pi_inv t i = t.pi_inv.(i)
let rho t i = t.rho.(i)
let rho_inv t i = t.rho_inv.(i)

let arrival t i =
  let p = t.pi.(i) in
  if p < 0 then 0.0 else t.departure.(p)

let start_service t i =
  let a = arrival t i in
  let r = t.rho.(i) in
  if r < 0 then a else Float.max a t.departure.(r)

let service t i = t.departure.(i) -. start_service t i
let waiting t i = start_service t i -. arrival t i

let set_departure t i d =
  if t.observed.(i) then invalid_arg "Event_store.set_departure: event is observed";
  if Float.is_nan d then invalid_arg "Event_store.set_departure: NaN";
  t.departure.(i) <- d

let events_of_task t k = Array.copy t.by_task.(k)

let events_at_queue t q =
  (* walk the rho chain from the head *)
  let rec collect i acc = if i < 0 then List.rev acc else collect t.rho_inv.(i) (i :: acc) in
  Array.of_list (collect t.heads.(q) [])

let unobserved_events t =
  let acc = ref [] in
  for i = num_events t - 1 downto 0 do
    if not t.observed.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let arrival_queue t = t.arrival_queue
let generation t = t.generation

let to_trace t =
  let events = ref [] in
  for i = num_events t - 1 downto 0 do
    events :=
      {
        Trace.task = t.task_ids.(t.task.(i));
        state = t.state.(i);
        queue = t.queue.(i);
        arrival = arrival t i;
        departure = t.departure.(i);
      }
      :: !events
  done;
  Trace.create ~num_queues:t.num_queues !events

let copy t =
  {
    t with
    departure = Array.copy t.departure;
    observed = Array.copy t.observed;
    queue = Array.copy t.queue;
    rho = Array.copy t.rho;
    rho_inv = Array.copy t.rho_inv;
    heads = Array.copy t.heads;
  }

type snapshot = {
  s_departure : float array;
  s_queue : int array;
  s_rho : int array;
  s_rho_inv : int array;
  s_heads : int array;
}

let snapshot t =
  {
    s_departure = Array.copy t.departure;
    s_queue = Array.copy t.queue;
    s_rho = Array.copy t.rho;
    s_rho_inv = Array.copy t.rho_inv;
    s_heads = Array.copy t.heads;
  }

let restore t s =
  let n = Array.length t.departure in
  if
    Array.length s.s_departure <> n
    || Array.length s.s_queue <> n
    || Array.length s.s_rho <> n
    || Array.length s.s_rho_inv <> n
    || Array.length s.s_heads <> t.num_queues
  then invalid_arg "Event_store.restore: snapshot dimension mismatch";
  (* Restoring departures alone never invalidates a structural cache,
     but overwriting the chain pointers might: bump the generation only
     when the restored structure actually differs. *)
  let structure_changed =
    t.queue <> s.s_queue || t.rho <> s.s_rho || t.rho_inv <> s.s_rho_inv
    || t.heads <> s.s_heads
  in
  Array.blit s.s_departure 0 t.departure 0 n;
  Array.blit s.s_queue 0 t.queue 0 n;
  Array.blit s.s_rho 0 t.rho 0 n;
  Array.blit s.s_rho_inv 0 t.rho_inv 0 n;
  Array.blit s.s_heads 0 t.heads 0 t.num_queues;
  if structure_changed then t.generation <- t.generation + 1

(* Re-home event [i] to [queue], unlinking it from its current rho
   chain and inserting it into the target chain at the position given
   by its (current) arrival time. The caller is responsible for
   checking that the resulting service times are non-negative (the
   Metropolis–Hastings path move rejects otherwise); this function
   only maintains the chain structure. *)
let move_event t i ~queue:q' =
  if q' < 0 || q' >= t.num_queues then invalid_arg "Event_store.move_event: bad queue";
  if q' = t.arrival_queue then
    invalid_arg "Event_store.move_event: cannot move events to the arrival queue";
  if t.queue.(i) = t.arrival_queue then
    invalid_arg "Event_store.move_event: cannot move initial events";
  let q = t.queue.(i) in
  if q <> q' then begin
    (* unlink from q *)
    let p = t.rho.(i) and s = t.rho_inv.(i) in
    if p >= 0 then t.rho_inv.(p) <- s else t.heads.(q) <- s;
    if s >= 0 then t.rho.(s) <- p;
    (* find the insertion point in q': the last event whose arrival is
       <= ours (ties resolved toward inserting after, which keeps the
       walk deterministic) *)
    let a = arrival t i in
    let rec find prev cur =
      if cur < 0 then prev
      else if arrival t cur <= a then find cur t.rho_inv.(cur)
      else prev
    in
    let pred = find (-1) t.heads.(q') in
    let succ = if pred < 0 then t.heads.(q') else t.rho_inv.(pred) in
    t.rho.(i) <- pred;
    t.rho_inv.(i) <- succ;
    if pred >= 0 then t.rho_inv.(pred) <- i else t.heads.(q') <- i;
    if succ >= 0 then t.rho.(succ) <- i;
    t.queue.(i) <- q';
    t.generation <- t.generation + 1
  end

let validate t =
  let tol = 1e-9 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  for i = 0 to num_events t - 1 do
    if service t i < -.tol then
      fail
        (Printf.sprintf "event %d: negative service %.12g" i (service t i));
    if t.departure.(i) < -.tol then
      fail (Printf.sprintf "event %d: negative departure" i)
  done;
  for q = 0 to t.num_queues - 1 do
    let rec walk prev cur =
      if cur >= 0 then begin
        if t.queue.(cur) <> q then
          fail (Printf.sprintf "event %d linked into queue %d but assigned to %d" cur q t.queue.(cur));
        if prev >= 0 && arrival t cur < arrival t prev -. tol then
          fail (Printf.sprintf "queue order violated between events %d and %d" prev cur);
        walk cur t.rho_inv.(cur)
      end
    in
    walk (-1) t.heads.(q)
  done;
  match !err with None -> Ok () | Some m -> Error m

let log_likelihood t params =
  if Params.num_queues params <> t.num_queues then
    invalid_arg "Event_store.log_likelihood: params dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to num_events t - 1 do
    let mu = Params.rate params t.queue.(i) in
    let s = service t i in
    if s < 0.0 then acc := neg_infinity
    else acc := !acc +. log mu -. (mu *. s)
  done;
  !acc

let service_sufficient_stats t =
  let counts = Array.make t.num_queues 0 in
  let sums = Array.make t.num_queues 0.0 in
  for i = 0 to num_events t - 1 do
    let q = t.queue.(i) in
    counts.(q) <- counts.(q) + 1;
    sums.(q) <- sums.(q) +. service t i
  done;
  Array.init t.num_queues (fun q -> (counts.(q), sums.(q)))

let mean_waiting_by_queue t =
  let counts = Array.make t.num_queues 0 in
  let sums = Array.make t.num_queues 0.0 in
  for i = 0 to num_events t - 1 do
    let q = t.queue.(i) in
    counts.(q) <- counts.(q) + 1;
    sums.(q) <- sums.(q) +. waiting t i
  done;
  Array.init t.num_queues (fun q ->
      if counts.(q) = 0 then 0.0 else sums.(q) /. float_of_int counts.(q))

let mean_service_by_queue t =
  let counts = Array.make t.num_queues 0 in
  let sums = Array.make t.num_queues 0.0 in
  for i = 0 to num_events t - 1 do
    let q = t.queue.(i) in
    counts.(q) <- counts.(q) + 1;
    sums.(q) <- sums.(q) +. service t i
  done;
  Array.init t.num_queues (fun q ->
      if counts.(q) = 0 then 0.0 else sums.(q) /. float_of_int counts.(q))
