(** Online (windowed) inference — the paper's §6 closes by naming
    "online, distributed inference" as the payoff of the probabilistic
    viewpoint; this module provides the windowed variant.

    The trace is cut into consecutive wall-clock windows by task entry
    time; each window is fit with a short StEM run warm-started from
    the previous window's parameters. The result is a {e parameter
    trajectory}: time-varying arrival rate (e.g. Figure 5's load ramp)
    and drifting service rates (e.g. a degrading disk) become visible,
    which a single whole-trace fit averages away.

    Windowing uses each task's entry timestamp from the trace, which
    the event-counter instrumentation provides even for tasks whose
    arrival times are not individually logged (order + coarse window
    assignment is far cheaper than full timestamps). *)

type step = {
  window : float * float;
  num_tasks : int;
  params : Params.t;  (** post-burn-in averaged StEM estimate *)
  mean_service : float array;
}

type config = {
  num_windows : int;  (** default 6 *)
  iterations : int;  (** StEM iterations per window (default 80) *)
  min_tasks : int;
      (** windows with fewer tasks are skipped (their entry is recorded
          with the previous parameters; default 10) *)
}

val default_config : config

val run :
  ?config:config ->
  ?init:Params.t ->
  ?on_window:(step -> unit) ->
  ?on_warning:(string -> unit) ->
  Qnet_prob.Rng.t ->
  Qnet_trace.Trace.t ->
  mask:bool array ->
  step list
(** [run rng trace ~mask] splits the trace's tasks into
    [config.num_windows] equal wall-clock windows and fits each.
    [init] warm-starts the first window (later windows always
    warm-start from their predecessor) — this is what lets a serving
    shard run short incremental refits against a previous posterior
    instead of re-estimating from scratch.
    [mask] is the observation mask over the full trace's canonical
    event order (as produced by {!Observation.mask}). [on_window] is
    called with each step as soon as its window is fitted, so a
    long-running online analysis can persist partial trajectories
    before the run completes.

    Windowing is tolerant of messy ingestion, reporting each
    degradation through [on_warning] (default: silently ignored)
    rather than failing the whole trajectory: tasks whose entry
    timestamp is NaN/±inf, and tasks with no entry event at all, are
    dropped with a warning; out-of-order entry timestamps are flagged
    but cost nothing (windows are assigned by timestamp value, which
    is equivalent to sorting first); and when every surviving entry
    coincides, unit-width windows are used so a window can never be
    empty or inverted. Raises [Invalid_argument] only when no task has
    a finite entry timestamp, the mask length mismatches, or
    [num_windows < 1]. *)

val arrival_rate_trajectory : step list -> (float * float) list
(** [(window midpoint, λ̂)] per step — the series to plot against a
    known ramp. *)
