module Welford = struct
  type t = {
    mutable n : int;
    mutable mu : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
    mutable skipped : int;
  }

  let create () =
    { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity; skipped = 0 }

  let add t x =
    if Float.is_nan x then t.skipped <- t.skipped + 1
    else begin
      t.n <- t.n + 1;
      let delta = x -. t.mu in
      t.mu <- t.mu +. (delta /. float_of_int t.n);
      t.m2 <- t.m2 +. (delta *. (x -. t.mu));
      if x < t.lo then t.lo <- x;
      if x > t.hi then t.hi <- x
    end

  let count t = t.n
  let skipped t = t.skipped
  let mean t = if t.n = 0 then nan else t.mu
  let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.lo
  let max t = t.hi

  let merge a b =
    let skipped = a.skipped + b.skipped in
    if a.n = 0 then { b with skipped }
    else if b.n = 0 then { a with skipped }
    else begin
      let n = a.n + b.n in
      let fa = float_of_int a.n and fb = float_of_int b.n in
      let delta = b.mu -. a.mu in
      let mu = a.mu +. (delta *. fb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
      { n; mu; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi; skipped }
    end
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then nan
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Statistics.quantile: empty input";
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg "Statistics.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor h) in
    let i = Stdlib.min i (n - 2) in
    let frac = h -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let median xs = quantile xs 0.5
let iqr xs = quantile xs 0.75 -. quantile xs 0.25

let median_absolute_deviation xs =
  let m = median xs in
  median (Array.map (fun x -> Float.abs (x -. m)) xs)

let histogram ?(bins = 20) xs =
  if bins <= 0 then invalid_arg "Statistics.histogram: bins must be positive";
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let lo = Array.fold_left Float.min infinity xs in
    let hi = Array.fold_left Float.max neg_infinity xs in
    let hi = if hi > lo then hi else lo +. 1.0 in
    let width = (hi -. lo) /. float_of_int bins in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let i = int_of_float ((x -. lo) /. width) in
        let i = Stdlib.max 0 (Stdlib.min (bins - 1) i) in
        counts.(i) <- counts.(i) + 1)
      xs;
    Array.init bins (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))
  end

let empirical_cdf xs x =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Statistics.empirical_cdf: empty input";
  let count = Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 xs in
  float_of_int count /. float_of_int n

let ks_statistic_against xs cdf =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Statistics.ks_statistic_against: empty input";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let fn = float_of_int n in
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let above = (float_of_int (i + 1) /. fn) -. f in
      let below = f -. (float_of_int i /. fn) in
      if above > !d then d := above;
      if below > !d then d := below)
    sorted;
  !d

let ks_two_sample xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 || ny = 0 then invalid_arg "Statistics.ks_two_sample: empty input";
  let sx = Array.copy xs and sy = Array.copy ys in
  Array.sort compare sx;
  Array.sort compare sy;
  let fx = float_of_int nx and fy = float_of_int ny in
  let rec walk i j d =
    if i >= nx || j >= ny then d
    else begin
      let xi = sx.(i) and yj = sy.(j) in
      let i', j' =
        if xi <= yj then (i + 1, j) else (i, j + 1)
      in
      let i', j' =
        (* advance past ties on both sides together *)
        if xi = yj then (i + 1, j + 1) else (i', j')
      in
      let diff =
        Float.abs ((float_of_int i' /. fx) -. (float_of_int j' /. fy))
      in
      walk i' j' (Float.max d diff)
    end
  in
  walk 0 0 0.0

let autocorrelation xs k =
  let n = Array.length xs in
  if k < 0 || k >= n then invalid_arg "Statistics.autocorrelation: bad lag";
  let m = mean xs in
  let denom = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  if Float.equal denom 0.0 then 0.0
  else begin
    let num = ref 0.0 in
    for i = 0 to n - k - 1 do
      num := !num +. ((xs.(i) -. m) *. (xs.(i + k) -. m))
    done;
    !num /. denom
  end

let effective_sample_size xs =
  let n = Array.length xs in
  if n < 4 then float_of_int n
  else begin
    (* Geyer initial positive sequence: sum consecutive-pair
       autocorrelations while the pair sums stay positive. *)
    let max_lag = Stdlib.min (n - 2) 1000 in
    let rec accumulate k acc =
      if k + 1 > max_lag then acc
      else
        let pair = autocorrelation xs k +. autocorrelation xs (k + 1) in
        if pair <= 0.0 then acc else accumulate (k + 2) (acc +. pair)
    in
    let s = accumulate 1 0.0 in
    let tau = 1.0 +. (2.0 *. s) in
    let tau = Float.max tau 1.0 in
    float_of_int n /. tau
  end

let gelman_rubin chains =
  let m = Array.length chains in
  if m < 2 then invalid_arg "Statistics.gelman_rubin: need >= 2 chains";
  let n = Array.length chains.(0) in
  if n < 2 then invalid_arg "Statistics.gelman_rubin: chains too short";
  Array.iter
    (fun c ->
      if Array.length c <> n then
        invalid_arg "Statistics.gelman_rubin: unequal chain lengths")
    chains;
  let fm = float_of_int m and fn = float_of_int n in
  let chain_means = Array.map mean chains in
  let grand = mean chain_means in
  let b =
    fn /. (fm -. 1.0)
    *. Array.fold_left
         (fun acc mu -> acc +. ((mu -. grand) *. (mu -. grand)))
         0.0 chain_means
  in
  let w = mean (Array.map variance chains) in
  if Float.equal w 0.0 then 1.0
  else
    let var_plus = (((fn -. 1.0) /. fn) *. w) +. (b /. fn) in
    sqrt (var_plus /. w)

let split_gelman_rubin chains =
  let m = Array.length chains in
  if m < 1 then invalid_arg "Statistics.split_gelman_rubin: need >= 1 chain";
  let n = Array.fold_left (fun acc c -> Stdlib.min acc (Array.length c)) max_int chains in
  let half = n / 2 in
  if half < 2 then invalid_arg "Statistics.split_gelman_rubin: chains too short";
  (* Use the most recent [2*half] samples of each chain (chains may
     have unequal lengths after restarts), split each in half, and run
     classic R̂ over the 2m half-chains. Splitting detects within-chain
     drift — a single wandering chain — that whole-chain R̂ misses, and
     makes the statistic well-defined even for a single chain. *)
  let halves =
    Array.concat
      (Array.to_list
         (Array.map
            (fun c ->
              let len = Array.length c in
              [| Array.sub c (len - (2 * half)) half; Array.sub c (len - half) half |])
            chains))
  in
  gelman_rubin halves

let pooled_effective_sample_size chains =
  if Array.length chains = 0 then
    invalid_arg "Statistics.pooled_effective_sample_size: need >= 1 chain";
  Array.fold_left (fun acc c -> acc +. effective_sample_size c) 0.0 chains

module Online = struct
  (* Streaming lag-k autocovariance: a ring of the last [max_lag]
     accepted values plus running cross-product sums per lag. The
     autocovariance estimate γ̂_k = S_k/(n−k) − μ² uses the global mean
     for both factors instead of the two range means the batch
     estimator centers with — an O(1/n) approximation that converges
     to the batch value and is the standard streaming form. *)
  type acf = {
    max_lag : int;
    ring : float array;
    cross : float array; (* cross.(k) = Σ_{i>=k} x_i·x_{i−k}, k in [1,max_lag] *)
    mutable n : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable skipped : int;
  }

  let acf ?(max_lag = 64) () =
    if max_lag < 1 then invalid_arg "Statistics.Online.acf: max_lag must be >= 1";
    {
      max_lag;
      ring = Array.make max_lag 0.0;
      cross = Array.make (max_lag + 1) 0.0;
      n = 0;
      sum = 0.0;
      sumsq = 0.0;
      skipped = 0;
    }

  let push t x =
    if not (Float.is_finite x) then t.skipped <- t.skipped + 1
    else begin
      let lags = Stdlib.min t.n t.max_lag in
      for k = 1 to lags do
        t.cross.(k) <- t.cross.(k) +. (x *. t.ring.((t.n - k) mod t.max_lag))
      done;
      t.ring.(t.n mod t.max_lag) <- x;
      t.n <- t.n + 1;
      t.sum <- t.sum +. x;
      t.sumsq <- t.sumsq +. (x *. x)
    end

  let count t = t.n
  let skipped t = t.skipped
  let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

  let autocovariance t k =
    if k < 0 || k > t.max_lag then
      invalid_arg "Statistics.Online.autocovariance: lag outside [0, max_lag]";
    if t.n <= k then nan
    else begin
      let mu = mean t in
      if k = 0 then (t.sumsq /. float_of_int t.n) -. (mu *. mu)
      else (t.cross.(k) /. float_of_int (t.n - k)) -. (mu *. mu)
    end

  let autocorrelation t k =
    let g0 = autocovariance t 0 in
    if t.n <= k then nan
    else if not (g0 > 0.0) then 0.0 (* constant series, or fp-degenerate *)
    else
      (* The global-mean approximation can push γ̂_k past γ̂_0 while the
         series still trends (early StEM iterates); a correlation is
         clamped into [-1, 1] so downstream ESS/display stay sane. *)
      Float.max (-1.0) (Float.min 1.0 (autocovariance t k /. g0))

  let ess t =
    if t.n = 0 then 0.0
    else if t.n < 4 then float_of_int t.n
    else begin
      let g0 = autocovariance t 0 in
      if not (g0 > 0.0) then float_of_int t.n
      else begin
        let max_lag = Stdlib.min t.max_lag (t.n - 2) in
        let rec accumulate k acc =
          if k + 1 > max_lag then acc
          else
            let pair = autocorrelation t k +. autocorrelation t (k + 1) in
            if pair <= 0.0 then acc else accumulate (k + 2) (acc +. pair)
        in
        let tau = Float.max 1.0 (1.0 +. (2.0 *. accumulate 1 0.0)) in
        (* clamp into [1, n], matching the batch estimator *)
        Float.max 1.0
          (Float.min (float_of_int t.n) (float_of_int t.n /. tau))
      end
    end
end
