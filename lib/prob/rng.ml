type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: used only to expand a seed into the xoshiro state, per
   the xoshiro authors' recommendation. *)
let splitmix64_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed =
  let st = ref seed in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  { s0; s1; s2; s3 }

let default_seed = 0x51CEB00B1E5

let create ?(seed = default_seed) () = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let set_state t s =
  if Array.length s <> 4 then invalid_arg "Rng.set_state: need 4 words";
  if Array.for_all (fun w -> Int64.equal w 0L) s then
    invalid_arg "Rng.set_state: all-zero state is invalid for xoshiro256++";
  t.s0 <- s.(0);
  t.s1 <- s.(1);
  t.s2 <- s.(2);
  t.s3 <- s.(3)

let of_state s =
  let t = { s0 = 0L; s1 = 0L; s2 = 0L; s3 = 1L } in
  set_state t s;
  t

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let float_unit t =
  (* 53 high bits of the output word, scaled by 2^-53. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float_pos t = 1.0 -. float_unit t

let float_range t lo hi =
  if hi <= lo then lo else lo +. ((hi -. lo) *. float_unit t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection from the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let r = v mod n in
    if v - r + (n - 1) < 0 then draw () else r
  in
  draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Sequential selection: include index i with probability
     (still needed) / (still remaining). Output is naturally sorted. *)
  let rec loop i needed acc =
    if needed = 0 then List.rev acc
    else
      let remaining = n - i in
      if float_unit t *. float_of_int remaining < float_of_int needed then
        loop (i + 1) (needed - 1) (i :: acc)
      else loop (i + 1) needed acc
  in
  loop 0 k []

let categorical t w =
  let total = Array.fold_left (fun acc x ->
      if x < 0.0 || Float.is_nan x then invalid_arg "Rng.categorical: negative weight"
      else acc +. x)
      0.0 w
  in
  if total <= 0.0 then invalid_arg "Rng.categorical: no positive weight";
  let u = float_unit t *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  (* Guard against all mass sitting in trailing zero weights. *)
  let i = scan 0 0.0 in
  if w.(i) > 0.0 then i
  else
    let rec back j = if w.(j) > 0.0 then j else back (j - 1) in
    back i
