let step_stats ?(max_shrink = 100) rng ~log_density ~lower ~upper ~current =
  if not (current >= lower && current <= upper) then
    invalid_arg "Slice.step: current point outside the interval";
  let ly = log_density current in
  if not (Float.is_finite ly) then
    invalid_arg "Slice.step: current point has non-finite log-density";
  (* vertical level: ly + log U, U ~ Unif(0,1] *)
  let level = ly +. log (Rng.float_pos rng) in
  (* the interval itself is the initial slice bracket (no stepping out
     needed: the support is already bounded); shrink on rejection *)
  let rec shrink lo hi n =
    if n = 0 then (current, max_shrink)
    else begin
      let x = Rng.float_range rng lo hi in
      if log_density x >= level then (x, max_shrink - n)
      else if x < current then shrink x hi (n - 1)
      else shrink lo x (n - 1)
    end
  in
  shrink lower upper max_shrink

let step ?max_shrink rng ~log_density ~lower ~upper ~current =
  fst (step_stats ?max_shrink rng ~log_density ~lower ~upper ~current)
