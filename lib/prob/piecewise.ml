type hinge = { knee : float; slope : float }

type t = {
  lower : float;
  upper : float;
  breaks : float array; (* n + 1 entries; breaks.(0) = lower, breaks.(n) = upper *)
  rates : float array; (* n entries: log-density slope on each piece *)
  logvals : float array; (* n + 1 entries: relative log-density at each break *)
  log_masses : float array; (* n entries: relative log-mass of each piece *)
  log_z : float;
}

let tiny_rate_width = 1e-12

(* log of the integral of exp (v + r * (x - t0)) over x in [t0, t0 + w],
   where v is the log-density at the left edge. *)
let log_piece_mass ~left_logval:v ~rate:r ~width:w =
  if w <= 0.0 then neg_infinity
  else if Float.abs (r *. w) < tiny_rate_width then v +. log w +. (0.5 *. r *. w)
  else if r > 0.0 then v +. (r *. w) +. Special.log1mexp (-.r *. w) -. log r
  else v +. Special.log1mexp (r *. w) -. log (-.r)

(* Inverse of the within-piece CDF: given the mass fraction q of the
   piece that should lie left of the answer, return the offset y from
   the left edge, 0 <= y <= w. Solves (e^{ry} - 1) / (e^{rw} - 1) = q. *)
let invert_piece ~rate:r ~width:w q =
  if q <= 0.0 then 0.0
  else if q >= 1.0 then w
  else if Float.abs (r *. w) < tiny_rate_width then q *. w
  else if r > 0.0 then begin
    let log_term = log q +. Special.log_expm1 (r *. w) in
    let y = Special.log_sum_exp2 0.0 log_term /. r in
    Float.max 0.0 (Float.min w y)
  end
  else begin
    let y = Float.log1p (q *. Float.expm1 (r *. w)) /. r in
    Float.max 0.0 (Float.min w y)
  end

let compile ~lower ~upper ~linear ~hinges =
  if not (Float.is_finite lower && Float.is_finite upper) then
    invalid_arg "Piecewise.compile: interval must be finite";
  if not (lower < upper) then invalid_arg "Piecewise.compile: need lower < upper";
  (* A hinge with a non-finite knee or slope comes from corrupted state
     (NaN latents upstream); dropping it keeps the density well defined
     instead of poisoning every piece mass downstream. *)
  let hinges =
    List.filter
      (fun h -> Float.is_finite h.knee && Float.is_finite h.slope)
      hinges
  in
  (* Hinges left of the interval act on every point; hinges right of it
     never act. Interior knees become breakpoints. *)
  let base_slope =
    List.fold_left
      (fun acc h -> if h.knee <= lower then acc +. h.slope else acc)
      linear hinges
  in
  let interior =
    List.filter (fun h -> h.knee > lower && h.knee < upper && not (Float.equal h.slope 0.0)) hinges
  in
  let knees =
    List.sort_uniq compare (List.map (fun h -> h.knee) interior)
  in
  let breaks = Array.of_list ((lower :: knees) @ [ upper ]) in
  let n = Array.length breaks - 1 in
  let rates = Array.make n base_slope in
  (* A hinge contributes its slope to every piece whose left edge is at
     or right of the knee. *)
  List.iter
    (fun h ->
      for i = 0 to n - 1 do
        if breaks.(i) >= h.knee then rates.(i) <- rates.(i) +. h.slope
      done)
    interior;
  let logvals = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    logvals.(i + 1) <- logvals.(i) +. (rates.(i) *. (breaks.(i + 1) -. breaks.(i)))
  done;
  (* Re-centre so the largest log value is 0: keeps exp () in range. *)
  let m = Array.fold_left max neg_infinity logvals in
  Array.iteri (fun i v -> logvals.(i) <- v -. m) logvals;
  let log_masses =
    Array.init n (fun i ->
        log_piece_mass ~left_logval:logvals.(i) ~rate:rates.(i)
          ~width:(breaks.(i + 1) -. breaks.(i)))
  in
  let log_z = Special.log_sum_exp log_masses in
  { lower; upper; breaks; rates; logvals; log_masses; log_z }

let lower t = t.lower
let upper t = t.upper

let pieces t =
  List.init (Array.length t.rates) (fun i ->
      (t.breaks.(i), t.breaks.(i + 1), t.rates.(i)))

let find_piece t x =
  (* Largest i with breaks.(i) <= x; binary search. *)
  let n = Array.length t.rates in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if t.breaks.(mid) <= x then go mid hi else go lo (mid - 1)
  in
  Int.min (go 0 (n - 1)) (n - 1)

let log_density t x =
  if x < t.lower || x > t.upper then neg_infinity
  else
    let i = find_piece t x in
    t.logvals.(i) +. (t.rates.(i) *. (x -. t.breaks.(i)))

let log_normalizer t = t.log_z

let cdf t x =
  if x <= t.lower then 0.0
  else if x >= t.upper then 1.0
  else begin
    let i = find_piece t x in
    let partial =
      log_piece_mass ~left_logval:t.logvals.(i) ~rate:t.rates.(i)
        ~width:(x -. t.breaks.(i))
    in
    let acc = ref partial in
    for j = 0 to i - 1 do
      acc := Special.log_sum_exp2 !acc t.log_masses.(j)
    done;
    exp (!acc -. t.log_z)
  end

let quantile t p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg "Piecewise.quantile: p outside [0,1]";
  if Float.equal p 0.0 then t.lower
  else if Float.equal p 1.0 then t.upper
  else begin
    let n = Array.length t.rates in
    (* Walk pieces accumulating normalized mass until we bracket p. *)
    let rec walk i acc =
      if i >= n then (n - 1, 1.0)
      else
        let w = exp (t.log_masses.(i) -. t.log_z) in
        if acc +. w >= p || i = n - 1 then (i, (p -. acc) /. w) else walk (i + 1) (acc +. w)
    in
    let i, q = walk 0 0.0 in
    let q = Float.max 0.0 (Float.min 1.0 q) in
    t.breaks.(i)
    +. invert_piece ~rate:t.rates.(i)
         ~width:(t.breaks.(i + 1) -. t.breaks.(i))
         q
  end

let sample rng t =
  let n = Array.length t.rates in
  let i =
    if n = 1 then 0
    else begin
      let weights = Array.map (fun lm -> exp (lm -. t.log_z)) t.log_masses in
      Rng.categorical rng weights
    end
  in
  let q = Rng.float_unit rng in
  t.breaks.(i)
  +. invert_piece ~rate:t.rates.(i) ~width:(t.breaks.(i + 1) -. t.breaks.(i)) q

let mean t =
  (* Per piece: ∫ x e^{v + r (x - t0)} dx = t0 * mass + e^v * I(r, w)
     with I(r, w) = ((rw - 1) e^{rw} + 1) / r^2, series-expanded for
     small rw to avoid cancellation. *)
  let n = Array.length t.rates in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    let t0 = t.breaks.(i) in
    let w = t.breaks.(i + 1) -. t0 in
    let r = t.rates.(i) in
    let v = exp t.logvals.(i) in
    let mass = exp (t.log_masses.(i)) in
    let rw = r *. w in
    let integral_term =
      if Float.abs rw < 1e-4 then
        v *. w *. w *. (0.5 +. (rw /. 3.0) +. (rw *. rw /. 8.0))
      else if rw > 700.0 then
        (* exp rw would overflow; the mass concentrates at the right
           edge, so the contribution tends to (t1 - t0) * mass *)
        w *. mass
      else v *. (((rw -. 1.0) *. exp rw) +. 1.0) /. (r *. r)
    in
    num := !num +. (t0 *. mass) +. integral_term;
    den := !den +. mass
  done;
  !num /. !den
