type t =
  | Exponential of float
  | Uniform of float * float
  | Gamma of float * float
  | Erlang of int * float
  | Normal of float * float
  | Lognormal of float * float
  | Deterministic of float
  | Pareto of float * float
  | Hyperexponential of (float * float) array
  | Truncated_exponential of float * float

let validate d =
  let check cond msg = if cond then Ok () else Error msg in
  match d with
  | Exponential rate -> check (rate > 0.0) "Exponential: rate must be > 0"
  | Uniform (lo, hi) -> check (lo < hi) "Uniform: requires lo < hi"
  | Gamma (shape, rate) ->
      check (shape > 0.0 && rate > 0.0) "Gamma: shape and rate must be > 0"
  | Erlang (k, rate) -> check (k >= 1 && rate > 0.0) "Erlang: k >= 1 and rate > 0"
  | Normal (_, sd) -> check (sd > 0.0) "Normal: stddev must be > 0"
  | Lognormal (_, sigma) -> check (sigma > 0.0) "Lognormal: sigma must be > 0"
  | Deterministic _ -> Ok ()
  | Pareto (scale, shape) ->
      check (scale > 0.0 && shape > 0.0) "Pareto: scale and shape must be > 0"
  | Hyperexponential branches ->
      if Array.length branches = 0 then Error "Hyperexponential: empty mixture"
      else if Array.exists (fun (p, r) -> p < 0.0 || r <= 0.0) branches then
        Error "Hyperexponential: weights must be >= 0 and rates > 0"
      else if Array.for_all (fun (p, _) -> Float.equal p 0.0) branches then
        Error "Hyperexponential: all weights zero"
      else Ok ()
  | Truncated_exponential (_, width) ->
      check (width > 0.0) "Truncated_exponential: width must be > 0"

let hyper_weights branches =
  let total = Array.fold_left (fun acc (p, _) -> acc +. p) 0.0 branches in
  Array.map (fun (p, r) -> (p /. total, r)) branches

let sample_exponential rng rate = -.log (Rng.float_pos rng) /. rate

(* Polar (Marsaglia) method for the standard normal. *)
let rec sample_std_normal rng =
  let u = Rng.float_range rng (-1.0) 1.0 in
  let v = Rng.float_range rng (-1.0) 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || Float.equal s 0.0 then sample_std_normal rng
  else u *. sqrt (-2.0 *. log s /. s)

(* Marsaglia–Tsang for Gamma(shape >= 1, 1); boosted for shape < 1. *)
let rec sample_gamma_std rng shape =
  if shape < 1.0 then
    let u = Rng.float_pos rng in
    sample_gamma_std rng (shape +. 1.0) *. (u ** (1.0 /. shape))
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec loop () =
      let x = sample_std_normal rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else begin
        let v = v *. v *. v in
        let u = Rng.float_pos rng in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v)) then d *. v
        else loop ()
      end
    in
    loop ()
  end

(* Inverse-CDF sampling of the truncated exponential on [0, width]
   with (possibly negative or zero) rate, via expm1 for stability. *)
let sample_trunc_exp rng rate width =
  let u = Rng.float_unit rng in
  if Float.abs rate *. width < 1e-12 then u *. width
  else
    let x = -.Float.log1p (u *. Float.expm1 (-.rate *. width)) /. rate in
    Float.max 0.0 (Float.min width x)

let sample rng d =
  match d with
  | Exponential rate -> sample_exponential rng rate
  | Uniform (lo, hi) -> Rng.float_range rng lo hi
  | Gamma (shape, rate) -> sample_gamma_std rng shape /. rate
  | Erlang (k, rate) ->
      let acc = ref 0.0 in
      for _ = 1 to k do
        acc := !acc +. sample_exponential rng rate
      done;
      !acc
  | Normal (mu, sd) -> mu +. (sd *. sample_std_normal rng)
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. sample_std_normal rng))
  | Deterministic c -> c
  | Pareto (scale, shape) -> scale /. (Rng.float_pos rng ** (1.0 /. shape))
  | Hyperexponential branches ->
      let w = Array.map fst branches in
      let i = Rng.categorical rng w in
      sample_exponential rng (snd branches.(i))
  | Truncated_exponential (rate, width) -> sample_trunc_exp rng rate width

let log_pdf d x =
  match d with
  | Exponential rate -> if x < 0.0 then neg_infinity else log rate -. (rate *. x)
  | Uniform (lo, hi) -> if x < lo || x > hi then neg_infinity else -.log (hi -. lo)
  | Gamma (shape, rate) ->
      if x <= 0.0 then neg_infinity
      else
        (shape *. log rate) +. ((shape -. 1.0) *. log x) -. (rate *. x)
        -. Special.log_gamma shape
  | Erlang (k, rate) ->
      let shape = float_of_int k in
      if x <= 0.0 then neg_infinity
      else
        (shape *. log rate) +. ((shape -. 1.0) *. log x) -. (rate *. x)
        -. Special.log_factorial (k - 1)
  | Normal (mu, sd) ->
      let z = (x -. mu) /. sd in
      (-0.5 *. z *. z) -. log sd -. (0.5 *. log (2.0 *. Float.pi))
  | Lognormal (mu, sigma) ->
      if x <= 0.0 then neg_infinity
      else
        let z = (log x -. mu) /. sigma in
        (-0.5 *. z *. z) -. log x -. log sigma -. (0.5 *. log (2.0 *. Float.pi))
  | Deterministic c -> if x = c then 0.0 else neg_infinity
  | Pareto (scale, shape) ->
      if x < scale then neg_infinity
      else log shape +. (shape *. log scale) -. ((shape +. 1.0) *. log x)
  | Hyperexponential branches ->
      if x < 0.0 then neg_infinity
      else
        let w = hyper_weights branches in
        Special.log_sum_exp
          (Array.map (fun (p, r) -> log p +. log r -. (r *. x)) w)
  | Truncated_exponential (rate, width) ->
      if x < 0.0 || x > width then neg_infinity
      else if Float.abs rate *. width < 1e-12 then -.log width
      else
        (* density rate e^{-rate x} / (1 - e^{-rate width}); the
           normalizer is written with expm1 so negative rates work. *)
        -.(rate *. x) +. log (Float.abs rate) -. log (Float.abs (Float.expm1 (-.rate *. width)))

let pdf d x = exp (log_pdf d x)

let cdf d x =
  match d with
  | Exponential rate -> if x <= 0.0 then 0.0 else -.Float.expm1 (-.rate *. x)
  | Uniform (lo, hi) ->
      if x <= lo then 0.0 else if x >= hi then 1.0 else (x -. lo) /. (hi -. lo)
  | Gamma (shape, rate) ->
      if x <= 0.0 then 0.0
      else Special.lower_incomplete_gamma_regularized shape (rate *. x)
  | Erlang (k, rate) ->
      if x <= 0.0 then 0.0
      else Special.lower_incomplete_gamma_regularized (float_of_int k) (rate *. x)
  | Normal (mu, sd) -> Special.std_normal_cdf ((x -. mu) /. sd)
  | Lognormal (mu, sigma) ->
      if x <= 0.0 then 0.0 else Special.std_normal_cdf ((log x -. mu) /. sigma)
  | Deterministic c -> if x < c then 0.0 else 1.0
  | Pareto (scale, shape) ->
      if x <= scale then 0.0 else 1.0 -. ((scale /. x) ** shape)
  | Hyperexponential branches ->
      if x <= 0.0 then 0.0
      else
        let w = hyper_weights branches in
        Array.fold_left (fun acc (p, r) -> acc -. (p *. Float.expm1 (-.r *. x))) 0.0 w
  | Truncated_exponential (rate, width) ->
      if x <= 0.0 then 0.0
      else if x >= width then 1.0
      else if Float.abs rate *. width < 1e-12 then x /. width
      else Float.expm1 (-.rate *. x) /. Float.expm1 (-.rate *. width)

let quantile_bisect d p lo0 hi0 =
  (* Monotone bisection of the cdf; used where no closed form exists. *)
  let rec widen hi n =
    if n > 200 || cdf d hi >= p then hi else widen (hi *. 2.0) (n + 1)
  in
  let hi0 = widen hi0 0 in
  let rec widen_lo lo n =
    if n > 200 || cdf d lo <= p then lo
    else widen_lo (if lo > 0.0 then lo /. 2.0 else lo *. 2.0 -. 1.0) (n + 1)
  in
  let lo0 = widen_lo lo0 0 in
  let rec loop lo hi n =
    if n = 0 then 0.5 *. (lo +. hi)
    else
      let mid = 0.5 *. (lo +. hi) in
      if cdf d mid < p then loop mid hi (n - 1) else loop lo mid (n - 1)
  in
  loop lo0 hi0 200

let quantile d p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg "Distributions.quantile: p outside [0,1]";
  match d with
  | Exponential rate ->
      if Float.equal p 1.0 then infinity else -.Float.log1p (-.p) /. rate
  | Uniform (lo, hi) -> lo +. (p *. (hi -. lo))
  | Deterministic c -> c
  | Normal (mu, sd) ->
      if Float.equal p 0.0 then neg_infinity
      else if Float.equal p 1.0 then infinity
      else mu +. (sd *. Special.std_normal_quantile p)
  | Lognormal (mu, sigma) ->
      if Float.equal p 0.0 then 0.0
      else if Float.equal p 1.0 then infinity
      else exp (mu +. (sigma *. Special.std_normal_quantile p))
  | Pareto (scale, shape) ->
      if Float.equal p 1.0 then infinity else scale /. ((1.0 -. p) ** (1.0 /. shape))
  | Truncated_exponential (rate, width) ->
      if Float.abs rate *. width < 1e-12 then p *. width
      else -.Float.log1p (p *. Float.expm1 (-.rate *. width)) /. rate
  | Gamma (shape, rate) ->
      if Float.equal p 0.0 then 0.0
      else if Float.equal p 1.0 then infinity
      else quantile_bisect d p 0.0 (2.0 *. (shape +. 4.0) /. rate)
  | Erlang (k, rate) ->
      if Float.equal p 0.0 then 0.0
      else if Float.equal p 1.0 then infinity
      else quantile_bisect d p 0.0 (2.0 *. (float_of_int k +. 4.0) /. rate)
  | Hyperexponential branches ->
      if Float.equal p 0.0 then 0.0
      else if Float.equal p 1.0 then infinity
      else
        let slowest =
          Array.fold_left (fun acc (_, r) -> Float.min acc r) infinity branches
        in
        quantile_bisect d p 0.0 (8.0 /. slowest)

let mean d =
  match d with
  | Exponential rate -> 1.0 /. rate
  | Uniform (lo, hi) -> 0.5 *. (lo +. hi)
  | Gamma (shape, rate) -> shape /. rate
  | Erlang (k, rate) -> float_of_int k /. rate
  | Normal (mu, _) -> mu
  | Lognormal (mu, sigma) -> exp (mu +. (0.5 *. sigma *. sigma))
  | Deterministic c -> c
  | Pareto (scale, shape) ->
      if shape <= 1.0 then nan else shape *. scale /. (shape -. 1.0)
  | Hyperexponential branches ->
      let w = hyper_weights branches in
      Array.fold_left (fun acc (p, r) -> acc +. (p /. r)) 0.0 w
  | Truncated_exponential (rate, width) ->
      if Float.abs rate *. width < 1e-12 then 0.5 *. width
      else (1.0 /. rate) -. (width /. Float.expm1 (rate *. width))

let variance d =
  match d with
  | Exponential rate -> 1.0 /. (rate *. rate)
  | Uniform (lo, hi) -> (hi -. lo) ** 2.0 /. 12.0
  | Gamma (shape, rate) -> shape /. (rate *. rate)
  | Erlang (k, rate) -> float_of_int k /. (rate *. rate)
  | Normal (_, sd) -> sd *. sd
  | Lognormal (mu, sigma) ->
      let s2 = sigma *. sigma in
      (Float.expm1 s2) *. exp ((2.0 *. mu) +. s2)
  | Deterministic _ -> 0.0
  | Pareto (scale, shape) ->
      if shape <= 2.0 then (if shape <= 1.0 then nan else infinity)
      else
        scale *. scale *. shape
        /. (((shape -. 1.0) ** 2.0) *. (shape -. 2.0))
  | Hyperexponential branches ->
      let w = hyper_weights branches in
      let second =
        Array.fold_left (fun acc (p, r) -> acc +. (2.0 *. p /. (r *. r))) 0.0 w
      in
      let m = mean d in
      second -. (m *. m)
  | Truncated_exponential _ ->
      (* E[X^2] by the closed form for the doubly-truncated exponential:
         fall back to the identity Var = E[X^2] - mean^2 computed via
         integration by parts. *)
      let m = mean d in
      (match d with
       | Truncated_exponential (rate, width) ->
           if Float.abs rate *. width < 1e-12 then width *. width /. 12.0
           else
             let z = -.Float.expm1 (-.rate *. width) in
             let ex2 =
               (2.0 /. (rate *. rate))
               -. ((width *. width +. (2.0 *. width /. rate)) *. exp (-.rate *. width) /. z)
             in
             ex2 -. (m *. m)
       | _ -> assert false)

let squared_cv d =
  let m = mean d in
  variance d /. (m *. m)

let exponential_mle samples =
  match samples with
  | [] -> invalid_arg "Distributions.exponential_mle: empty sample"
  | _ ->
      let n = float_of_int (List.length samples) in
      let total = List.fold_left ( +. ) 0.0 samples in
      if total <= 0.0 then invalid_arg "Distributions.exponential_mle: non-positive sum"
      else n /. total

let pp ppf d =
  match d with
  | Exponential r -> Format.fprintf ppf "Exp(rate=%g)" r
  | Uniform (lo, hi) -> Format.fprintf ppf "Unif[%g,%g]" lo hi
  | Gamma (k, r) -> Format.fprintf ppf "Gamma(shape=%g,rate=%g)" k r
  | Erlang (k, r) -> Format.fprintf ppf "Erlang(k=%d,rate=%g)" k r
  | Normal (mu, sd) -> Format.fprintf ppf "Normal(%g,%g)" mu sd
  | Lognormal (mu, s) -> Format.fprintf ppf "Lognormal(%g,%g)" mu s
  | Deterministic c -> Format.fprintf ppf "Det(%g)" c
  | Pareto (s, a) -> Format.fprintf ppf "Pareto(scale=%g,shape=%g)" s a
  | Hyperexponential bs ->
      Format.fprintf ppf "HyperExp(%a)"
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           (fun ppf (p, r) -> Format.fprintf ppf "%g:%g" p r))
        bs
  | Truncated_exponential (r, w) -> Format.fprintf ppf "TrExp(rate=%g,width=%g)" r w
