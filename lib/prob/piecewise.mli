(** Exact sampling from piecewise log-linear densities on an interval.

    A density of the form [p(x) ∝ exp (β·x + Σᵢ sᵢ · max 0. (x - bᵢ))]
    on a bounded interval [\[lower, upper\]] is exactly the shape of
    the Gibbs conditional over an unobserved arrival/departure time in
    an M/M/1 FIFO network (the paper's Figure 3): each neighbouring
    service time contributes one linear-or-hinge term. This module
    compiles such a "hinge form" into explicit pieces and supports
    exact inverse-CDF sampling, evaluation, and moments, all in
    log-space.

    All computations are stable for rates up to ~1e300 and intervals
    down to the denormal range: piece masses use [log1mexp] /
    [Float.expm1], never bare [exp] differences. *)

type hinge = { knee : float; slope : float }
(** One term [slope · max 0. (x - knee)]: contributes nothing left of
    [knee] and linear growth [slope] (of either sign) right of it. *)

type t
(** A compiled density. Immutable. *)

val compile :
  lower:float -> upper:float -> linear:float -> hinges:hinge list -> t
(** [compile ~lower ~upper ~linear ~hinges] builds the density
    [exp (linear·x + Σ hinges)] restricted to [\[lower, upper\]].
    Requires [lower < upper], both finite. Knees outside the interval
    are folded into the global slope (left of [lower]) or dropped
    (right of [upper]); hinges with a non-finite knee or slope are
    dropped entirely (they can only arise from corrupted upstream
    state). Raises [Invalid_argument] on a degenerate or reversed
    interval — callers with possibly-degenerate windows should collapse
    them to a point first, as {!Qnet_core.Gibbs.compile} does. *)

val lower : t -> float
val upper : t -> float

val pieces : t -> (float * float * float) list
(** [(piece_lo, piece_hi, rate)] for each compiled piece, left to
    right; [rate] is the log-density slope on that piece. Exposed for
    tests and for cross-checking against the paper's three-case
    formula. *)

val log_density : t -> float -> float
(** Unnormalized log-density (up to one shared additive constant);
    [neg_infinity] outside [\[lower t, upper t\]]. *)

val log_normalizer : t -> float
(** [log ∫ exp (log_density)] over the interval, consistent with the
    constant used by {!log_density}. *)

val cdf : t -> float -> float
(** Normalized CDF of the density. *)

val quantile : t -> float -> float
(** Exact inverse CDF; requires the argument in [\[0, 1\]]. *)

val sample : Rng.t -> t -> float
(** One exact draw: choose a piece by its normalized mass, then invert
    the truncated-exponential CDF within the piece. *)

val mean : t -> float
(** Exact first moment (closed-form per piece). *)
