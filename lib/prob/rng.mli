(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, giving a
    256-bit state with period [2^256 - 1]. Generators are explicit
    values: every sampling function in the library threads a [t]
    through, so simulations and samplers are reproducible from a seed
    and independent streams can be created with {!split}. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a fresh generator. The default seed is a
    fixed constant, so two generators created without a seed produce
    identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from the current
    state of [t]; advancing one does not affect the other. *)

val state : t -> int64 array
(** [state t] is the current 4-word xoshiro256++ state, for
    checkpointing. Restoring it with {!set_state} reproduces the
    stream bit for bit. *)

val set_state : t -> int64 array -> unit
(** [set_state t s] overwrites the generator state with the 4 words of
    [s]. Raises [Invalid_argument] unless [s] has length 4 and is not
    all zero (the one state xoshiro can never leave). *)

val of_state : int64 array -> t
(** [of_state s] is a fresh generator at state [s] (same validation as
    {!set_state}). *)

val split : t -> t
(** [split t] returns a new generator seeded from the output of [t]
    (advancing [t]). Streams obtained by repeated splitting are
    statistically independent for simulation purposes. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output word. *)

val float_unit : t -> float
(** [float_unit t] is uniform on [[0, 1)], with 53 bits of precision. *)

val float_pos : t -> float
(** [float_pos t] is uniform on [(0, 1]]. Safe as the argument of
    [log] when sampling exponentials. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform on [[lo, hi)]. Requires
    [lo <= hi]; returns [lo] when the interval is degenerate. *)

val int : t -> int -> int
(** [int t n] is uniform on [{0, ..., n-1}]. Requires [n > 0].
    Uses rejection to avoid modulo bias. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a uniform Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [{0, ..., n-1}], returned sorted increasingly. Requires
    [0 <= k <= n]. Uses Vitter's sequential sampling, O(n). *)

val categorical : t -> float array -> int
(** [categorical t w] samples index [i] with probability proportional
    to the non-negative weight [w.(i)]. Requires at least one strictly
    positive weight. *)
