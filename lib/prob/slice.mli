(** One-dimensional slice sampling (Neal 2003) on a bounded interval.

    The exact piecewise-exponential conditional only exists for
    exponential service; with general service distributions the Gibbs
    conditional over a departure time is an arbitrary density on a
    window, and slice sampling draws from it without tuning: sample a
    vertical level under the density at the current point, then sample
    uniformly from the horizontal slice, shrinking on rejections. Each
    call is one exact MCMC transition that leaves the target invariant
    (it is not an independent draw — callers iterate, as Gibbs sweeps
    naturally do). *)

val step :
  ?max_shrink:int ->
  Rng.t ->
  log_density:(float -> float) ->
  lower:float ->
  upper:float ->
  current:float ->
  float
(** [step rng ~log_density ~lower ~upper ~current] performs one slice
    transition targeting [exp log_density] restricted to
    [\[lower, upper\]]. [current] must lie in the interval and have
    finite log-density; raises [Invalid_argument] otherwise.
    [max_shrink] (default 100) bounds the shrink loop; if it is
    exhausted (pathological target), the current point is returned —
    a valid, if lazy, MCMC move. *)

val step_stats :
  ?max_shrink:int ->
  Rng.t ->
  log_density:(float -> float) ->
  lower:float ->
  upper:float ->
  current:float ->
  float * int
(** Exactly {!step}, additionally returning the number of shrink
    rejections the transition needed (0 = the first horizontal draw
    was accepted; [max_shrink] = the loop was exhausted and the
    current point returned). Consumes the same RNG stream as {!step}
    for the same draw, so instrumented and uninstrumented runs stay
    bit-identical. The shrink count is the sampler-efficiency signal
    the convergence diagnostics track: a rising shrink rate means the
    conditional has become sharply peaked relative to its window. *)
