(** Descriptive statistics used by the estimators, the experiment
    harness, and the test suite. *)

(** Streaming mean/variance accumulator (Welford's algorithm);
    numerically stable for long runs. *)
module Welford : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** NaN inputs do not poison the accumulator: they are skipped and
      counted (see {!skipped}), so one corrupted sample in a long
      stream costs one observation, not the whole run's moments. *)

  val count : t -> int
  (** Number of accumulated (non-NaN) samples. *)

  val skipped : t -> int
  (** Number of NaN inputs dropped by {!add} so far. *)

  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] for fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators (Chan's parallel update). *)
end

val mean : float array -> float
(** Arithmetic mean; [nan] on empty input. *)

val variance : float array -> float
(** Unbiased sample variance; [nan] for fewer than two elements. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [[0,1]], linear interpolation between
    order statistics (type-7, the R default). Does not modify [xs].
    Raises [Invalid_argument] on empty input or [p] outside [[0,1]]. *)

val median : float array -> float
val iqr : float array -> float

val median_absolute_deviation : float array -> float
(** Raw MAD (no consistency constant). *)

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] is an equal-width histogram as
    [(lo, hi, count)] triples covering [[min xs, max xs]].
    Default 20 bins. *)

val empirical_cdf : float array -> float -> float
(** [empirical_cdf xs x] is the fraction of samples <= [x] (the input
    need not be sorted; O(n) per query). *)

val ks_statistic_against : float array -> (float -> float) -> float
(** [ks_statistic_against xs cdf] is the one-sample Kolmogorov–Smirnov
    statistic sup |F̂(x) − cdf x|, used to validate samplers against
    their analytic CDFs. *)

val ks_two_sample : float array -> float array -> float
(** Two-sample KS distance. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs k] is the lag-[k] sample autocorrelation;
    0 when the series is constant. *)

val effective_sample_size : float array -> float
(** Initial-positive-sequence estimator (Geyer) of MCMC effective
    sample size. *)

val gelman_rubin : float array array -> float
(** [gelman_rubin chains] is the potential-scale-reduction statistic
    R̂ over two or more equal-length chains. *)

val split_gelman_rubin : float array array -> float
(** [split_gelman_rubin chains] is split-R̂: each chain's most recent
    [2⌊n/2⌋] samples are split in half and classic {!gelman_rubin} is
    computed over the 2m half-chains. Splitting additionally detects
    within-chain drift (a chain still wandering toward the mode shows
    R̂ ≫ 1 even if chain means agree) and is well-defined for a single
    chain. Chains may have unequal lengths — the shortest decides the
    window, and each chain contributes its most recent samples. Raises
    [Invalid_argument] on an empty chain list or when the shortest
    chain has fewer than 4 samples. *)

val pooled_effective_sample_size : float array array -> float
(** Sum of {!effective_sample_size} over independently-run chains —
    the ensemble's total budget of effectively independent draws. *)
