(** Descriptive statistics used by the estimators, the experiment
    harness, and the test suite. *)

(** Streaming mean/variance accumulator (Welford's algorithm);
    numerically stable for long runs. *)
module Welford : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** NaN inputs do not poison the accumulator: they are skipped and
      counted (see {!skipped}), so one corrupted sample in a long
      stream costs one observation, not the whole run's moments. *)

  val count : t -> int
  (** Number of accumulated (non-NaN) samples. *)

  val skipped : t -> int
  (** Number of NaN inputs dropped by {!add} so far. *)

  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] for fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators (Chan's parallel update). *)
end

val mean : float array -> float
(** Arithmetic mean; [nan] on empty input. *)

val variance : float array -> float
(** Unbiased sample variance; [nan] for fewer than two elements. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [[0,1]], linear interpolation between
    order statistics (type-7, the R default). Does not modify [xs].
    Raises [Invalid_argument] on empty input or [p] outside [[0,1]]. *)

val median : float array -> float
val iqr : float array -> float

val median_absolute_deviation : float array -> float
(** Raw MAD (no consistency constant). *)

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] is an equal-width histogram as
    [(lo, hi, count)] triples covering [[min xs, max xs]].
    Default 20 bins. *)

val empirical_cdf : float array -> float -> float
(** [empirical_cdf xs x] is the fraction of samples <= [x] (the input
    need not be sorted; O(n) per query). *)

val ks_statistic_against : float array -> (float -> float) -> float
(** [ks_statistic_against xs cdf] is the one-sample Kolmogorov–Smirnov
    statistic sup |F̂(x) − cdf x|, used to validate samplers against
    their analytic CDFs. *)

val ks_two_sample : float array -> float array -> float
(** Two-sample KS distance. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs k] is the lag-[k] sample autocorrelation;
    0 when the series is constant. *)

val effective_sample_size : float array -> float
(** Initial-positive-sequence estimator (Geyer) of MCMC effective
    sample size. *)

val gelman_rubin : float array array -> float
(** [gelman_rubin chains] is the potential-scale-reduction statistic
    R̂ over two or more equal-length chains. *)

val split_gelman_rubin : float array array -> float
(** [split_gelman_rubin chains] is split-R̂: each chain's most recent
    [2⌊n/2⌋] samples are split in half and classic {!gelman_rubin} is
    computed over the 2m half-chains. Splitting additionally detects
    within-chain drift (a chain still wandering toward the mode shows
    R̂ ≫ 1 even if chain means agree) and is well-defined for a single
    chain. Chains may have unequal lengths — the shortest decides the
    window, and each chain contributes its most recent samples. Raises
    [Invalid_argument] on an empty chain list or when the shortest
    chain has fewer than 4 samples. *)

val pooled_effective_sample_size : float array array -> float
(** Sum of {!effective_sample_size} over independently-run chains —
    the ensemble's total budget of effectively independent draws.

    Edge-case contract (pinned by tests): a single chain contributes
    its own ESS; a constant chain has zero autocorrelation by
    convention and contributes its full length; a chain containing a
    NaN yields [nan] for the pooled total (NaN screening is the
    caller's job — the streaming {!Online} accumulators skip NaN at
    the door instead). *)

(** Streaming (one-pass, O(max_lag) memory) variants of the MCMC
    diagnostics above, for monitors that must not buffer whole chains.
    Non-finite inputs are skipped and counted, Welford-style, so one
    corrupted iterate cannot poison a long-running accumulator. *)
module Online : sig
  type acf
  (** Streaming lag-k autocovariance over a growing series: a ring of
      the last [max_lag] values plus running cross-product sums. *)

  val acf : ?max_lag:int -> unit -> acf
  (** [acf ~max_lag ()] tracks lags 1..[max_lag] (default 64). Raises
      [Invalid_argument] when [max_lag < 1]. *)

  val push : acf -> float -> unit
  (** Add one sample; non-finite values are skipped and counted. *)

  val count : acf -> int
  (** Accepted (finite) samples so far. *)

  val skipped : acf -> int
  (** Non-finite samples dropped by {!push} so far. *)

  val mean : acf -> float
  (** [nan] when empty. *)

  val autocovariance : acf -> int -> float
  (** [autocovariance t k] is the streaming estimate
      γ̂_k = S_k/(n−k) − μ̂² (global-mean centering — an O(1/n)
      approximation of the batch estimator, converging to it).
      [nan] with fewer than [k+1] samples; raises [Invalid_argument]
      for [k] outside [0, max_lag]. *)

  val autocorrelation : acf -> int -> float
  (** γ̂_k/γ̂_0, clamped into [\[-1, 1\]] (the global-mean approximation
      can overshoot while the series still trends); 0 when the series
      is constant (the {!Statistics.autocorrelation} convention),
      [nan] with fewer than [k+1] samples. *)

  val ess : acf -> float
  (** Geyer initial-positive-sequence effective sample size over the
      tracked lags: 0 when empty, otherwise clamped to [\[1, count\]].
      Matches {!Statistics.effective_sample_size} up to the truncation
      at [max_lag] and the streaming autocovariance approximation. *)
end
