let log_sum_exp2 a b =
  if Float.equal a neg_infinity then b
  else if Float.equal b neg_infinity then a
  else if a >= b then a +. Float.log1p (exp (b -. a))
  else b +. Float.log1p (exp (a -. b))

let log_sum_exp xs =
  let m = Array.fold_left max neg_infinity xs in
  if Float.equal m neg_infinity then neg_infinity
  else if Float.equal m infinity then infinity
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. exp (x -. m)) xs;
    m +. log !acc
  end

let log_half = -0.6931471805599453

let log1mexp x =
  if x > 0.0 then invalid_arg "Special.log1mexp: positive argument"
  else if Float.equal x 0.0 then neg_infinity
  else if x > log_half then log (-.Float.expm1 x)
  else Float.log1p (-.exp x)

let log_expm1 x =
  if x <= 0.0 then invalid_arg "Special.log_expm1: non-positive argument"
  else if x > 36.0 then x (* exp x -. 1. = exp x to double precision *)
  else log (Float.expm1 x)

(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos_g = 7.0

let lanczos_coef =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: non-positive argument"
  else if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coef.(0) in
    for i = 1 to Array.length lanczos_coef - 1 do
      acc := !acc +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_factorial_table =
  let t = Array.make 32 0.0 in
  for n = 2 to 31 do
    t.(n) <- t.(n - 1) +. log (float_of_int n)
  done;
  t

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument"
  else if n < 32 then log_factorial_table.(n)
  else log_gamma (float_of_int n +. 1.0)

(* erfc via the continued-fraction-free rational approximation of
   W. J. Cody / Numerical Recipes erfccheb, |error| < 1.2e-7 would be
   too loose; instead use the expansion with the 10-term Chebyshev fit
   refined by one Newton step through the exact derivative. *)
let erfc_raw x =
  (* Numerical Recipes "erfc" Chebyshev-like fit; accurate to 1.2e-7. *)
  let z = Float.abs x in
  let t = 2.0 /. (2.0 +. z) in
  let ty = (4.0 *. t) -. 2.0 in
  let cof =
    [| -1.3026537197817094; 6.4196979235649026e-1; 1.9476473204185836e-2;
       -9.561514786808631e-3; -9.46595344482036e-4; 3.66839497852761e-4;
       4.2523324806907e-5; -2.0278578112534e-5; -1.624290004647e-6;
       1.303655835580e-6; 1.5626441722e-8; -8.5238095915e-8;
       6.529054439e-9; 5.059343495e-9; -9.91364156e-10; -2.27365122e-10;
       9.6467911e-11; 2.394038e-12; -6.886027e-12; 8.94487e-13;
       3.13092e-13; -1.12708e-13; 3.81e-16; 7.106e-15 |]
  in
  let d = ref 0.0 and dd = ref 0.0 in
  for j = Array.length cof - 1 downto 1 do
    let tmp = !d in
    d := (ty *. !d) -. !dd +. cof.(j);
    dd := tmp
  done;
  let ans = t *. exp ((-.z *. z) +. (0.5 *. (cof.(0) +. (ty *. !d))) -. !dd) in
  if x >= 0.0 then ans else 2.0 -. ans

let erfc x = erfc_raw x

let erf x = 1.0 -. erfc_raw x

let sqrt2 = sqrt 2.0

let std_normal_cdf x = 0.5 *. erfc (-.x /. sqrt2)

(* Acklam's inverse normal CDF approximation + one Halley refinement. *)
let std_normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.std_normal_quantile: argument outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
      +. c.(5)
      |> fun num ->
      num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
      +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r
         +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
         +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
  in
  (* One Halley step against the exact CDF. *)
  let e = std_normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let lower_incomplete_gamma_regularized a x =
  if a <= 0.0 then invalid_arg "Special.lower_incomplete_gamma: a <= 0";
  if x < 0.0 then invalid_arg "Special.lower_incomplete_gamma: x < 0";
  if Float.equal x 0.0 then 0.0
  else if x < a +. 1.0 then begin
    (* Series representation. *)
    let rec loop ap sum del n =
      if n > 500 then sum
      else
        let ap = ap +. 1.0 in
        let del = del *. x /. ap in
        let sum = sum +. del in
        if Float.abs del < Float.abs sum *. 1e-15 then sum else loop ap sum del (n + 1)
    in
    let sum0 = 1.0 /. a in
    let sum = loop a sum0 sum0 0 in
    sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)
  end
  else begin
    (* Continued fraction (modified Lentz) for Q(a,x). *)
    let fpmin = 1e-300 in
    let b = ref (x +. 1.0 -. a) in
    let c = ref (1.0 /. fpmin) in
    let d = ref (1.0 /. !b) in
    let h = ref !d in
    (try
       for i = 1 to 500 do
         let an = -.float_of_int i *. (float_of_int i -. a) in
         b := !b +. 2.0;
         d := (an *. !d) +. !b;
         if Float.abs !d < fpmin then d := fpmin;
         c := !b +. (an /. !c);
         if Float.abs !c < fpmin then c := fpmin;
         d := 1.0 /. !d;
         let del = !d *. !c in
         h := !h *. del;
         if Float.abs (del -. 1.0) < 1e-15 then raise Exit
       done
     with Exit -> ());
    let q = exp ((-.x) +. (a *. log x) -. log_gamma a) *. !h in
    1.0 -. q
  end

let rec digamma x =
  if x <= 0.0 then invalid_arg "Special.digamma: non-positive argument"
  else if x < 12.0 then digamma (x +. 1.0) -. (1.0 /. x)
  else begin
    (* asymptotic expansion: ln x - 1/2x - 1/12x^2 + 1/120x^4 - 1/252x^6 *)
    let inv = 1.0 /. x in
    let inv2 = inv *. inv in
    log x -. (0.5 *. inv)
    -. (inv2 *. (1.0 /. 12.0 -. (inv2 *. (1.0 /. 120.0 -. (inv2 /. 252.0)))))
  end

let rec trigamma x =
  if x <= 0.0 then invalid_arg "Special.trigamma: non-positive argument"
  else if x < 12.0 then trigamma (x +. 1.0) +. (1.0 /. (x *. x))
  else begin
    (* asymptotic: 1/x + 1/2x^2 + 1/6x^3 - 1/30x^5 + 1/42x^7 *)
    let inv = 1.0 /. x in
    let inv2 = inv *. inv in
    inv +. (0.5 *. inv2)
    +. (inv *. inv2
       *. (1.0 /. 6.0 -. (inv2 *. (1.0 /. 30.0 -. (inv2 /. 42.0)))))
  end
