let fnv1a s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  (* fold to a non-negative int by masking, not shifting: the low
     bits carry the avalanche, and small-modulus routing (mod 2) must
     see them *)
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let shard_of_tenant ~shards tenant =
  if shards < 1 then invalid_arg "Router.shard_of_tenant: shards must be >= 1";
  fnv1a tenant mod shards
