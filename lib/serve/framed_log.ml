(* CRC32-framed durable log records.

   Every record the serving layer persists — event-log lines and the
   one-line shard checkpoints — is wrapped in a self-validating frame:

     CCCCCCCC LEN PAYLOAD

   where CCCCCCCC is the zlib-polynomial CRC32 of PAYLOAD in eight
   lowercase hex digits and LEN is the payload byte length in decimal.
   The frame is still one line of text, so logs stay greppable and the
   legacy unframed format remains readable: a line that does not parse
   as a frame at all is handed back as a raw legacy payload rather than
   dropped.

   Replay distinguishes three failure shapes. A line that is
   frame-shaped but fails its length or CRC check is a corrupt frame:
   it is quarantined (reported to the caller, never delivered) and
   counted exactly. An unterminated final line that fails validation is
   a torn tail — the classic crash-mid-write artifact — and the file is
   truncated back to the last valid frame so the next append starts
   clean. An unterminated final line that still validates lost only its
   newline; the payload is delivered and the terminator repaired in
   place. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.to_int (Int32.logand !c 1l) = 1 then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let frame payload =
  Printf.sprintf "%08lx %d %s" (crc32 payload) (String.length payload) payload

type error = Not_a_frame | Corrupt of string

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let parse line =
  let n = String.length line in
  if n < 11 || not (String.for_all is_hex (String.sub line 0 8)) || line.[8] <> ' '
  then Error Not_a_frame
  else
    match String.index_from_opt line 9 ' ' with
    | None -> Error Not_a_frame
    | Some sp -> (
        match
          ( int_of_string_opt (String.sub line 9 (sp - 9)),
            Int32.of_string_opt ("0x" ^ String.sub line 0 8) )
        with
        | None, _ | _, None -> Error Not_a_frame
        | Some declared_len, Some declared_crc ->
            let payload = String.sub line (sp + 1) (n - sp - 1) in
            if String.length payload <> declared_len then
              Error
                (Corrupt
                   (Printf.sprintf "payload length %d != declared %d"
                      (String.length payload) declared_len))
            else
              let crc = crc32 payload in
              if Int32.equal crc declared_crc then Ok payload
              else
                Error
                  (Corrupt
                     (Printf.sprintf "crc %08lx != declared %08lx" crc
                        declared_crc)))

type stats = { frames : int; legacy : int; corrupt : int; torn : bool }

let empty_stats = { frames = 0; legacy = 0; corrupt = 0; torn = false }

let replay_file ?(truncate_torn = true) ~path ~on_payload ~on_corrupt () =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | content ->
      let len = String.length content in
      if len = 0 then Ok empty_stats
      else
        let ends_nl = Char.equal content.[len - 1] '\n' in
        let lines = String.split_on_char '\n' content in
        let lines =
          (* A terminated file splits into a trailing "" artifact. *)
          if ends_nl then
            let keep = List.length lines - 1 in
            List.filteri (fun i _ -> i < keep) lines
          else lines
        in
        let frames = ref 0 and legacy = ref 0 and corrupt = ref 0 in
        let torn = ref false in
        let offset = ref 0 in
        let classify line =
          if String.length line = 0 then ()
          else
            match parse line with
            | Ok payload ->
                incr frames;
                on_payload payload
            | Error Not_a_frame ->
                incr legacy;
                on_payload line
            | Error (Corrupt reason) ->
                incr corrupt;
                on_corrupt ~line ~reason
        in
        let rec go = function
          | [] -> Ok ()
          | [ last ] when not ends_nl -> (
              (* Unterminated final line: either a frame that lost only
                 its newline (repair) or a torn partial write
                 (truncate back to the previous record boundary). *)
              match parse last with
              | Ok payload ->
                  incr frames;
                  on_payload payload;
                  if truncate_torn then (
                    match
                      Out_channel.with_open_gen
                        [ Open_append; Open_binary ] 0o644 path
                        (fun oc -> Out_channel.output_char oc '\n')
                    with
                    | () -> Ok ()
                    | exception Sys_error m -> Error m)
                  else Ok ()
              | Error _ ->
                  torn := true;
                  if truncate_torn then (
                    match Unix.truncate path !offset with
                    | () -> Ok ()
                    | exception Unix.Unix_error (e, _, _) ->
                        Error (Unix.error_message e))
                  else Ok ())
          | line :: rest ->
              classify line;
              offset := !offset + String.length line + 1;
              go rest
        in
        go lines
        |> Result.map (fun () ->
               { frames = !frames; legacy = !legacy; corrupt = !corrupt; torn = !torn })
