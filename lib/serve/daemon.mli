(** The serving daemon: shards, admission control, and the HTTP
    surface, sharing one listener with the telemetry endpoints.

    A daemon owns [config.shards] {!Shard}s (each with its own data
    directory, worker thread and bounded ingest queue), a
    {!Ingest.Dead_letter} quarantine, optional file tailers, and a
    {!Qnet_webapp.Metrics_server} started with a [handler] that mounts
    the serving routes next to the built-in [/metrics], [/dashboard],
    etc.:

    - [POST /ingest] — a JSONL batch. Each decoded record first passes
      the per-tenant Bernoulli {!Admission} coin (AIMD-driven by shard
      queue occupancy and refit lag; records thinned this way are
      reported as [sampled_out], not errors). Backpressure on the
      admitted subset is {e batch-atomic}: the batch is decoded with
      no side effects first, and if any target shard's queue cannot
      take its admitted share the {e whole} batch is rejected with
      [429] + a [Retry-After] computed from the shard's measured drain
      rate (clamped to 1–30 s), and nothing is counted, quarantined or
      enqueued. A client that retries the whole batch on 429 therefore
      never double-quarantines a poison line — which is what makes
      "dead-letter count == injected poison count" an assertable
      invariant in the soak test.
    - [GET /shards.json] — per-shard health verdicts, including the
      degradation-ladder [level]/[degraded_reason] and the durable-log
      replay accounting ([replayed_events], [log_corrupt_frames],
      [log_torn_tails]).
    - [GET /tenants/:id/posterior.json] — the tenant's latest
      posterior with a [stale] flag ([true] when it came from a
      checkpoint and has not been refreshed, when the owning shard is
      not currently healthy, or when the shard is pinned to stale
      serve), the fit mode that produced it, and the tenant's current
      admission rate plus effective retained [sampling_fraction] (the
      correction factor for arrival-rate estimates under thinning).
      Never a 500: unknown tenants get 404, known-but-unfitted tenants
      get [ready:false].
    - [GET /fleet.json] — the {!Fleet} SLO snapshot: per-tenant
      p50/p95/p99 over the ingest / queue-wait / refit / serve phases
      plus the bottleneck ranking; [GET /fleet] serves the
      self-contained HTML panel that polls it.
    - [GET /profile.json] — the {!Qnet_obs.Prof} snapshot (allocation
      site table, GC pause histograms, rusage); [POST /profile/start]
      (optional body [{"sampling_rate": r}]) and [POST /profile/stop]
      profile a live shard without restart. A stopped session's
      snapshot stays readable, so start → soak → stop → scrape works.

    Tenants are routed to shards by a stable FNV-1a hash
    ({!Router.shard_of_tenant}), so a restarted daemon routes every
    tenant to the shard whose checkpoint holds its posterior. *)

type config = {
  shards : int;
  data_dir : string;  (** per-shard state lives in [data_dir/shard-N] *)
  host : string;
  port : int;  (** [0] picks an ephemeral port *)
  retry_ephemeral : bool;
      (** survive a port collision by falling back to an ephemeral
          port (see {!Qnet_webapp.Metrics_server.start}) *)
  dead_letter : string option;  (** [None]: count-only quarantine *)
  tail_files : string list;  (** files to tail as JSONL/CSV sources *)
  tail_policy : Bounded_queue.policy;
      (** what a tailer does on a full queue: [Block] (default
          posture: a tailer can fall behind) or [Shed] *)
  shard : Shard.config;
  admission : Admission.config;
  faults : Qnet_runtime.Fault.service_fault list;
  trace_sample_rate : float;
      (** head-based sampling rate for end-to-end request traces,
          decided once when the record is admitted at [POST /ingest]
          and carried through queue, refit and serve (default 0.01) *)
  trace_seed : int;
      (** seed for the deterministic trace sampler: the same seed and
          ingest order sample the same requests (default 1) *)
  profile_on_start : bool;
      (** start a {!Qnet_obs.Prof} session as soon as the daemon is up
          (default false; a live daemon can always be profiled
          on-demand via [POST /profile/start]) *)
  profile_alloc_rate : float;
      (** Memprof sampling rate used when profiling starts — at boot
          or by a [POST /profile/start] with no body (default 0.01) *)
}

val default_config : config
(** 2 shards, [./qnet-serve-data], loopback port 8099, no fallback,
    dead letter at [data_dir/dead-letter.jsonl], no tails, [Block],
    {!Shard.default_config}, {!Admission.default_config}, no faults,
    1% trace sampling with seed 1. *)

type t

val create : config -> (t, string) result
(** Force-registers the [qnet_serve_*] metric families, starts every
    shard (resuming from its data directory when checkpoints exist),
    opens the dead-letter file, starts the HTTP listener and the file
    tailers. [Error] on a bind failure, an invalid shard config, or an
    unusable data directory — partially started pieces are torn down. *)

val port : t -> int
val fell_back : t -> bool
val shards : t -> Shard.t list
val dead_letter_count : t -> int

val healthy_shards : t -> int
(** Shards currently reporting {!Shard.Healthy}. *)

val handle : t -> Qnet_webapp.Metrics_server.request ->
  Qnet_webapp.Metrics_server.response option
(** The route handler (exposed for in-process tests; the listener
    already consults it). *)

val stop : t -> unit
(** Graceful: stop the tailers, stop every shard (final checkpoint),
    stop the listener, close the dead letter. Idempotent. *)
