module Metrics = Qnet_obs.Metrics
module Jsonx = Qnet_obs.Jsonx
module Clock = Qnet_obs.Clock
module Span = Qnet_obs.Span
module Trace_ctx = Qnet_obs.Trace_ctx
module Server = Qnet_webapp.Metrics_server
module Fault = Qnet_runtime.Fault

let log_src = Logs.Src.create "qnet.serve.daemon" ~doc:"Serving daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  shards : int;
  data_dir : string;
  host : string;
  port : int;
  retry_ephemeral : bool;
  dead_letter : string option;
  tail_files : string list;
  tail_policy : Bounded_queue.policy;
  shard : Shard.config;
  admission : Admission.config;
  faults : Fault.service_fault list;
  trace_sample_rate : float;
  trace_seed : int;
  profile_on_start : bool;
  profile_alloc_rate : float;
}

let default_config =
  {
    shards = 2;
    data_dir = "qnet-serve-data";
    host = "127.0.0.1";
    port = 8099;
    retry_ephemeral = false;
    dead_letter = Some "qnet-serve-data/dead-letter.jsonl";
    tail_files = [];
    tail_policy = Bounded_queue.Block;
    shard = Shard.default_config;
    admission = Admission.default_config;
    faults = [];
    trace_sample_rate = 0.01;
    trace_seed = 1;
    profile_on_start = false;
    profile_alloc_rate = 0.01;
  }

type t = {
  cfg : config;
  shard_arr : Shard.t array;
  admission : Admission.t;
  sampler : Trace_ctx.sampler;
  dead : Ingest.Dead_letter.t;
  mutable server : Server.t option;
  profiling : bool Atomic.t;  (** this daemon started the profiler *)
  stopping : bool Atomic.t;
  mutable tailers : Thread.t list;
  mutable stopped : bool;
  stop_mutex : Mutex.t;
}

let m_lines = Serve_metrics.counter "qnet_serve_ingest_lines_total"
let m_accepted = Serve_metrics.counter "qnet_serve_ingest_accepted_total"

let m_quarantined =
  Serve_metrics.counter "qnet_serve_ingest_quarantined_total"

let m_shed = Serve_metrics.counter "qnet_serve_ingest_shed_total"
let m_requests = Serve_metrics.counter "qnet_serve_http_requests_total"
let m_429 = Serve_metrics.counter "qnet_serve_http_429_total"
let m_stale = Serve_metrics.counter "qnet_serve_stale_responses_total"
let g_shards = Serve_metrics.gauge "qnet_serve_shards"
let g_healthy = Serve_metrics.gauge "qnet_serve_healthy_shards"
let g_retry_after = Serve_metrics.gauge "qnet_serve_retry_after_seconds"

(* Per-tenant rate accounting: one labeled series per tenant key, on
   top of the label-less totals (creation is idempotent, so no handle
   cache is needed). *)
let tenant_counter tenant =
  Metrics.Counter.create
    ~help:"Events accepted per tenant key"
    ~labels:[ ("tenant", tenant) ]
    "qnet_serve_tenant_ingest_total"

let shards t = Array.to_list t.shard_arr
let dead_letter_count t = Ingest.Dead_letter.count t.dead

let healthy_shards t =
  Array.fold_left
    (fun acc s ->
      match Shard.status s with Shard.Healthy -> acc + 1 | _ -> acc)
    0 t.shard_arr

let port t = match t.server with Some s -> Server.port s | None -> 0

let fell_back t =
  match t.server with Some s -> Server.fell_back s | None -> false

(* ------------------------------------------------------------------ *)
(* Routing a record                                                    *)
(* ------------------------------------------------------------------ *)

let shard_of t tenant =
  t.shard_arr.(Router.shard_of_tenant ~shards:(Array.length t.shard_arr) tenant)

(* ------------------------------------------------------------------ *)
(* POST /ingest                                                        *)
(* ------------------------------------------------------------------ *)

let split_lines body =
  String.split_on_char '\n' body
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if String.length l = 0 then None else Some l)

(* Pressure a tenant's shard is under, in [0, 1]: the worse of queue
   occupancy and refit lag (lag saturates at 8 refit intervals — a
   shard that far behind is drowning even if its queue has room). *)
let shard_pressure t s =
  let q = Shard.queue s in
  let cap = float_of_int (Bounded_queue.capacity q) in
  let occupancy =
    if cap > 0.0 then float_of_int (Bounded_queue.length q) /. cap else 0.0
  in
  let lag =
    Shard.refit_lag s /. (8.0 *. t.cfg.shard.Shard.refit_interval)
  in
  Float.min 1.0 (Float.max occupancy lag)

(* Honest Retry-After: the excess over each overloaded shard's free
   room, paid back at its measured drain rate; clamped to [1, 30] so a
   stalled shard cannot push clients out forever. *)
let retry_after_of t overloaded =
  List.fold_left
    (fun acc (id, excess) ->
      let drain = Float.max 1.0 (Shard.drain_rate t.shard_arr.(id)) in
      Float.max acc (float_of_int excess /. drain))
    1.0 overloaded
  |> Float.min 30.0 |> Float.ceil

let handle_ingest t body =
  let req_start = Clock.elapsed () in
  let lines = split_lines body in
  (* Phase 1: decode with no side effects, feed the admission
     controller one pressure observation per tenant, then flip the
     Bernoulli coin per record. The coin runs before the room check so
     a thinned stream also shrinks the batch the shards must absorb. *)
  let decoded =
    List.map
      (fun line ->
        (line, Ingest.decode_line ~num_queues:t.cfg.shard.Shard.num_queues line))
      lines
  in
  let now = Clock.now () in
  let seen = Hashtbl.create 8 in
  List.iter
    (function
      | _, Error _ -> ()
      | _, Ok (r : Ingest.record) ->
          let tenant = r.Ingest.tenant in
          if not (Hashtbl.mem seen tenant) then begin
            Hashtbl.replace seen tenant ();
            Admission.observe t.admission ~tenant
              ~pressure:(shard_pressure t (shard_of t tenant))
              ~now
          end)
    decoded;
  let judged =
    List.map
      (fun (line, result) ->
        match result with
        | Error reason -> (line, `Poison reason)
        | Ok (r : Ingest.record) ->
            if Admission.admit t.admission ~tenant:r.Ingest.tenant then
              (line, `Admit r)
            else (line, `Sampled r))
      decoded
  in
  (* Phase 2: backpressure — every target shard must have room for its
     whole admitted share, otherwise reject the batch wholesale. *)
  let per_shard = Hashtbl.create 8 in
  List.iter
    (function
      | _, `Admit (r : Ingest.record) ->
          let id = Shard.id (shard_of t r.Ingest.tenant) in
          let n = Option.value ~default:0 (Hashtbl.find_opt per_shard id) in
          Hashtbl.replace per_shard id (n + 1)
      | _ -> ())
    judged;
  let overloaded =
    Hashtbl.fold
      (fun id n acc ->
        let q = Shard.queue t.shard_arr.(id) in
        let room = Bounded_queue.capacity q - Bounded_queue.length q in
        if n > room then (id, n - room) :: acc else acc)
      per_shard []
  in
  if overloaded <> [] then begin
    Metrics.Counter.inc (Lazy.force m_429);
    let retry = retry_after_of t overloaded in
    Metrics.Gauge.set (Lazy.force g_retry_after) retry;
    Server.response ~status:"429 Too Many Requests"
      ~extra_headers:[ ("Retry-After", Printf.sprintf "%.0f" retry) ]
      (Jsonx.render
         (Jsonx.Obj
            [
              ("error", Jsonx.Str "backpressure");
              ( "shards",
                Jsonx.Arr
                  (List.map
                     (fun (id, _) -> Jsonx.Num (float_of_int id))
                     (List.sort compare overloaded)) );
              ("retry_after", Jsonx.Num retry);
            ]))
  end
  else begin
    (* Phase 3: commit. Counters move only on the accepted attempt, so
       a client retrying a 429'd batch never double-counts. *)
    Metrics.Counter.inc
      ~by:(float_of_int (List.length lines))
      (Lazy.force m_lines);
    let n_accepted = ref 0
    and n_quarantined = ref 0
    and n_shed = ref 0
    and n_sampled = ref 0 in
    let offered_by = Hashtbl.create 8 and admitted_by = Hashtbl.create 8 in
    let bump tbl tenant =
      Hashtbl.replace tbl tenant
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl tenant))
    in
    List.iter
      (fun (line, verdict) ->
        match verdict with
        | `Poison reason ->
            Ingest.Dead_letter.write t.dead ~line ~reason;
            Metrics.Counter.inc (Lazy.force m_quarantined);
            incr n_quarantined
        | `Sampled (r : Ingest.record) ->
            bump offered_by r.Ingest.tenant;
            incr n_sampled
        | `Admit (r : Ingest.record) ->
            bump offered_by r.Ingest.tenant;
            bump admitted_by r.Ingest.tenant;
            let s = shard_of t r.Ingest.tenant in
            (* head-based sampling decision, minted once per admitted
               record at the edge; the context rides the queue item
               through refit to the end-to-end span *)
            let ctx = Trace_ctx.sample t.sampler in
            let enqueued_at = Clock.elapsed () in
            let item = { Shard.record = r; trace = ctx; enqueued_at } in
            if Bounded_queue.try_push (Shard.queue s) item then begin
              Metrics.Counter.inc (Lazy.force m_accepted);
              Metrics.Counter.inc (tenant_counter r.Ingest.tenant);
              (match ctx with
              | None -> ()
              | Some c ->
                  Span.emit
                    ~attrs:
                      [
                        ("trace", Trace_ctx.id_hex c);
                        ("tenant", r.Ingest.tenant);
                        ("shard", string_of_int (Shard.id s));
                      ]
                    ~start:req_start
                    ~duration:(enqueued_at -. req_start)
                    "serve.ingest");
              incr n_accepted
            end
            else begin
              (* lost the race with a concurrent producer after the
                 admission check — shed, visibly *)
              Metrics.Counter.inc (Lazy.force m_shed);
              incr n_shed
            end)
      judged;
    let committed_at = Clock.elapsed () in
    Hashtbl.iter
      (fun tenant offered ->
        let admitted =
          Option.value ~default:0 (Hashtbl.find_opt admitted_by tenant)
        in
        if admitted > 0 then
          Fleet.record Fleet.Ingest ~tenant (committed_at -. req_start);
        Admission.note t.admission ~tenant ~offered ~admitted)
      offered_by;
    Server.response ~status:"200 OK"
      (Jsonx.render
         (Jsonx.Obj
            [
              ("accepted", Jsonx.Num (float_of_int !n_accepted));
              ("quarantined", Jsonx.Num (float_of_int !n_quarantined));
              ("shed", Jsonx.Num (float_of_int !n_shed));
              ("sampled_out", Jsonx.Num (float_of_int !n_sampled));
            ]))
  end

(* ------------------------------------------------------------------ *)
(* GET /shards.json                                                    *)
(* ------------------------------------------------------------------ *)

let shard_json s =
  Jsonx.Obj
    [
      ("id", Jsonx.Num (float_of_int (Shard.id s)));
      ("status", Jsonx.Str (Shard.status_label (Shard.status s)));
      ("queue_depth", Jsonx.Num (float_of_int (Shard.queue_depth s)));
      ("iterations", Jsonx.Num (float_of_int (Shard.iterations s)));
      ("rounds", Jsonx.Num (float_of_int (Shard.rounds s)));
      ("restarts", Jsonx.Num (float_of_int (Shard.restarts s)));
      ("resumed", Jsonx.Bool (Shard.resumed s));
      ("tenants", Jsonx.Num (float_of_int (List.length (Shard.tenants s))));
      ("level", Jsonx.Str (Shard.level_label (Shard.level s)));
      ( "degraded_reason",
        match Shard.degraded_reason s with
        | None -> Jsonx.Null
        | Some m -> Jsonx.Str m );
      ("drain_rate", Jsonx.Num (Shard.drain_rate s));
      ("replayed_events", Jsonx.Num (float_of_int (Shard.replayed_events s)));
      ( "log_corrupt_frames",
        Jsonx.Num (float_of_int (Shard.log_corrupt_frames s)) );
      ("log_torn_tails", Jsonx.Num (float_of_int (Shard.log_torn_tails s)));
      ( "last_error",
        match Shard.last_error s with
        | None -> Jsonx.Null
        | Some m -> Jsonx.Str m );
    ]

let handle_shards t =
  let healthy = healthy_shards t in
  Metrics.Gauge.set (Lazy.force g_healthy) (float_of_int healthy);
  Server.response ~status:"200 OK"
    (Jsonx.render
       (Jsonx.Obj
          [
            ( "shards",
              Jsonx.Arr (Array.to_list (Array.map shard_json t.shard_arr)) );
            ("healthy", Jsonx.Num (float_of_int healthy));
            ("dead_letter", Jsonx.Num (float_of_int (dead_letter_count t)));
          ]))

(* ------------------------------------------------------------------ *)
(* GET /tenants/:id/posterior.json                                     *)
(* ------------------------------------------------------------------ *)

let posterior_path path =
  let prefix = "/tenants/" and suffix = "/posterior.json" in
  let pl = String.length prefix and sl = String.length suffix in
  let n = String.length path in
  if
    n > pl + sl
    && String.equal (String.sub path 0 pl) prefix
    && String.equal (String.sub path (n - sl) sl) suffix
  then Some (String.sub path pl (n - pl - sl))
  else None

let handle_posterior_inner t tenant =
  if not (Ingest.valid_tenant tenant) then
    Some
      (Server.response ~status:"404 Not Found"
         (Jsonx.render
            (Jsonx.Obj [ ("error", Jsonx.Str "invalid tenant key") ])))
  else
    let s = shard_of t tenant in
    let shard_status = Shard.status s in
    match Shard.posterior s ~tenant with
    | Some p ->
        let lvl = Shard.level s in
        let stale =
          p.Shard.from_checkpoint
          || (match shard_status with Shard.Healthy -> false | _ -> true)
          || lvl = Shard.Pinned
        in
        if stale then Metrics.Counter.inc (Lazy.force m_stale);
        let arr xs =
          Jsonx.Arr (Array.to_list (Array.map (fun v -> Jsonx.Num v) xs))
        in
        let snap = Admission.snapshot t.admission ~tenant in
        Some
          (Server.response ~status:"200 OK"
             (Jsonx.render
                (Jsonx.Obj
                   [
                     ("tenant", Jsonx.Str tenant);
                     ("ready", Jsonx.Bool true);
                     ("stale", Jsonx.Bool stale);
                     ( "shard_status",
                       Jsonx.Str (Shard.status_label shard_status) );
                     ("shard", Jsonx.Num (float_of_int (Shard.id s)));
                     ("level", Jsonx.Str (Shard.level_label lvl));
                     ( "degraded_reason",
                       match Shard.degraded_reason s with
                       | None -> Jsonx.Null
                       | Some m -> Jsonx.Str m );
                     ("fit_mode", Jsonx.Str p.Shard.fit_mode);
                     ("admission_rate", Jsonx.Num snap.Admission.rate);
                     ( "sampling_fraction",
                       Jsonx.Num (Admission.admitted_fraction snap) );
                     ("rates", arr p.Shard.params.Qnet_core.Params.rates);
                     ( "arrival_queue",
                       Jsonx.Num
                         (float_of_int
                            p.Shard.params.Qnet_core.Params.arrival_queue) );
                     ("mean_service", arr p.Shard.mean_service);
                     ("iteration", Jsonx.Num (float_of_int p.Shard.iteration));
                     ("round", Jsonx.Num (float_of_int p.Shard.round));
                     ("num_events", Jsonx.Num (float_of_int p.Shard.num_events));
                     ("fitted_at", Jsonx.Num p.Shard.fitted_at);
                   ])))
    | None ->
        if Shard.knows_tenant s ~tenant then
          Some
            (Server.response ~status:"200 OK"
               (Jsonx.render
                  (Jsonx.Obj
                     [
                       ("tenant", Jsonx.Str tenant);
                       ("ready", Jsonx.Bool false);
                       ("stale", Jsonx.Bool false);
                       ( "shard_status",
                         Jsonx.Str (Shard.status_label shard_status) );
                       ("shard", Jsonx.Num (float_of_int (Shard.id s)));
                     ])))
        else
          Some
            (Server.response ~status:"404 Not Found"
               (Jsonx.render
                  (Jsonx.Obj [ ("error", Jsonx.Str "unknown tenant") ])))

(* Posterior reads are the "serve" leg of the tenant's SLO pipeline:
   timed into the per-tenant histogram (only for tenants the fleet
   actually knows, so probes for junk keys cannot mint series) and
   head-sampled into their own serve.posterior spans. *)
let handle_posterior t tenant =
  let t0 = Clock.elapsed () in
  let resp = handle_posterior_inner t tenant in
  if Ingest.valid_tenant tenant && Shard.knows_tenant (shard_of t tenant) ~tenant
  then begin
    let dt = Clock.elapsed () -. t0 in
    Fleet.record Fleet.Serve ~tenant dt;
    match Trace_ctx.sample t.sampler with
    | None -> ()
    | Some c ->
        Span.emit
          ~attrs:[ ("trace", Trace_ctx.id_hex c); ("tenant", tenant) ]
          ~start:t0 ~duration:dt "serve.posterior"
  end;
  resp

(* ------------------------------------------------------------------ *)
(* Live profiling (GET /profile.json, POST /profile/{start,stop})      *)
(* ------------------------------------------------------------------ *)

let profile_status () =
  let backend =
    match Qnet_obs.Prof.backend () with
    | None -> "null"
    | Some Qnet_obs.Prof.Counters -> "\"counters\""
    | Some Qnet_obs.Prof.Memprof -> "\"memprof\""
  in
  Printf.sprintf "{\"running\":%b,\"backend\":%s}\n"
    (Qnet_obs.Prof.running ()) backend

let handle_profile_start t body =
  let rate =
    if String.trim body = "" then Ok t.cfg.profile_alloc_rate
    else
      match Jsonx.parse_object body with
      | Error e -> Error ("bad JSON body: " ^ e)
      | Ok fields -> (
          match List.assoc_opt "sampling_rate" fields with
          | Some (Jsonx.Num r) -> Ok r
          | Some _ -> Error "sampling_rate must be a number"
          | None -> Ok t.cfg.profile_alloc_rate)
  in
  match rate with
  | Error msg ->
      Server.response ~status:"400 Bad Request"
        (Printf.sprintf "{\"error\":\"%s\"}\n" (Jsonx.escape msg))
  | Ok rate -> (
      match
        Qnet_obs.Prof.start
          ~config:{ Qnet_obs.Prof.default_config with sampling_rate = rate }
          ()
      with
      | _backend ->
          Atomic.set t.profiling true;
          Server.response ~status:"200 OK" (profile_status ())
      | exception Invalid_argument msg ->
          Server.response ~status:"400 Bad Request"
            (Printf.sprintf "{\"error\":\"%s\"}\n" (Jsonx.escape msg)))

let handle_profile_stop t =
  Qnet_obs.Prof.stop ();
  Atomic.set t.profiling false;
  Server.response ~status:"200 OK" (profile_status ())

(* ------------------------------------------------------------------ *)
(* The route handler                                                   *)
(* ------------------------------------------------------------------ *)

let handle t (req : Server.request) =
  let serve_route response =
    Metrics.Counter.inc (Lazy.force m_requests);
    response
  in
  match (req.Server.meth, req.Server.path) with
  | "POST", "/ingest" -> serve_route (Some (handle_ingest t req.Server.body))
  | "GET", "/shards.json" -> serve_route (Some (handle_shards t))
  | "GET", "/fleet.json" ->
      serve_route
        (Some (Server.response ~status:"200 OK" (Fleet.snapshot_json () ^ "\n")))
  | "GET", ("/fleet" | "/fleet/") ->
      serve_route
        (Some
           (Server.response ~status:"200 OK"
              ~content_type:"text/html; charset=utf-8" Qnet_webapp.Fleet_panel.html))
  | "GET", "/profile.json" ->
      serve_route
        (Some
           (Server.response ~status:"200 OK"
              (Qnet_obs.Prof.snapshot_json () ^ "\n")))
  | "POST", "/profile/start" ->
      serve_route (Some (handle_profile_start t req.Server.body))
  | "POST", "/profile/stop" -> serve_route (Some (handle_profile_stop t))
  | "GET", path -> (
      match posterior_path path with
      | Some tenant -> serve_route (handle_posterior t tenant)
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* File tailers                                                        *)
(* ------------------------------------------------------------------ *)

let push_tailed t (r : Ingest.record) =
  let q = Shard.queue (shard_of t r.Ingest.tenant) in
  let item =
    { Shard.record = r; trace = Trace_ctx.sample t.sampler;
      enqueued_at = Clock.elapsed () }
  in
  let pushed =
    match t.cfg.tail_policy with
    | Bounded_queue.Shed -> Bounded_queue.try_push q item
    | Bounded_queue.Block ->
        let rec go () =
          if Atomic.get t.stopping then false
          else if Bounded_queue.push_wait ~timeout:0.25 q item then true
          else if Bounded_queue.is_closed q then false
          else go ()
        in
        go ()
  in
  if pushed then begin
    Metrics.Counter.inc (Lazy.force m_accepted);
    Metrics.Counter.inc (tenant_counter r.Ingest.tenant)
  end
  else Metrics.Counter.inc (Lazy.force m_shed)

let tail_line t line =
  let line = String.trim line in
  if String.length line > 0 then begin
    Metrics.Counter.inc (Lazy.force m_lines);
    match Ingest.decode_line ~num_queues:t.cfg.shard.Shard.num_queues line with
    | Ok r ->
        (* The tailed path samples too — a firehose file must not be
           able to drown a shard the HTTP path is protecting. *)
        let tenant = r.Ingest.tenant in
        Admission.observe t.admission ~tenant
          ~pressure:(shard_pressure t (shard_of t tenant))
          ~now:(Clock.now ());
        if Admission.admit t.admission ~tenant then begin
          Admission.note t.admission ~tenant ~offered:1 ~admitted:1;
          push_tailed t r
        end
        else Admission.note t.admission ~tenant ~offered:1 ~admitted:0
    | Error reason ->
        Ingest.Dead_letter.write t.dead ~line ~reason;
        Metrics.Counter.inc (Lazy.force m_quarantined)
  end

(* Tail [path] from the beginning: drain what is there, then poll for
   appends. Rotation/truncation is out of scope — the tailer is the
   soak test's load path, not a log shipper. *)
let tail_file t path =
  let rec wait_for_file () =
    if Atomic.get t.stopping then None
    else if Sys.file_exists path then (
      match open_in path with
      | ic -> Some ic
      | exception Sys_error m ->
          Log.warn (fun f -> f "tail %s: %s" path m);
          Thread.delay 0.2;
          wait_for_file ())
    else begin
      Thread.delay 0.1;
      wait_for_file ()
    end
  in
  match wait_for_file () with
  | None -> ()
  | Some ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let buf = Buffer.create 256 in
          let rec loop () =
            if not (Atomic.get t.stopping) then (
              match input_char ic with
              | '\n' ->
                  tail_line t (Buffer.contents buf);
                  Buffer.clear buf;
                  loop ()
              | c ->
                  Buffer.add_char buf c;
                  loop ()
              | exception End_of_file ->
                  Thread.delay 0.1;
                  loop ()
              | exception Sys_error m ->
                  Log.warn (fun f -> f "tail %s: %s" path m))
          in
          loop ();
          (* a final partial line without a newline still counts *)
          if Buffer.length buf > 0 then tail_line t (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let stop_shards arr = Array.iter Shard.stop arr

let create cfg =
  if cfg.shards < 1 then Error "shards must be >= 1"
  else match Admission.validate cfg.admission with
  | Error m -> Error m
  | Ok () -> begin
    Serve_metrics.force_register ();
    Metrics.Gauge.set (Lazy.force g_shards) (float_of_int cfg.shards);
    match
      mkdir_p cfg.data_dir;
      if Sys.is_directory cfg.data_dir then Ok () else Error "not a directory"
    with
    | exception Sys_error m ->
        Error (Printf.sprintf "data dir %s: %s" cfg.data_dir m)
    | Error m -> Error (Printf.sprintf "data dir %s: %s" cfg.data_dir m)
    | Ok () -> (
        let dead =
          match cfg.dead_letter with
          | None -> Ok (Ingest.Dead_letter.null ())
          | Some path -> Ingest.Dead_letter.open_ ~path
        in
        match dead with
        | Error m -> Error (Printf.sprintf "dead letter: %s" m)
        | Ok dead -> (
            let started_at = Clock.now () in
            let rec start_shards acc i =
              if i >= cfg.shards then Ok (List.rev acc)
              else
                match
                  Shard.create ~faults:cfg.faults ~started_at
                    ~dir:(Filename.concat cfg.data_dir
                            (Printf.sprintf "shard-%d" i))
                    ~id:i cfg.shard
                with
                | Ok s -> start_shards (s :: acc) (i + 1)
                | Error m ->
                    List.iter Shard.stop acc;
                    Error m
            in
            match start_shards [] 0 with
            | Error m ->
                Ingest.Dead_letter.close dead;
                Error m
            | Ok shard_list -> (
                let t =
                  {
                    cfg;
                    shard_arr = Array.of_list shard_list;
                    admission = Admission.create cfg.admission;
                    dead;
                    server = None;
                    profiling = Atomic.make false;
                    stopping = Atomic.make false;
                    tailers = [];
                    stopped = false;
                    stop_mutex = Mutex.create ();
                    sampler =
                      Trace_ctx.make_sampler ~rate:cfg.trace_sample_rate
                        ~seed:cfg.trace_seed ();
                  }
                in
                match
                  Server.start ~handler:(handle t)
                    ~retry_ephemeral:cfg.retry_ephemeral ~host:cfg.host
                    ~port:cfg.port ()
                with
                | Error e ->
                    stop_shards t.shard_arr;
                    Ingest.Dead_letter.close dead;
                    Error (Server.bind_error_message e)
                | Ok server ->
                    t.server <- Some server;
                    if cfg.profile_on_start then begin
                      let backend =
                        Qnet_obs.Prof.start
                          ~config:
                            {
                              Qnet_obs.Prof.default_config with
                              sampling_rate = cfg.profile_alloc_rate;
                            }
                          ()
                      in
                      Atomic.set t.profiling true;
                      Log.info (fun f ->
                          f "profiling from boot (%s backend, rate %g)"
                            (match backend with
                            | Qnet_obs.Prof.Counters -> "counters"
                            | Qnet_obs.Prof.Memprof -> "memprof")
                            cfg.profile_alloc_rate)
                    end;
                    Metrics.Gauge.set (Lazy.force g_healthy)
                      (float_of_int (healthy_shards t));
                    t.tailers <-
                      List.map
                        (fun path ->
                          Thread.create (fun () -> tail_file t path) ())
                        cfg.tail_files;
                    Log.info (fun f ->
                        f "daemon up: %d shards, port %d%s" cfg.shards
                          (Server.port server)
                          (if Server.fell_back server then
                             " (ephemeral fallback)"
                           else ""));
                    Ok t)))
  end

let stop t =
  Mutex.protect t.stop_mutex (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        Atomic.set t.stopping true;
        List.iter Thread.join t.tailers;
        t.tailers <- [];
        stop_shards t.shard_arr;
        (match t.server with
        | Some s ->
            Server.stop s;
            t.server <- None
        | None -> ());
        if Atomic.get t.profiling then begin
          Qnet_obs.Prof.stop ();
          Atomic.set t.profiling false  (* qnet-lint: racy-ok C005 under stop_mutex; the /profile/* handlers only set true->true or false->false races away *)
        end;
        Ingest.Dead_letter.close t.dead
      end)
