module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span

type phase = Ingest | Queue_wait | Refit | Serve

let phases = [ Ingest; Queue_wait; Refit; Serve ]

let family_of = function
  | Ingest -> "qnet_serve_ingest_latency_seconds"
  | Queue_wait -> "qnet_serve_queue_wait_seconds"
  | Refit -> "qnet_serve_refit_duration_seconds"
  | Serve -> "qnet_serve_posterior_serve_latency_seconds"

let json_name_of = function
  | Ingest -> "ingest"
  | Queue_wait -> "queue_wait"
  | Refit -> "refit"
  | Serve -> "serve"

let total_of =
  let ingest = Serve_metrics.histogram (family_of Ingest) in
  let queue_wait = Serve_metrics.histogram (family_of Queue_wait) in
  let refit = Serve_metrics.histogram (family_of Refit) in
  let serve = Serve_metrics.histogram (family_of Serve) in
  function
  | Ingest -> ingest
  | Queue_wait -> queue_wait
  | Refit -> refit
  | Serve -> serve

let help_of phase =
  match
    List.find_opt
      (fun (n, _, _) -> String.equal n (family_of phase))
      Serve_metrics.families
  with
  | Some (_, help, _) -> help
  | None -> ""

(* Per-tenant labeled series, cached so the record path skips the
   registry mutex after the first event of a (phase, tenant) pair.
   The daemon's ingest path and every shard worker record here
   concurrently, hence the lock around the cache itself; histogram
   updates are already domain-safe. *)
let lock = Mutex.create ()
let labeled : (string, Metrics.Histogram.t) Hashtbl.t =
  Hashtbl.create 64 (* qnet-lint: allow D002 always accessed under lock *)

let tenant_set : (string, unit) Hashtbl.t =
  Hashtbl.create 16 (* qnet-lint: allow D002 always accessed under lock *)

let labeled_hist phase tenant =
  let key = family_of phase ^ "\x00" ^ tenant in
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt labeled key with
    | Some h -> h
    | None ->
        let h =
          Metrics.Histogram.create ~help:(help_of phase)
            ~labels:[ ("tenant", tenant) ]
            ~buckets:Serve_metrics.slo_buckets (family_of phase)
        in
        Hashtbl.replace labeled key h;
        Hashtbl.replace tenant_set tenant ();
        h
  in
  Mutex.unlock lock;
  h

let record phase ~tenant dt =
  let dt = Float.max 0.0 dt in
  Metrics.Histogram.observe (Lazy.force (total_of phase)) dt;
  Metrics.Histogram.observe (labeled_hist phase tenant) dt

let tenants () =
  Mutex.lock lock;
  let ts = Hashtbl.fold (fun t () acc -> t :: acc) tenant_set [] in
  Mutex.unlock lock;
  List.sort compare ts

let find_hist phase tenant =
  let key = family_of phase ^ "\x00" ^ tenant in
  Mutex.lock lock;
  let h = Hashtbl.find_opt labeled key in
  Mutex.unlock lock;
  h

let json_float v =
  if Float.is_nan v then "null" else Printf.sprintf "%.9g" v

let phase_json phase tenant =
  match find_hist phase tenant with
  | None ->
      Printf.sprintf "\"%s\":{\"count\":0,\"sum\":0,\"p50\":null,\"p95\":null,\"p99\":null}"
        (json_name_of phase)
  | Some h ->
      Printf.sprintf
        "\"%s\":{\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
        (json_name_of phase)
        (Metrics.Histogram.count h)
        (json_float (Metrics.Histogram.sum h))
        (json_float (Metrics.Histogram.quantile h 0.5))
        (json_float (Metrics.Histogram.quantile h 0.95))
        (json_float (Metrics.Histogram.quantile h 0.99))

(* Where is this tenant's latency going? The same wait-fraction idea
   the diagnostics layer applies to the modeled network, applied to
   the serving fleet itself: attribute the tenant's total pipeline
   time to queue-wait vs refit vs serve and rank the fractions. *)
let bottleneck_json tenant =
  let sums =
    List.filter_map
      (fun phase ->
        match find_hist phase tenant with
        | None -> None
        | Some h ->
            let s = Metrics.Histogram.sum h in
            if s > 0.0 then Some (phase, s) else None)
      [ Queue_wait; Refit; Serve ]
  in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 sums in
  if not (total > 0.0) then "[]"
  else
    let ranked =
      List.sort (fun (_, a) (_, b) -> compare b a) sums
      |> List.map (fun (phase, s) ->
             Printf.sprintf "{\"phase\":\"%s\",\"fraction\":%s}"
               (json_name_of phase)
               (json_float (s /. total)))
    in
    "[" ^ String.concat "," ranked ^ "]"

let tenant_json tenant =
  Printf.sprintf "{\"tenant\":\"%s\",%s,\"bottleneck\":%s}"
    (Qnet_obs.Jsonx.escape tenant)
    (String.concat "," (List.map (fun p -> phase_json p tenant) phases))
    (bottleneck_json tenant)

let fleet_phase_json phase =
  let h = Lazy.force (total_of phase) in
  Printf.sprintf
    "\"%s\":{\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
    (json_name_of phase)
    (Metrics.Histogram.count h)
    (json_float (Metrics.Histogram.sum h))
    (json_float (Metrics.Histogram.quantile h 0.5))
    (json_float (Metrics.Histogram.quantile h 0.95))
    (json_float (Metrics.Histogram.quantile h 0.99))

let snapshot_json () =
  Printf.sprintf
    "{\"ts\":%s,\"tenants\":[%s],\"fleet\":{%s},\"spans_dropped\":%d}"
    (json_float (Qnet_obs.Clock.now ()))
    (String.concat "," (List.map tenant_json (tenants ())))
    (String.concat "," (List.map fleet_phase_json phases))
    (Span.dropped ())
