(** Adaptive sampled admission: per-tenant Bernoulli retention with an
    AIMD controller.

    Under sustained overload the daemon stops rejecting whole batches
    and instead thins each tenant's stream by a Bernoulli coin — the
    estimator is unbiased under such sampling (the arXiv:1001.3355
    deployment story), so a fair 1% sample beats a 429 storm. Pressure
    observations (shard queue fraction, refit lag) drive the rate with
    additive-increase / multiplicative-decrease and per-tenant
    adjustment throttling; the effective retained fraction is reported
    back on posterior summaries via {!snapshot}. *)

type config = {
  min_rate : float;  (** floor for the admission rate (default 0.01 —
                         the paper's ~1% sampling regime) *)
  increase : float;  (** additive step on low pressure *)
  decrease : float;  (** multiplicative factor on high pressure *)
  high_watermark : float;  (** pressure at or above this backs off *)
  low_watermark : float;  (** pressure at or below this recovers *)
  adjust_interval : float;
      (** minimum seconds between rate adjustments per tenant *)
  seed : int;  (** seed for the admission coin stream *)
}

val default_config : config

val validate : config -> (unit, string) result
(** Reject nonsense controllers: [min_rate] outside (0, 1], a
    non-positive [increase], a [decrease] outside (0, 1), inverted or
    out-of-range watermarks, a negative [adjust_interval]. *)

type t

val create : config -> t

val observe : t -> tenant:string -> pressure:float -> now:float -> unit
(** Feed one pressure observation in [0, 1] for [tenant]; at most one
    AIMD adjustment per [adjust_interval] is applied. *)

val admit : t -> tenant:string -> bool
(** Bernoulli coin at the tenant's current rate. At rate 1.0 this
    short-circuits to [true] without advancing the RNG, so
    fully-admitted streams stay deterministic. *)

val note : t -> tenant:string -> offered:int -> admitted:int -> unit
(** Commit the outcome of an {e accepted} batch to the per-tenant and
    global counters. Batches rejected wholesale (429) must not be
    noted — batch atomicity means they had no side effects. *)

val rate : t -> tenant:string -> float
(** Current rate for [tenant] (1.0 if never seen). *)

type snapshot = { rate : float; s_offered : int; s_admitted : int }

val snapshot : t -> tenant:string -> snapshot

val admitted_fraction : snapshot -> float
(** Effective retained fraction [admitted/offered] (1.0 before any
    traffic) — the number a posterior consumer needs to undo the
    thinning of arrival-rate estimates. *)
