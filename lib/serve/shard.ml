module Trace = Qnet_trace.Trace
module Params = Qnet_core.Params
module Store = Qnet_core.Event_store
module Stem = Qnet_core.Stem
module Obs = Qnet_core.Observation
module Supervisor = Qnet_runtime.Supervisor
module Online = Qnet_core.Online_stem
module Fault = Qnet_runtime.Fault
module Metrics = Qnet_obs.Metrics
module Clock = Qnet_obs.Clock
module Jsonx = Qnet_obs.Jsonx
module Span = Qnet_obs.Span
module Trace_ctx = Qnet_obs.Trace_ctx
module Rng = Qnet_prob.Rng

let log_src = Logs.Src.create "qnet.serve" ~doc:"Sharded inference daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  num_queues : int;
  queue_capacity : int;
  refit_events : int;
  refit_interval : float;
  min_tenant_events : int;
  max_tenant_events : int;
  obs_fraction : float;
  chains : int;
  min_chains : int;
  fit_iterations : int;
  sweep_deadline : float;
  max_restarts : int;
  backoff_base : float;
  backoff_max : float;
  poll_interval : float;
  seed : int;
  fit_deadline : float;
  hot_tenant_events : int;
  breaker_restarts : int;
  breaker_window : float;
  breaker_cooldown : float;
  promote_rounds : int;
  hot_watermark : float;
  cool_watermark : float;
  max_log_bytes : int;
}

let default_config =
  {
    num_queues = 3;
    queue_capacity = 1024;
    refit_events = 120;
    refit_interval = 2.0;
    min_tenant_events = 40;
    max_tenant_events = 4000;
    obs_fraction = 0.5;
    chains = 2;
    min_chains = 1;
    fit_iterations = 30;
    sweep_deadline = 5.0;
    max_restarts = 3;
    backoff_base = 0.25;
    backoff_max = 4.0;
    poll_interval = 0.05;
    seed = 1;
    fit_deadline = 10.0;
    hot_tenant_events = 960;
    breaker_restarts = 3;
    breaker_window = 30.0;
    breaker_cooldown = 10.0;
    promote_rounds = 3;
    hot_watermark = 0.75;
    cool_watermark = 0.25;
    max_log_bytes = 4 * 1024 * 1024;
  }

type status =
  | Starting
  | Healthy
  | Degraded of string
  | Restarting of int
  | Failed of string

let status_label = function
  | Starting -> "starting"
  | Healthy -> "healthy"
  | Degraded _ -> "degraded"
  | Restarting _ -> "restarting"
  | Failed _ -> "failed"

(* The degradation ladder. A shard serves posteriors at every rung;
   what changes is how fresh they can be: full supervised refits, then
   bounded-memory incremental refits for hot shards, then stale serve
   only (pinned) when even incremental refits blow the deadline budget
   or the restart circuit breaker is open. *)
type level = Full_fits | Incremental | Pinned

let level_label = function
  | Full_fits -> "full"
  | Incremental -> "incremental"
  | Pinned -> "pinned"

let level_rank = function Full_fits -> 0 | Incremental -> 1 | Pinned -> 2

type posterior = {
  tenant : string;
  params : Params.t;
  mean_service : float array;
  iteration : int;
  round : int;
  num_events : int;
  from_checkpoint : bool;
  fitted_at : float;
  fit_mode : string;
}

(* ------------------------------------------------------------------ *)
(* Checkpoint codec: one line of JSON, atomically renamed into place.  *)
(* ------------------------------------------------------------------ *)

module Ckpt = struct
  let version = 1

  type tenant_entry = {
    tenant : string;
    rates : float array;
    arrival_queue : int;
    mean_service : float array;
    iteration : int;
    round : int;
    num_events : int;
  }

  type snapshot = {
    iterations : int;
    rounds : int;
    restarts : int;
    tenants : tenant_entry list;
  }

  let to_line s =
    let num_of_int i = Jsonx.Num (float_of_int i) in
    let arr xs = Jsonx.Arr (Array.to_list (Array.map (fun v -> Jsonx.Num v) xs)) in
    Jsonx.render
      (Jsonx.Obj
         [
           ("version", num_of_int version);
           ("iterations", num_of_int s.iterations);
           ("rounds", num_of_int s.rounds);
           ("restarts", num_of_int s.restarts);
           ( "tenants",
             Jsonx.Arr
               (List.map
                  (fun t ->
                    Jsonx.Obj
                      [
                        ("tenant", Jsonx.Str t.tenant);
                        ("rates", arr t.rates);
                        ("arrival_queue", num_of_int t.arrival_queue);
                        ("mean_service", arr t.mean_service);
                        ("iteration", num_of_int t.iteration);
                        ("round", num_of_int t.round);
                        ("num_events", num_of_int t.num_events);
                      ])
                  s.tenants) );
         ])

  let int_field fields k =
    match List.assoc_opt k fields with
    | Some (Jsonx.Num v)
      when Float.is_finite v && Float.equal (Float.rem v 1.0) 0.0 && v >= 0.0 ->
        Ok (int_of_float v)
    | _ -> Error (Printf.sprintf "missing/invalid %S" k)

  let float_array_field fields k =
    match List.assoc_opt k fields with
    | Some (Jsonx.Arr vs) -> (
        let out =
          List.map (function Jsonx.Num v -> Some v | _ -> None) vs
        in
        if List.exists Option.is_none out then
          Error (Printf.sprintf "non-numeric entry in %S" k)
        else Ok (Array.of_list (List.filter_map Fun.id out)))
    | _ -> Error (Printf.sprintf "missing/invalid %S" k)

  let ( let* ) = Result.bind

  let tenant_of_fields fields =
    let* tenant =
      match List.assoc_opt "tenant" fields with
      | Some (Jsonx.Str s) when Ingest.valid_tenant s -> Ok s
      | _ -> Error "missing/invalid \"tenant\""
    in
    let* rates = float_array_field fields "rates" in
    let* arrival_queue = int_field fields "arrival_queue" in
    let* mean_service = float_array_field fields "mean_service" in
    let* iteration = int_field fields "iteration" in
    let* round = int_field fields "round" in
    let* num_events = int_field fields "num_events" in
    if
      Array.length rates = 0
      || Array.exists (fun r -> (not (Float.is_finite r)) || r <= 0.0) rates
    then Error (Printf.sprintf "invalid rates for tenant %S" tenant)
    else if arrival_queue >= Array.length rates then
      Error (Printf.sprintf "arrival queue out of range for tenant %S" tenant)
    else
      Ok
        { tenant; rates; arrival_queue; mean_service; iteration; round;
          num_events }

  let of_line line =
    match Jsonx.parse_object (String.trim line) with
    | Error m -> Error (Printf.sprintf "bad checkpoint json: %s" m)
    | Ok fields -> (
        let* v = int_field fields "version" in
        if v <> version then
          Error
            (Printf.sprintf "checkpoint version %d unsupported (want %d)" v
               version)
        else
          let* iterations = int_field fields "iterations" in
          let* rounds = int_field fields "rounds" in
          let* restarts = int_field fields "restarts" in
          match List.assoc_opt "tenants" fields with
          | Some (Jsonx.Arr entries) -> (
              let decoded =
                List.map
                  (function
                    | Jsonx.Obj f -> tenant_of_fields f
                    | _ -> Error "tenant entry is not an object")
                  entries
              in
              match
                List.find_opt (function Error _ -> true | Ok _ -> false) decoded
              with
              | Some (Error m) -> Error m
              | _ ->
                  Ok
                    {
                      iterations;
                      rounds;
                      restarts;
                      tenants =
                        List.filter_map
                          (function Ok t -> Some t | Error _ -> None)
                          decoded;
                    })
          | _ -> Error "missing/invalid \"tenants\"")
end

let backoff ~base ~max_ attempt =
  let a = Stdlib.max 1 attempt in
  Stdlib.min max_ (base *. (2.0 ** float_of_int (a - 1)))

(* ------------------------------------------------------------------ *)
(* Shard state                                                         *)
(* ------------------------------------------------------------------ *)

(* What travels through the ingest queue: the record itself plus the
   trace context minted at the edge (None for the ~99% unsampled) and
   the enqueue timestamp on the Clock.elapsed scale, so the worker can
   attribute queue-wait per tenant. [enqueued_at = nan] marks items
   that never crossed the queue (durable-log replay) and suppresses
   their wait accounting. *)
type item = {
  record : Ingest.record;
  trace : Trace_ctx.t option;
  enqueued_at : float;
}

(* Trace contexts waiting for the tenant's next refit; bounded so a
   tenant that never becomes due cannot accumulate contexts. *)
let max_pending_traces = 16

type tenant_state = {
  mutable events : Trace.event list;  (* newest first *)
  mutable count : int;
  mutable since_fit : int;
  mutable post : posterior option;
  mutable pending_traces : Trace_ctx.t list;  (* newest first *)
}

type fault_state = {
  spec : Fault.service_fault;
  mutable fired : bool;  (* qnet-lint: racy-ok C001 written only by the worker thread (check_faults) *)
  mutable slow_until : float;  (* qnet-lint: racy-ok C001 written only by the worker thread (check_faults) *)
}

type t = {
  shard_id : int;
  cfg : config;
  dir : string;
  ingest_queue : item Bounded_queue.t;
  mutex : Mutex.t;
  tenant_tbl : (string, tenant_state) Hashtbl.t;
  mutable st : status;
  mutable iters : int;
  mutable round_count : int;
  mutable restart_count : int;
  mutable was_resumed : bool;
  mutable err : string option;
  mutable last_fit_scan : float;  (* qnet-lint: racy-ok C001 worker-owned; cross-thread refit_lag read is monitoring-only and tolerates staleness *)
  mutable log_oc : out_channel option;  (* qnet-lint: racy-ok C001 worker-owned; stop closes it only after joining the worker *)
  mutable ckpt_fail_pending : bool;  (* qnet-lint: racy-ok C001 worker-owned fault latch *)
  stopping : bool Atomic.t;
  mutable worker : Thread.t option;
  faults : fault_state list;
  started_at : float;
  (* degradation ladder *)
  mutable lvl : level;
  mutable lvl_reason : string option;
  mutable miss_streak : int;  (* consecutive rounds over the deadline *)
  mutable clean_streak : int;  (* promotion hysteresis counter *)
  mutable restart_stamps : float list;  (* recent restarts, newest first *)
  mutable pinned_until : float;  (* breaker cooldown deadline *)
  mutable last_ladder_eval : float;  (* qnet-lint: racy-ok C001 worker-owned; evaluate_ladder runs on the worker loop only *)
  (* drain measurement (worker thread only) *)
  mutable drain_ewma : float;  (* qnet-lint: racy-ok C001 worker-thread-only drain measurement *)
  mutable last_drain : float;  (* qnet-lint: racy-ok C001 worker-thread-only drain measurement *)
  mutable last_pass : float;  (* qnet-lint: racy-ok C001 worker-thread-only drain measurement *)
  (* overload fault throttle (worker thread only) *)
  mutable overload_rps : float;  (* qnet-lint: racy-ok C001 worker-thread-only throttle; 0 = no throttle *)
  mutable overload_debt : float;  (* qnet-lint: racy-ok C001 worker-thread-only token bucket *)
  (* durable-log state *)
  mutable compaction_suspended : bool;  (* qnet-lint: racy-ok C001 worker-owned latch armed by corruption faults *)
  mutable corrupt_frames : int;
  mutable torn_tails : int;
  mutable replayed_events : int;
  quarantine : Ingest.Dead_letter.t;
  depth_gauge : Metrics.Gauge.t;
  iter_gauge : Metrics.Gauge.t;
  level_gauge : Metrics.Gauge.t;
}

let m_fits = Serve_metrics.counter "qnet_serve_fits_total"
let m_fit_failures = Serve_metrics.counter "qnet_serve_fit_failures_total"
let m_repair_dropped = Serve_metrics.counter "qnet_serve_repair_dropped_total"
let m_restarts = Serve_metrics.counter "qnet_serve_shard_restarts_total"
let m_checkpoints = Serve_metrics.counter "qnet_serve_checkpoints_total"

let m_checkpoint_failures =
  Serve_metrics.counter "qnet_serve_checkpoint_failures_total"

let m_resumes = Serve_metrics.counter "qnet_serve_resumes_total"
let m_faults = Serve_metrics.counter "qnet_serve_faults_injected_total"
let m_demotions = Serve_metrics.counter "qnet_serve_degrade_demotions_total"
let m_promotions = Serve_metrics.counter "qnet_serve_degrade_promotions_total"

let m_incremental_fits =
  Serve_metrics.counter "qnet_serve_degrade_incremental_fits_total"

let m_breaker_trips =
  Serve_metrics.counter "qnet_serve_degrade_breaker_trips_total"

let m_log_corrupt = Serve_metrics.counter "qnet_serve_log_corrupt_frames_total"
let m_log_torn = Serve_metrics.counter "qnet_serve_log_torn_tails_total"
let m_log_rotations = Serve_metrics.counter "qnet_serve_log_rotations_total"
let g_level = Serve_metrics.gauge "qnet_serve_degrade_level"

(* The label-less qnet_serve_degrade_level series is the max over
   shards alive in this process; each shard also exports its own
   labeled series. *)
let level_registry : (int, int) Hashtbl.t =
  Hashtbl.create 8 (* qnet-lint: allow D002 always accessed under level_registry_mutex *)
let level_registry_mutex = Mutex.create ()

let ckpt_path t = Filename.concat t.dir "shard.ckpt"
let log_path t = Filename.concat t.dir "events.log"
let log1_path t = log_path t ^ ".1"
let quarantine_path dir = Filename.concat dir "log-quarantine.jsonl"

let id t = t.shard_id
let queue t = t.ingest_queue
let status t = Mutex.protect t.mutex (fun () -> t.st)
let iterations t = Mutex.protect t.mutex (fun () -> t.iters)
let rounds t = Mutex.protect t.mutex (fun () -> t.round_count)
let restarts t = Mutex.protect t.mutex (fun () -> t.restart_count)
let resumed t = t.was_resumed
let queue_depth t = Bounded_queue.length t.ingest_queue
let last_error t = Mutex.protect t.mutex (fun () -> t.err)
let level t = Mutex.protect t.mutex (fun () -> t.lvl)
let degraded_reason t = Mutex.protect t.mutex (fun () -> t.lvl_reason)
let log_corrupt_frames t = Mutex.protect t.mutex (fun () -> t.corrupt_frames)
let log_torn_tails t = Mutex.protect t.mutex (fun () -> t.torn_tails)
let replayed_events t = Mutex.protect t.mutex (fun () -> t.replayed_events)

(* Worker-thread-written float; word-sized reads don't tear, and a
   slightly stale drain estimate is fine for Retry-After math. *)
let drain_rate t = t.drain_ewma

let refit_lag t =
  let backlog =
    Mutex.protect t.mutex (fun () ->
        Hashtbl.fold
          (fun _ ts acc -> acc || ts.since_fit > 0)
          t.tenant_tbl false)
  in
  if backlog then Float.max 0.0 (Clock.now () -. t.last_fit_scan) else 0.0

(* Must be called with t.mutex held (reads t.lvl). *)
let publish_level t =
  let rank = level_rank t.lvl in
  Metrics.Gauge.set t.level_gauge (float_of_int rank);
  Mutex.protect level_registry_mutex (fun () ->
      Hashtbl.replace level_registry t.shard_id rank;
      let worst = Hashtbl.fold (fun _ r acc -> Stdlib.max r acc) level_registry 0 in
      Metrics.Gauge.set (Lazy.force g_level) (float_of_int worst))

let tenants t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_tbl [])
  |> List.sort String.compare

let posterior t ~tenant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tenant_tbl tenant with
      | None -> None
      | Some ts -> ts.post)

let knows_tenant t ~tenant =
  Mutex.protect t.mutex (fun () -> Hashtbl.mem t.tenant_tbl tenant)

(* Sleep in small slices so stop and crash recovery stay responsive. *)
let interruptible_sleep t seconds =
  let deadline = Clock.now () +. seconds in
  while (not (Atomic.get t.stopping)) && Clock.now () < deadline do
    Thread.delay (Stdlib.min 0.05 seconds)
  done

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)
(* ------------------------------------------------------------------ *)

let reopen_log t =
  (match t.log_oc with
  | Some oc -> close_out_noerr oc
  | None -> ());
  t.log_oc <-
    (match open_out_gen [ Open_append; Open_creat ] 0o644 (log_path t) with
    | oc -> Some oc
    | exception Sys_error m ->
        Log.warn (fun f -> f "shard %d: cannot open event log: %s" t.shard_id m);
        None)

(* Rotate the active segment aside so replay cost stays bounded even
   when compaction is suspended or checkpoints are failing. If a
   previous segment exists its contents are preserved by appending
   (compaction normally removes it first). *)
let rotate_log t =
  (match t.log_oc with
  | Some oc ->
      close_out_noerr oc;
      t.log_oc <- None
  | None -> ());
  (try
     if Sys.file_exists (log1_path t) then begin
       let content = In_channel.with_open_bin (log_path t) In_channel.input_all in
       Out_channel.with_open_gen
         [ Open_append; Open_creat; Open_binary ]
         0o644 (log1_path t)
         (fun oc -> Out_channel.output_string oc content);
       Sys.remove (log_path t)
     end
     else Sys.rename (log_path t) (log1_path t);
     Metrics.Counter.inc (Lazy.force m_log_rotations)
   with Sys_error m ->
     Log.warn (fun f -> f "shard %d: log rotation failed: %s" t.shard_id m));
  reopen_log t

let append_log t records =
  match t.log_oc with
  | None -> ()
  | Some oc -> (
      try
        List.iter
          (fun r ->
            output_string oc (Framed_log.frame (Ingest.to_json_line r));
            output_char oc '\n')
          records;
        flush oc;
        if pos_out oc > t.cfg.max_log_bytes && not t.compaction_suspended then
          rotate_log t
      with Sys_error m ->
        Log.warn (fun f -> f "shard %d: event log write failed: %s" t.shard_id m);
        close_out_noerr oc;
        t.log_oc <- None)

(* --- injected disk corruption (worker thread only) ----------------- *)

(* Chop the last durable record in half mid-frame — exactly what a
   power cut during a write leaves behind — then rotate the torn
   segment aside so subsequent appends cannot accidentally heal it.
   Replay must truncate the segment back to its last valid frame. *)
let tear_log_tail t =
  (match t.log_oc with
  | Some oc ->
      close_out_noerr oc;
      t.log_oc <- None
  | None -> ());
  (try
     let path = log_path t in
     if Sys.file_exists path then begin
       let content = In_channel.with_open_bin path In_channel.input_all in
       let len = String.length content in
       if len > 1 then begin
         let body_end = if Char.equal content.[len - 1] '\n' then len - 1 else len in
         let start =
           match String.rindex_from_opt content (body_end - 1) '\n' with
           | Some i -> i + 1
           | None -> 0
         in
         let last_len = body_end - start in
         if last_len > 1 then begin
           Unix.truncate path (start + (last_len / 2));
           rotate_log t
         end
       end
     end
   with
  | Sys_error m ->
      Log.warn (fun f -> f "shard %d: torn-write injection failed: %s" t.shard_id m)
  | Unix.Unix_error (e, _, _) ->
      Log.warn (fun f ->
          f "shard %d: torn-write injection failed: %s" t.shard_id
            (Unix.error_message e)));
  if t.log_oc = None then reopen_log t

(* Flip the low bit of the last payload byte of the middle record: the
   frame keeps its shape and length but fails its CRC, so replay must
   quarantine exactly this one frame. *)
let flip_bit_in_log t =
  (match t.log_oc with
  | Some oc ->
      close_out_noerr oc;
      t.log_oc <- None
  | None -> ());
  let patch path =
    if not (Sys.file_exists path) then false
    else
      try
        let content = In_channel.with_open_bin path In_channel.input_all in
        (* spans of complete (newline-terminated) lines *)
        let spans = ref [] in
        let start = ref 0 in
        String.iteri
          (fun i c ->
            if Char.equal c '\n' then begin
              if i > !start then spans := (!start, i) :: !spans;
              start := i + 1
            end)
          content;
        match List.rev !spans with
        | [] -> false
        | spans ->
            let _, stop = List.nth spans (List.length spans / 2) in
            let b = Bytes.of_string content in
            Bytes.set b (stop - 1)
              (Char.chr (Char.code (Bytes.get b (stop - 1)) lxor 1));
            let tmp = path ^ ".tmp" in
            Out_channel.with_open_bin tmp (fun oc ->
                Out_channel.output_bytes oc b);
            Sys.rename tmp path;
            true
      with Sys_error m ->
        Log.warn (fun f ->
            f "shard %d: bit-flip injection failed: %s" t.shard_id m);
        false
  in
  if not (patch (log_path t)) then ignore (patch (log1_path t) : bool);
  reopen_log t

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let fire_fault t fs =
  fs.fired <- true;
  Metrics.Counter.inc (Lazy.force m_faults);
  Log.warn (fun f ->
      f "shard %d: injecting %s" t.shard_id
        (Fault.service_fault_label fs.spec));
  match fs.spec.Fault.kind with
  | Fault.Ingest_stall s -> interruptible_sleep t s
  | Fault.Shard_crash ->
      raise (Fault.Injected_shard_crash { shard = t.shard_id })
  | Fault.Checkpoint_write_failure -> t.ckpt_fail_pending <- true
  | Fault.Slow_consumer s -> fs.slow_until <- Clock.now () +. s
  | Fault.Torn_write ->
      (* suspend compaction so the damage survives to the next start *)
      t.compaction_suspended <- true;
      tear_log_tail t
  | Fault.Bit_flip ->
      t.compaction_suspended <- true;
      flip_bit_in_log t
  | Fault.Overload rps -> t.overload_rps <- rps

let check_faults t =
  let now = Clock.now () in
  List.iter
    (fun fs ->
      if (not fs.fired) && now -. t.started_at >= fs.spec.Fault.after then
        fire_fault t fs)
    t.faults

let in_slow_window t =
  let now = Clock.now () in
  List.exists (fun fs -> fs.slow_until > now) t.faults

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

let snapshot_of_state t =
  Mutex.protect t.mutex (fun () ->
      let tenants =
        Hashtbl.fold
          (fun _ ts acc ->
            match ts.post with
            | None -> acc
            | Some p ->
                {
                  Ckpt.tenant = p.tenant;
                  rates = Array.copy p.params.Params.rates;
                  arrival_queue = p.params.Params.arrival_queue;
                  mean_service = Array.copy p.mean_service;
                  iteration = p.iteration;
                  round = p.round;
                  num_events = p.num_events;
                }
                :: acc)
          t.tenant_tbl []
        |> List.sort (fun a b -> String.compare a.Ckpt.tenant b.Ckpt.tenant)
      in
      {
        Ckpt.iterations = t.iters;
        rounds = t.round_count;
        restarts = t.restart_count;
        tenants;
      })

let current_log_lines t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun tenant ts acc ->
          List.rev_map
            (fun (e : Trace.event) ->
              Ingest.to_json_line
                {
                  Ingest.tenant;
                  task = e.Trace.task;
                  state = e.Trace.state;
                  queue = e.Trace.queue;
                  arrival = e.Trace.arrival;
                  departure = e.Trace.departure;
                })
            ts.events
          @ acc)
        t.tenant_tbl [])

let write_checkpoint t =
  try
    if t.ckpt_fail_pending then begin
      t.ckpt_fail_pending <- false;
      raise (Sys_error "injected checkpoint write failure")
    end;
    let line = Ckpt.to_line (snapshot_of_state t) in
    let path = ckpt_path t in
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Framed_log.frame line);
        output_char oc '\n');
    Sys.rename tmp path;
    (* compact the event log to the surviving buffer window, then
       reopen it for appends: replay cost stays bounded by the
       per-tenant buffer caps, not by daemon uptime. Skipped while a
       corruption fault is armed — compaction would silently erase the
       injected damage the next start must prove it survives. *)
    if not t.compaction_suspended then begin
      let log_tmp = log_path t ^ ".tmp" in
      let oc = open_out log_tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          List.iter
            (fun l ->
              output_string oc (Framed_log.frame l);
              output_char oc '\n')
            (current_log_lines t));
      Sys.rename log_tmp (log_path t);
      (* the compacted active segment holds the whole buffer window,
         so any rotated-out segment is now redundant *)
      if Sys.file_exists (log1_path t) then Sys.remove (log1_path t);
      reopen_log t
    end;
    Metrics.Counter.inc (Lazy.force m_checkpoints)
  with Sys_error m ->
    Metrics.Counter.inc (Lazy.force m_checkpoint_failures);
    Mutex.protect t.mutex (fun () -> t.err <- Some m);
    Log.warn (fun f ->
        f "shard %d: checkpoint write failed (will retry next round): %s"
          t.shard_id m)

(* ------------------------------------------------------------------ *)
(* Absorbing ingested records                                          *)
(* ------------------------------------------------------------------ *)

let absorb t items =
  if items <> [] then begin
    append_log t (List.map (fun it -> it.record) items);
    let absorbed_at = Clock.elapsed () in
    Mutex.protect t.mutex (fun () ->
        List.iter
          (fun it ->
            let r = it.record in
            let ts =
              match Hashtbl.find_opt t.tenant_tbl r.Ingest.tenant with
              | Some ts -> ts
              | None ->
                  let ts =
                    {
                      events = [];
                      count = 0;
                      since_fit = 0;
                      post = None;
                      pending_traces = [];
                    }
                  in
                  Hashtbl.add t.tenant_tbl r.Ingest.tenant ts;
                  ts
            in
            ts.events <- Ingest.to_trace_event r :: ts.events;
            ts.count <- ts.count + 1;
            ts.since_fit <- ts.since_fit + 1;
            if ts.count > t.cfg.max_tenant_events then begin
              (* drop the oldest tail; the lenient rebuild re-repairs
                 the truncated window at the next fit *)
              let keep = t.cfg.max_tenant_events in
              ts.events <-
                List.filteri (fun i _ -> i < keep) ts.events;
              ts.count <- keep
            end;
            if not (Float.is_nan it.enqueued_at) then begin
              let wait = Float.max 0.0 (absorbed_at -. it.enqueued_at) in
              Fleet.record Fleet.Queue_wait ~tenant:r.Ingest.tenant wait;
              match it.trace with
              | None -> ()
              | Some ctx ->
                  Span.emit
                    ~attrs:
                      [
                        ("trace", Trace_ctx.id_hex ctx);
                        ("tenant", r.Ingest.tenant);
                        ("shard", string_of_int t.shard_id);
                      ]
                    ~start:it.enqueued_at ~duration:wait "serve.queue_wait";
                  if List.length ts.pending_traces < max_pending_traces then
                    ts.pending_traces <- ctx :: ts.pending_traces
            end)
          items)
  end

(* ------------------------------------------------------------------ *)
(* Fitting                                                             *)
(* ------------------------------------------------------------------ *)

let csv_of_events events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "task,state,queue,arrival,departure\n";
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%.17g,%.17g\n" e.Trace.task e.Trace.state
           e.Trace.queue e.Trace.arrival e.Trace.departure))
    events;
  Buffer.contents buf

let fit_seed t tenant =
  (* distinct, reproducible stream per (daemon seed, shard, tenant,
     round); collisions are harmless (independent data) *)
  t.cfg.seed
  + (104729 * (t.shard_id + 1))
  + (31 * Mutex.protect t.mutex (fun () -> t.round_count))
  + (Router.fnv1a tenant mod 1_000_003)

let fit_tenant t tenant =
  let events, prev_post =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.tenant_tbl tenant with
        | None -> ([], None)
        | Some ts -> (List.rev ts.events, ts.post))
  in
  if events = [] then ()
  else begin
    let csv = csv_of_events events in
    match Trace.of_csv_lenient ~num_queues:t.cfg.num_queues csv with
    | Error _report ->
        Metrics.Counter.inc (Lazy.force m_fit_failures);
        Mutex.protect t.mutex (fun () ->
            t.err <- Some (Printf.sprintf "tenant %s: no usable events" tenant))
    | Ok (trace, report) ->
        if report.Trace.events_dropped > 0 then
          Metrics.Counter.inc
            ~by:(float_of_int report.Trace.events_dropped)
            (Lazy.force m_repair_dropped);
        if trace.Trace.num_tasks < 2 then ()
        else begin
          let seed = fit_seed t tenant in
          let rng = Rng.create ~seed () in
          let mask = Obs.mask rng (Obs.Task_fraction t.cfg.obs_fraction) trace in
          let make_store () = Store.of_trace ~observed:mask trace in
          let sup_config =
            {
              Supervisor.default_config with
              Supervisor.chains = t.cfg.chains;
              min_chains = Stdlib.min t.cfg.min_chains t.cfg.chains;
              stem =
                {
                  Stem.default_config with
                  Stem.iterations = t.cfg.fit_iterations;
                  burn_in = t.cfg.fit_iterations / 2;
                };
              round_iterations = Stdlib.max 5 (t.cfg.fit_iterations / 4);
              sweep_deadline = t.cfg.sweep_deadline;
              max_restarts = 1;
            }
          in
          let init =
            match prev_post with
            | Some p
              when Params.num_queues p.params = t.cfg.num_queues ->
                Some p.params
            | _ -> None
          in
          match Supervisor.run ~config:sup_config ?init ~seed make_store with
          | exception Invalid_argument m ->
              Metrics.Counter.inc (Lazy.force m_fit_failures);
              Mutex.protect t.mutex (fun () ->
                  t.err <- Some (Printf.sprintf "tenant %s: %s" tenant m))
          | exception Failure m ->
              Metrics.Counter.inc (Lazy.force m_fit_failures);
              Mutex.protect t.mutex (fun () ->
                  t.err <- Some (Printf.sprintf "tenant %s: %s" tenant m))
          | r when r.Supervisor.status = Supervisor.Failed ->
              Metrics.Counter.inc (Lazy.force m_fit_failures);
              Mutex.protect t.mutex (fun () ->
                  t.err <-
                    Some (Printf.sprintf "tenant %s: fit had no healthy chain" tenant))
          | r ->
              let done_ =
                Array.fold_left
                  (fun acc v ->
                    Stdlib.max acc v.Supervisor.iterations_done)
                  0 r.Supervisor.verdicts
              in
              Metrics.Counter.inc (Lazy.force m_fits);
              Mutex.protect t.mutex (fun () ->
                  t.iters <- t.iters + Stdlib.max 1 done_;
                  match Hashtbl.find_opt t.tenant_tbl tenant with
                  | None -> ()
                  | Some ts ->
                      ts.since_fit <- 0;
                      ts.post <-
                        Some
                          {
                            tenant;
                            params = r.Supervisor.params;
                            mean_service = r.Supervisor.mean_service;
                            iteration = t.iters;
                            round = t.round_count;
                            num_events = Array.length trace.Trace.events;
                            from_checkpoint = false;
                            fitted_at = Clock.now ();
                            fit_mode = "full";
                          });
              Metrics.Gauge.set t.iter_gauge (float_of_int (iterations t))
        end
  end

(* The cheap rung of the ladder: a short windowed Online_stem run
   warm-started from the tenant's previous posterior. Bounded memory
   and a fraction of the sweeps of a full supervised fit — right for a
   hot tenant or a shard that blew its deadline budget. *)
let fit_tenant_incremental t tenant =
  let events, prev_post =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.tenant_tbl tenant with
        | None -> ([], None)
        | Some ts -> (List.rev ts.events, ts.post))
  in
  if events = [] then ()
  else begin
    let csv = csv_of_events events in
    match Trace.of_csv_lenient ~num_queues:t.cfg.num_queues csv with
    | Error _report ->
        Metrics.Counter.inc (Lazy.force m_fit_failures);
        Mutex.protect t.mutex (fun () ->
            t.err <- Some (Printf.sprintf "tenant %s: no usable events" tenant))
    | Ok (trace, report) ->
        if report.Trace.events_dropped > 0 then
          Metrics.Counter.inc
            ~by:(float_of_int report.Trace.events_dropped)
            (Lazy.force m_repair_dropped);
        if trace.Trace.num_tasks < 2 then ()
        else begin
          let seed = fit_seed t tenant in
          let rng = Rng.create ~seed () in
          let mask = Obs.mask rng (Obs.Task_fraction t.cfg.obs_fraction) trace in
          let iterations_per_window = Stdlib.max 4 (t.cfg.fit_iterations / 2) in
          let config =
            {
              Online.num_windows = 2;
              iterations = iterations_per_window;
              min_tasks = 2;
            }
          in
          let init =
            match prev_post with
            | Some p when Params.num_queues p.params = t.cfg.num_queues ->
                Some p.params
            | _ -> None
          in
          match Online.run ~config ?init rng trace ~mask with
          | exception (Invalid_argument m | Failure m) ->
              Metrics.Counter.inc (Lazy.force m_fit_failures);
              Mutex.protect t.mutex (fun () ->
                  t.err <- Some (Printf.sprintf "tenant %s: %s" tenant m))
          | [] -> () (* every window under min_tasks; keep the old posterior *)
          | steps ->
              let last = List.nth steps (List.length steps - 1) in
              Metrics.Counter.inc (Lazy.force m_incremental_fits);
              Metrics.Counter.inc (Lazy.force m_fits);
              Mutex.protect t.mutex (fun () ->
                  t.iters <- t.iters + (iterations_per_window * List.length steps);
                  match Hashtbl.find_opt t.tenant_tbl tenant with
                  | None -> ()
                  | Some ts ->
                      ts.since_fit <- 0;
                      ts.post <-
                        Some
                          {
                            tenant;
                            params = last.Online.params;
                            mean_service = last.Online.mean_service;
                            iteration = t.iters;
                            round = t.round_count;
                            num_events = Array.length trace.Trace.events;
                            from_checkpoint = false;
                            fitted_at = Clock.now ();
                            fit_mode = "incremental";
                          });
              Metrics.Gauge.set t.iter_gauge (float_of_int (iterations t))
        end
  end

let tenant_hot t tenant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tenant_tbl tenant with
      | None -> false
      | Some ts -> ts.since_fit >= t.cfg.hot_tenant_events)

let due_tenants t =
  let now = Clock.now () in
  let interval_elapsed = now -. t.last_fit_scan >= t.cfg.refit_interval in
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun tenant ts acc ->
          if
            ts.count >= t.cfg.min_tenant_events
            && (ts.since_fit >= t.cfg.refit_events
               || (interval_elapsed && ts.since_fit > 0))
          then tenant :: acc
          else acc)
        t.tenant_tbl [])
  |> List.sort String.compare

(* Reassess the shard's rung on the ladder. [round_seconds] is the
   wall time of a just-finished fit round ([None] for idle ticks, which
   only drive promotion and breaker pinning). Demotion is immediate —
   one blown deadline or a hot queue is evidence enough — but
   promotion needs [promote_rounds] consecutive clean evaluations, so
   a shard teetering at the boundary doesn't flap. *)
let evaluate_ladder t ?round_seconds () =
  let now = Clock.now () in
  t.last_ladder_eval <- now;
  let blew =
    match round_seconds with
    | Some s -> s > t.cfg.fit_deadline
    | None -> false
  in
  let pressure =
    float_of_int (queue_depth t)
    /. float_of_int (Stdlib.max 1 t.cfg.queue_capacity)
  in
  Mutex.protect t.mutex (fun () ->
      (match round_seconds with
      | Some _ -> t.miss_streak <- (if blew then t.miss_streak + 1 else 0)
      | None -> ());
      let breaker_open = now < t.pinned_until in
      let demote target reason =
        if level_rank target > level_rank t.lvl then begin
          t.lvl <- target;
          t.lvl_reason <- Some reason;
          t.clean_streak <- 0;
          Metrics.Counter.inc (Lazy.force m_demotions);
          publish_level t;
          Log.warn (fun f ->
              f "shard %d: degraded to %s: %s" t.shard_id (level_label target)
                reason)
        end
      in
      if breaker_open then
        demote Pinned
          (Printf.sprintf "restart circuit breaker open (%d restarts within %.3gs)"
             (List.length t.restart_stamps) t.cfg.breaker_window)
      else if blew && t.miss_streak >= 2 then
        demote Pinned
          (Printf.sprintf
             "refit deadline budget blown %d rounds running (last %.3gs > %.3gs)"
             t.miss_streak
             (Option.value ~default:0.0 round_seconds)
             t.cfg.fit_deadline)
      else if blew then
        demote Incremental
          (Printf.sprintf "refit round took %.3gs > %.3gs deadline budget"
             (Option.value ~default:0.0 round_seconds)
             t.cfg.fit_deadline)
      else if pressure >= t.cfg.hot_watermark then
        demote Incremental
          (Printf.sprintf "ingest queue %.0f%% full" (100.0 *. pressure));
      let clean =
        (not blew) && (not breaker_open) && pressure <= t.cfg.cool_watermark
      in
      match t.lvl with
      | Full_fits -> if not clean then t.clean_streak <- 0
      | Incremental | Pinned ->
          if clean then begin
            t.clean_streak <- t.clean_streak + 1;
            if t.clean_streak >= t.cfg.promote_rounds then begin
              t.clean_streak <- 0;
              let target =
                match t.lvl with Pinned -> Incremental | _ -> Full_fits
              in
              t.lvl <- target;
              t.lvl_reason <-
                (match target with
                | Full_fits -> None
                | _ -> Some "recovering: incremental refits only");
              Metrics.Counter.inc (Lazy.force m_promotions);
              publish_level t;
              Log.info (fun f ->
                  f "shard %d: promoted to %s" t.shard_id (level_label target))
            end
          end
          else t.clean_streak <- 0)

let run_fit_round t due =
  Mutex.protect t.mutex (fun () -> t.round_count <- t.round_count + 1);
  let t0 = Clock.now () in
  let before_failures = Metrics.Counter.value (Lazy.force m_fit_failures) in
  let lvl = level t in
  List.iter
    (fun tenant ->
      let mode =
        match lvl with
        | Pinned -> None
        | Incremental -> Some `Inc
        | Full_fits -> Some (if tenant_hot t tenant then `Inc else `Full)
      in
      match mode with
      | None -> ()
      | Some m ->
          let f0 = Clock.elapsed () in
          (match m with
          | `Inc -> fit_tenant_incremental t tenant
          | `Full -> fit_tenant t tenant);
          let f1 = Clock.elapsed () in
          let dt = Float.max 0.0 (f1 -. f0) in
          Fleet.record Fleet.Refit ~tenant dt;
          (* traced requests waiting on this tenant close out their
             refit and end-to-end phases here *)
          let pending =
            Mutex.protect t.mutex (fun () ->
                match Hashtbl.find_opt t.tenant_tbl tenant with
                | None -> []
                | Some ts ->
                    let p = ts.pending_traces in
                    ts.pending_traces <- [];
                    p)
          in
          let mode_label =
            match m with `Inc -> "incremental" | `Full -> "full"
          in
          List.iter
            (fun ctx ->
              let base =
                [
                  ("trace", Trace_ctx.id_hex ctx);
                  ("tenant", tenant);
                  ("shard", string_of_int t.shard_id);
                ]
              in
              Span.emit
                ~attrs:(("mode", mode_label) :: base)
                ~start:f0 ~duration:dt "serve.refit";
              Span.emit ~attrs:base ~start:ctx.Trace_ctx.born
                ~duration:(Float.max 0.0 (f1 -. ctx.Trace_ctx.born))
                "serve.e2e")
            pending)
    due;
  let after_failures = Metrics.Counter.value (Lazy.force m_fit_failures) in
  t.last_fit_scan <- Clock.now ();
  write_checkpoint t;
  Mutex.protect t.mutex (fun () ->
      if after_failures > before_failures then
        t.st <-
          Degraded
            (match t.err with Some m -> m | None -> "fit failures this round")
      else begin
        t.st <- Healthy;
        t.err <- None
      end);
  evaluate_ladder t ~round_seconds:(Clock.now () -. t0) ()

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)
(* ------------------------------------------------------------------ *)

let worker_pass t =
  check_faults t;
  let slow = in_slow_window t in
  let now = Clock.now () in
  (* overload fault: drain at most overload_rps events/s, paid from a
     token bucket with a one-second burst allowance *)
  let allowed =
    if t.overload_rps > 0.0 then begin
      let dt = Float.max 0.0 (now -. t.last_pass) in
      t.overload_debt <-
        Float.min t.overload_rps (t.overload_debt +. (t.overload_rps *. dt));
      let k = int_of_float t.overload_debt in
      t.overload_debt <- t.overload_debt -. float_of_int k;
      Some k
    end
    else None
  in
  t.last_pass <- now;
  let batch =
    match allowed with
    | Some 0 ->
        Thread.delay t.cfg.poll_interval;
        []
    | Some k ->
        Bounded_queue.pop_batch
          ~max:(Stdlib.min k (if slow then 1 else 256))
          ~timeout:t.cfg.poll_interval t.ingest_queue
    | None ->
        Bounded_queue.pop_batch
          ~max:(if slow then 1 else 256)
          ~timeout:t.cfg.poll_interval t.ingest_queue
  in
  if slow then Thread.delay 0.02;
  absorb t batch;
  (match batch with
  | [] -> ()
  | _ :: _ ->
      let drained_at = Clock.now () in
      let dt = Float.max 1e-3 (drained_at -. t.last_drain) in
      let inst = float_of_int (List.length batch) /. dt in
      t.drain_ewma <-
        (if t.drain_ewma <= 0.0 then inst
         else (0.2 *. inst) +. (0.8 *. t.drain_ewma));
      t.last_drain <- drained_at);
  Metrics.Gauge.set t.depth_gauge (float_of_int (queue_depth t));
  (match due_tenants t with
  | [] ->
      if
        Mutex.protect t.mutex (fun () ->
            match t.st with Starting -> true | _ -> false)
      then Mutex.protect t.mutex (fun () -> t.st <- Healthy)
  | due ->
      if
        Mutex.protect t.mutex (fun () ->
            match t.lvl with Pinned -> true | _ -> false)
      then begin
        (* pinned: stale serve only — no fits, but keep counters and
           checkpoints fresh so a restart never loses ground *)
        if Clock.now () -. t.last_fit_scan >= t.cfg.refit_interval then begin
          t.last_fit_scan <- Clock.now ();
          write_checkpoint t
        end
      end
      else run_fit_round t due);
  (* idle ladder ticks drive promotion hysteresis (and breaker
     pinning) even when no fit round runs *)
  if
    Mutex.protect t.mutex (fun () ->
        match t.lvl with Full_fits -> false | Incremental | Pinned -> true)
    && Clock.now () -. t.last_ladder_eval >= t.cfg.refit_interval
  then evaluate_ladder t ()

let final_drain t =
  let rec go () =
    match Bounded_queue.pop_batch ~max:4096 ~timeout:0.0 t.ingest_queue with
    | [] -> ()
    | batch ->
        absorb t batch;
        go ()
  in
  go ();
  write_checkpoint t

let rec supervise t =
  match
    while not (Atomic.get t.stopping) do
      worker_pass t
    done
  with
  | () -> final_drain t
  | exception e ->
      let msg = Printexc.to_string e in
      let attempt = Mutex.protect t.mutex (fun () -> t.restart_count + 1) in
      if attempt > t.cfg.max_restarts then begin
        Mutex.protect t.mutex (fun () ->
            t.st <- Failed msg;
            t.err <- Some msg);
        Log.err (fun f ->
            f "shard %d: %s; restart budget (%d) exhausted — failed (posteriors \
               stay servable)"
              t.shard_id msg t.cfg.max_restarts);
        (* keep draining nothing; just wait for stop so posteriors
           remain servable and stop remains graceful *)
        while not (Atomic.get t.stopping) do
          Thread.delay 0.05
        done
      end
      else begin
        Metrics.Counter.inc (Lazy.force m_restarts);
        let now = Clock.now () in
        Mutex.protect t.mutex (fun () ->
            t.restart_count <- attempt;
            t.st <- Restarting attempt;
            t.err <- Some msg;
            (* restart circuit breaker: repeated crashes within the
               window pin the shard to stale serve for a cooldown —
               restarting is cheap, re-crashing mid-fit forever is
               not *)
            t.restart_stamps <-
              now
              :: List.filter
                   (fun s -> now -. s <= t.cfg.breaker_window)
                   t.restart_stamps;
            if List.length t.restart_stamps >= t.cfg.breaker_restarts then begin
              if now >= t.pinned_until then
                Metrics.Counter.inc (Lazy.force m_breaker_trips);
              t.pinned_until <- now +. t.cfg.breaker_cooldown;
              let reason =
                Printf.sprintf
                  "restart circuit breaker open (%d restarts within %.3gs)"
                  (List.length t.restart_stamps) t.cfg.breaker_window
              in
              t.lvl_reason <- Some reason;
              if level_rank Pinned > level_rank t.lvl then begin
                t.lvl <- Pinned;
                t.clean_streak <- 0;
                Metrics.Counter.inc (Lazy.force m_demotions);
                publish_level t;
                Log.warn (fun f ->
                    f "shard %d: degraded to pinned: %s" t.shard_id reason)
              end
            end);
        let delay =
          backoff ~base:t.cfg.backoff_base ~max_:t.cfg.backoff_max attempt
        in
        Log.warn (fun f ->
            f "shard %d: %s; restarting in %.3gs (attempt %d/%d)" t.shard_id msg
              delay attempt t.cfg.max_restarts);
        interruptible_sleep t delay;
        Mutex.protect t.mutex (fun () -> t.st <- Healthy);
        supervise t
      end

(* ------------------------------------------------------------------ *)
(* Resume                                                              *)
(* ------------------------------------------------------------------ *)

let quarantine_frame t ~line ~reason =
  Mutex.protect t.mutex (fun () -> t.corrupt_frames <- t.corrupt_frames + 1);
  Metrics.Counter.inc (Lazy.force m_log_corrupt);
  Ingest.Dead_letter.write t.quarantine ~line ~reason

(* Replay one durable-log segment through the frame validator:
   payloads are absorbed, corrupt frames quarantined exactly, and a
   torn tail truncated back to the last record boundary. *)
let replay_segment t path =
  if not (Sys.file_exists path) then ()
  else
    match
      Framed_log.replay_file ~path
        ~on_payload:(fun payload ->
          match Ingest.decode_line ~num_queues:t.cfg.num_queues payload with
          | Ok r ->
              absorb t [ { record = r; trace = None; enqueued_at = Float.nan } ];
              Mutex.protect t.mutex (fun () ->
                  t.replayed_events <- t.replayed_events + 1)
          | Error reason -> quarantine_frame t ~line:payload ~reason)
        ~on_corrupt:(fun ~line ~reason -> quarantine_frame t ~line ~reason)
        ()
    with
    | Ok stats ->
        if stats.Framed_log.torn then begin
          Mutex.protect t.mutex (fun () -> t.torn_tails <- t.torn_tails + 1);
          Metrics.Counter.inc (Lazy.force m_log_torn);
          Log.warn (fun f ->
              f "shard %d: truncated torn tail of %s back to last valid frame"
                t.shard_id path)
        end
    | Error m ->
        Log.warn (fun f -> f "shard %d: cannot replay %s: %s" t.shard_id path m)

let resume_from_disk t =
  let resumed_ckpt =
    match
      if Sys.file_exists (ckpt_path t) then
        let ic = open_in (ckpt_path t) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (input_line ic))
      else None
    with
    | None -> false
    | Some raw when
        (match Framed_log.parse raw with
        | Error (Framed_log.Corrupt _) -> true
        | Ok _ | Error Framed_log.Not_a_frame -> false) ->
        (match Framed_log.parse raw with
        | Error (Framed_log.Corrupt reason) ->
            quarantine_frame t ~line:raw ~reason;
            Log.warn (fun f ->
                f "shard %d: checkpoint frame corrupt (%s); starting cold"
                  t.shard_id reason)
        | Ok _ | Error Framed_log.Not_a_frame -> ());
        false
    | Some raw -> (
        (* a valid frame carries the checkpoint JSON; an unframed line
           is a legacy checkpoint, still honored *)
        let line =
          match Framed_log.parse raw with Ok payload -> payload | Error _ -> raw
        in
        match Ckpt.of_line line with
        | Error m ->
            Log.warn (fun f ->
                f "shard %d: ignoring unreadable checkpoint: %s" t.shard_id m);
            false
        | Ok snap ->
            Mutex.protect t.mutex (fun () ->
                t.iters <- snap.Ckpt.iterations;
                t.round_count <- snap.Ckpt.rounds;
                List.iter
                  (fun (e : Ckpt.tenant_entry) ->
                    match
                      Params.create ~rates:e.Ckpt.rates
                        ~arrival_queue:e.Ckpt.arrival_queue
                    with
                    | params ->
                        Hashtbl.replace t.tenant_tbl e.Ckpt.tenant
                          {
                            events = [];
                            count = 0;
                            since_fit = 0;
                            post =
                              Some
                                {
                                  tenant = e.Ckpt.tenant;
                                  params;
                                  mean_service = e.Ckpt.mean_service;
                                  iteration = e.Ckpt.iteration;
                                  round = e.Ckpt.round;
                                  num_events = e.Ckpt.num_events;
                                  from_checkpoint = true;
                                  fitted_at = 0.0;
                                  fit_mode = "checkpoint";
                                };
                            pending_traces = [];
                          }
                    | exception Invalid_argument m ->
                        Log.warn (fun f ->
                            f "shard %d: dropping tenant %s from checkpoint: %s"
                              t.shard_id e.Ckpt.tenant m))
                  snap.Ckpt.tenants);
            true)
    | exception Sys_error m ->
        Log.warn (fun f ->
            f "shard %d: cannot read checkpoint: %s" t.shard_id m);
        false
    | exception End_of_file -> false
  in
  (* rotated segment first, then the active one: replay order is
     append order *)
  replay_segment t (log1_path t);
  replay_segment t (log_path t);
  let replayed = replayed_events t in
  (* replay inflates since_fit; a fresh fit soon after resume is the
     desired behavior, so leave it — but don't count replay as new
     load for tenants that were already fitted to this window *)
  if resumed_ckpt || replayed > 0 || log_corrupt_frames t > 0 || log_torn_tails t > 0
  then begin
    t.was_resumed <- true;
    Metrics.Counter.inc (Lazy.force m_resumes);
    Log.info (fun f ->
        f "shard %d: resumed from checkpoint (iterations=%d, rounds=%d, %d \
           events replayed, %d corrupt frames quarantined, %d torn tails \
           truncated)"
          t.shard_id t.iters t.round_count replayed (log_corrupt_frames t)
          (log_torn_tails t))
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let validate cfg =
  if cfg.num_queues < 2 then Error "num_queues must be >= 2"
  else if cfg.queue_capacity < 1 then Error "queue_capacity must be >= 1"
  else if cfg.max_tenant_events < cfg.min_tenant_events then
    Error "max_tenant_events must be >= min_tenant_events"
  else if cfg.obs_fraction <= 0.0 || cfg.obs_fraction > 1.0 then
    Error "obs_fraction must be in (0, 1]"
  else if cfg.chains < 1 then Error "chains must be >= 1"
  else if cfg.fit_iterations < 2 then Error "fit_iterations must be >= 2"
  else if cfg.backoff_base <= 0.0 || cfg.backoff_max < cfg.backoff_base then
    Error "backoff_base/backoff_max malformed"
  else if cfg.fit_deadline <= 0.0 then Error "fit_deadline must be > 0"
  else if cfg.breaker_restarts < 1 then Error "breaker_restarts must be >= 1"
  else if cfg.breaker_window <= 0.0 || cfg.breaker_cooldown < 0.0 then
    Error "breaker_window/breaker_cooldown malformed"
  else if cfg.promote_rounds < 1 then Error "promote_rounds must be >= 1"
  else if
    cfg.hot_watermark <= cfg.cool_watermark
    || cfg.cool_watermark < 0.0 || cfg.hot_watermark > 1.0
  then Error "hot_watermark/cool_watermark malformed"
  else if cfg.max_log_bytes < 4096 then Error "max_log_bytes must be >= 4096"
  else Ok ()

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ?(faults = []) ?started_at ~dir ~id:shard_id cfg =
  match validate cfg with
  | Error m -> Error (Printf.sprintf "shard %d: %s" shard_id m)
  | Ok () -> (
      match
        mkdir_p dir;
        if not (Sys.is_directory dir) then
          Error (Printf.sprintf "shard %d: %s is not a directory" shard_id dir)
        else Ok ()
      with
      | exception Sys_error m -> Error (Printf.sprintf "shard %d: %s" shard_id m)
      | Error m -> Error m
      | Ok () ->
          let started_at =
            match started_at with Some x -> x | None -> Clock.now ()
          in
          let shard_label = [ ("shard", string_of_int shard_id) ] in
          let t =
            {
              shard_id;
              cfg;
              dir;
              ingest_queue = Bounded_queue.create ~capacity:cfg.queue_capacity;
              mutex = Mutex.create ();
              tenant_tbl = Hashtbl.create 16;
              st = Starting;
              iters = 0;
              round_count = 0;
              restart_count = 0;
              was_resumed = false;
              err = None;
              last_fit_scan = Clock.now ();
              log_oc = None;
              ckpt_fail_pending = false;
              stopping = Atomic.make false;
              worker = None;
              lvl = Full_fits;
              lvl_reason = None;
              miss_streak = 0;
              clean_streak = 0;
              restart_stamps = [];
              pinned_until = 0.0;
              last_ladder_eval = started_at;
              drain_ewma = 0.0;
              last_drain = started_at;
              last_pass = started_at;
              overload_rps = 0.0;
              overload_debt = 0.0;
              compaction_suspended = false;
              corrupt_frames = 0;
              torn_tails = 0;
              replayed_events = 0;
              quarantine =
                (match Ingest.Dead_letter.open_ ~path:(quarantine_path dir) with
                | Ok q -> q
                | Error m ->
                    Log.warn (fun f ->
                        f "shard %d: quarantine file unavailable (%s); \
                           counting only"
                          shard_id m);
                    Ingest.Dead_letter.null ());
              faults =
                List.filter_map
                  (fun (f : Fault.service_fault) ->
                    if f.Fault.shard = shard_id then
                      Some { spec = f; fired = false; slow_until = 0.0 }
                    else None)
                  faults;
              started_at;
              depth_gauge =
                Metrics.Gauge.create ~labels:shard_label
                  ~help:"Current ingest queue depth" "qnet_serve_queue_depth";
              iter_gauge =
                Metrics.Gauge.create ~labels:shard_label
                  ~help:"Cumulative StEM iterations fitted by this shard"
                  "qnet_serve_shard_iterations";
              level_gauge =
                Metrics.Gauge.create ~labels:shard_label
                  ~help:
                    "Shard degradation-ladder level (0 full, 1 incremental, \
                     2 pinned)"
                  "qnet_serve_degrade_level";
            }
          in
          Mutex.protect t.mutex (fun () -> publish_level t);
          resume_from_disk t;
          Metrics.Gauge.set t.iter_gauge (float_of_int t.iters);
          reopen_log t;
          t.worker <- Some (Thread.create (fun () -> supervise t) ());
          Ok t)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Bounded_queue.close t.ingest_queue;
    (match t.worker with None -> () | Some th -> Thread.join th);
    (match t.log_oc with
    | Some oc ->
        close_out_noerr oc;
        t.log_oc <- None
    | None -> ());
    Ingest.Dead_letter.close t.quarantine
  end
