module Trace = Qnet_trace.Trace
module Params = Qnet_core.Params
module Store = Qnet_core.Event_store
module Stem = Qnet_core.Stem
module Obs = Qnet_core.Observation
module Supervisor = Qnet_runtime.Supervisor
module Fault = Qnet_runtime.Fault
module Metrics = Qnet_obs.Metrics
module Clock = Qnet_obs.Clock
module Jsonx = Qnet_obs.Jsonx
module Rng = Qnet_prob.Rng

let log_src = Logs.Src.create "qnet.serve" ~doc:"Sharded inference daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  num_queues : int;
  queue_capacity : int;
  refit_events : int;
  refit_interval : float;
  min_tenant_events : int;
  max_tenant_events : int;
  obs_fraction : float;
  chains : int;
  min_chains : int;
  fit_iterations : int;
  sweep_deadline : float;
  max_restarts : int;
  backoff_base : float;
  backoff_max : float;
  poll_interval : float;
  seed : int;
}

let default_config =
  {
    num_queues = 3;
    queue_capacity = 1024;
    refit_events = 120;
    refit_interval = 2.0;
    min_tenant_events = 40;
    max_tenant_events = 4000;
    obs_fraction = 0.5;
    chains = 2;
    min_chains = 1;
    fit_iterations = 30;
    sweep_deadline = 5.0;
    max_restarts = 3;
    backoff_base = 0.25;
    backoff_max = 4.0;
    poll_interval = 0.05;
    seed = 1;
  }

type status =
  | Starting
  | Healthy
  | Degraded of string
  | Restarting of int
  | Failed of string

let status_label = function
  | Starting -> "starting"
  | Healthy -> "healthy"
  | Degraded _ -> "degraded"
  | Restarting _ -> "restarting"
  | Failed _ -> "failed"

type posterior = {
  tenant : string;
  params : Params.t;
  mean_service : float array;
  iteration : int;
  round : int;
  num_events : int;
  from_checkpoint : bool;
  fitted_at : float;
}

(* ------------------------------------------------------------------ *)
(* Checkpoint codec: one line of JSON, atomically renamed into place.  *)
(* ------------------------------------------------------------------ *)

module Ckpt = struct
  let version = 1

  type tenant_entry = {
    tenant : string;
    rates : float array;
    arrival_queue : int;
    mean_service : float array;
    iteration : int;
    round : int;
    num_events : int;
  }

  type snapshot = {
    iterations : int;
    rounds : int;
    restarts : int;
    tenants : tenant_entry list;
  }

  let to_line s =
    let num_of_int i = Jsonx.Num (float_of_int i) in
    let arr xs = Jsonx.Arr (Array.to_list (Array.map (fun v -> Jsonx.Num v) xs)) in
    Jsonx.render
      (Jsonx.Obj
         [
           ("version", num_of_int version);
           ("iterations", num_of_int s.iterations);
           ("rounds", num_of_int s.rounds);
           ("restarts", num_of_int s.restarts);
           ( "tenants",
             Jsonx.Arr
               (List.map
                  (fun t ->
                    Jsonx.Obj
                      [
                        ("tenant", Jsonx.Str t.tenant);
                        ("rates", arr t.rates);
                        ("arrival_queue", num_of_int t.arrival_queue);
                        ("mean_service", arr t.mean_service);
                        ("iteration", num_of_int t.iteration);
                        ("round", num_of_int t.round);
                        ("num_events", num_of_int t.num_events);
                      ])
                  s.tenants) );
         ])

  let int_field fields k =
    match List.assoc_opt k fields with
    | Some (Jsonx.Num v)
      when Float.is_finite v && Float.equal (Float.rem v 1.0) 0.0 && v >= 0.0 ->
        Ok (int_of_float v)
    | _ -> Error (Printf.sprintf "missing/invalid %S" k)

  let float_array_field fields k =
    match List.assoc_opt k fields with
    | Some (Jsonx.Arr vs) -> (
        let out =
          List.map (function Jsonx.Num v -> Some v | _ -> None) vs
        in
        if List.exists Option.is_none out then
          Error (Printf.sprintf "non-numeric entry in %S" k)
        else Ok (Array.of_list (List.filter_map Fun.id out)))
    | _ -> Error (Printf.sprintf "missing/invalid %S" k)

  let ( let* ) = Result.bind

  let tenant_of_fields fields =
    let* tenant =
      match List.assoc_opt "tenant" fields with
      | Some (Jsonx.Str s) when Ingest.valid_tenant s -> Ok s
      | _ -> Error "missing/invalid \"tenant\""
    in
    let* rates = float_array_field fields "rates" in
    let* arrival_queue = int_field fields "arrival_queue" in
    let* mean_service = float_array_field fields "mean_service" in
    let* iteration = int_field fields "iteration" in
    let* round = int_field fields "round" in
    let* num_events = int_field fields "num_events" in
    if
      Array.length rates = 0
      || Array.exists (fun r -> (not (Float.is_finite r)) || r <= 0.0) rates
    then Error (Printf.sprintf "invalid rates for tenant %S" tenant)
    else if arrival_queue >= Array.length rates then
      Error (Printf.sprintf "arrival queue out of range for tenant %S" tenant)
    else
      Ok
        { tenant; rates; arrival_queue; mean_service; iteration; round;
          num_events }

  let of_line line =
    match Jsonx.parse_object (String.trim line) with
    | Error m -> Error (Printf.sprintf "bad checkpoint json: %s" m)
    | Ok fields -> (
        let* v = int_field fields "version" in
        if v <> version then
          Error
            (Printf.sprintf "checkpoint version %d unsupported (want %d)" v
               version)
        else
          let* iterations = int_field fields "iterations" in
          let* rounds = int_field fields "rounds" in
          let* restarts = int_field fields "restarts" in
          match List.assoc_opt "tenants" fields with
          | Some (Jsonx.Arr entries) -> (
              let decoded =
                List.map
                  (function
                    | Jsonx.Obj f -> tenant_of_fields f
                    | _ -> Error "tenant entry is not an object")
                  entries
              in
              match
                List.find_opt (function Error _ -> true | Ok _ -> false) decoded
              with
              | Some (Error m) -> Error m
              | _ ->
                  Ok
                    {
                      iterations;
                      rounds;
                      restarts;
                      tenants =
                        List.filter_map
                          (function Ok t -> Some t | Error _ -> None)
                          decoded;
                    })
          | _ -> Error "missing/invalid \"tenants\"")
end

let backoff ~base ~max_ attempt =
  let a = Stdlib.max 1 attempt in
  Stdlib.min max_ (base *. (2.0 ** float_of_int (a - 1)))

(* ------------------------------------------------------------------ *)
(* Shard state                                                         *)
(* ------------------------------------------------------------------ *)

type tenant_state = {
  mutable events : Trace.event list;  (* newest first *)
  mutable count : int;
  mutable since_fit : int;
  mutable post : posterior option;
}

type fault_state = {
  spec : Fault.service_fault;
  mutable fired : bool;
  mutable slow_until : float;
}

type t = {
  shard_id : int;
  cfg : config;
  dir : string;
  ingest_queue : Ingest.record Bounded_queue.t;
  mutex : Mutex.t;
  tenant_tbl : (string, tenant_state) Hashtbl.t;
  mutable st : status;
  mutable iters : int;
  mutable round_count : int;
  mutable restart_count : int;
  mutable was_resumed : bool;
  mutable err : string option;
  mutable last_fit_scan : float;
  mutable log_oc : out_channel option;
  mutable ckpt_fail_pending : bool;
  stopping : bool Atomic.t;
  mutable worker : Thread.t option;
  faults : fault_state list;
  started_at : float;
  depth_gauge : Metrics.Gauge.t;
  iter_gauge : Metrics.Gauge.t;
}

let m_fits = Serve_metrics.counter "qnet_serve_fits_total"
let m_fit_failures = Serve_metrics.counter "qnet_serve_fit_failures_total"
let m_repair_dropped = Serve_metrics.counter "qnet_serve_repair_dropped_total"
let m_restarts = Serve_metrics.counter "qnet_serve_shard_restarts_total"
let m_checkpoints = Serve_metrics.counter "qnet_serve_checkpoints_total"

let m_checkpoint_failures =
  Serve_metrics.counter "qnet_serve_checkpoint_failures_total"

let m_resumes = Serve_metrics.counter "qnet_serve_resumes_total"
let m_faults = Serve_metrics.counter "qnet_serve_faults_injected_total"

let ckpt_path t = Filename.concat t.dir "shard.ckpt"
let log_path t = Filename.concat t.dir "events.log"

let id t = t.shard_id
let queue t = t.ingest_queue
let status t = Mutex.protect t.mutex (fun () -> t.st)
let iterations t = Mutex.protect t.mutex (fun () -> t.iters)
let rounds t = Mutex.protect t.mutex (fun () -> t.round_count)
let restarts t = Mutex.protect t.mutex (fun () -> t.restart_count)
let resumed t = t.was_resumed
let queue_depth t = Bounded_queue.length t.ingest_queue
let last_error t = Mutex.protect t.mutex (fun () -> t.err)

let tenants t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_tbl [])
  |> List.sort String.compare

let posterior t ~tenant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tenant_tbl tenant with
      | None -> None
      | Some ts -> ts.post)

let knows_tenant t ~tenant =
  Mutex.protect t.mutex (fun () -> Hashtbl.mem t.tenant_tbl tenant)

(* Sleep in small slices so stop and crash recovery stay responsive. *)
let interruptible_sleep t seconds =
  let deadline = Clock.now () +. seconds in
  while (not (Atomic.get t.stopping)) && Clock.now () < deadline do
    Thread.delay (Stdlib.min 0.05 seconds)
  done

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)
(* ------------------------------------------------------------------ *)

let reopen_log t =
  (match t.log_oc with
  | Some oc -> close_out_noerr oc
  | None -> ());
  t.log_oc <-
    (match open_out_gen [ Open_append; Open_creat ] 0o644 (log_path t) with
    | oc -> Some oc
    | exception Sys_error m ->
        Log.warn (fun f -> f "shard %d: cannot open event log: %s" t.shard_id m);
        None)

let append_log t records =
  match t.log_oc with
  | None -> ()
  | Some oc -> (
      try
        List.iter
          (fun r ->
            output_string oc (Ingest.to_json_line r);
            output_char oc '\n')
          records;
        flush oc
      with Sys_error m ->
        Log.warn (fun f -> f "shard %d: event log write failed: %s" t.shard_id m);
        close_out_noerr oc;
        t.log_oc <- None)

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let fire_fault t fs =
  fs.fired <- true;
  Metrics.Counter.inc (Lazy.force m_faults);
  Log.warn (fun f ->
      f "shard %d: injecting %s" t.shard_id
        (Fault.service_fault_label fs.spec));
  match fs.spec.Fault.kind with
  | Fault.Ingest_stall s -> interruptible_sleep t s
  | Fault.Shard_crash ->
      raise (Fault.Injected_shard_crash { shard = t.shard_id })
  | Fault.Checkpoint_write_failure -> t.ckpt_fail_pending <- true
  | Fault.Slow_consumer s -> fs.slow_until <- Clock.now () +. s

let check_faults t =
  let now = Clock.now () in
  List.iter
    (fun fs ->
      if (not fs.fired) && now -. t.started_at >= fs.spec.Fault.after then
        fire_fault t fs)
    t.faults

let in_slow_window t =
  let now = Clock.now () in
  List.exists (fun fs -> fs.slow_until > now) t.faults

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

let snapshot_of_state t =
  Mutex.protect t.mutex (fun () ->
      let tenants =
        Hashtbl.fold
          (fun _ ts acc ->
            match ts.post with
            | None -> acc
            | Some p ->
                {
                  Ckpt.tenant = p.tenant;
                  rates = Array.copy p.params.Params.rates;
                  arrival_queue = p.params.Params.arrival_queue;
                  mean_service = Array.copy p.mean_service;
                  iteration = p.iteration;
                  round = p.round;
                  num_events = p.num_events;
                }
                :: acc)
          t.tenant_tbl []
        |> List.sort (fun a b -> String.compare a.Ckpt.tenant b.Ckpt.tenant)
      in
      {
        Ckpt.iterations = t.iters;
        rounds = t.round_count;
        restarts = t.restart_count;
        tenants;
      })

let current_log_lines t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun tenant ts acc ->
          List.rev_map
            (fun (e : Trace.event) ->
              Ingest.to_json_line
                {
                  Ingest.tenant;
                  task = e.Trace.task;
                  state = e.Trace.state;
                  queue = e.Trace.queue;
                  arrival = e.Trace.arrival;
                  departure = e.Trace.departure;
                })
            ts.events
          @ acc)
        t.tenant_tbl [])

let write_checkpoint t =
  try
    if t.ckpt_fail_pending then begin
      t.ckpt_fail_pending <- false;
      raise (Sys_error "injected checkpoint write failure")
    end;
    let line = Ckpt.to_line (snapshot_of_state t) in
    let path = ckpt_path t in
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc line;
        output_char oc '\n');
    Sys.rename tmp path;
    (* compact the event log to the surviving buffer window, then
       reopen it for appends: replay cost stays bounded by the
       per-tenant buffer caps, not by daemon uptime *)
    let log_tmp = log_path t ^ ".tmp" in
    let oc = open_out log_tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          (current_log_lines t));
    Sys.rename log_tmp (log_path t);
    reopen_log t;
    Metrics.Counter.inc (Lazy.force m_checkpoints)
  with Sys_error m ->
    Metrics.Counter.inc (Lazy.force m_checkpoint_failures);
    Mutex.protect t.mutex (fun () -> t.err <- Some m);
    Log.warn (fun f ->
        f "shard %d: checkpoint write failed (will retry next round): %s"
          t.shard_id m)

(* ------------------------------------------------------------------ *)
(* Absorbing ingested records                                          *)
(* ------------------------------------------------------------------ *)

let absorb t records =
  if records <> [] then begin
    append_log t records;
    Mutex.protect t.mutex (fun () ->
        List.iter
          (fun (r : Ingest.record) ->
            let ts =
              match Hashtbl.find_opt t.tenant_tbl r.Ingest.tenant with
              | Some ts -> ts
              | None ->
                  let ts =
                    { events = []; count = 0; since_fit = 0; post = None }
                  in
                  Hashtbl.add t.tenant_tbl r.Ingest.tenant ts;
                  ts
            in
            ts.events <- Ingest.to_trace_event r :: ts.events;
            ts.count <- ts.count + 1;
            ts.since_fit <- ts.since_fit + 1;
            if ts.count > t.cfg.max_tenant_events then begin
              (* drop the oldest tail; the lenient rebuild re-repairs
                 the truncated window at the next fit *)
              let keep = t.cfg.max_tenant_events in
              ts.events <-
                List.filteri (fun i _ -> i < keep) ts.events;
              ts.count <- keep
            end)
          records)
  end

(* ------------------------------------------------------------------ *)
(* Fitting                                                             *)
(* ------------------------------------------------------------------ *)

let csv_of_events events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "task,state,queue,arrival,departure\n";
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%.17g,%.17g\n" e.Trace.task e.Trace.state
           e.Trace.queue e.Trace.arrival e.Trace.departure))
    events;
  Buffer.contents buf

let fit_seed t tenant =
  (* distinct, reproducible stream per (daemon seed, shard, tenant,
     round); collisions are harmless (independent data) *)
  t.cfg.seed
  + (104729 * (t.shard_id + 1))
  + (31 * Mutex.protect t.mutex (fun () -> t.round_count))
  + (Router.fnv1a tenant mod 1_000_003)

let fit_tenant t tenant =
  let events, prev_post =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.tenant_tbl tenant with
        | None -> ([], None)
        | Some ts -> (List.rev ts.events, ts.post))
  in
  if events = [] then ()
  else begin
    let csv = csv_of_events events in
    match Trace.of_csv_lenient ~num_queues:t.cfg.num_queues csv with
    | Error _report ->
        Metrics.Counter.inc (Lazy.force m_fit_failures);
        Mutex.protect t.mutex (fun () ->
            t.err <- Some (Printf.sprintf "tenant %s: no usable events" tenant))
    | Ok (trace, report) ->
        if report.Trace.events_dropped > 0 then
          Metrics.Counter.inc
            ~by:(float_of_int report.Trace.events_dropped)
            (Lazy.force m_repair_dropped);
        if trace.Trace.num_tasks < 2 then ()
        else begin
          let seed = fit_seed t tenant in
          let rng = Rng.create ~seed () in
          let mask = Obs.mask rng (Obs.Task_fraction t.cfg.obs_fraction) trace in
          let make_store () = Store.of_trace ~observed:mask trace in
          let sup_config =
            {
              Supervisor.default_config with
              Supervisor.chains = t.cfg.chains;
              min_chains = Stdlib.min t.cfg.min_chains t.cfg.chains;
              stem =
                {
                  Stem.default_config with
                  Stem.iterations = t.cfg.fit_iterations;
                  burn_in = t.cfg.fit_iterations / 2;
                };
              round_iterations = Stdlib.max 5 (t.cfg.fit_iterations / 4);
              sweep_deadline = t.cfg.sweep_deadline;
              max_restarts = 1;
            }
          in
          let init =
            match prev_post with
            | Some p
              when Params.num_queues p.params = t.cfg.num_queues ->
                Some p.params
            | _ -> None
          in
          match Supervisor.run ~config:sup_config ?init ~seed make_store with
          | exception Invalid_argument m ->
              Metrics.Counter.inc (Lazy.force m_fit_failures);
              Mutex.protect t.mutex (fun () ->
                  t.err <- Some (Printf.sprintf "tenant %s: %s" tenant m))
          | exception Failure m ->
              Metrics.Counter.inc (Lazy.force m_fit_failures);
              Mutex.protect t.mutex (fun () ->
                  t.err <- Some (Printf.sprintf "tenant %s: %s" tenant m))
          | r when r.Supervisor.status = Supervisor.Failed ->
              Metrics.Counter.inc (Lazy.force m_fit_failures);
              Mutex.protect t.mutex (fun () ->
                  t.err <-
                    Some (Printf.sprintf "tenant %s: fit had no healthy chain" tenant))
          | r ->
              let done_ =
                Array.fold_left
                  (fun acc v ->
                    Stdlib.max acc v.Supervisor.iterations_done)
                  0 r.Supervisor.verdicts
              in
              Metrics.Counter.inc (Lazy.force m_fits);
              Mutex.protect t.mutex (fun () ->
                  t.iters <- t.iters + Stdlib.max 1 done_;
                  match Hashtbl.find_opt t.tenant_tbl tenant with
                  | None -> ()
                  | Some ts ->
                      ts.since_fit <- 0;
                      ts.post <-
                        Some
                          {
                            tenant;
                            params = r.Supervisor.params;
                            mean_service = r.Supervisor.mean_service;
                            iteration = t.iters;
                            round = t.round_count;
                            num_events = Array.length trace.Trace.events;
                            from_checkpoint = false;
                            fitted_at = Clock.now ();
                          });
              Metrics.Gauge.set t.iter_gauge (float_of_int (iterations t))
        end
  end

let due_tenants t =
  let now = Clock.now () in
  let interval_elapsed = now -. t.last_fit_scan >= t.cfg.refit_interval in
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun tenant ts acc ->
          if
            ts.count >= t.cfg.min_tenant_events
            && (ts.since_fit >= t.cfg.refit_events
               || (interval_elapsed && ts.since_fit > 0))
          then tenant :: acc
          else acc)
        t.tenant_tbl [])
  |> List.sort String.compare

let run_fit_round t due =
  Mutex.protect t.mutex (fun () -> t.round_count <- t.round_count + 1);
  let before_failures = Metrics.Counter.value (Lazy.force m_fit_failures) in
  List.iter (fun tenant -> fit_tenant t tenant) due;
  let after_failures = Metrics.Counter.value (Lazy.force m_fit_failures) in
  t.last_fit_scan <- Clock.now ();
  write_checkpoint t;
  Mutex.protect t.mutex (fun () ->
      if after_failures > before_failures then
        t.st <-
          Degraded
            (match t.err with Some m -> m | None -> "fit failures this round")
      else begin
        t.st <- Healthy;
        t.err <- None
      end)

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)
(* ------------------------------------------------------------------ *)

let worker_pass t =
  check_faults t;
  let slow = in_slow_window t in
  let batch =
    Bounded_queue.pop_batch
      ~max:(if slow then 1 else 256)
      ~timeout:t.cfg.poll_interval t.ingest_queue
  in
  if slow then Thread.delay 0.02;
  absorb t batch;
  Metrics.Gauge.set t.depth_gauge (float_of_int (queue_depth t));
  match due_tenants t with
  | [] ->
      if
        Mutex.protect t.mutex (fun () ->
            match t.st with Starting -> true | _ -> false)
      then Mutex.protect t.mutex (fun () -> t.st <- Healthy)
  | due -> run_fit_round t due

let final_drain t =
  let rec go () =
    match Bounded_queue.pop_batch ~max:4096 ~timeout:0.0 t.ingest_queue with
    | [] -> ()
    | batch ->
        absorb t batch;
        go ()
  in
  go ();
  write_checkpoint t

let rec supervise t =
  match
    while not (Atomic.get t.stopping) do
      worker_pass t
    done
  with
  | () -> final_drain t
  | exception e ->
      let msg = Printexc.to_string e in
      let attempt = Mutex.protect t.mutex (fun () -> t.restart_count + 1) in
      if attempt > t.cfg.max_restarts then begin
        Mutex.protect t.mutex (fun () ->
            t.st <- Failed msg;
            t.err <- Some msg);
        Log.err (fun f ->
            f "shard %d: %s; restart budget (%d) exhausted — failed (posteriors \
               stay servable)"
              t.shard_id msg t.cfg.max_restarts);
        (* keep draining nothing; just wait for stop so posteriors
           remain servable and stop remains graceful *)
        while not (Atomic.get t.stopping) do
          Thread.delay 0.05
        done
      end
      else begin
        Metrics.Counter.inc (Lazy.force m_restarts);
        Mutex.protect t.mutex (fun () ->
            t.restart_count <- attempt;
            t.st <- Restarting attempt;
            t.err <- Some msg);
        let delay =
          backoff ~base:t.cfg.backoff_base ~max_:t.cfg.backoff_max attempt
        in
        Log.warn (fun f ->
            f "shard %d: %s; restarting in %.3gs (attempt %d/%d)" t.shard_id msg
              delay attempt t.cfg.max_restarts);
        interruptible_sleep t delay;
        Mutex.protect t.mutex (fun () -> t.st <- Healthy);
        supervise t
      end

(* ------------------------------------------------------------------ *)
(* Resume                                                              *)
(* ------------------------------------------------------------------ *)

let resume_from_disk t =
  let resumed_ckpt =
    match
      if Sys.file_exists (ckpt_path t) then
        let ic = open_in (ckpt_path t) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (input_line ic))
      else None
    with
    | None -> false
    | Some line -> (
        match Ckpt.of_line line with
        | Error m ->
            Log.warn (fun f ->
                f "shard %d: ignoring unreadable checkpoint: %s" t.shard_id m);
            false
        | Ok snap ->
            Mutex.protect t.mutex (fun () ->
                t.iters <- snap.Ckpt.iterations;
                t.round_count <- snap.Ckpt.rounds;
                List.iter
                  (fun (e : Ckpt.tenant_entry) ->
                    match
                      Params.create ~rates:e.Ckpt.rates
                        ~arrival_queue:e.Ckpt.arrival_queue
                    with
                    | params ->
                        Hashtbl.replace t.tenant_tbl e.Ckpt.tenant
                          {
                            events = [];
                            count = 0;
                            since_fit = 0;
                            post =
                              Some
                                {
                                  tenant = e.Ckpt.tenant;
                                  params;
                                  mean_service = e.Ckpt.mean_service;
                                  iteration = e.Ckpt.iteration;
                                  round = e.Ckpt.round;
                                  num_events = e.Ckpt.num_events;
                                  from_checkpoint = true;
                                  fitted_at = 0.0;
                                };
                          }
                    | exception Invalid_argument m ->
                        Log.warn (fun f ->
                            f "shard %d: dropping tenant %s from checkpoint: %s"
                              t.shard_id e.Ckpt.tenant m))
                  snap.Ckpt.tenants);
            true)
    | exception Sys_error m ->
        Log.warn (fun f ->
            f "shard %d: cannot read checkpoint: %s" t.shard_id m);
        false
    | exception End_of_file -> false
  in
  let replayed =
    match
      if Sys.file_exists (log_path t) then Some (open_in (log_path t))
      else None
    with
    | None -> 0
    | Some ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = ref 0 in
            (try
               while true do
                 let line = input_line ic in
                 match
                   Ingest.decode_line ~num_queues:t.cfg.num_queues line
                 with
                 | Ok r ->
                     absorb t [ r ];
                     incr n
                 | Error _ -> ()
               done
             with End_of_file -> ());
            !n)
    | exception Sys_error m ->
        Log.warn (fun f ->
            f "shard %d: cannot replay event log: %s" t.shard_id m);
        0
  in
  (* replay inflates since_fit; a fresh fit soon after resume is the
     desired behavior, so leave it — but don't count replay as new
     load for tenants that were already fitted to this window *)
  if resumed_ckpt || replayed > 0 then begin
    t.was_resumed <- true;
    Metrics.Counter.inc (Lazy.force m_resumes);
    Log.info (fun f ->
        f "shard %d: resumed from checkpoint (iterations=%d, rounds=%d, %d \
           events replayed)"
          t.shard_id t.iters t.round_count replayed)
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let validate cfg =
  if cfg.num_queues < 2 then Error "num_queues must be >= 2"
  else if cfg.queue_capacity < 1 then Error "queue_capacity must be >= 1"
  else if cfg.max_tenant_events < cfg.min_tenant_events then
    Error "max_tenant_events must be >= min_tenant_events"
  else if cfg.obs_fraction <= 0.0 || cfg.obs_fraction > 1.0 then
    Error "obs_fraction must be in (0, 1]"
  else if cfg.chains < 1 then Error "chains must be >= 1"
  else if cfg.fit_iterations < 2 then Error "fit_iterations must be >= 2"
  else if cfg.backoff_base <= 0.0 || cfg.backoff_max < cfg.backoff_base then
    Error "backoff_base/backoff_max malformed"
  else Ok ()

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ?(faults = []) ?started_at ~dir ~id:shard_id cfg =
  match validate cfg with
  | Error m -> Error (Printf.sprintf "shard %d: %s" shard_id m)
  | Ok () -> (
      match
        mkdir_p dir;
        if not (Sys.is_directory dir) then
          Error (Printf.sprintf "shard %d: %s is not a directory" shard_id dir)
        else Ok ()
      with
      | exception Sys_error m -> Error (Printf.sprintf "shard %d: %s" shard_id m)
      | Error m -> Error m
      | Ok () ->
          let started_at =
            match started_at with Some x -> x | None -> Clock.now ()
          in
          let shard_label = [ ("shard", string_of_int shard_id) ] in
          let t =
            {
              shard_id;
              cfg;
              dir;
              ingest_queue = Bounded_queue.create ~capacity:cfg.queue_capacity;
              mutex = Mutex.create ();
              tenant_tbl = Hashtbl.create 16;
              st = Starting;
              iters = 0;
              round_count = 0;
              restart_count = 0;
              was_resumed = false;
              err = None;
              last_fit_scan = Clock.now ();
              log_oc = None;
              ckpt_fail_pending = false;
              stopping = Atomic.make false;
              worker = None;
              faults =
                List.filter_map
                  (fun (f : Fault.service_fault) ->
                    if f.Fault.shard = shard_id then
                      Some { spec = f; fired = false; slow_until = 0.0 }
                    else None)
                  faults;
              started_at;
              depth_gauge =
                Metrics.Gauge.create ~labels:shard_label
                  ~help:"Current ingest queue depth" "qnet_serve_queue_depth";
              iter_gauge =
                Metrics.Gauge.create ~labels:shard_label
                  ~help:"Cumulative StEM iterations fitted by this shard"
                  "qnet_serve_shard_iterations";
            }
          in
          resume_from_disk t;
          Metrics.Gauge.set t.iter_gauge (float_of_int t.iters);
          reopen_log t;
          t.worker <- Some (Thread.create (fun () -> supervise t) ());
          Ok t)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Bounded_queue.close t.ingest_queue;
    (match t.worker with None -> () | Some th -> Thread.join th);
    (match t.log_oc with
    | Some oc ->
        close_out_noerr oc;
        t.log_oc <- None
    | None -> ())
  end
