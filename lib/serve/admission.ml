(* Adaptive sampled admission: a per-tenant Bernoulli sampler whose
   retention rate is driven by an AIMD controller.

   Sutton & Jordan's journal version runs the estimator against
   services admitting ~1% of requests; the estimator is unbiased under
   Bernoulli thinning, so under overload it is strictly better to keep
   a fair sample of the stream than to 429 whole batches. The daemon
   feeds each tenant's observed pressure (ingest queue fraction and
   refit lag of its shard) into [observe]; the controller answers
   [admit] coin flips at the current rate.

   AIMD: pressure at or above the high watermark multiplies the rate
   down (fast back-off), pressure at or below the low watermark adds a
   constant back (slow, stable recovery) — the same shape TCP uses for
   congestion, which converges to a fair share without oscillating.
   Adjustments are throttled to one per [adjust_interval] per tenant so
   a single burst of batches cannot collapse the rate in one round
   trip. At rate 1.0 the coin is short-circuited and the RNG does not
   advance, so fully-admitted streams stay byte-deterministic. *)

module Metrics = Qnet_obs.Metrics
module Rng = Qnet_prob.Rng

type config = {
  min_rate : float;
  increase : float;
  decrease : float;
  high_watermark : float;
  low_watermark : float;
  adjust_interval : float;
  seed : int;
}

let default_config =
  {
    min_rate = 0.01;
    increase = 0.05;
    decrease = 0.5;
    high_watermark = 0.75;
    low_watermark = 0.5;
    adjust_interval = 0.1;
    seed = 0;
  }

type tenant_state = {
  mutable rate : float;
  mutable offered : int;
  mutable admitted : int;
  mutable last_adjust : float;
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  rng : Rng.t;
  tbl : (string, tenant_state) Hashtbl.t;
}

let m_offered = Serve_metrics.counter "qnet_serve_admission_offered_total"

let m_sampled_out =
  Serve_metrics.counter "qnet_serve_admission_sampled_out_total"

let m_decreases =
  Serve_metrics.counter "qnet_serve_admission_rate_decreases_total"

let m_increases =
  Serve_metrics.counter "qnet_serve_admission_rate_increases_total"

let g_rate = Serve_metrics.gauge "qnet_serve_admission_rate"

let tenant_rate_gauge tenant =
  Metrics.Gauge.create
    ~help:"Current per-tenant Bernoulli admission rate"
    ~labels:[ ("tenant", tenant) ]
    "qnet_serve_admission_rate"

let validate cfg =
  if cfg.min_rate <= 0.0 || cfg.min_rate > 1.0 then
    Error "admission min_rate must be in (0, 1]"
  else if cfg.increase <= 0.0 then Error "admission increase must be > 0"
  else if cfg.decrease <= 0.0 || cfg.decrease >= 1.0 then
    Error "admission decrease must be in (0, 1)"
  else if
    cfg.high_watermark <= cfg.low_watermark
    || cfg.low_watermark < 0.0 || cfg.high_watermark > 1.0
  then Error "admission high/low watermarks malformed"
  else if cfg.adjust_interval < 0.0 then
    Error "admission adjust_interval must be >= 0"
  else Ok ()

let create cfg =
  {
    cfg;
    mutex = Mutex.create ();
    rng = Rng.create ~seed:cfg.seed ();
    tbl = Hashtbl.create 16;
  }

let state t tenant =
  match Hashtbl.find_opt t.tbl tenant with
  | Some ts -> ts
  | None ->
      let ts =
        { rate = 1.0; offered = 0; admitted = 0; last_adjust = neg_infinity }
      in
      Hashtbl.replace t.tbl tenant ts;
      ts

let min_rate_over_tenants t =
  Hashtbl.fold (fun _ ts acc -> Float.min ts.rate acc) t.tbl 1.0

let observe t ~tenant ~pressure ~now =
  Mutex.protect t.mutex (fun () ->
      let ts = state t tenant in
      if now -. ts.last_adjust >= t.cfg.adjust_interval then begin
        let before = ts.rate in
        if pressure >= t.cfg.high_watermark then
          ts.rate <- Float.max t.cfg.min_rate (ts.rate *. t.cfg.decrease)
        else if pressure <= t.cfg.low_watermark then
          ts.rate <- Float.min 1.0 (ts.rate +. t.cfg.increase);
        ts.last_adjust <- now;
        if ts.rate < before then Metrics.Counter.inc (Lazy.force m_decreases)
        else if ts.rate > before then
          Metrics.Counter.inc (Lazy.force m_increases);
        if not (Float.equal ts.rate before) then begin
          Metrics.Gauge.set (tenant_rate_gauge tenant) ts.rate;
          Metrics.Gauge.set (Lazy.force g_rate) (min_rate_over_tenants t)
        end
      end)

let admit t ~tenant =
  Mutex.protect t.mutex (fun () ->
      let ts = state t tenant in
      if ts.rate >= 1.0 then true else Rng.float_unit t.rng < ts.rate)

let note t ~tenant ~offered ~admitted =
  if offered > 0 then begin
    Mutex.protect t.mutex (fun () ->
        let ts = state t tenant in
        ts.offered <- ts.offered + offered;
        ts.admitted <- ts.admitted + admitted);
    Metrics.Counter.inc ~by:(float_of_int offered) (Lazy.force m_offered);
    if admitted < offered then
      Metrics.Counter.inc
        ~by:(float_of_int (offered - admitted))
        (Lazy.force m_sampled_out)
  end

type snapshot = { rate : float; s_offered : int; s_admitted : int }

let snapshot t ~tenant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tbl tenant with
      | None -> { rate = 1.0; s_offered = 0; s_admitted = 0 }
      | Some ts ->
          { rate = ts.rate; s_offered = ts.offered; s_admitted = ts.admitted })

let admitted_fraction s =
  if s.s_offered <= 0 then 1.0
  else float_of_int s.s_admitted /. float_of_int s.s_offered

let rate t ~tenant = (snapshot t ~tenant).rate
