(** A bounded multi-producer multi-consumer queue — the admission
    boundary between ingestion and a shard's inference loop.

    The bound is the whole point: an unbounded queue converts overload
    into unbounded memory growth and an eventual OOM kill, the exact
    failure mode a crash-tolerant daemon exists to avoid. When the
    queue is full the producer must choose a policy explicitly:

    - {e shed} ({!try_push}): drop the item and tell the caller, who
      surfaces the drop (HTTP 429, a metric) instead of hiding it;
    - {e block} ({!push_wait}): wait for space up to a timeout — the
      right policy for a file tailer that can afford to fall behind
      but must not lose lines.

    Synchronisation is one mutex around a [Queue.t]; waiting sides
    poll on a small sleep rather than a condition variable because the
    stdlib's [Condition] has no timed wait and every waiter here needs
    a deadline (a blocked producer must notice a closed queue, a
    consumer must keep beating its heartbeat). At the daemon's
    throughput target (thousands of events per second, drained in
    batches) the poll costs nothing measurable. *)

type 'a t

type policy = Shed | Block

val policy_label : policy -> string
val policy_of_string : string -> (policy, string) result

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed — the shed policy. *)

val push_wait : timeout:float -> 'a t -> 'a -> bool
(** Block until space frees, the queue closes, or [timeout] seconds
    elapse; [false] iff the item was not enqueued. *)

val pop_batch : ?max:int -> timeout:float -> 'a t -> 'a list
(** Up to [max] (default 256) items in FIFO order. Waits up to
    [timeout] seconds for the first item; once the queue is non-empty
    returns immediately with what is there. [[]] on timeout or when
    the queue is closed and drained. *)

val close : 'a t -> unit
(** Producers start failing immediately; consumers drain the
    remainder. Idempotent. *)

val is_closed : 'a t -> bool
