module Clock = Qnet_obs.Clock

type 'a t = {
  mutex : Mutex.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

type policy = Shed | Block

let policy_label = function Shed -> "shed" | Block -> "block"

let policy_of_string = function
  | "shed" -> Ok Shed
  | "block" -> Ok Block
  | s -> Error (Printf.sprintf "bad policy %S (want shed or block)" s)

let create ~capacity =
  if capacity < 1 then
    invalid_arg "Bounded_queue.create: capacity must be >= 1";
  { mutex = Mutex.create (); items = Queue.create (); capacity; closed = false }

let capacity t = t.capacity
let length t = Mutex.protect t.mutex (fun () -> Queue.length t.items)

let try_push t x =
  Mutex.protect t.mutex (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.add x t.items;
        true
      end)

(* Waiters poll: see the .mli for why not Condition. *)
let poll_sleep = 0.002

let push_wait ~timeout t x =
  let deadline = Clock.now () +. timeout in
  let rec go () =
    if try_push t x then true
    else if is_closed t || Clock.now () >= deadline then false
    else begin
      Thread.delay poll_sleep;
      go ()
    end
  and is_closed t = Mutex.protect t.mutex (fun () -> t.closed) in
  go ()

let pop_batch ?(max = 256) ~timeout t =
  let take () =
    Mutex.protect t.mutex (fun () ->
        if Queue.is_empty t.items then
          if t.closed then Some [] else None
        else begin
          let n = Stdlib.min max (Queue.length t.items) in
          let out = ref [] in
          for _ = 1 to n do
            out := Queue.pop t.items :: !out
          done;
          Some (List.rev !out)
        end)
  in
  let deadline = Clock.now () +. timeout in
  let rec go () =
    match take () with
    | Some batch -> batch
    | None ->
        if Clock.now () >= deadline then []
        else begin
          Thread.delay poll_sleep;
          go ()
        end
  in
  go ()

let close t = Mutex.protect t.mutex (fun () -> t.closed <- true)
let is_closed t = Mutex.protect t.mutex (fun () -> t.closed)
