(** The [qnet_serve_*] metric families.

    Every family the daemon can ever emit is declared here and
    force-registered at daemon start (the present-zeros convention the
    rest of the telemetry subsystem follows): a scrape taken before
    the first event, fault or restart still shows the whole surface
    at zero, so dashboards and alerts need no existence checks and the
    golden test can pin the names. Per-shard and per-tenant labeled
    series are created dynamically on top of these label-less
    totals. *)

val counter : string -> Qnet_obs.Metrics.Counter.t Lazy.t
(** Handle on the default registry; the name must be one of
    {!families} (raises [Invalid_argument] otherwise). *)

val gauge : string -> Qnet_obs.Metrics.Gauge.t Lazy.t

val histogram : string -> Qnet_obs.Metrics.Histogram.t Lazy.t
(** Label-less SLO latency family; per-tenant series are created on
    top of it by {!Fleet}. *)

val slo_buckets : float array
(** Log-decade bounds (1µs .. 100s) shared by every latency family. *)

val families :
  (string * string * [ `Counter | `Gauge | `Histogram of float array ]) list
(** [(name, help, kind)] for every label-less family the daemon owns
    (the [qnet_serve_*] surface plus [qnet_trace_dropped_total]). *)

val force_register : ?registry:Qnet_obs.Metrics.registry -> unit -> unit
(** Create every family in [registry] (default the process-wide one)
    so it appears in scrapes at zero. Idempotent. *)
