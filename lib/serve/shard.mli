(** A shard: one crash-tolerant worker owning the tenants routed to it.

    Each shard runs a worker thread that drains its bounded ingest
    queue, appends accepted events to a per-shard event log, and —
    when a tenant has accumulated enough fresh events — refits that
    tenant's posterior by handing the buffered trace to the existing
    supervised multi-chain StEM runtime ({!Qnet_runtime.Supervisor}),
    warm-started from the previous posterior. The buffered events go
    through {!Qnet_trace.Trace.of_csv_lenient} first, so the same
    repair machinery that protects batch ingestion (duplicates,
    broken chains, reversed intervals) protects the streaming path;
    repair drops are counted, never fatal.

    {b Crash tolerance.} The worker is supervised in-process: any
    exception (including an injected {!Qnet_runtime.Fault.Shard_crash})
    moves the shard to [Restarting], sleeps an exponential backoff,
    and re-enters the loop — state, buffers and posteriors intact —
    until the restart budget is exhausted, after which the shard is
    [Failed] but its last posteriors remain servable (stale). Across
    {e process} restarts the shard recovers from its data directory:
    a versioned single-line JSON checkpoint (counters + per-tenant
    posteriors, written atomically via tmp-rename) plus an append-only
    event log that is replayed through the ingest decoder and
    compacted at each checkpoint. Iteration counters are monotone
    across a graceful restart; a hard kill loses at most the rounds
    since the last checkpoint.

    {b Degradation.} A fit failure (lenient repair leaves nothing
    usable, or the supervised run ends [Failed]) marks the shard
    [Degraded] but keeps the previous posterior; a checkpoint-write
    failure is counted and retried next round. The posterior endpoint
    therefore never has to 500 — the worst case is a [stale] flag.

    {b Degradation ladder.} Orthogonal to worker liveness, each shard
    sits on a rung of {!level}: [Full_fits] (supervised multi-chain
    refits; hot tenants individually degrade to incremental),
    [Incremental] (bounded-memory {!Qnet_core.Online_stem} refits
    warm-started from the previous posterior), and [Pinned] (stale
    serve only). One refit round over the [fit_deadline] budget or an
    ingest queue past [hot_watermark] demotes a rung; two blown rounds
    running, or [breaker_restarts] watchdog restarts within
    [breaker_window] seconds (the restart circuit breaker), pin the
    shard. Promotion requires [promote_rounds] consecutive clean
    evaluations (hysteresis), one rung at a time. The current rung and
    its {!degraded_reason} are surfaced on [/shards.json], posterior
    responses and the [qnet_serve_degrade_*] metrics — never a 500.

    {b Durable-log hardening.} Event-log records and the checkpoint
    line are CRC32-framed ({!Framed_log}); replay truncates a torn
    tail back to the last valid frame, quarantines corrupt frames to
    [log-quarantine.jsonl] with exact counts, and reads the rotated
    segment ([events.log.1], written when the active segment exceeds
    [max_log_bytes]) before the active one. Compaction at checkpoint
    folds both segments back into one. *)

module Fault = Qnet_runtime.Fault

type config = {
  num_queues : int;
  queue_capacity : int;
  refit_events : int;
      (** fresh events per tenant that trigger a refit (default 120) *)
  refit_interval : float;
      (** seconds after which any fresh events at all trigger a refit
          (default 2.0) *)
  min_tenant_events : int;
      (** tenants with fewer buffered events are not fitted (default 40) *)
  max_tenant_events : int;
      (** per-tenant buffer bound; oldest events are dropped and the
          lenient rebuild re-repairs the window (default 4000) *)
  obs_fraction : float;
      (** observation mask fraction applied before fitting — the
          paper's sampled-tracing regime (default 0.5) *)
  chains : int;  (** supervised chains per fit (default 2) *)
  min_chains : int;  (** quorum for a fit (default 1) *)
  fit_iterations : int;  (** StEM iterations per fit (default 30) *)
  sweep_deadline : float;  (** watchdog deadline inside a fit (default 5.0) *)
  max_restarts : int;  (** shard restart budget (default 3) *)
  backoff_base : float;  (** first restart delay, seconds (default 0.25) *)
  backoff_max : float;  (** backoff ceiling, seconds (default 4.0) *)
  poll_interval : float;  (** queue poll period, seconds (default 0.05) *)
  seed : int;
  fit_deadline : float;
      (** wall-clock budget for one refit round; a round over budget
          demotes the shard a ladder rung (default 10.0) *)
  hot_tenant_events : int;
      (** a tenant with this many unfitted events gets incremental
          refits even on a [Full_fits] shard (default 960) *)
  breaker_restarts : int;
      (** restarts within [breaker_window] that trip the circuit
          breaker (default 3) *)
  breaker_window : float;  (** seconds (default 30.0) *)
  breaker_cooldown : float;
      (** minimum seconds pinned after a breaker trip (default 10.0) *)
  promote_rounds : int;
      (** consecutive clean evaluations required to climb one rung
          (default 3) *)
  hot_watermark : float;
      (** queue fraction at or above which the shard demotes
          (default 0.75) *)
  cool_watermark : float;
      (** queue fraction at or below which an evaluation counts as
          clean (default 0.25) *)
  max_log_bytes : int;
      (** active event-log segment size that triggers rotation
          (default 4 MiB) *)
}

val default_config : config

type status =
  | Starting
  | Healthy
  | Degraded of string  (** serving, but the last fit round went wrong *)
  | Restarting of int  (** in backoff before restart attempt [n] *)
  | Failed of string  (** restart budget exhausted; posteriors stay servable *)

val status_label : status -> string
(** Lowercase token for JSON/metrics ("healthy", "restarting", ...). *)

type level = Full_fits | Incremental | Pinned
(** The degradation ladder, from freshest to stalest serving mode. *)

val level_label : level -> string
(** "full" | "incremental" | "pinned". *)

val level_rank : level -> int
(** 0 | 1 | 2 — the [qnet_serve_degrade_level] gauge value. *)

type posterior = {
  tenant : string;
  params : Qnet_core.Params.t;
  mean_service : float array;
  iteration : int;  (** shard iteration counter when this was fitted *)
  round : int;
  num_events : int;  (** events in the fitted window *)
  from_checkpoint : bool;  (** resumed, not yet refreshed by a live fit *)
  fitted_at : float;  (** {!Qnet_obs.Clock.now} at fit (0 for resumed) *)
  fit_mode : string;  (** "full" | "incremental" | "checkpoint" *)
}

(** The checkpoint codec, exposed for tests: one line of JSON,
    version-tagged, written atomically. *)
module Ckpt : sig
  val version : int

  type tenant_entry = {
    tenant : string;
    rates : float array;
    arrival_queue : int;
    mean_service : float array;
    iteration : int;
    round : int;
    num_events : int;
  }

  type snapshot = {
    iterations : int;
    rounds : int;
    restarts : int;
    tenants : tenant_entry list;
  }

  val to_line : snapshot -> string

  val of_line : string -> (snapshot, string) result
  (** [Error] on malformed JSON, wrong/missing version, or invalid
      rates; never raises. *)
end

val backoff : base:float -> max_:float -> int -> float
(** [backoff ~base ~max_ attempt] — [base * 2^(attempt-1)] capped at
    [max_]; [attempt] is 1-based. *)

type item = {
  record : Ingest.record;
  trace : Qnet_obs.Trace_ctx.t option;
      (** the trace context minted at [POST /ingest] for the ~1% of
          requests head-sampled into a trace; [None] otherwise *)
  enqueued_at : float;
      (** enqueue time on the {!Qnet_obs.Clock.elapsed} scale, used by
          the worker to attribute per-tenant queue-wait; [nan] marks
          items that never crossed the queue (durable-log replay) and
          suppresses their wait accounting *)
}
(** What travels through a shard's ingest queue. *)

type t

val create :
  ?faults:Fault.service_fault list ->
  ?started_at:float ->
  dir:string ->
  id:int ->
  config ->
  (t, string) result
(** Creates the data directory, resumes from [shard.ckpt] /
    [events.log] when present, and starts the worker thread. [faults]
    are the service faults addressed to this shard; [started_at]
    anchors their [after] offsets (default: now). *)

val id : t -> int
val queue : t -> item Bounded_queue.t
val status : t -> status
val iterations : t -> int
val rounds : t -> int
val restarts : t -> int
val resumed : t -> bool
val queue_depth : t -> int
val last_error : t -> string option

val level : t -> level
(** Current degradation-ladder rung. *)

val degraded_reason : t -> string option
(** Why the shard sits below [Full_fits] ([None] when healthy). *)

val drain_rate : t -> float
(** EWMA of events/s actually absorbed from the ingest queue — the
    input to honest [Retry-After] arithmetic. 0 before any drain. *)

val refit_lag : t -> float
(** Seconds since the last fit scan while unfitted events are
    pending; 0 when nothing is waiting. *)

val log_corrupt_frames : t -> int
(** Durable-log frames quarantined during this process's replay. *)

val log_torn_tails : t -> int
(** Torn tails truncated during this process's replay. *)

val replayed_events : t -> int
(** Events successfully replayed from the durable log at start. *)

val tenants : t -> string list
(** Sorted; tenants with any buffered events or posterior. *)

val posterior : t -> tenant:string -> posterior option
val knows_tenant : t -> tenant:string -> bool

val stop : t -> unit
(** Graceful: close the queue, drain it, write a final checkpoint,
    join the worker. Idempotent. *)
