(** Tenant-to-shard routing.

    Placement must be a pure function of the tenant key: it has to
    agree across daemon restarts (a shard resumes from the checkpoint
    and event log written under the same placement) and across the
    HTTP threads and file tailers that route concurrently. A stable
    FNV-1a hash — not [Hashtbl.hash], whose value is version- and
    flag-dependent — modulo the shard count delivers that. All of a
    tenant's events land on one shard, so each shard owns complete
    per-tenant traces and fits need no cross-shard coordination. *)

val fnv1a : string -> int
(** 64-bit FNV-1a folded to a non-negative OCaml [int]. *)

val shard_of_tenant : shards:int -> string -> int
(** In [[0, shards)]. Raises [Invalid_argument] when [shards < 1]. *)
