(** CRC32-framed durable log records for the serving layer.

    Each persisted record is one line of text:

    {v CCCCCCCC LEN PAYLOAD v}

    with [CCCCCCCC] the zlib-polynomial CRC32 of [PAYLOAD] in eight
    lowercase hex digits and [LEN] the payload byte length. Framing
    makes replay after a crash or a dirty disk exact: corrupt frames
    are quarantined with a reason, a torn tail is truncated back to the
    last valid frame, and legacy unframed lines still pass through. *)

val crc32 : string -> int32
(** Table-driven CRC32 (zlib polynomial, [0xEDB88320]). The standard
    check value holds: [crc32 "123456789" = 0xCBF43926l]. *)

val frame : string -> string
(** [frame payload] wraps [payload] in a one-line frame (no trailing
    newline). *)

type error =
  | Not_a_frame  (** Not frame-shaped at all: a legacy unframed line. *)
  | Corrupt of string
      (** Frame-shaped but fails its length or CRC check; the string
          says which and how. *)

val parse : string -> (string, error) result
(** Validate one line and return its payload. *)

type stats = {
  frames : int;  (** valid frames delivered *)
  legacy : int;  (** unframed lines passed through as raw payloads *)
  corrupt : int;  (** frame-shaped lines quarantined *)
  torn : bool;  (** an unterminated invalid tail was found (and, by
                    default, truncated away) *)
}

val replay_file :
  ?truncate_torn:bool ->
  path:string ->
  on_payload:(string -> unit) ->
  on_corrupt:(line:string -> reason:string -> unit) ->
  unit ->
  (stats, string) result
(** Replay every line of [path] in order. Valid frames and legacy
    lines go to [on_payload] (frames unwrapped, legacy verbatim);
    corrupt frames go to [on_corrupt] and are counted. An unterminated
    final line that fails validation is a torn tail: when
    [truncate_torn] (default [true]) the file is truncated back to the
    last record boundary so the next append starts clean. An
    unterminated final line that still validates is delivered and its
    missing newline repaired. Returns [Error] only on I/O failure. *)
