module Jsonx = Qnet_obs.Jsonx
module Trace = Qnet_trace.Trace

type record = {
  tenant : string;
  task : int;
  state : int;
  queue : int;
  arrival : float;
  departure : float;
}

let valid_tenant s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

let check ~num_queues ~tenant ~task ~state ~queue ~arrival ~departure =
  if not (valid_tenant tenant) then
    Error (Printf.sprintf "bad tenant key %S" tenant)
  else if task < 0 then Error (Printf.sprintf "negative task id %d" task)
  else if state < 0 then Error (Printf.sprintf "negative state %d" state)
  else if queue < 0 || queue >= num_queues then
    Error (Printf.sprintf "queue %d out of range [0,%d)" queue num_queues)
  else if not (Float.is_finite arrival) || arrival < 0.0 then
    Error "arrival not a finite non-negative time"
  else if not (Float.is_finite departure) || departure < 0.0 then
    Error "departure not a finite non-negative time"
  else if departure < arrival then Error "departure earlier than arrival"
  else Ok { tenant; task; state; queue; arrival; departure }

let decode_json ~num_queues line =
  match Jsonx.parse_object line with
  | Error m -> Error (Printf.sprintf "bad json: %s" m)
  | Ok fields -> (
      let str k =
        match List.assoc_opt k fields with
        | Some (Jsonx.Str s) -> Some s
        | _ -> None
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (Jsonx.Num v) -> Some v
        | _ -> None
      in
      let int_ k =
        match num k with
        | Some v when Float.is_finite v && Float.equal (Float.rem v 1.0) 0.0 ->
            Some (int_of_float v)
        | _ -> None
      in
      match (str "tenant", int_ "task", num "arrival", num "departure") with
      | None, _, _, _ -> Error "missing/invalid \"tenant\""
      | _, None, _, _ -> Error "missing/invalid \"task\""
      | _, _, None, _ -> Error "missing/invalid \"arrival\""
      | _, _, _, None -> Error "missing/invalid \"departure\""
      | Some tenant, Some task, Some arrival, Some departure -> (
          let state = match int_ "state" with Some s -> s | None -> 0 in
          match int_ "queue" with
          | None -> Error "missing/invalid \"queue\""
          | Some queue ->
              check ~num_queues ~tenant ~task ~state ~queue ~arrival ~departure))

let decode_csv ~num_queues line =
  match String.split_on_char ',' line with
  | [ tenant; task; state; queue; arrival; departure ] -> (
      match
        ( int_of_string_opt (String.trim task),
          int_of_string_opt (String.trim state),
          int_of_string_opt (String.trim queue),
          float_of_string_opt (String.trim arrival),
          float_of_string_opt (String.trim departure) )
      with
      | Some task, Some state, Some queue, Some arrival, Some departure ->
          check ~num_queues ~tenant:(String.trim tenant) ~task ~state ~queue
            ~arrival ~departure
      | _ -> Error "unparseable csv fields")
  | _ -> Error "wrong csv field count (want tenant,task,state,queue,arrival,departure)"

let decode_line ~num_queues line =
  let line = String.trim line in
  if line = "" then Error "empty line"
  else if String.length line > 4096 then Error "line too long"
  else if line.[0] = '{' then decode_json ~num_queues line
  else decode_csv ~num_queues line

let to_json_line r =
  Jsonx.render
    (Jsonx.Obj
       [
         ("tenant", Jsonx.Str r.tenant);
         ("task", Jsonx.Num (float_of_int r.task));
         ("state", Jsonx.Num (float_of_int r.state));
         ("queue", Jsonx.Num (float_of_int r.queue));
         ("arrival", Jsonx.Num r.arrival);
         ("departure", Jsonx.Num r.departure);
       ])

let to_trace_event r =
  {
    Trace.task = r.task;
    state = r.state;
    queue = r.queue;
    arrival = r.arrival;
    departure = r.departure;
  }

module Dead_letter = struct
  type t = {
    mutex : Mutex.t;
    mutable oc : out_channel option;
    mutable quarantined : int;
  }

  let open_ ~path =
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | oc -> Ok { mutex = Mutex.create (); oc = Some oc; quarantined = 0 }
    | exception Sys_error m ->
        Error (Printf.sprintf "cannot open dead-letter file %s: %s" path m)

  let null () = { mutex = Mutex.create (); oc = None; quarantined = 0 }

  let write t ~line ~reason =
    Mutex.protect t.mutex (fun () ->
        t.quarantined <- t.quarantined + 1;
        match t.oc with
        | None -> ()
        | Some oc -> (
            let entry =
              Jsonx.render
                (Jsonx.Obj
                   [ ("reason", Jsonx.Str reason); ("line", Jsonx.Str line) ])
            in
            try
              output_string oc entry;  (* qnet-lint: racy-ok C004 dead-letter appends are deliberately serialized under the mutex: entries are rare and must not interleave *)
              output_char oc '\n';  (* qnet-lint: racy-ok C004 same critical section as the entry above *)
              flush oc  (* qnet-lint: racy-ok C004 flush inside the section keeps the quarantine file replayable after a crash *)
            with Sys_error _ ->
              (* full disk / revoked fd: degrade to counting only *)
              (try close_out_noerr oc with Sys_error _ -> ());
              t.oc <- None))

  let count t = Mutex.protect t.mutex (fun () -> t.quarantined)

  let close t =
    Mutex.protect t.mutex (fun () ->
        match t.oc with
        | None -> ()
        | Some oc ->
            close_out_noerr oc;
            t.oc <- None)
end
