module Metrics = Qnet_obs.Metrics

(* Log-decade bounds for the per-tenant SLO latency families: the
   phases span six orders of magnitude (a microsecond posterior cache
   hit to a multi-second refit), which is exactly what log-scale
   buckets are for. *)
let slo_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let families =
  [
    ( "qnet_serve_ingest_lines_total",
      "Stream lines examined by the ingest path",
      `Counter );
    ( "qnet_serve_ingest_accepted_total",
      "Events accepted into shard ingest queues",
      `Counter );
    ( "qnet_serve_ingest_quarantined_total",
      "Poison lines quarantined to the dead-letter file",
      `Counter );
    ( "qnet_serve_ingest_shed_total",
      "Events dropped because a shard ingest queue was full",
      `Counter );
    ( "qnet_serve_http_requests_total",
      "HTTP requests served by the daemon's own routes",
      `Counter );
    ( "qnet_serve_http_429_total",
      "Ingest batches rejected with 429 (admission control)",
      `Counter );
    ( "qnet_serve_fits_total",
      "Per-tenant inference fits that produced a posterior",
      `Counter );
    ( "qnet_serve_fit_failures_total",
      "Per-tenant inference fits that failed outright",
      `Counter );
    ( "qnet_serve_repair_dropped_total",
      "Events dropped by lenient trace repair at fit time",
      `Counter );
    ( "qnet_serve_shard_restarts_total",
      "Shard worker restarts after a crash",
      `Counter );
    ( "qnet_serve_checkpoints_total",
      "Shard checkpoints written",
      `Counter );
    ( "qnet_serve_checkpoint_failures_total",
      "Shard checkpoint writes that failed (daemon kept serving)",
      `Counter );
    ( "qnet_serve_stale_responses_total",
      "Posterior responses served from a stale snapshot",
      `Counter );
    ( "qnet_serve_resumes_total",
      "Shards resumed from a checkpoint at daemon start",
      `Counter );
    ( "qnet_serve_faults_injected_total",
      "Service-level faults fired (--fault)",
      `Counter );
    ( "qnet_serve_admission_offered_total",
      "Events offered to the Bernoulli admission sampler",
      `Counter );
    ( "qnet_serve_admission_sampled_out_total",
      "Events dropped by Bernoulli admission sampling",
      `Counter );
    ( "qnet_serve_admission_rate_decreases_total",
      "AIMD multiplicative decreases of a tenant admission rate",
      `Counter );
    ( "qnet_serve_admission_rate_increases_total",
      "AIMD additive increases of a tenant admission rate",
      `Counter );
    ( "qnet_serve_degrade_demotions_total",
      "Shard degradation-ladder demotions (full -> incremental -> pinned)",
      `Counter );
    ( "qnet_serve_degrade_promotions_total",
      "Shard degradation-ladder promotions after clean-round hysteresis",
      `Counter );
    ( "qnet_serve_degrade_incremental_fits_total",
      "Tenant refits served by the bounded-memory incremental path",
      `Counter );
    ( "qnet_serve_degrade_breaker_trips_total",
      "Restart circuit-breaker trips pinning a shard to stale serve",
      `Counter );
    ( "qnet_serve_log_corrupt_frames_total",
      "Durable-log frames quarantined at replay (CRC or length mismatch)",
      `Counter );
    ( "qnet_serve_log_torn_tails_total",
      "Durable-log torn tails truncated at replay",
      `Counter );
    ( "qnet_serve_log_rotations_total",
      "Durable event-log segment rotations",
      `Counter );
    ("qnet_serve_shards", "Configured shard count", `Gauge);
    ("qnet_serve_healthy_shards", "Shards currently healthy", `Gauge);
    ( "qnet_serve_admission_rate",
      "Current per-tenant Bernoulli admission rate (label-less series is \
       the minimum across tenants)",
      `Gauge );
    ( "qnet_serve_degrade_level",
      "Shard degradation-ladder level (0 full, 1 incremental, 2 pinned; \
       label-less series is the maximum across shards)",
      `Gauge );
    ( "qnet_serve_retry_after_seconds",
      "Last Retry-After computed from the measured shard drain rate",
      `Gauge );
    ( "qnet_serve_ingest_latency_seconds",
      "Wall time to decode, admit and commit one accepted POST /ingest batch",
      `Histogram slo_buckets );
    ( "qnet_serve_queue_wait_seconds",
      "Time an accepted event waited in a shard ingest queue before absorption",
      `Histogram slo_buckets );
    ( "qnet_serve_refit_duration_seconds",
      "Wall time of one per-tenant posterior refit (full or incremental)",
      `Histogram slo_buckets );
    ( "qnet_serve_posterior_serve_latency_seconds",
      "Wall time to serve one GET /tenants/:id/posterior.json request",
      `Histogram slo_buckets );
    (* Help kept in sync with the lazy counter in Qnet_obs.Span so
       whichever side registers first wins with the same text. *)
    ( "qnet_trace_dropped_total",
      "Spans overwritten in the ring buffer before being drained",
      `Counter );
  ]

let find name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) families with
  | Some (_, help, kind) -> (help, kind)
  | None ->
      invalid_arg (Printf.sprintf "Serve_metrics: %s is not a declared family" name)

let counter name =
  match find name with
  | help, `Counter -> lazy (Metrics.Counter.create ~help name)
  | _ -> invalid_arg (Printf.sprintf "Serve_metrics: %s is not a counter" name)

let gauge name =
  match find name with
  | help, `Gauge -> lazy (Metrics.Gauge.create ~help name)
  | _ -> invalid_arg (Printf.sprintf "Serve_metrics: %s is not a gauge" name)

let histogram name =
  match find name with
  | help, `Histogram buckets ->
      lazy (Metrics.Histogram.create ~help ~buckets name)
  | _ -> invalid_arg (Printf.sprintf "Serve_metrics: %s is not a histogram" name)

let force_register ?(registry = Metrics.default) () =
  List.iter
    (fun (name, help, kind) ->
      match kind with
      | `Counter ->
          ignore (Metrics.Counter.create ~registry ~help name : Metrics.Counter.t)
      | `Gauge ->
          ignore (Metrics.Gauge.create ~registry ~help name : Metrics.Gauge.t)
      | `Histogram buckets ->
          ignore
            (Metrics.Histogram.create ~registry ~help ~buckets name
              : Metrics.Histogram.t))
    families
