(** Per-tenant SLO accounting for the serving fleet.

    Every phase of a request's life through the daemon — ingest
    commit, shard queue wait, posterior refit, posterior serve — is
    recorded twice: into the label-less [qnet_serve_*_seconds] family
    (present-zeros, golden-file pinned) and into a per-tenant labeled
    series created on first touch. {!snapshot_json} turns the
    histograms into the [/fleet.json] payload: p50/p95/p99 per tenant
    per phase, plus a bottleneck ranking — the fraction of the
    tenant's pipeline time spent in queue-wait vs refit vs serve, the
    repo's wait-fraction analysis pointed at its own serving layer. *)

type phase =
  | Ingest  (** decode→commit of one accepted POST /ingest batch *)
  | Queue_wait  (** shard ingest queue residence of one event *)
  | Refit  (** one per-tenant posterior refit *)
  | Serve  (** one GET posterior response *)

val record : phase -> tenant:string -> float -> unit
(** Record one duration (seconds; negative clamps to 0) for the
    tenant into both the fleet-wide and per-tenant series.
    Thread-safe. *)

val tenants : unit -> string list
(** Tenants that have recorded at least one phase, sorted. *)

val snapshot_json : unit -> string
(** The [/fleet.json] document: per-tenant phase quantiles and
    bottleneck ranking, fleet-wide totals, and the current
    [spans_dropped] count. *)
