(** Ingestion hardening: turning untrusted stream lines into typed
    trace records, with a dead-letter file for the rest.

    The serving daemon receives trace events line by line — JSONL over
    HTTP POST, or tailed from a file a collector appends to. The
    philosophy is {!Qnet_trace.Trace.of_csv_lenient}'s, applied at the
    stream boundary: a poison line must never take down a shard, so
    decoding is total ([Error], never an exception), every reject is
    classified with a reason, and rejects are quarantined to an
    append-only dead-letter file where an operator can replay them
    after fixing the exporter.

    Two line shapes are accepted:
    - JSON: [{"tenant":"acme","task":3,"state":0,"queue":1,
      "arrival":0.5,"departure":0.9}] (["state"] optional, unknown
      keys ignored);
    - CSV: [tenant,task,state,queue,arrival,departure].

    Validation here is {e syntactic and local}: fields parse, times
    are finite and non-negative, the queue id is in range, the tenant
    key is sane. Cross-event repairs (duplicates, broken chains,
    reversed intervals) are left to the lenient trace rebuild at fit
    time, which sees the whole buffer and can do them properly. *)

type record = {
  tenant : string;
  task : int;
  state : int;
  queue : int;
  arrival : float;
  departure : float;
}

val decode_line : num_queues:int -> string -> (record, string) result
(** Total: the [Error] is a short reason ("bad json: ...",
    "queue 7 out of range", ...). *)

val to_json_line : record -> string
(** Canonical JSONL rendering; [decode_line] round-trips it. This is
    the normal form the shard event log stores. *)

val to_trace_event : record -> Qnet_trace.Trace.event

val valid_tenant : string -> bool
(** 1–64 chars drawn from [A-Za-z0-9._-] — keys appear in URLs,
    metric labels and file names, so the alphabet is restrictive by
    design. *)

(** Append-only quarantine for lines that failed {!decode_line}. One
    JSON object per line: [{"reason":...,"line":...}]. Writes never
    raise — a full disk degrades to counting only, because the
    dead-letter file is an aid, not a dependency the ingest path is
    allowed to die on. *)
module Dead_letter : sig
  type t

  val open_ : path:string -> (t, string) result
  (** Opens (creating or appending) the quarantine file. *)

  val null : unit -> t
  (** A sink that only counts — for tests and [--no-dead-letter]. *)

  val write : t -> line:string -> reason:string -> unit
  val count : t -> int
  (** Lines quarantined through this handle (not historical file lines). *)

  val close : t -> unit
end
