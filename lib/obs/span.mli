(** Nestable timed spans with a bounded ring buffer and a JSONL trace
    format — the self-applied analogue of the paper's trace analysis:
    instrument the inference runtime the way we'd want the measured
    services instrumented.

    Tracing is off by default: {!with_span} then costs one atomic load
    and a direct call of the thunk. When enabled, a finished span is
    pushed into a fixed-capacity ring buffer (oldest spans overwritten,
    overwrites counted in {!dropped}), so a run that never drains the
    tracer still has bounded memory. Parent links are tracked through a
    per-domain span stack: spans nested on the same domain get parent
    ids; a span opened on a freshly spawned domain is a root. *)

type span = {
  id : int;  (** unique within the process, dense from 1 *)
  parent : int option;
  name : string;
  start : float;  (** seconds since the process clock origin, monotonic *)
  duration : float;
  attrs : (string * string) list;
}

val enable : ?capacity:int -> unit -> unit
(** Start tracing into a ring of [capacity] spans (default 65536).
    Clears any previously buffered spans. *)

val disable : unit -> unit

val enabled : unit -> bool

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span covering it. The
    span is recorded (and the parent stack unwound) even when [f]
    raises. When tracing is disabled this is [f ()] plus one atomic
    load. *)

val emit :
  ?attrs:(string * string) list -> start:float -> duration:float -> string -> unit
(** [emit ~start ~duration name] records an externally measured span —
    a phase whose endpoints live on different threads (queue-wait,
    end-to-end request latency), where no single {!with_span} scope
    exists. Always a root span; [start] is seconds on the
    {!Clock.elapsed} scale; negative durations clamp to 0. No-op when
    tracing is disabled. *)

val drain : unit -> span list
(** Buffered spans in completion order; empties the buffer. *)

val dropped : unit -> int
(** Spans overwritten before being drained since {!enable}. Each
    overwrite also increments the [qnet_trace_dropped_total] metrics
    counter. *)

val dropped_by_domain : unit -> (int * int) list
(** Overwrites attributed to the domain that recorded the overwriting
    span, as [(domain_id, count)] sorted by domain id. Sums to
    {!dropped}. *)

val to_json : span -> string

val of_json : string -> (span, string) result
(** Parse one line as written by {!to_json}. *)

val write_jsonl : ?dropped:int -> out_channel -> span list -> unit
(** One span per line; when [dropped] is given a final
    [{"meta":"qnet_trace","dropped":N}] trailer records how many spans
    the ring overwrote before the drain, so readers can report the
    loss. *)

type read_result = {
  spans : span list;
  malformed : int;  (** unparseable non-blank lines skipped *)
  dropped : int;  (** summed from [meta] trailer lines (0 if absent) *)
}

val read_jsonl : string -> (read_result, string) result
(** Lenient read of a {!write_jsonl} file; [Error] only if the file
    itself cannot be read. *)

val to_folded : span list -> (string * int) list
(** Collapse a span log into flamegraph folded-stack form: one entry
    per distinct ancestry path ([root;child;leaf]), valued by the
    {e self} time (duration minus direct children) of all spans on
    that path, in integer microseconds. Entries with zero rounded self
    time are dropped; spans whose parent is missing from the log
    (overwritten in the ring) root their stack at themselves. Frame
    names are sanitized ([';'] and whitespace replaced) so the output
    feeds [flamegraph.pl] / speedscope unchanged. Deterministically
    sorted by stack. *)

val write_folded : out_channel -> span list -> unit
(** {!to_folded} rendered one [stack count] line at a time. *)

(** Aggregate a span log into a per-phase wall-time breakdown. *)
module Summary : sig
  type phase = {
    name : string;
    count : int;
    total : float;  (** summed span durations *)
    self : float;  (** total minus time spent in direct child spans *)
    max_duration : float;
  }

  type t = {
    wall : float;  (** earliest start to latest end over the whole log *)
    spans : int;
    phases : phase list;  (** sorted by self time, descending *)
    coverage : float;
        (** fraction of [wall] covered by root spans — how much of the
            run the instrumentation accounts for *)
  }

  val of_spans : span list -> t

  val pp : Format.formatter -> t -> unit
  (** Human-readable table: one row per phase with count, total, self
      and percent-of-wall columns. *)
end
