(** Statistical allocation and GC-pause profiler — the "where do the
    bytes and the pauses go" layer under the hot-path roadmap work.

    {b Backends.} [start] first tries the runtime's statistical
    allocation sampler ([Gc.Memprof], sampling each allocated word
    with probability [sampling_rate] and bucketing samples by
    backtrace under the current phase stack). OCaml 5.0/5.1 ships the
    Memprof interface but its [start] raises ([Failure "... not
    implemented in multicore"]); the profiler then degrades to the
    [Counters] backend: exact per-phase allocation deltas read from
    [Gc.counters] at {!with_phase} boundaries. Either way the site
    table folds into flamegraph folded-stack lines ({!to_folded}, the
    same [stack count] format as [Span.to_folded], valued in bytes),
    so [qnet_trace_tool flamegraph-diff] can diff before/after runs.

    {b Pauses.} OCaml exposes no direct pause timestamps, so pauses
    are observed two ways: a [Gc.create_alarm] hook records
    end-of-major-cycle intervals, and {!pause_probe} — called at a
    stride from instrumented hot loops — detects collection-coincident
    stalls: when the gap since the previous probe on this domain
    exceeds its EWMA baseline {e and} the domain's minor/major/
    compaction counters advanced, the excess is recorded as a pause of
    that kind. Histograms sit on the telemetry SLO ladder (decades,
    1µs–100s); {!record_pause} feeds them directly (tests, external
    attributors).

    {b Cost contract.} Off (the default) the profiler adds one atomic
    load per gated site — {!with_phase} is the thunk behind one load,
    the sweep hot path takes zero Memprof callbacks and zero probes —
    mirroring the [Metrics.enabled] fast-path pattern. No
    [qnet_prof_*] series exist in the default registry until a
    session runs. On (phase granularity, stride-sampled probes) the
    cost is two clock reads, two [Gc.counters] reads and one table
    update per phase, plus one [Gc.quick_stat] per probe stride. *)

type backend =
  | Counters
      (** exact phase-scoped [Gc.counters] deltas (the fallback, and
          the only backend on OCaml 5.0/5.1) *)
  | Memprof  (** statistical [Gc.Memprof] sampling with backtraces *)

type config = {
  sampling_rate : float;
      (** Memprof per-word sampling probability in (0, 1]; ignored by
          the [Counters] backend (which is exact) *)
  max_sites : int;  (** site-table rows kept in {!snapshot_json} *)
}

val default_config : config
(** 1% sampling, 512 sites. *)

val start : ?config:config -> unit -> backend
(** Start a profiling session (clearing any stopped session's data)
    and return the backend that actually engaged. If a session is
    already running this is a no-op returning its backend. Raises
    [Invalid_argument] on a sampling rate outside (0, 1] or a
    non-positive [max_sites]. *)

val stop : unit -> unit
(** Stop sampling (Memprof detached, alarm deleted). Idempotent. The
    session's data stays readable ({!snapshot_json}, {!to_folded})
    until the next [start]. *)

val running : unit -> bool
val backend : unit -> backend option
(** Backend of the current {e or most recent} session. *)

(** {1 Attribution} *)

val with_phase : string -> (unit -> 'a) -> 'a
(** [with_phase name f] runs [f]; when a session is running, the
    allocation and wall-time {e self} cost (minus nested phases) is
    attributed to the current domain's phase stack ending in [name].
    Phases nest per domain like spans; a profiler-off call is [f ()]
    behind one atomic load. Exception-safe. *)

val record_site : stack:string list -> bytes:float -> unit
(** Credit [bytes] to an explicit stack (root first) — deterministic
    test injection and external attributors. Frames are sanitized the
    way {!Qnet_obs.Span.to_folded} sanitizes span names. No-op when
    not running; non-finite or negative [bytes] ignored. *)

(** {1 Pauses} *)

type pause_kind = Minor | Major | Compaction

val record_pause : pause_kind -> float -> unit
(** Record one pause of [seconds] into the kind's histogram. No-op
    when not running; negative values clamp to 0. *)

val pause_probe : unit -> unit
(** Hot-loop stall probe (see module doc). Call at a stride — the
    Gibbs sweep calls it every timed stride event. No-op (one atomic
    load) when not running. *)

type pause_stats = { count : int; p50_s : float; p99_s : float }
(** Quantiles are {!Metrics.Histogram.quantile} estimates ([nan] when
    [count = 0]). *)

val pause_summary : unit -> (pause_kind * pause_stats) list
(** Always three entries, [Minor; Major; Compaction] order, from the
    current or most recent session (all-zero when none). *)

val major_cycle_summary : unit -> pause_stats
(** End-of-major-cycle interval stats from the alarm hook. *)

(** {1 Export} *)

val to_folded : unit -> (string * int) list
(** The site table as folded-stack lines valued in (integer) sampled
    bytes, deterministically sorted by stack; zero-byte sites are
    dropped. Empty when no session has run. *)

type phase_self = {
  path : string;  (** sanitized [;]-joined phase stack *)
  samples : int;
  bytes : float;
  self_seconds : float;
}

val sites : unit -> phase_self list
(** Site table sorted by bytes descending. *)

val phase_split : unit -> (string * float) list
(** Leaf-phase self-time split summed over domains, as
    [(leaf_phase, self_seconds)] sorted by self time descending. *)

val allocated_bytes : unit -> float
(** Process-wide bytes allocated since the session started
    ([Gc.quick_stat] delta, all domains' minor words this domain can
    see plus major), 0 when no session. *)

val snapshot_json : unit -> string
(** One self-contained JSON object: session state and backend, the
    site table (top [max_sites] by bytes), GC-counter deltas since
    [start], pause and major-cycle histograms (count/p50/p99), an
    rusage sample, and per-domain leaf-phase self-time rollups. Also
    refreshes the [qnet_prof_*] gauges in the default metrics
    registry. Served by [qnet_serve GET /profile.json] and written by
    [qnet_infer --profile-out]. *)

type stats = {
  is_running : bool;
  active_backend : backend option;
  site_rows : int;
  probes : int;  (** {!pause_probe} calls that sampled *)
  memprof_callbacks : int;
  pauses_recorded : int;
}

val stats : unit -> stats
(** Cheap counters for tests and the off-by-default overhead guard. *)

(** Process resource usage, read from [/proc] (Linux); [None] where
    unavailable. *)
module Rusage : sig
  type t = {
    utime_s : float;  (** user CPU seconds (USER_HZ assumed 100) *)
    stime_s : float;  (** system CPU seconds *)
    rss_bytes : float;  (** current resident set *)
    max_rss_bytes : float;  (** peak resident set (VmHWM) *)
  }

  val sample : unit -> t option
end
