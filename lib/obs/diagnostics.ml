module Statistics = Qnet_prob.Statistics

(* ------------------------------------------------------------------ *)
(* Bounded recent-sample window                                        *)
(* ------------------------------------------------------------------ *)

(* The window backs split-R̂ and quantiles: both want "the recent
   posterior", not the whole history (early StEM iterates are burn-in
   under parameter values long since abandoned). [n] counts accepted
   pushes forever; the buffer keeps the last [cap]. *)
type ring = { buf : float array; mutable n : int }

let ring_make cap = { buf = Array.make cap nan; n = 0 }

let ring_push r x =
  r.buf.(r.n mod Array.length r.buf) <- x;
  r.n <- r.n + 1

(* Chronological copy of the stored suffix. *)
let ring_window r =
  let cap = Array.length r.buf in
  let stored = Stdlib.min r.n cap in
  Array.init stored (fun i -> r.buf.((r.n - stored + i) mod cap))

(* ------------------------------------------------------------------ *)
(* Hub state                                                           *)
(* ------------------------------------------------------------------ *)

type chain_track = {
  chain : int;
  mutable iterations : int;
  mutable status : string;
  (* per-queue state, sized on the chain's first observation *)
  mutable service : ring array;
  mutable acfs : Statistics.Online.acf array;
  mutable waiting : Statistics.Welford.t array;
}

type gc_totals = {
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable major_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable compactions : int;
  mutable heap_words : int;
}

type t = {
  lock : Mutex.t;
  registry : Metrics.registry;
  window : int;
  publish_every : int;
  rhat_good : float;
  mutable chains : chain_track list; (* unordered; snapshot sorts *)
  mutable num_queues : int; (* -1 until first observation *)
  mutable arrival : int; (* -1 until told *)
  mutable ensemble_status : string;
  mutable t0 : float; (* first observation wall time; nan before *)
  mutable last_ts : float;
  mutable observations : int;
  mutable skipped : int;
  mutable sink : (string -> unit) option;
  mutable gc_base : Gc.stat option;
  gc : gc_totals;
}

let create ?(registry = Metrics.default) ?(window = 512) ?(publish_every = 10)
    ?(rhat_good = 1.05) () =
  if window < 8 then invalid_arg "Diagnostics.create: window must be >= 8";
  if publish_every < 1 then
    invalid_arg "Diagnostics.create: publish_every must be >= 1";
  {
    lock = Mutex.create ();
    registry;
    window;
    publish_every;
    rhat_good;
    chains = [];
    num_queues = -1;
    arrival = -1;
    ensemble_status = "running";
    t0 = nan;
    last_ts = nan;
    observations = 0;
    skipped = 0;
    sink = None;
    gc_base = None;
    gc =
      {
        minor_words = 0.0;
        promoted_words = 0.0;
        major_words = 0.0;
        minor_collections = 0;
        major_collections = 0;
        compactions = 0;
        heap_words = 0;
      };
  }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t (fun () ->
      t.chains <- [];
      t.num_queues <- -1;
      t.arrival <- -1;
      t.ensemble_status <- "running";
      t.t0 <- nan;
      t.last_ts <- nan;
      t.observations <- 0;
      t.skipped <- 0;
      t.gc_base <- None;
      let g = t.gc in
      g.minor_words <- 0.0;
      g.promoted_words <- 0.0;
      g.major_words <- 0.0;
      g.minor_collections <- 0;
      g.major_collections <- 0;
      g.compactions <- 0;
      g.heap_words <- 0)

let set_arrival_queue t q = locked t (fun () -> t.arrival <- q)
let set_ensemble_status t s = locked t (fun () -> t.ensemble_status <- s)
let set_sink t s = locked t (fun () -> t.sink <- s)

(* Requires the lock. Tracks can exist before their dimensions are
   known (a supervisor verdict can land before the first sample). *)
let track_locked t ~chain =
  match List.find_opt (fun c -> c.chain = chain) t.chains with
  | Some c -> c
  | None ->
      let c =
        {
          chain;
          iterations = 0;
          status = "healthy";
          service = [||];
          acfs = [||];
          waiting = [||];
        }
      in
      t.chains <- c :: t.chains;
      c

let set_chain_status t ~chain status =
  locked t (fun () -> (track_locked t ~chain).status <- status)

(* ------------------------------------------------------------------ *)
(* Snapshot types                                                      *)
(* ------------------------------------------------------------------ *)

type queue_summary = {
  queue : int;
  samples : int;
  mean_service : float;
  service_q05 : float;
  service_q50 : float;
  service_q95 : float;
  mean_waiting : float;
  wait_fraction : float;
  rhat : float;
  ess : float;
  ess_per_sec : float;
  acf1 : float;
}

type gc_summary = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
}

type kernel_summary = {
  piecewise_bounded : float;
  piecewise_tail : float;
  piecewise_point : float;
  slice_steps : float;
  slice_shrinks : float;
}

type chain_summary = { chain : int; iterations : int; status : string }

type snapshot = {
  ts : float;
  wall_seconds : float;
  iterations_total : int;
  skipped_samples : int;
  ensemble_status : string;
  chains : chain_summary array;
  queues : queue_summary array;
  arrival_queue : int;
  max_rhat : float;
  converged : bool;
  bottleneck : int;
  gc : gc_summary;
  kernels : kernel_summary;
}

(* ------------------------------------------------------------------ *)
(* Snapshot computation (lock held)                                    *)
(* ------------------------------------------------------------------ *)

let finite_mean xs =
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun x ->
      if Float.is_finite x then begin
        sum := !sum +. x;
        incr n
      end)
    xs;
  if !n = 0 then nan else !sum /. float_of_int !n

let queue_summary_locked (t : t) ~wall q =
  let tracks = List.filter (fun c -> Array.length c.service > q) t.chains in
  (* split-R̂ over per-chain recent windows with at least 4 samples *)
  let windows =
    List.filter_map
      (fun c ->
        let w = ring_window c.service.(q) in
        if Array.length w >= 4 then Some w else None)
      tracks
  in
  let rhat =
    match windows with
    | [] -> nan
    | ws -> Statistics.split_gelman_rubin (Array.of_list ws)
  in
  let pooled = Array.concat (List.map (fun c -> ring_window c.service.(q)) tracks) in
  let q05, q50, q95 =
    if Array.length pooled = 0 then (nan, nan, nan)
    else
      ( Statistics.quantile pooled 0.05,
        Statistics.quantile pooled 0.50,
        Statistics.quantile pooled 0.95 )
  in
  (* pooled mean/ESS from the full-history one-pass accumulators *)
  let samples = ref 0 and sum = ref 0.0 and ess = ref 0.0 in
  List.iter
    (fun c ->
      let a = c.acfs.(q) in
      let n = Statistics.Online.count a in
      if n > 0 then begin
        samples := !samples + n;
        sum := !sum +. (Statistics.Online.mean a *. float_of_int n);
        let e = Statistics.Online.ess a in
        if Float.is_finite e then ess := !ess +. e
      end)
    tracks;
  let mean_service = if !samples = 0 then nan else !sum /. float_of_int !samples in
  let acf1 =
    finite_mean
      (List.filter_map
         (fun c ->
           let a = c.acfs.(q) in
           if Statistics.Online.count a > 1 then
             Some (Statistics.Online.autocorrelation a 1)
           else None)
         tracks)
  in
  let mean_waiting =
    let ws =
      List.filter_map
        (fun c ->
          if Array.length c.waiting > q then
            let w = c.waiting.(q) in
            if Statistics.Welford.count w > 0 then
              Some (Statistics.Welford.mean w
                   *. float_of_int (Statistics.Welford.count w))
            else None
          else None)
        tracks
    in
    let n =
      List.fold_left
        (fun acc c ->
          if Array.length c.waiting > q then
            acc + Statistics.Welford.count c.waiting.(q)
          else acc)
        0 tracks
    in
    if n = 0 then nan else List.fold_left ( +. ) 0.0 ws /. float_of_int n
  in
  let wait_fraction =
    let denom = mean_waiting +. mean_service in
    if Float.is_finite denom && denom > 0.0 then mean_waiting /. denom else nan
  in
  {
    queue = q;
    samples = !samples;
    mean_service;
    service_q05 = q05;
    service_q50 = q50;
    service_q95 = q95;
    mean_waiting;
    wait_fraction;
    rhat;
    ess = !ess;
    ess_per_sec = (if wall > 0.0 then !ess /. wall else nan);
    acf1;
  }

let kernels_locked (t : t) =
  let counter ?labels name =
    Metrics.Counter.value (Metrics.Counter.create ~registry:t.registry ?labels name)
  in
  {
    piecewise_bounded =
      counter ~labels:[ ("kind", "bounded") ] "qnet_gibbs_kernel_total";
    piecewise_tail = counter ~labels:[ ("kind", "tail") ] "qnet_gibbs_kernel_total";
    piecewise_point =
      counter ~labels:[ ("kind", "point") ] "qnet_gibbs_kernel_total";
    slice_steps = counter "qnet_slice_steps_total";
    slice_shrinks = counter "qnet_slice_shrinks_total";
  }

let snapshot_locked (t : t) =
  let ts = Clock.now () in
  let wall =
    if Float.is_nan t.t0 then 0.0 else Float.max 0.0 (t.last_ts -. t.t0)
  in
  let nq = Stdlib.max 0 t.num_queues in
  let queues = Array.init nq (fun q -> queue_summary_locked t ~wall q) in
  let service_queues =
    Array.to_list queues |> List.filter (fun s -> s.queue <> t.arrival)
  in
  let max_rhat =
    List.fold_left
      (fun acc s ->
        if Float.is_finite s.rhat then
          if Float.is_nan acc then s.rhat else Float.max acc s.rhat
        else acc)
      nan service_queues
  in
  let bottleneck =
    List.fold_left
      (fun best s ->
        if not (Float.is_finite s.wait_fraction) then best
        else
          match best with
          | None -> Some s
          | Some b -> if s.wait_fraction > b.wait_fraction then Some s else best)
      None service_queues
    |> Option.fold ~none:(-1) ~some:(fun s -> s.queue)
  in
  let chains =
    List.map
      (fun (c : chain_track) ->
        { chain = c.chain; iterations = c.iterations; status = c.status })
      t.chains
    |> List.sort (fun a b -> compare a.chain b.chain)
    |> Array.of_list
  in
  {
    ts;
    wall_seconds = wall;
    iterations_total = t.observations;
    skipped_samples = t.skipped;
    ensemble_status = t.ensemble_status;
    chains;
    queues;
    arrival_queue = t.arrival;
    max_rhat;
    converged = Float.is_finite max_rhat && max_rhat < t.rhat_good;
    bottleneck;
    gc =
      {
        minor_words = t.gc.minor_words;
        promoted_words = t.gc.promoted_words;
        major_words = t.gc.major_words;
        minor_collections = t.gc.minor_collections;
        major_collections = t.gc.major_collections;
        compactions = t.gc.compactions;
        heap_words = t.gc.heap_words;
      };
    kernels = kernels_locked t;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json (s : snapshot) =
  let open Jsonx in
  let num x = Num x in
  let queue (q : queue_summary) =
    Obj
      [
        ("queue", Num (float_of_int q.queue));
        ("samples", Num (float_of_int q.samples));
        ("mean_service", num q.mean_service);
        ("service_q05", num q.service_q05);
        ("service_q50", num q.service_q50);
        ("service_q95", num q.service_q95);
        ("mean_waiting", num q.mean_waiting);
        ("wait_fraction", num q.wait_fraction);
        ("rhat", num q.rhat);
        ("ess", num q.ess);
        ("ess_per_sec", num q.ess_per_sec);
        ("acf1", num q.acf1);
      ]
  in
  let chain (c : chain_summary) =
    Obj
      [
        ("chain", Num (float_of_int c.chain));
        ("iterations", Num (float_of_int c.iterations));
        ("status", Str c.status);
      ]
  in
  render
    (Obj
       [
         ("ts", num s.ts);
         ("wall_seconds", num s.wall_seconds);
         ("iterations_total", Num (float_of_int s.iterations_total));
         ("skipped_samples", Num (float_of_int s.skipped_samples));
         ("ensemble_status", Str s.ensemble_status);
         ("chains", Arr (Array.to_list (Array.map chain s.chains)));
         ("queues", Arr (Array.to_list (Array.map queue s.queues)));
         ("arrival_queue", Num (float_of_int s.arrival_queue));
         ("max_rhat", num s.max_rhat);
         ("converged", Bool s.converged);
         ("bottleneck", Num (float_of_int s.bottleneck));
         ( "gc",
           Obj
             [
               ("minor_words", num s.gc.minor_words);
               ("promoted_words", num s.gc.promoted_words);
               ("major_words", num s.gc.major_words);
               ("minor_collections", Num (float_of_int s.gc.minor_collections));
               ("major_collections", Num (float_of_int s.gc.major_collections));
               ("compactions", Num (float_of_int s.gc.compactions));
               ("heap_words", Num (float_of_int s.gc.heap_words));
             ] );
         ( "kernels",
           Obj
             [
               ("piecewise_bounded", num s.kernels.piecewise_bounded);
               ("piecewise_tail", num s.kernels.piecewise_tail);
               ("piecewise_point", num s.kernels.piecewise_point);
               ("slice_steps", num s.kernels.slice_steps);
               ("slice_shrinks", num s.kernels.slice_shrinks);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Gauge publication                                                   *)
(* ------------------------------------------------------------------ *)

let gauge (t : t) ?labels ~help name =
  Metrics.Gauge.create ~registry:t.registry ~help ?labels name

let set_finite g x = if Float.is_finite x then Metrics.Gauge.set g x

let publish_locked (t : t) =
  let s = snapshot_locked t in
  Array.iter
    (fun (q : queue_summary) ->
      let labels = [ ("queue", string_of_int q.queue) ] in
      set_finite
        (gauge t ~labels ~help:"Split-R-hat of mean service, recent window"
           "qnet_diag_rhat")
        q.rhat;
      set_finite
        (gauge t ~labels ~help:"Pooled effective sample size of mean service"
           "qnet_diag_ess")
        q.ess;
      set_finite
        (gauge t ~labels ~help:"Pooled ESS per wall-clock second"
           "qnet_diag_ess_per_second")
        q.ess_per_sec;
      set_finite
        (gauge t ~labels ~help:"Mean lag-1 autocorrelation across chains"
           "qnet_diag_acf1")
        q.acf1;
      set_finite
        (gauge t ~labels ~help:"Posterior mean service time"
           "qnet_diag_mean_service")
        q.mean_service;
      set_finite
        (gauge t ~labels ~help:"Posterior median service time"
           "qnet_diag_service_q50")
        q.service_q50;
      set_finite
        (gauge t ~labels ~help:"Posterior mean waiting time"
           "qnet_diag_mean_waiting")
        q.mean_waiting;
      set_finite
        (gauge t ~labels ~help:"waiting / (waiting + service)"
           "qnet_diag_wait_fraction")
        q.wait_fraction)
    s.queues;
  set_finite
    (gauge t ~help:"Max split-R-hat over service queues" "qnet_diag_max_rhat")
    s.max_rhat;
  Metrics.Gauge.set
    (gauge t ~help:"1 when max R-hat is finite and below threshold"
       "qnet_diag_converged")
    (if s.converged then 1.0 else 0.0);
  Metrics.Gauge.set
    (gauge t ~help:"Chains feeding diagnostics" "qnet_diag_chains")
    (float_of_int (Array.length s.chains));
  Metrics.Gauge.set
    (gauge t ~help:"Chains whose latest verdict is healthy"
       "qnet_diag_healthy_chains")
    (float_of_int
       (Array.fold_left
          (fun acc (c : chain_summary) ->
            if String.equal c.status "healthy" then acc + 1 else acc)
          0 s.chains));
  (match t.sink with
  | None -> ()
  | Some emit -> ( try emit (to_json s) with _ -> () (* qnet-lint: allow E001 sink failures must not kill the sampler *)));
  s

let publish t = locked t (fun () -> ignore (publish_locked t))
let snapshot t = locked t (fun () -> snapshot_locked t)
let snapshot_json t = locked t (fun () -> to_json (snapshot_locked t))

(* ------------------------------------------------------------------ *)
(* Feeding                                                             *)
(* ------------------------------------------------------------------ *)

let ensure_dims_locked (t : t) (c : chain_track) n =
  if t.num_queues = -1 then t.num_queues <- n
  else if t.num_queues <> n then
    invalid_arg
      (Printf.sprintf
         "Diagnostics.observe_iteration: %d queues, hub tracks %d" n
         t.num_queues);
  if Array.length c.service <> n then begin
    c.service <- Array.init n (fun _ -> ring_make t.window);
    c.acfs <- Array.init n (fun _ -> Statistics.Online.acf ());
    c.waiting <- Array.init n (fun _ -> Statistics.Welford.create ())
  end

let observe_iteration (t : t) ~chain ?waiting mean_service =
  locked t (fun () ->
      let c = track_locked t ~chain in
      ensure_dims_locked t c (Array.length mean_service);
      let now = Clock.now () in
      if Float.is_nan t.t0 then t.t0 <- now;
      t.last_ts <- now;
      c.iterations <- c.iterations + 1;
      t.observations <- t.observations + 1;
      Array.iteri
        (fun q x ->
          if Float.is_finite x then begin
            ring_push c.service.(q) x;
            Statistics.Online.push c.acfs.(q) x
          end
          else t.skipped <- t.skipped + 1)
        mean_service;
      (match waiting with
      | None -> ()
      | Some w ->
          Array.iteri
            (fun q x ->
              if q < Array.length c.waiting then
                Statistics.Welford.add c.waiting.(q) x)
            w);
      if t.observations mod t.publish_every = 0 then ignore (publish_locked t))

let gc_tick (t : t) =
  locked t (fun () ->
      let st = Gc.quick_stat () in
      let g = t.gc in
      (match t.gc_base with
      | None -> ()
      | Some base ->
          (* Deltas clamp at zero: quick_stat's minor counters are
             domain-local, and ticks may come from different domains
             over a supervised run. *)
          let dpos x y = Float.max 0.0 (x -. y) in
          let ipos x y = Stdlib.max 0 (x - y) in
          g.minor_words <- g.minor_words +. dpos st.minor_words base.minor_words;
          g.promoted_words <-
            g.promoted_words +. dpos st.promoted_words base.promoted_words;
          g.major_words <- g.major_words +. dpos st.major_words base.major_words;
          g.minor_collections <-
            g.minor_collections + ipos st.minor_collections base.minor_collections;
          g.major_collections <-
            g.major_collections + ipos st.major_collections base.major_collections;
          g.compactions <- g.compactions + ipos st.compactions base.compactions);
      g.heap_words <- st.heap_words;
      t.gc_base <- Some st;
      Metrics.Gauge.set
        (gauge t ~help:"Major heap size in words, last observed"
           "qnet_gc_heap_words")
        (float_of_int g.heap_words);
      Metrics.Gauge.set
        (gauge t ~help:"Minor words allocated since diagnostics start"
           "qnet_gc_minor_words")
        g.minor_words;
      Metrics.Gauge.set
        (gauge t ~help:"Words promoted to the major heap since start"
           "qnet_gc_promoted_words")
        g.promoted_words;
      Metrics.Gauge.set
        (gauge t ~help:"Major words allocated since start" "qnet_gc_major_words")
        g.major_words;
      Metrics.Gauge.set
        (gauge t ~help:"Minor collections since start"
           "qnet_gc_minor_collections")
        (float_of_int g.minor_collections);
      Metrics.Gauge.set
        (gauge t ~help:"Major collections since start"
           "qnet_gc_major_collections")
        (float_of_int g.major_collections);
      Metrics.Gauge.set
        (gauge t ~help:"Heap compactions since start" "qnet_gc_compactions")
        (float_of_int g.compactions))

(* ------------------------------------------------------------------ *)
(* Force registration                                                  *)
(* ------------------------------------------------------------------ *)

let register_metrics ?(registry = Metrics.default) () =
  let g name help = ignore (Metrics.Gauge.create ~registry ~help name) in
  let c name help = ignore (Metrics.Counter.create ~registry ~help name) in
  g "qnet_diag_max_rhat" "Max split-R-hat over service queues";
  g "qnet_diag_converged" "1 when max R-hat is finite and below threshold";
  g "qnet_diag_chains" "Chains feeding diagnostics";
  g "qnet_diag_healthy_chains" "Chains whose latest verdict is healthy";
  g "qnet_gc_heap_words" "Major heap size in words, last observed";
  g "qnet_gc_minor_words" "Minor words allocated since diagnostics start";
  g "qnet_gc_promoted_words" "Words promoted to the major heap since start";
  g "qnet_gc_major_words" "Major words allocated since start";
  g "qnet_gc_minor_collections" "Minor collections since start";
  g "qnet_gc_major_collections" "Major collections since start";
  g "qnet_gc_compactions" "Heap compactions since start";
  c "qnet_slice_steps_total" "Slice-sampler transitions attempted";
  c "qnet_slice_shrinks_total" "Shrink rejections inside slice transitions"
