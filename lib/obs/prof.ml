type backend = Counters | Memprof
type pause_kind = Minor | Major | Compaction

type config = { sampling_rate : float; max_sites : int }

let default_config = { sampling_rate = 0.01; max_sites = 512 }

(* The SLO ladder shared with the serving layer's latency histograms:
   decades from 1µs to 100s. GC pauses live at the low end; the high
   decades exist so an outlier lands in a finite bucket instead of
   clamping the p99 to a lie. *)
let pause_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

(* One allocation-site (or phase-path) row. Written only under the
   session lock; scraped under the same lock. *)
type cell = {
  mutable bytes : float;
  mutable samples : int;
  mutable self_seconds : float;
}

type session = {
  id : int;
  config : config;
  active : backend;
  started_at : float;  (* Clock.now wall-clock seconds *)
  started_elapsed : float;  (* Clock.elapsed, for durations *)
  gc0 : Gc.stat;
  sites : (string, cell) Hashtbl.t;  (* stack path -> attribution *)
  by_domain : (int * string, cell) Hashtbl.t;  (* (domain, leaf phase) *)
  lock : Mutex.t;
  (* Session-local registry: pause/cycle histograms reset per session
     (so quantiles describe this session), mirrored into the default
     registry for scrapes. *)
  p_minor : Metrics.Histogram.t;
  p_major : Metrics.Histogram.t;
  p_compact : Metrics.Histogram.t;
  p_cycle : Metrics.Histogram.t;
  mutable alarm : Gc.alarm option;
  mutable stopped_after : float option;  (* duration at stop *)
  probes : int Atomic.t;
  callbacks : int Atomic.t;
  pauses : int Atomic.t;
  dropped : int Atomic.t;  (* Memprof samples dropped on lock contention *)
  last_cycle : float Atomic.t;  (* previous alarm timestamp, 0 = none *)
}

(* [current] is the running session (the hot-path gate: one atomic
   load); [latest] additionally survives [stop] so snapshots of a
   finished profile stay readable until the next [start]. *)
let current : session option Atomic.t = Atomic.make None
let latest : session option Atomic.t = Atomic.make None
let lifecycle = Mutex.create ()
let next_id = Atomic.make 0

let running () = Atomic.get current <> None

let backend () =
  match Atomic.get latest with None -> None | Some s -> Some s.active

(* ------------------------------------------------------------------ *)
(* Frame sanitization (same rules as Span.to_folded)                   *)
(* ------------------------------------------------------------------ *)

let folded_frame name =
  if name = "" then "(anonymous)"
  else
    String.map
      (fun c ->
        match c with
        | ';' -> ':'
        | ' ' | '\t' | '\n' | '\r' -> '_'
        | c when Char.code c < 0x20 -> '?'
        | c -> c)
      name

(* ------------------------------------------------------------------ *)
(* Site table                                                          *)
(* ------------------------------------------------------------------ *)

let add_site_locked s ~path ~bytes ~samples ~self_seconds =
  let cell =
    match Hashtbl.find_opt s.sites path with
    | Some c -> c
    | None ->
        let c = { bytes = 0.0; samples = 0; self_seconds = 0.0 } in
        Hashtbl.replace s.sites path c;
        c
  in
  cell.bytes <- cell.bytes +. bytes;
  cell.samples <- cell.samples + samples;
  cell.self_seconds <- cell.self_seconds +. self_seconds

let add_domain_locked s ~leaf ~bytes ~self_seconds =
  let key = ((Domain.self () :> int), leaf) in
  let cell =
    match Hashtbl.find_opt s.by_domain key with
    | Some c -> c
    | None ->
        let c = { bytes = 0.0; samples = 0; self_seconds = 0.0 } in
        Hashtbl.replace s.by_domain key c;
        c
  in
  cell.bytes <- cell.bytes +. bytes;
  cell.samples <- cell.samples + 1;
  cell.self_seconds <- cell.self_seconds +. self_seconds

let record_site ~stack ~bytes =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      if Float.is_finite bytes && bytes >= 0.0 && stack <> [] then begin
        let path = String.concat ";" (List.map folded_frame stack) in
        Mutex.lock s.lock;
        add_site_locked s ~path ~bytes ~samples:1 ~self_seconds:0.0;
        Mutex.unlock s.lock
      end

(* ------------------------------------------------------------------ *)
(* Phase attribution (Counters backend, but active under both)         *)
(* ------------------------------------------------------------------ *)

type frame = {
  name : string;
  t0 : float;
  a0 : float;  (* words allocated by this domain at entry *)
  mutable child_seconds : float;  (* qnet-lint: racy-ok C001 Domain.DLS frame: the stack ref is per-domain state, only its owner domain pushes/pops/updates *)
  mutable child_words : float;  (* qnet-lint: racy-ok C001 Domain.DLS frame (see child_seconds) *)
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let allocated_words () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

let bytes_per_word = float_of_int (Sys.word_size / 8)

let with_phase name f =
  match Atomic.get current with
  | None -> f ()
  | Some s ->
      let stack = Domain.DLS.get stack_key in
      let frame =
        {
          name;
          t0 = Clock.now_raw ();
          a0 = allocated_words ();
          child_seconds = 0.0;
          child_words = 0.0;
        }
      in
      stack := frame :: !stack;
      Fun.protect
        ~finally:(fun () ->
          let t1 = Clock.now_raw () in
          let a1 = allocated_words () in
          (match !stack with
          | fr :: rest when fr == frame -> stack := rest
          | other -> stack := List.filter (fun fr -> fr != frame) other);
          let total_s = Float.max 0.0 (t1 -. frame.t0) in
          let total_w = Float.max 0.0 (a1 -. frame.a0) in
          let self_s = Float.max 0.0 (total_s -. frame.child_seconds) in
          let self_w = Float.max 0.0 (total_w -. frame.child_words) in
          (match !stack with
          | parent :: _ ->
              parent.child_seconds <- parent.child_seconds +. total_s;
              parent.child_words <- parent.child_words +. total_w
          | [] -> ());
          let path =
            String.concat ";"
              (List.rev_map (fun fr -> folded_frame fr.name) (frame :: !stack))
          in
          let bytes = self_w *. bytes_per_word in
          Mutex.lock s.lock;
          add_site_locked s ~path ~bytes ~samples:1 ~self_seconds:self_s;
          add_domain_locked s ~leaf:(folded_frame name) ~bytes
            ~self_seconds:self_s;
          Mutex.unlock s.lock)
        f

let current_path () =
  match !(Domain.DLS.get stack_key) with
  | [] -> "(unattributed)"
  | frames -> String.concat ";" (List.rev_map (fun fr -> folded_frame fr.name) frames)

(* ------------------------------------------------------------------ *)
(* Pause histograms                                                    *)
(* ------------------------------------------------------------------ *)

(* Default-registry mirrors: scrape-visible, cumulative across
   sessions (histogram series must stay monotone for Prometheus).
   Lazily created, so a run that never profiles exports no
   qnet_prof_* series at all. *)
let m_minor =
  lazy
    (Metrics.Histogram.create ~buckets:pause_buckets
       ~help:"Probe-detected minor GC pauses while profiling"
       "qnet_prof_minor_pause_seconds")

let m_major =
  lazy
    (Metrics.Histogram.create ~buckets:pause_buckets
       ~help:"Probe-detected major GC pauses while profiling"
       "qnet_prof_major_pause_seconds")

let m_compact =
  lazy
    (Metrics.Histogram.create ~buckets:pause_buckets
       ~help:"Probe-detected compaction pauses while profiling"
       "qnet_prof_compaction_pause_seconds")

let m_cycle =
  lazy
    (Metrics.Histogram.create ~buckets:pause_buckets
       ~help:"Intervals between end-of-major-cycle GC alarms while profiling"
       "qnet_prof_major_cycle_seconds")

let session_histogram s = function
  | Minor -> s.p_minor
  | Major -> s.p_major
  | Compaction -> s.p_compact

let mirror_histogram = function
  | Minor -> Lazy.force m_minor
  | Major -> Lazy.force m_major
  | Compaction -> Lazy.force m_compact

let record_pause kind seconds =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      if Float.is_finite seconds then begin
        let v = Float.max 0.0 seconds in
        Metrics.Histogram.observe (session_histogram s kind) v;
        Metrics.Histogram.observe (mirror_histogram kind) v;
        Atomic.incr s.pauses
      end

(* Per-domain probe state: gap EWMA is the domain's "collection-free
   stride time" baseline; a probe gap that coincides with a GC counter
   advance charges the excess over that baseline to the collector.
   [tag] pins the state to one session — stale state from a previous
   session would otherwise charge the whole inter-session gap (store
   builds, unprofiled phases) to the first collection it sees. *)
type probe = {
  mutable tag : int;  (* qnet-lint: racy-ok C001 Domain.DLS probe state: one record per domain, only its owner domain reads/writes *)
  mutable last : float;  (* qnet-lint: racy-ok C001 Domain.DLS probe state (see tag) *)
  mutable ewma : float;  (* qnet-lint: racy-ok C001 Domain.DLS probe state (see tag) *)
  mutable minor_n : int;  (* qnet-lint: racy-ok C001 Domain.DLS probe state (see tag) *)
  mutable major_n : int;  (* qnet-lint: racy-ok C001 Domain.DLS probe state (see tag) *)
  mutable compact_n : int;  (* qnet-lint: racy-ok C001 Domain.DLS probe state (see tag) *)
}

let probe_key : probe Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        tag = -1;
        last = 0.0;
        ewma = 0.0;
        minor_n = 0;
        major_n = 0;
        compact_n = 0;
      })

let pause_probe () =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      let now = Clock.now_raw () in
      let st = Gc.quick_stat () in
      let p = Domain.DLS.get probe_key in
      if p.tag = s.id then begin
        Atomic.incr s.probes;
        let gap = now -. p.last in
        if gap >= 0.0 then begin
          let d_minor = st.Gc.minor_collections - p.minor_n in
          let d_major = st.Gc.major_collections - p.major_n in
          let d_compact = st.Gc.compactions - p.compact_n in
          if d_minor = 0 && d_major = 0 && d_compact = 0 then
            p.ewma <-
              (if p.ewma > 0.0 then (0.875 *. p.ewma) +. (0.125 *. gap) else gap)
          else if p.ewma > 0.0 then begin
            (* only charge pauses once a collection-free baseline
               exists — before that, "excess" would just be the gap *)
            let excess = gap -. p.ewma in
            if excess > 0.0 then
              record_pause
                (if d_compact > 0 then Compaction
                 else if d_major > 0 then Major
                 else Minor)
                excess
          end
        end
      end
      else begin
        p.tag <- s.id;
        p.ewma <- 0.0
      end;
      p.last <- now;
      p.minor_n <- st.Gc.minor_collections;
      p.major_n <- st.Gc.major_collections;
      p.compact_n <- st.Gc.compactions

(* The end-of-major-cycle alarm: lock-free on purpose — an alarm runs
   at an allocation safepoint and must not contend for the session
   lock the same domain might hold mid-phase-exit. *)
let is_current s =
  match Atomic.get current with Some s' -> s' == s | None -> false

let on_major_cycle s () =
  if is_current s then begin
    let now = Clock.now_raw () in
    let prev = Atomic.exchange s.last_cycle now in
    if prev > 0.0 && now > prev then begin
      Metrics.Histogram.observe s.p_cycle (now -. prev);
      Metrics.Histogram.observe (Lazy.force m_cycle) (now -. prev)
    end
  end

(* ------------------------------------------------------------------ *)
(* Memprof (engages on runtimes where Gc.Memprof.start works)          *)
(* ------------------------------------------------------------------ *)

let memprof_leaf callstack =
  let raw = Printexc.raw_backtrace_to_string callstack in
  let line =
    match String.index_opt raw '\n' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let line = if String.length line > 120 then String.sub line 0 120 else line in
  if line = "" then "(no-backtrace)" else folded_frame line

let memprof_sample s (al : Gc.Memprof.allocation) =
  Atomic.incr s.callbacks;
  let words =
    float_of_int al.Gc.Memprof.n_samples /. s.config.sampling_rate
  in
  let path = current_path () ^ ";" ^ memprof_leaf al.Gc.Memprof.callstack in
  (* try_lock, not lock: a sample can fire at any allocation point,
     including inside our own critical sections; dropping it beats
     deadlocking, and the drop is counted. *)
  if Mutex.try_lock s.lock then begin
    add_site_locked s ~path ~bytes:(words *. bytes_per_word)
      ~samples:al.Gc.Memprof.n_samples ~self_seconds:0.0;
    Mutex.unlock s.lock
  end
  else Atomic.incr s.dropped;
  None

let try_memprof s =
  match
    Gc.Memprof.start ~sampling_rate:s.config.sampling_rate ~callstack_size:16
      {
        Gc.Memprof.null_tracker with
        Gc.Memprof.alloc_minor = (fun al -> memprof_sample s al);
        alloc_major = (fun al -> memprof_sample s al);
      }
  with
  | () -> true
  | exception Failure _ -> false  (* "not implemented in multicore" on 5.0/5.1 *)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(config = default_config) () =
  if
    (not (Float.is_finite config.sampling_rate))
    || config.sampling_rate <= 0.0
    || config.sampling_rate > 1.0
  then invalid_arg "Prof.start: sampling_rate must be in (0, 1]";
  if config.max_sites < 1 then invalid_arg "Prof.start: max_sites must be >= 1";
  Mutex.lock lifecycle;
  Fun.protect ~finally:(fun () -> Mutex.unlock lifecycle) @@ fun () ->
  match Atomic.get current with
  | Some s -> s.active
  | None ->
      let reg = Metrics.create_registry () in
      let hist name =
        Metrics.Histogram.create ~registry:reg ~buckets:pause_buckets name
      in
      let s =
        {
          id = Atomic.fetch_and_add next_id 1;
          config;
          active = Counters;
          started_at = Clock.now ();
          started_elapsed = Clock.elapsed ();
          gc0 = Gc.quick_stat ();
          sites = Hashtbl.create 128;
          by_domain = Hashtbl.create 16;
          lock = Mutex.create ();
          p_minor = hist "qnet_prof_minor_pause_seconds";
          p_major = hist "qnet_prof_major_pause_seconds";
          p_compact = hist "qnet_prof_compaction_pause_seconds";
          p_cycle = hist "qnet_prof_major_cycle_seconds";
          alarm = None;
          stopped_after = None;
          probes = Atomic.make 0;
          callbacks = Atomic.make 0;
          pauses = Atomic.make 0;
          dropped = Atomic.make 0;
          last_cycle = Atomic.make 0.0;
        }
      in
      let s = if try_memprof s then { s with active = Memprof } else s in
      Atomic.set latest (Some s);
      Atomic.set current (Some s);  (* qnet-lint: racy-ok C005 start/stop serialize on the lifecycle mutex; [current] is Atomic only for the lock-free readers *)
      (* alarm after [current] is set: the callback gates on it *)
      s.alarm <- Some (Gc.create_alarm (on_major_cycle s));
      s.active

let stop () =
  Mutex.lock lifecycle;
  Fun.protect ~finally:(fun () -> Mutex.unlock lifecycle) @@ fun () ->
  match Atomic.get current with
  | None -> ()
  | Some s ->
      if s.active = Memprof then Gc.Memprof.stop ();
      (match s.alarm with
      | Some a ->
          Gc.delete_alarm a;
          s.alarm <- None
      | None -> ());
      s.stopped_after <- Some (Clock.elapsed () -. s.started_elapsed);
      Atomic.set current None  (* qnet-lint: racy-ok C005 start/stop serialize on the lifecycle mutex (see start) *)

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

type phase_self = {
  path : string;
  samples : int;
  bytes : float;
  self_seconds : float;
}

let sites () =
  match Atomic.get latest with
  | None -> []
  | Some s ->
      Mutex.lock s.lock;
      let rows =
        Hashtbl.fold
          (fun path (c : cell) acc ->
            {
              path;
              samples = c.samples;
              bytes = c.bytes;
              self_seconds = c.self_seconds;
            }
            :: acc)
          s.sites []
      in
      Mutex.unlock s.lock;
      List.sort
        (fun a b ->
          match compare b.bytes a.bytes with 0 -> compare a.path b.path | c -> c)
        rows

let to_folded () =
  match Atomic.get latest with
  | None -> []
  | Some s ->
      Mutex.lock s.lock;
      let rows =
        Hashtbl.fold
          (fun path (c : cell) acc ->
            let b = int_of_float (Float.round c.bytes) in
            if b > 0 then (path, b) :: acc else acc)
          s.sites []
      in
      Mutex.unlock s.lock;
      List.sort (fun (a, _) (b, _) -> compare a b) rows

let phase_split () =
  match Atomic.get latest with
  | None -> []
  | Some s ->
      Mutex.lock s.lock;
      let by_leaf = Hashtbl.create 16 in
      Hashtbl.iter
        (fun (_, leaf) (c : cell) ->
          Hashtbl.replace by_leaf leaf
            (c.self_seconds
            +. (try Hashtbl.find by_leaf leaf with Not_found -> 0.0)))
        s.by_domain;
      Mutex.unlock s.lock;
      Hashtbl.fold (fun leaf t acc -> (leaf, t) :: acc) by_leaf []
      |> List.sort (fun (na, a) (nb, b) ->
             match compare b a with 0 -> compare na nb | c -> c)

let allocated_bytes () =
  match Atomic.get latest with
  | None -> 0.0
  | Some s ->
      let st = Gc.quick_stat () in
      let words st =
        st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words
      in
      Float.max 0.0 ((words st -. words s.gc0) *. bytes_per_word)

type pause_stats = { count : int; p50_s : float; p99_s : float }

let hist_stats h =
  {
    count = Metrics.Histogram.count h;
    p50_s = Metrics.Histogram.quantile h 0.5;
    p99_s = Metrics.Histogram.quantile h 0.99;
  }

let empty_stats = { count = 0; p50_s = nan; p99_s = nan }

let pause_summary () =
  match Atomic.get latest with
  | None -> [ (Minor, empty_stats); (Major, empty_stats); (Compaction, empty_stats) ]
  | Some s ->
      [
        (Minor, hist_stats s.p_minor);
        (Major, hist_stats s.p_major);
        (Compaction, hist_stats s.p_compact);
      ]

let major_cycle_summary () =
  match Atomic.get latest with
  | None -> empty_stats
  | Some s -> hist_stats s.p_cycle

type stats = {
  is_running : bool;
  active_backend : backend option;
  site_rows : int;
  probes : int;
  memprof_callbacks : int;
  pauses_recorded : int;
}

let stats () =
  match Atomic.get latest with
  | None ->
      {
        is_running = false;
        active_backend = None;
        site_rows = 0;
        probes = 0;
        memprof_callbacks = 0;
        pauses_recorded = 0;
      }
  | Some s ->
      Mutex.lock s.lock;
      let rows = Hashtbl.length s.sites in
      Mutex.unlock s.lock;
      {
        is_running = is_current s;
        active_backend = Some s.active;
        site_rows = rows;
        probes = Atomic.get s.probes;
        memprof_callbacks = Atomic.get s.callbacks;
        pauses_recorded = Atomic.get s.pauses;
      }

(* ------------------------------------------------------------------ *)
(* Rusage                                                              *)
(* ------------------------------------------------------------------ *)

module Rusage = struct
  type t = {
    utime_s : float;
    stime_s : float;
    rss_bytes : float;
    max_rss_bytes : float;
  }

  let read_file path =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
        let buf = Buffer.create 1024 in
        (try
           while true do
             Buffer.add_channel buf ic 1
           done
         with End_of_file -> ());
        close_in_noerr ic;
        Some (Buffer.contents buf)

  (* /proc/self/stat: utime and stime are fields 14 and 15 (1-based),
     counted after the parenthesized comm field (which can itself
     contain spaces), in USER_HZ ticks — 100 on every Linux ABI. *)
  let parse_stat s =
    match String.rindex_opt s ')' with
    | None -> None
    | Some i ->
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let fields =
          List.filter (fun f -> f <> "") (String.split_on_char ' ' rest)
        in
        (* after ")": state is field 3 overall, so utime (14) and
           stime (15) are the 12th and 13th entries here (1-based) *)
        let nth n = List.nth_opt fields (n - 1) in
        (match (nth 12, nth 13) with
        | Some u, Some t -> (
            match (float_of_string_opt u, float_of_string_opt t) with
            | Some u, Some t -> Some (u /. 100.0, t /. 100.0)
            | _ -> None)
        | _ -> None)

  let parse_status_kb s key =
    let prefix = key ^ ":" in
    let lines = String.split_on_char '\n' s in
    List.find_map
      (fun line ->
        if String.length line > String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
        then
          let rest =
            String.trim
              (String.sub line (String.length prefix)
                 (String.length line - String.length prefix))
          in
          match String.split_on_char ' ' rest with
          | kb :: _ -> float_of_string_opt kb
          | [] -> None
        else None)
      lines

  let sample () =
    match (read_file "/proc/self/stat", read_file "/proc/self/status") with
    | Some stat, Some status -> (
        match
          ( parse_stat stat,
            parse_status_kb status "VmRSS",
            parse_status_kb status "VmHWM" )
        with
        | Some (utime_s, stime_s), Some rss_kb, Some hwm_kb ->
            Some
              {
                utime_s;
                stime_s;
                rss_bytes = rss_kb *. 1024.0;
                max_rss_bytes = hwm_kb *. 1024.0;
              }
        | _ -> None)
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Gauges + JSON snapshot                                              *)
(* ------------------------------------------------------------------ *)

let gauge name help =
  lazy (Metrics.Gauge.create ~help ("qnet_prof_" ^ name))

let g_alloc = gauge "allocated_bytes" "Bytes allocated since the profiling session started"
let g_minor_coll = gauge "minor_collections" "Minor collections since the profiling session started"
let g_major_coll = gauge "major_collections" "Major collections since the profiling session started"
let g_compactions = gauge "compactions" "Compactions since the profiling session started"
let g_heap = gauge "heap_bytes" "Major heap size at the last profile snapshot"
let g_rss = gauge "rss_bytes" "Resident set size at the last profile snapshot"
let g_max_rss = gauge "max_rss_bytes" "Peak resident set size at the last profile snapshot"
let g_utime = gauge "utime_seconds" "User CPU time at the last profile snapshot"
let g_stime = gauge "stime_seconds" "System CPU time at the last profile snapshot"

let publish_gauges s st rusage =
  let d_int f = float_of_int (f st - f s.gc0) in
  Metrics.Gauge.set (Lazy.force g_alloc) (allocated_bytes ());
  Metrics.Gauge.set (Lazy.force g_minor_coll)
    (d_int (fun g -> g.Gc.minor_collections));
  Metrics.Gauge.set (Lazy.force g_major_coll)
    (d_int (fun g -> g.Gc.major_collections));
  Metrics.Gauge.set (Lazy.force g_compactions) (d_int (fun g -> g.Gc.compactions));
  Metrics.Gauge.set (Lazy.force g_heap)
    (float_of_int st.Gc.heap_words *. bytes_per_word);
  match rusage with
  | None -> ()
  | Some r ->
      Metrics.Gauge.set (Lazy.force g_rss) r.Rusage.rss_bytes;
      Metrics.Gauge.set (Lazy.force g_max_rss) r.Rusage.max_rss_bytes;
      Metrics.Gauge.set (Lazy.force g_utime) r.Rusage.utime_s;
      Metrics.Gauge.set (Lazy.force g_stime) r.Rusage.stime_s

let num v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let pause_json name st =
  Printf.sprintf "\"%s\":{\"count\":%d,\"p50_s\":%s,\"p99_s\":%s}" name st.count
    (num st.p50_s) (num st.p99_s)

let snapshot_json () =
  match Atomic.get latest with
  | None -> "{\"running\":false,\"backend\":null}"
  | Some s ->
      let st = Gc.quick_stat () in
      let rusage = Rusage.sample () in
      publish_gauges s st rusage;
      let is_running = is_current s in
      let duration =
        match s.stopped_after with
        | Some d -> d
        | None -> Clock.elapsed () -. s.started_elapsed
      in
      let rows = sites () in
      let total_bytes = List.fold_left (fun a r -> a +. r.bytes) 0.0 rows in
      let top =
        List.filteri (fun i _ -> i < s.config.max_sites) rows
        |> List.map (fun r ->
               Printf.sprintf
                 "{\"stack\":\"%s\",\"bytes\":%s,\"samples\":%d,\"self_seconds\":%s}"
                 (Jsonx.escape r.path) (num r.bytes) r.samples
                 (num r.self_seconds))
        |> String.concat ","
      in
      let pauses =
        match pause_summary () with
        | [ (Minor, mi); (Major, ma); (Compaction, co) ] ->
            String.concat ","
              [
                pause_json "minor" mi;
                pause_json "major" ma;
                pause_json "compaction" co;
                pause_json "major_cycle" (major_cycle_summary ());
              ]
        | _ -> assert false
      in
      let domains =
        Mutex.lock s.lock;
        let per =
          Hashtbl.fold
            (fun (d, leaf) (c : cell) acc ->
              (d, leaf, c.samples, c.bytes, c.self_seconds) :: acc)
            s.by_domain []
        in
        Mutex.unlock s.lock;
        List.sort compare per
        |> List.map (fun (d, leaf, n, b, t) ->
               Printf.sprintf
                 "{\"domain\":%d,\"phase\":\"%s\",\"count\":%d,\"alloc_bytes\":%s,\"self_seconds\":%s}"
                 d (Jsonx.escape leaf) n (num b) (num t))
        |> String.concat ","
      in
      let gd f = f st - f s.gc0 in
      Printf.sprintf
        "{\"running\":%b,\"backend\":\"%s\",\"sampling_rate\":%s,\"started_at\":%s,\"duration_s\":%s,\
         \"alloc\":{\"total_bytes\":%s,\"sites\":%d,\"memprof_callbacks\":%d,\"dropped_samples\":%d,\"top\":[%s]},\
         \"gc\":{\"allocated_bytes\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"compactions\":%d,\"heap_bytes\":%s},\
         \"pauses\":{%s},\
         \"rusage\":%s,\
         \"probes\":%d,\"domains\":[%s]}"
        is_running
        (match s.active with Counters -> "counters" | Memprof -> "memprof")
        (num s.config.sampling_rate) (num s.started_at) (num duration)
        (num total_bytes) (List.length rows)
        (Atomic.get s.callbacks) (Atomic.get s.dropped) top
        (num (allocated_bytes ()))
        (gd (fun g -> g.Gc.minor_collections))
        (gd (fun g -> g.Gc.major_collections))
        (gd (fun g -> g.Gc.compactions))
        (num (float_of_int st.Gc.heap_words *. bytes_per_word))
        pauses
        (match rusage with
        | None -> "null"
        | Some r ->
            Printf.sprintf
              "{\"utime_s\":%s,\"stime_s\":%s,\"rss_bytes\":%s,\"max_rss_bytes\":%s}"
              (num r.Rusage.utime_s) (num r.Rusage.stime_s)
              (num r.Rusage.rss_bytes) (num r.Rusage.max_rss_bytes))
        (Atomic.get s.probes) domains
