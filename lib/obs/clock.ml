let high_water = Atomic.make neg_infinity

let rec clamp t =
  let seen = Atomic.get high_water in
  if t <= seen then seen
  else if Atomic.compare_and_set high_water seen t then t
  else clamp t

let now () = clamp (Unix.gettimeofday ())

let now_raw () = Unix.gettimeofday ()

let origin =
  let cell = Atomic.make nan in
  fun () ->
    let v = Atomic.get cell in
    if Float.is_nan v then begin
      let t = now () in
      (* first caller wins; losers adopt the winner's origin *)
      if Atomic.compare_and_set cell nan t then t else Atomic.get cell
    end
    else v

let elapsed () =
  let o = origin () in
  now () -. o
