type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;
  duration : float;
  attrs : (string * string) list;
}

type tracer = {
  ring : span option array;
  mutable write : int; (* next slot *)
  mutable stored : int; (* valid entries, <= capacity *)
  mutable dropped : int;
  drops_by_domain : (int, int) Hashtbl.t; (* domain id -> overwrites *)
  lock : Mutex.t;
}

(* Help string kept in sync with Serve_metrics.families so whichever
   side registers first wins with the same text. *)
let dropped_total =
  lazy
    (Metrics.Counter.create
       ~help:"Spans overwritten in the ring buffer before being drained"
       "qnet_trace_dropped_total")

let state : tracer option Atomic.t = Atomic.make None
let next_id = Atomic.make 0

(* Current span chain of the calling domain; a fresh domain starts
   with an empty stack, so its first span is a root. *)
let stack_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let enable ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Span.enable: capacity must be >= 1";
  Atomic.set state
    (Some
       {
         ring = Array.make capacity None;
         write = 0;
         stored = 0;
         dropped = 0;
         drops_by_domain = Hashtbl.create 8;
         lock = Mutex.create ();
       })

let disable () = Atomic.set state None

let enabled () = Atomic.get state <> None

let record tr s =
  Mutex.lock tr.lock;
  tr.ring.(tr.write) <- Some s;
  tr.write <- (tr.write + 1) mod Array.length tr.ring;
  let overwrote = tr.stored = Array.length tr.ring in
  if overwrote then begin
    tr.dropped <- tr.dropped + 1;
    let d = (Domain.self () :> int) in
    Hashtbl.replace tr.drops_by_domain d
      (1 + (try Hashtbl.find tr.drops_by_domain d with Not_found -> 0))
  end
  else tr.stored <- tr.stored + 1;
  Mutex.unlock tr.lock;
  (* metrics counter bumped outside the ring lock; its shard belongs
     to this domain, so no extra synchronization is needed *)
  if overwrote then Metrics.Counter.inc (Lazy.force dropped_total)

let with_span ?(attrs = []) name f =
  match Atomic.get state with
  | None -> f ()
  | Some tr ->
      let id = 1 + Atomic.fetch_and_add next_id 1 in
      let stack = Domain.DLS.get stack_key in
      let parent = match !stack with [] -> None | p :: _ -> Some p in
      stack := id :: !stack;
      let t0 = Clock.elapsed () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = Clock.elapsed () in
          (match !stack with
          | x :: rest when x = id -> stack := rest
          | other -> stack := List.filter (fun x -> x <> id) other);
          record tr { id; parent; name; start = t0; duration = t1 -. t0; attrs })
        f

let drain () =
  match Atomic.get state with
  | None -> []
  | Some tr ->
      Mutex.lock tr.lock;
      let cap = Array.length tr.ring in
      let first = (tr.write - tr.stored + cap) mod cap in
      let out = ref [] in
      for k = tr.stored - 1 downto 0 do
        match tr.ring.((first + k) mod cap) with
        | Some s -> out := s :: !out
        | None -> ()
      done;
      Array.fill tr.ring 0 cap None;
      tr.stored <- 0;
      tr.write <- 0;
      Mutex.unlock tr.lock;
      !out

let dropped () =
  match Atomic.get state with
  | None -> 0
  | Some tr -> Mutex.protect tr.lock (fun () -> tr.dropped)

let dropped_by_domain () =
  match Atomic.get state with
  | None -> []
  | Some tr ->
      Mutex.lock tr.lock;
      let out = Hashtbl.fold (fun d n acc -> (d, n) :: acc) tr.drops_by_domain [] in
      Mutex.unlock tr.lock;
      List.sort compare out

(* Record a phase measured externally (cross-thread hand-offs like
   queue-wait, where no single [with_span] scope exists). Always a
   root span; [start] is on the [Clock.elapsed] scale. *)
let emit ?(attrs = []) ~start ~duration name =
  match Atomic.get state with
  | None -> ()
  | Some tr ->
      let id = 1 + Atomic.fetch_and_add next_id 1 in
      record tr
        { id; parent = None; name; start; duration = Float.max 0.0 duration; attrs }

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let to_json s =
  let attrs =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Jsonx.escape k) (Jsonx.escape v))
         s.attrs)
  in
  Printf.sprintf
    "{\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"start\":%.9f,\"dur\":%.9f,\"attrs\":{%s}}"
    s.id
    (match s.parent with None -> "null" | Some p -> string_of_int p)
    (Jsonx.escape s.name) s.start s.duration attrs

let of_json line =
  match Jsonx.parse_object line with
  | Error m -> Error m
  | Ok fields -> (
      let find k = List.assoc_opt k fields in
      let num k =
        match find k with
        | Some (Jsonx.Num v) -> Ok v
        | _ -> Error (Printf.sprintf "missing or non-numeric field %S" k)
      in
      let str k =
        match find k with
        | Some (Jsonx.Str v) -> Ok v
        | _ -> Error (Printf.sprintf "missing or non-string field %S" k)
      in
      match (num "id", str "name", num "start", num "dur") with
      | Ok id, Ok name, Ok start, Ok dur ->
          let parent =
            match find "parent" with
            | Some (Jsonx.Num p) -> Some (int_of_float p)
            | _ -> None
          in
          let attrs =
            match find "attrs" with
            | Some (Jsonx.Obj kvs) ->
                List.filter_map
                  (fun (k, v) ->
                    match v with Jsonx.Str s -> Some (k, s) | _ -> None)
                  kvs
            | _ -> []
          in
          if Float.is_nan start || Float.is_nan dur || dur < 0.0 then
            Error "non-finite or negative span times"
          else
            Ok { id = int_of_float id; parent; name; start; duration = dur; attrs }
      | Error m, _, _, _ | _, Error m, _, _ | _, _, Error m, _ | _, _, _, Error m ->
          Error m)

let write_jsonl ?dropped oc spans =
  List.iter
    (fun s ->
      output_string oc (to_json s);
      output_char oc '\n')
    spans;
  match dropped with
  | None -> ()
  | Some n -> Printf.fprintf oc "{\"meta\":\"qnet_trace\",\"dropped\":%d}\n" n

type read_result = { spans : span list; malformed : int; dropped : int }

(* The writer's trailer line; recognized by prefix so a trace file can
   be concatenated from several runs (dropped counts accumulate). *)
let parse_meta line =
  if String.length line >= 8 && String.sub line 0 8 = "{\"meta\":" then
    match Jsonx.parse_object line with
    | Ok fields -> (
        match (List.assoc_opt "meta" fields, List.assoc_opt "dropped" fields) with
        | Some (Jsonx.Str "qnet_trace"), Some (Jsonx.Num n) ->
            Some (int_of_float n)
        | _ -> None)
    | Error _ -> None
  else None

let read_jsonl path =
  match
    try
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Ok (List.rev !lines)
    with Sys_error m -> Error m
  with
  | Error m -> Error m
  | Ok lines ->
      let spans, bad, dropped =
        List.fold_left
          (fun (spans, bad, dropped) line ->
            if String.trim line = "" then (spans, bad, dropped)
            else
              match parse_meta line with
              | Some n -> (spans, bad, dropped + n)
              | None -> (
                  match of_json line with
                  | Ok s -> (s :: spans, bad, dropped)
                  | Error _ -> (spans, bad + 1, dropped)))
          ([], 0, 0) lines
      in
      Ok { spans = List.rev spans; malformed = bad; dropped }

(* ------------------------------------------------------------------ *)
(* Folded stacks (flamegraph input)                                    *)
(* ------------------------------------------------------------------ *)

(* A frame name becomes one ';'-separated component of a folded stack
   line, so the separator characters themselves must not appear in it;
   the trailing " <count>" is space-separated, so spaces go too. *)
let folded_frame name =
  if name = "" then "(anonymous)"
  else
    String.map
      (fun c ->
        match c with
        | ';' -> ':'
        | ' ' | '\t' | '\n' | '\r' -> '_'
        | c when Char.code c < 0x20 -> '?'
        | c -> c)
      name

let to_folded spans =
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  (* time spent in direct children, per parent id — self time is what
     a flamegraph attributes to the leaf frame *)
  let child_time = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match s.parent with
      | None -> ()
      | Some p ->
          if Hashtbl.mem by_id p then
            Hashtbl.replace child_time p
              (s.duration
              +. (try Hashtbl.find child_time p with Not_found -> 0.0)))
    spans;
  (* ancestry path, root first; a missing parent (overwritten in the
     ring before being drained) truncates the stack there rather than
     dropping the span, and a depth cap guards against parent cycles
     in corrupted logs *)
  let rec path depth s =
    let frame = folded_frame s.name in
    if depth > 64 then [ frame ]
    else
      match s.parent with
      | None -> [ frame ]
      | Some p -> (
          match Hashtbl.find_opt by_id p with
          | None -> [ frame ]
          | Some ps -> path (depth + 1) ps @ [ frame ])
  in
  let acc = Hashtbl.create 256 in
  List.iter
    (fun s ->
      let self =
        Float.max 0.0
          (s.duration
          -. (try Hashtbl.find child_time s.id with Not_found -> 0.0))
      in
      let us = int_of_float (Float.round (1e6 *. self)) in
      if us > 0 then begin
        let stack = String.concat ";" (path 0 s) in
        Hashtbl.replace acc stack
          (us + (try Hashtbl.find acc stack with Not_found -> 0))
      end)
    spans;
  Hashtbl.fold (fun stack us out -> (stack, us) :: out) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let write_folded oc spans =
  List.iter
    (fun (stack, us) -> Printf.fprintf oc "%s %d\n" stack us)
    (to_folded spans)

(* ------------------------------------------------------------------ *)
(* Summarization                                                       *)
(* ------------------------------------------------------------------ *)

module Summary = struct
  type phase = {
    name : string;
    count : int;
    total : float;
    self : float;
    max_duration : float;
  }

  type t = { wall : float; spans : int; phases : phase list; coverage : float }

  let of_spans spans =
    match spans with
    | [] -> { wall = 0.0; spans = 0; phases = []; coverage = 0.0 }
    | _ ->
        let t_min =
          List.fold_left (fun acc s -> Float.min acc s.start) infinity spans
        in
        let t_max =
          List.fold_left
            (fun acc s -> Float.max acc (s.start +. s.duration))
            neg_infinity spans
        in
        let wall = Float.max 0.0 (t_max -. t_min) in
        (* time spent in direct children, per parent id *)
        let child_time = Hashtbl.create 256 in
        List.iter
          (fun s ->
            match s.parent with
            | None -> ()
            | Some p ->
                Hashtbl.replace child_time p
                  (s.duration
                  +. (try Hashtbl.find child_time p with Not_found -> 0.0)))
          spans;
        let by_name = Hashtbl.create 64 in
        let root_total = ref 0.0 in
        List.iter
          (fun s ->
            if s.parent = None then root_total := !root_total +. s.duration;
            let self =
              Float.max 0.0
                (s.duration
                -. (try Hashtbl.find child_time s.id with Not_found -> 0.0))
            in
            let count, total, self0, mx =
              try Hashtbl.find by_name s.name with Not_found -> (0, 0.0, 0.0, 0.0)
            in
            Hashtbl.replace by_name s.name
              ( count + 1,
                total +. s.duration,
                self0 +. self,
                Float.max mx s.duration ))
          spans;
        let phases =
          Hashtbl.fold
            (fun name (count, total, self, max_duration) acc ->
              { name; count; total; self; max_duration } :: acc)
            by_name []
          |> List.sort (fun a b -> compare b.self a.self)
        in
        {
          wall;
          spans = List.length spans;
          phases;
          coverage = (if wall > 0.0 then Float.min 1.0 (!root_total /. wall) else 1.0);
        }

  let pp ppf t =
    Format.fprintf ppf "wall %.3fs over %d spans; root coverage %.1f%%@\n" t.wall
      t.spans (100.0 *. t.coverage);
    Format.fprintf ppf "%-28s %8s %12s %12s %12s %7s@\n" "phase" "count" "total-s"
      "self-s" "max-s" "%wall";
    List.iter
      (fun p ->
        Format.fprintf ppf "%-28s %8d %12.4f %12.4f %12.4f %6.1f%%@\n" p.name
          p.count p.total p.self p.max_duration
          (if t.wall > 0.0 then 100.0 *. p.self /. t.wall else 0.0))
      t.phases
end
