(** Just enough JSON for the telemetry formats this repository emits
    itself: flat objects whose values are strings, numbers, booleans,
    null, shallowly nested objects (span attrs) and small arrays. Not
    a general JSON library — the writers in this repo are the only
    intended producers — but the parser is total: malformed input
    yields [Error], never an exception. *)

type value =
  | Str of string
  | Num of float
  | Bool of bool
  | Null
  | Obj of (string * value) list
  | Arr of value list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes): quotes,
    backslashes and control characters escaped. *)

val render : value -> string
(** Serialize compactly. Non-finite numbers render as [null] (JSON has
    no NaN/inf); integral values print without a fractional part;
    other floats use the shortest round-tripping representation. *)

val parse_object : string -> ((string * value) list, string) result
(** Parse one JSON object from exactly one line of text. Nesting depth
    is capped (objects two deep, arrays three) because our own writers
    never exceed it; anything else is an [Error] with a byte offset. *)
