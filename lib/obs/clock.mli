(** Monotonic-enough timestamps for telemetry.

    The stdlib exposes no monotonic clock and we cannot add
    dependencies, so [now] is [Unix.gettimeofday] clamped through a
    global atomic high-water mark: successive calls never go
    backwards, even across domains, even if NTP steps the wall clock
    under us. Span durations and heartbeat ages therefore stay
    non-negative; absolute values remain wall-clock seconds. *)

val now : unit -> float
(** Current time in seconds, non-decreasing across all domains. *)

val now_raw : unit -> float
(** Raw [Unix.gettimeofday], {e without} the monotonic clamp — no
    shared-atomic traffic, so safe to call from a per-event hot loop
    on every domain at once. Only for measuring short durations as a
    difference of two reads; callers must clamp the delta to [>= 0]
    (a clock step can make it negative). Use {!now} for anything that
    becomes an absolute timestamp. *)

val elapsed : unit -> float
(** Seconds since this process first touched the clock — a compact
    origin for span logs ([Span] records [start] on this scale). *)
