(** Monotonic-enough timestamps for telemetry.

    The stdlib exposes no monotonic clock and we cannot add
    dependencies, so [now] is [Unix.gettimeofday] clamped through a
    global atomic high-water mark: successive calls never go
    backwards, even across domains, even if NTP steps the wall clock
    under us. Span durations and heartbeat ages therefore stay
    non-negative; absolute values remain wall-clock seconds. *)

val now : unit -> float
(** Current time in seconds, non-decreasing across all domains. *)

val elapsed : unit -> float
(** Seconds since this process first touched the clock — a compact
    origin for span logs ([Span] records [start] on this scale). *)
