(* Just enough JSON for the telemetry formats we emit ourselves: flat
   objects whose values are strings, numbers, null, or one level of
   string->string nesting (span attrs). Not a general JSON library —
   the writers in this library are the only intended producers, but
   the parser is total: malformed input yields [Error], never an
   exception. *)

type value =
  | Str of string
  | Num of float
  | Bool of bool
  | Null
  | Obj of (string * value) list
  | Arr of value list

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_num v =
  if not (Float.is_finite v) then "null" (* JSON has no NaN/inf *)
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    (* shortest representation that round-trips *)
    let shortest = Printf.sprintf "%.12g" v in
    if Float.equal (float_of_string shortest) v then shortest
    else Printf.sprintf "%.17g" v

let render v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Num v -> Buffer.add_string buf (render_num v)
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Null -> Buffer.add_string buf "null"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
  in
  go v;
  Buffer.contents buf

exception Bad of string

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do advance () done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = line.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if !pos >= n then fail "dangling escape";
           let e = line.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub line !pos 4 in
               pos := !pos + 4;
               let code =
                 (* int_of_string rejects bad hex with Failure; anything
                    else (OOM-class) must propagate *)
                 try int_of_string ("0x" ^ hex)
                 with Failure _ -> fail "bad \\u escape"
               in
               (* we only ever emit control characters this way *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
           | _ -> fail "unknown escape");
          go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do advance () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        if depth > 2 then fail "object nested too deep";
        Obj (parse_obj depth)
    | Some '[' ->
        if depth > 3 then fail "array nested too deep";
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
        end
    | Some 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4; Null
        end
        else fail "expected null"
    | Some 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4; Bool true
        end
        else fail "expected true"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5; Bool false
        end
        else fail "expected false"
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  and parse_obj depth =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin advance (); [] end
    else begin
      let rec fields acc =
        let k = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value (depth + 1) in
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); fields ((k, v) :: acc)
        | Some '}' -> advance (); List.rev ((k, v) :: acc)
        | _ -> fail "expected , or }"
      in
      fields []
    end
  in
  try
    let fields = parse_obj 0 in
    skip_ws ();
    if !pos <> n then Error "trailing garbage after object"
    else Ok fields
  with Bad m -> Error m
