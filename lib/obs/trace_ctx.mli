(** Trace contexts with deterministic head-based sampling.

    A sampler mints one admit/skip decision per request at the edge
    (the serve daemon's [POST /ingest]); an admitted request carries a
    64-bit-style trace id (masked to 62 bits so it is a nonnegative
    OCaml [int]) through the queue, shard refit and posterior serve,
    where each phase stamps the id onto its {!Span.emit} attrs.

    {b Determinism.} The decision and the id are pure functions of
    [(seed, mint_index)] — a splitmix64 finalizer, not a stateful RNG —
    so two runs over the same stream with the same seed sample the
    same request set with the same ids. *)

type t = {
  id : int;  (** 62-bit positive trace id, stable for the request *)
  born : float;  (** mint time, seconds on the {!Clock.elapsed} scale *)
}

type sampler

val make_sampler : ?rate:float -> ?seed:int -> unit -> sampler
(** [rate] is the head-sampling probability in [0,1] (default 0.01 —
    1% of requests traced); [seed] defaults to 1. Raises
    [Invalid_argument] on a rate outside [0,1]. *)

val sample : ?born:float -> sampler -> t option
(** Mint the next decision. [Some ctx] with probability [rate],
    decided deterministically from the seed and the running mint
    index. [born] overrides the context's birth timestamp (defaults to
    [Clock.elapsed ()] at mint time). Thread-safe: the mint index is
    one atomic fetch-and-add. *)

val minted : sampler -> int
(** Decisions minted so far (sampled or not). *)

val id_hex : t -> string
(** The id as 16 lowercase hex digits — the form spans carry in their
    ["trace"] attribute. *)
