(* Head-based sampled trace contexts. The admit/skip decision is a
   pure function of (seed, mint index): a splitmix64 finalizer turns
   the pair into 64 well-mixed bits, the top 53 become a uniform in
   [0,1) compared against the rate, and the low 62 become the trace
   id. Replaying the same ingest stream with the same seed therefore
   samples the same requests and mints the same ids — which is what
   makes trace-based debugging reproducible. *)

type t = { id : int; born : float }

type sampler = { rate : float; seed : int; counter : int Atomic.t }

let make_sampler ?(rate = 0.01) ?(seed = 1) () =
  if Float.is_nan rate || rate < 0.0 || rate > 1.0 then
    invalid_arg "Trace_ctx.make_sampler: rate outside [0,1]";
  { rate; seed; counter = Atomic.make 0 }

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash ~seed n =
  mix64
    (Int64.add (Int64.of_int seed)
       (Int64.mul (Int64.of_int (n + 1)) 0x9e3779b97f4a7c15L))

let sample ?born s =
  let n = Atomic.fetch_and_add s.counter 1 in
  let z = hash ~seed:s.seed n in
  let u = Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53 in
  if u < s.rate then begin
    let id = Int64.to_int (Int64.logand z 0x3FFF_FFFF_FFFF_FFFFL) in
    let id = if id = 0 then 1 else id in
    Some { id; born = (match born with Some b -> b | None -> Clock.elapsed ()) }
  end
  else None

let minted s = Atomic.get s.counter
let id_hex t = Printf.sprintf "%016x" t.id
