(* See metrics.mli for the design contract. The sharding invariant
   everything rests on: a shard cell is written only by the domain
   that created it, so owner updates need no read-modify-write
   atomicity at all — they are plain stores into domain-private
   cells. Scrapers on other domains read those cells racily: the
   OCaml memory model guarantees word-sized mutable fields never
   tear, so a racy read returns *some* recently written value —
   a bounded-staleness snapshot, and the exact total once a
   happens-before edge (Domain.join, mutex hand-off) separates the
   last write from the read. Dropping the atomics from the per-event
   path is what keeps `metrics_enabled` overhead inside the <=5%
   budget (BENCH_obs.json). *)

let master_enabled = Atomic.make false
let set_enabled b = Atomic.set master_enabled b
let enabled () = Atomic.get master_enabled

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let valid_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let check_name what s =
  if not (valid_name s) then
    invalid_arg (Printf.sprintf "Metrics: invalid %s name %S" what s)

let check_labels labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels

(* ------------------------------------------------------------------ *)
(* Per-domain shards                                                   *)
(* ------------------------------------------------------------------ *)

(* A domain's shard is found through a DLS slot; all shards are also
   kept on a lock-free shared list so a scraper can fold over every
   domain's contribution. *)
type 'a sharded = { all : 'a list Atomic.t; slot : 'a option ref Domain.DLS.key }

let sharded () =
  { all = Atomic.make []; slot = Domain.DLS.new_key (fun () -> ref None) }

let my_shard s ~fresh =
  let r = Domain.DLS.get s.slot in
  match !r with
  | Some shard -> shard
  | None ->
      let shard = fresh () in
      r := Some shard;
      let rec push () =
        let old = Atomic.get s.all in
        if not (Atomic.compare_and_set s.all old (shard :: old)) then push ()
      in
      push ();
      shard

let fold_shards s f init = List.fold_left f init (Atomic.get s.all)

(* ------------------------------------------------------------------ *)
(* Metric bodies                                                       *)
(* ------------------------------------------------------------------ *)

(* A single-field all-float record is flat (unboxed storage), so the
   owner's [c.v <- c.v +. x] is one load, one add, one plain store —
   no allocation. A [mutable float] inside a mixed record would box
   on every store; never inline these into a larger record. *)
type fcell = { mutable v : float }  (* qnet-lint: racy-ok C001 owner-written telemetry cell; scrape reads tolerate a stale value by design *)

type counter_body = fcell sharded

type hist_shard = {
  bucket_counts : int array; (* one per bound, plus overflow; owner-written *)
  h_sum : fcell;
  mutable h_count : int;  (* qnet-lint: racy-ok C001 owner-written shard counter; scrape merge tolerates bounded staleness *)
  mutable h_nan : int;  (* qnet-lint: racy-ok C001 owner-written shard counter; scrape merge tolerates bounded staleness *)
}

type hist_body = { bounds : float array; shards : hist_shard sharded }

type body =
  | Counter_b of counter_body
  | Gauge_b of float Atomic.t
  | Histogram_b of hist_body

type metric = {
  name : string;
  help : string;
  labels : (string * string) list; (* sorted by label name *)
  body : body;
}

type registry = {
  lock : Mutex.t;
  by_key : (string, metric) Hashtbl.t; (* key = kind ^ name ^ rendered labels *)
  families : (string, string * string) Hashtbl.t; (* name -> (kind, help) *)
  mutable ordered : metric list; (* registration order, newest first *)
}

let create_registry () =
  { lock = Mutex.create (); by_key = Hashtbl.create 64; families = Hashtbl.create 64;
    ordered = [] }

let default = create_registry ()

let kind_of_body = function
  | Counter_b _ -> "counter"
  | Gauge_b _ -> "gauge"
  | Histogram_b _ -> "histogram"

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let key ~kind ~name ~labels = kind ^ "\x00" ^ name ^ "\x00" ^ render_labels labels

(* Idempotent registration: same (kind, name, labels) returns the
   existing metric; same name under a different kind is an error
   (Prometheus families are single-kind). *)
let register reg ~kind ~name ~help ~labels make =
  check_name "metric" name;
  check_labels labels;
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let k = key ~kind ~name ~labels in
  Mutex.lock reg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.lock) (fun () ->
      match Hashtbl.find_opt reg.by_key k with
      | Some m -> m
      | None ->
          (match Hashtbl.find_opt reg.families name with
          | Some (k0, _) when k0 <> kind ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s, not a %s"
                   name k0 kind)
          | Some _ -> ()
          | None -> Hashtbl.add reg.families name (kind, help));
          let m = { name; help; labels; body = make () } in
          Hashtbl.add reg.by_key k m;
          reg.ordered <- m :: reg.ordered;
          m)

(* ------------------------------------------------------------------ *)
(* Counter                                                             *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = counter_body

  let create ?(registry = default) ?(help = "") ?(labels = []) name =
    let m =
      register registry ~kind:"counter" ~name ~help ~labels (fun () ->
          Counter_b (sharded ()))
    in
    match m.body with Counter_b b -> b | _ -> assert false

  let inc ?(by = 1.0) t =
    if by < 0.0 || Float.is_nan by then
      invalid_arg "Metrics.Counter.inc: negative or NaN increment";
    let cell = my_shard t ~fresh:(fun () -> { v = 0.0 }) in
    (* owner-only writer; plain store, see the header comment *)
    cell.v <- cell.v +. by

  let value t = fold_shards t (fun acc cell -> acc +. cell.v) 0.0
end

(* ------------------------------------------------------------------ *)
(* Gauge                                                               *)
(* ------------------------------------------------------------------ *)

module Gauge = struct
  type t = float Atomic.t

  let create ?(registry = default) ?(help = "") ?(labels = []) name =
    let m =
      register registry ~kind:"gauge" ~name ~help ~labels (fun () ->
          Gauge_b (Atomic.make 0.0))
    in
    match m.body with Gauge_b b -> b | _ -> assert false

  let set t v = Atomic.set t v

  let rec add t v =
    let old = Atomic.get t in
    if not (Atomic.compare_and_set t old (old +. v)) then add t v

  let value t = Atomic.get t
end

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  type t = hist_body

  let default_buckets =
    [| 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

  let check_buckets b =
    if Array.length b = 0 then
      invalid_arg "Metrics.Histogram.create: empty bucket list";
    Array.iteri
      (fun i u ->
        if not (Float.is_finite u) then
          invalid_arg "Metrics.Histogram.create: non-finite bucket bound";
        if i > 0 && b.(i - 1) >= u then
          invalid_arg "Metrics.Histogram.create: bucket bounds must be strictly increasing")
      b

  let create ?(registry = default) ?(help = "") ?(labels = [])
      ?(buckets = default_buckets) name =
    check_buckets buckets;
    let bounds = Array.copy buckets in
    let m =
      register registry ~kind:"histogram" ~name ~help ~labels (fun () ->
          Histogram_b { bounds; shards = sharded () })
    in
    match m.body with Histogram_b b -> b | _ -> assert false

  let fresh_shard bounds () =
    {
      bucket_counts = Array.make (Array.length bounds + 1) 0;
      h_sum = { v = 0.0 };
      h_count = 0;
      h_nan = 0;
    }

  let bucket_index bounds v =
    (* first bound >= v; linear scan — bucket lists are short *)
    let n = Array.length bounds in
    let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
    go 0

  (* Record [n] identical observations of [v] in one pass: one bucket
     scan and three plain stores total, instead of n of each. This is
     the batching half of the telemetry fast path — a stride-sampling
     caller times every k-th event and observes it with weight k, so
     [count] still approximates the event count. *)
  let observe_n t ~n v =
    if n < 0 then invalid_arg "Metrics.Histogram.observe_n: negative count";
    if n > 0 then begin
      let sh = my_shard t.shards ~fresh:(fresh_shard t.bounds) in
      if Float.is_nan v then sh.h_nan <- sh.h_nan + n
      else begin
        let i = bucket_index t.bounds v in
        sh.bucket_counts.(i) <- sh.bucket_counts.(i) + n;
        sh.h_sum.v <- sh.h_sum.v +. (float_of_int n *. v);
        sh.h_count <- sh.h_count + n
      end
    end

  let observe t v =
    let sh = my_shard t.shards ~fresh:(fresh_shard t.bounds) in
    if Float.is_nan v then sh.h_nan <- sh.h_nan + 1
    else begin
      let i = bucket_index t.bounds v in
      sh.bucket_counts.(i) <- sh.bucket_counts.(i) + 1;
      sh.h_sum.v <- sh.h_sum.v +. v;
      sh.h_count <- sh.h_count + 1
    end

  let count t = fold_shards t.shards (fun acc sh -> acc + sh.h_count) 0
  let sum t = fold_shards t.shards (fun acc sh -> acc +. sh.h_sum.v) 0.0
  let nan_count t = fold_shards t.shards (fun acc sh -> acc + sh.h_nan) 0

  let raw_buckets t =
    let n = Array.length t.bounds + 1 in
    let acc = Array.make n 0 in
    fold_shards t.shards
      (fun () sh ->
        Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) sh.bucket_counts)
      ();
    acc

  let cumulative_buckets t =
    let raw = raw_buckets t in
    let n = Array.length t.bounds in
    let out = Array.make (n + 1) (infinity, 0) in
    let running = ref 0 in
    for i = 0 to n - 1 do
      running := !running + raw.(i);
      out.(i) <- (t.bounds.(i), !running)
    done;
    out.(n) <- (infinity, !running + raw.(n));
    out

  let quantile t q =
    if q < 0.0 || q > 1.0 || Float.is_nan q then
      invalid_arg "Metrics.Histogram.quantile: q outside [0,1]";
    let cum = cumulative_buckets t in
    let n = Array.length cum in
    let total = snd cum.(n - 1) in
    if total = 0 then Float.nan
    else begin
      let rank = q *. float_of_int total in
      let rec find i =
        if i >= n - 1 then i
        else if float_of_int (snd cum.(i)) >= rank then i
        else find (i + 1)
      in
      let i = find 0 in
      let ub, c = cum.(i) in
      if Float.equal ub infinity then
        (* overflow bucket: the best honest answer is the largest
           finite bound — "at least this much" *)
        fst cum.(n - 2)
      else begin
        let lo = if i = 0 then 0.0 else fst cum.(i - 1) in
        let clo = if i = 0 then 0 else snd cum.(i - 1) in
        let frac =
          if c = clo then 1.0
          else (rank -. float_of_int clo) /. float_of_int (c - clo)
        in
        lo +. ((ub -. lo) *. Float.max 0.0 (Float.min 1.0 frac))
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    (* shortest representation that round-trips: try increasing
       precision so bucket bounds print as 1e-07, not
       9.9999999999999995e-08 *)
    let shortest = Printf.sprintf "%.12g" v in
    if float_of_string shortest = v then shortest else Printf.sprintf "%.17g" v

let sorted_metrics reg =
  Mutex.lock reg.lock;
  let ms = reg.ordered in
  Mutex.unlock reg.lock;
  List.sort
    (fun a b ->
      match compare a.name b.name with
      | 0 -> compare (render_labels a.labels) (render_labels b.labels)
      | c -> c)
    ms

let family_header reg buf name =
  let kind, help =
    (* [register] mutates [families] under the lock, and late
       registration can race a concurrent scrape — so the read takes
       it too *)
    Mutex.protect reg.lock (fun () ->
        match Hashtbl.find_opt reg.families name with
        | Some kh -> kh
        | None -> ("untyped", ""))
  in
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name
         (String.concat "\\n" (String.split_on_char '\n' help)));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let to_prometheus reg =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_family then begin
        family_header reg buf m.name;
        last_family := m.name
      end;
      let ls = render_labels m.labels in
      match m.body with
      | Counter_b b ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name ls (float_repr (Counter.value b)))
      | Gauge_b g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name ls (float_repr (Atomic.get g)))
      | Histogram_b h ->
          let with_le le =
            let labels = m.labels @ [ ("le", le) ] in
            render_labels labels
          in
          Array.iter
            (fun (ub, c) ->
              let le = if Float.equal ub infinity then "+Inf" else float_repr ub in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name (with_le le) c))
            (Histogram.cumulative_buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name ls (float_repr (Histogram.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name ls (Histogram.count h)))
    (sorted_metrics reg);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "\"nan\""
  else if Float.equal v infinity then "\"inf\""
  else if Float.equal v neg_infinity then "\"-inf\""
  else float_repr v

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let to_jsonl ?ts reg =
  let buf = Buffer.create 1024 in
  let ts_field =
    match ts with
    | None -> ""
    | Some t -> Printf.sprintf "\"ts\":%s," (json_float t)
  in
  List.iter
    (fun m ->
      let common =
        Printf.sprintf "%s\"name\":\"%s\",\"type\":\"%s\",\"labels\":%s" ts_field
          (json_escape m.name) (kind_of_body m.body) (labels_json m.labels)
      in
      (match m.body with
      | Counter_b b ->
          Buffer.add_string buf
            (Printf.sprintf "{%s,\"value\":%s}" common (json_float (Counter.value b)))
      | Gauge_b g ->
          Buffer.add_string buf
            (Printf.sprintf "{%s,\"value\":%s}" common (json_float (Atomic.get g)))
      | Histogram_b h ->
          let buckets =
            Histogram.cumulative_buckets h |> Array.to_list
            |> List.map (fun (ub, c) ->
                   Printf.sprintf "[%s,%d]"
                     (if Float.equal ub infinity then "\"inf\"" else json_float ub)
                     c)
            |> String.concat ","
          in
          Buffer.add_string buf
            (Printf.sprintf "{%s,\"sum\":%s,\"count\":%d,\"nan_count\":%d,\"buckets\":[%s]}"
               common
               (json_float (Histogram.sum h))
               (Histogram.count h) (Histogram.nan_count h) buckets));
      Buffer.add_char buf '\n')
    (sorted_metrics reg);
  Buffer.contents buf
