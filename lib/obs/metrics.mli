(** Thread-safe metrics registry: counters, gauges, and fixed-bucket
    histograms with labels, safe for concurrent updates from OCaml 5
    domains.

    {b Sharding.} Counters and histograms keep one shard per domain
    (allocated lazily through domain-local storage the first time a
    domain touches the metric). A shard is written only by its owner
    domain, with {e plain} stores into flat cells — the per-event
    fast path is a handful of loads and stores with no atomics and no
    allocation. A scraping domain reads the cells racily: word-sized
    mutable fields never tear under the OCaml memory model, so a
    scrape sees a {e bounded-staleness} snapshot — some recently
    written value per shard, monotone per shard across scrapes — and
    the exact total once a happens-before edge (e.g. [Domain.join] on
    the writers, or a mutex handed from writer to reader) orders the
    last update before the read. Shards survive their domain (they
    hold the domain's cumulative contribution), so spawning many
    short-lived domains — the supervisor does — cannot lose counts.
    Gauges are last-write-wins and use a single atomic cell.

    {b Cost.} The global {!enabled} switch gates the hot
    instrumentation sites in the samplers; when it is off they pay one
    atomic load and skip the update entirely. Creation functions are
    idempotent: asking twice for the same (kind, name, labels) returns
    the same metric, so modules can hold lazily-created handles.

    {b Export.} {!to_prometheus} renders the Prometheus text
    exposition format (families sorted by name, samples by label set —
    deterministic, golden-file friendly); {!to_jsonl} renders one JSON
    object per sample per line for machine ingestion. *)

type registry

val create_registry : unit -> registry

val default : registry
(** The process-wide registry every instrumentation site uses unless
    told otherwise. *)

val set_enabled : bool -> unit
(** Master switch for the built-in instrumentation sites (samplers,
    supervisor, checkpoints). Off by default; flipping it on is what
    [--metrics-out] / [--serve-metrics] do. Metric objects themselves
    always work — the switch only gates the hot-path call sites. *)

val enabled : unit -> bool
(** One atomic load; safe to call per event in a sampler inner loop. *)

module Counter : sig
  type t

  val create :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    t
  (** [create name] registers (or retrieves) a monotone counter.
      Raises [Invalid_argument] on a malformed metric/label name or if
      [name] is already registered as a different kind. *)

  val inc : ?by:float -> t -> unit
  (** Add [by] (default 1.0) to the calling domain's shard. Negative
      increments raise [Invalid_argument]. *)

  val value : t -> float
  (** Sum over all shards. *)
end

module Gauge : sig
  type t

  val create :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Exponential decades from 100µs to 100s — a sane default for
      sweep/checkpoint latencies. *)

  val create :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    ?buckets:float array ->
    string ->
    t
  (** [buckets] are upper bounds, strictly increasing; a final [+Inf]
      bucket is implicit. Raises [Invalid_argument] on unsorted or
      non-finite bounds. *)

  val observe : t -> float -> unit
  (** NaN observations are counted separately (see {!nan_count}) and
      excluded from [sum]/buckets, so one corrupted sample cannot
      poison the whole series. *)

  val observe_n : t -> n:int -> float -> unit
  (** [observe_n t ~n v] records [n] identical observations of [v] in
      one bucket scan. Used by stride-sampling instrumentation: time
      every k-th event, observe it with weight k, and [count] still
      tracks the true event count. [n = 0] is a no-op; negative [n]
      raises [Invalid_argument]. *)

  val count : t -> int
  val sum : t -> float
  val nan_count : t -> int

  val cumulative_buckets : t -> (float * int) array
  (** [(upper_bound, cumulative_count)] pairs, Prometheus [le]
      semantics, including the final [(infinity, count)]. *)

  val quantile : t -> float -> float
  (** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) by
      linear interpolation across the bucket containing the rank,
      assuming a uniform spread inside each bucket. Returns [nan] on
      an empty histogram; ranks landing in the [+Inf] overflow bucket
      clamp to the largest finite bound (read it as "at least this").
      Raises [Invalid_argument] if [q] is outside [0, 1]. *)
end

val to_prometheus : registry -> string
(** Prometheus text exposition format, version 0.0.4. *)

val to_jsonl : ?ts:float -> registry -> string
(** One JSON object per sample per line; [ts] (wall-clock seconds) is
    attached to every line when given. *)
