(** Streaming inference-quality diagnostics: is the sampler healthy,
    and which queue does the posterior currently blame?

    The metrics registry ({!Metrics}) observes {e mechanics} — sweep
    timing, restarts, heartbeats. This module observes {e statistics}:
    a hub accumulates each chain's per-queue mean-service iterates (a
    bounded recent window plus one-pass {!Qnet_prob.Statistics.Online}
    accumulators) and answers, at any instant of a live run, with
    split-R̂, pooled ESS and ESS/sec, lag-1 autocorrelation, posterior
    mean/quantiles per queue, and the waiting-vs-service decomposition
    that localizes the bottleneck — the paper's output, computed on
    the paper's own inference machinery while it runs.

    {b Feeding.} The samplers push one observation per StEM iteration
    through the existing hook points ([Stem.run]'s loop, the
    supervisor's chain rounds), gated on {!Metrics.enabled} so the
    instrumentation-off cost stays one atomic load. Observations are
    iteration-granular (not event-granular): a mutex-guarded hub is
    cheap at that rate and safe under the supervisor's chain domains.

    {b Publishing.} Every [publish_every] observations the hub
    refreshes [qnet_diag_*] gauges in the registry and, if a sink is
    installed ([--diagnostics-out]), emits one JSONL snapshot line.
    {!snapshot_json} serves the same document on demand — the payload
    behind the metrics server's [/diagnostics.json] and [/dashboard].

    {b GC profiling.} {!gc_tick} folds [Gc.quick_stat] deltas into
    [qnet_gc_*] families. [quick_stat] does not walk the heap, so a
    per-iteration tick is safe; deltas are clamped non-negative
    because minor counters are domain-local and the tick may be called
    from more than one domain over a run. *)

type t
(** A diagnostics hub. Hubs are domain-safe; all entry points may be
    called concurrently. *)

val create :
  ?registry:Metrics.registry ->
  ?window:int ->
  ?publish_every:int ->
  ?rhat_good:float ->
  unit ->
  t
(** [window] (default 512) bounds the per-chain per-queue sample
    memory used for split-R̂ and quantiles — older samples age out,
    which doubles as burn-in forgetting. [publish_every] (default 10)
    is the gauge/sink refresh period in observations. [rhat_good]
    (default 1.05) is the convergence verdict threshold. Raises
    [Invalid_argument] if [window < 8] or [publish_every < 1]. *)

val default : t
(** The process-wide hub the built-in instrumentation feeds, bound to
    {!Metrics.default}. *)

val reset : t -> unit
(** Drop all accumulated state (chains, windows, GC baseline) —
    between independent runs in one process, and in tests. *)

(** {1 Feeding} *)

val observe_iteration :
  t -> chain:int -> ?waiting:float array -> float array -> unit
(** [observe_iteration t ~chain means] records one StEM iterate for
    [chain]: [means] is the realized mean service per queue;
    [?waiting] the realized mean waiting per queue (enables the
    waiting-vs-service decomposition). Non-finite entries are skipped
    and counted, never poisoning the accumulators. The first call
    fixes the hub's queue count; later calls with a different length
    are rejected with [Invalid_argument]. *)

val gc_tick : t -> unit
(** Fold a [Gc.quick_stat] delta since the previous tick into the
    [qnet_gc_*] metric families and the snapshot's [gc] block. *)

val set_arrival_queue : t -> int -> unit
(** Mark the virtual arrival queue so the convergence verdict and the
    bottleneck ranking skip it (its R̂ is structurally inflated — see
    the {!Qnet_core.Stem.run_chains} caveat). *)

val set_chain_status : t -> chain:int -> string -> unit
(** Record a chain's latest supervisor verdict ("healthy",
    "quarantined: …", "dead: …") for the snapshot and dashboard. *)

val set_ensemble_status : t -> string -> unit
(** Record the run-level verdict ("running", "quorum", "degraded",
    "failed"). *)

val set_sink : t -> (string -> unit) option -> unit
(** Install (or remove) a callback receiving one JSON document per
    publish — the [--diagnostics-out] JSONL stream. Called under the
    hub lock; keep it fast and never let it raise. *)

(** {1 Snapshots} *)

type queue_summary = {
  queue : int;
  samples : int;  (** accepted (finite) iterates pooled over chains *)
  mean_service : float;
  service_q05 : float;
  service_q50 : float;
  service_q95 : float;  (** pooled quantiles over the recent windows *)
  mean_waiting : float;  (** [nan] until waiting observations arrive *)
  wait_fraction : float;
      (** waiting / (waiting + service) — the localization signal: the
          service-queue maximum is the posterior's current bottleneck *)
  rhat : float;  (** split-R̂ over per-chain recent windows *)
  ess : float;  (** pooled one-pass ESS over full chain histories *)
  ess_per_sec : float;
  acf1 : float;  (** mean lag-1 autocorrelation across chains *)
}

type gc_summary = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** last observed, not a delta *)
}

type kernel_summary = {
  piecewise_bounded : float;
  piecewise_tail : float;
  piecewise_point : float;  (** compiled-conditional kinds drawn *)
  slice_steps : float;
  slice_shrinks : float;  (** shrink rejections inside slice transitions *)
}

type chain_summary = { chain : int; iterations : int; status : string }

type snapshot = {
  ts : float;  (** wall-clock seconds ({!Clock.now}) *)
  wall_seconds : float;  (** since the hub's first observation *)
  iterations_total : int;
  skipped_samples : int;
  ensemble_status : string;
  chains : chain_summary array;  (** sorted by chain id *)
  queues : queue_summary array;  (** indexed by queue *)
  arrival_queue : int;  (** -1 when unset *)
  max_rhat : float;  (** over service queues; [nan] until computable *)
  converged : bool;  (** [max_rhat] finite and below [rhat_good] *)
  bottleneck : int;
      (** service queue with the largest [wait_fraction]; -1 unknown *)
  gc : gc_summary;
  kernels : kernel_summary;
}

val snapshot : t -> snapshot
(** A consistent point-in-time read of everything above. *)

val to_json : snapshot -> string
(** One-line JSON document (non-finite numbers render as [null]) —
    the [/diagnostics.json] body and the [--diagnostics-out] line
    format. *)

val snapshot_json : t -> string
(** [to_json (snapshot t)]. *)

val publish : t -> unit
(** Refresh the [qnet_diag_*] gauges from a fresh snapshot and emit a
    sink line. Runs automatically every [publish_every] observations;
    call it directly at run end so the final state is exported. *)

val register_metrics : ?registry:Metrics.registry -> unit -> unit
(** Force-register every unlabeled diagnostics family
    ([qnet_diag_*], [qnet_gc_*], [qnet_slice_*]) so a scrape exports
    present zeros from run entry — the same convention the supervisor
    families follow. Per-queue labeled gauges appear on first
    publish. *)
