type relation = Le | Ge | Eq

type constr = { coeffs : (int * float) list; relation : relation; rhs : float }

type problem = {
  num_vars : int;
  objective : (int * float) list;
  minimize : bool;
  constraints : constr list;
}

type outcome =
  | Optimal of { objective_value : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

let validate p =
  let check_sparse row =
    List.iter
      (fun (i, c) ->
        if i < 0 || i >= p.num_vars then invalid_arg "Simplex: variable out of range";
        if Float.is_nan c then invalid_arg "Simplex: NaN coefficient")
      row
  in
  check_sparse p.objective;
  List.iter
    (fun c ->
      check_sparse c.coeffs;
      if Float.is_nan c.rhs then invalid_arg "Simplex: NaN rhs")
    p.constraints

(* Tableau layout: m rows (constraints) over columns
   [structural | slack/surplus | artificial | rhs]. Row operations keep
   b >= 0; basis.(r) is the variable basic in row r. The objective is
   handled as a separate cost array reduced against the basis on
   demand (revised-lite: we recompute reduced costs each pivot, which
   is O(m·n) — fine at our sizes and immune to drift). *)

type tableau = {
  m : int;
  n : int; (* total columns excluding rhs *)
  a : float array array; (* m x (n + 1); last column is rhs *)
  basis : int array;
}

let pivot t ~row ~col =
  let a = t.a in
  let piv = a.(row).(col) in
  let width = t.n + 1 in
  let prow = a.(row) in
  for j = 0 to width - 1 do
    prow.(j) <- prow.(j) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = a.(i).(col) in
      if not (Float.equal factor 0.0) then begin
        let irow = a.(i) in
        for j = 0 to width - 1 do
          irow.(j) <- irow.(j) -. (factor *. prow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced cost of column j under cost vector c: c_j - c_B . B^-1 A_j,
   where B^-1 A_j is just the current tableau column. *)
let reduced_costs t cost =
  let red = Array.copy cost in
  for r = 0 to t.m - 1 do
    let cb = cost.(t.basis.(r)) in
    if not (Float.equal cb 0.0) then
      for j = 0 to t.n - 1 do
        red.(j) <- red.(j) -. (cb *. t.a.(r).(j))
      done
  done;
  red

let objective_value t cost =
  let acc = ref 0.0 in
  for r = 0 to t.m - 1 do
    acc := !acc +. (cost.(t.basis.(r)) *. t.a.(r).(t.n))
  done;
  !acc

(* One phase of simplex minimizing [cost]; columns with index >= forbid
   (artificials in phase 2) may never enter. Bland's rule. *)
let run_phase t cost ~forbid ~max_iter =
  let rec loop iter =
    if iter > max_iter then `MaxIter
    else begin
      let red = reduced_costs t cost in
      (* entering column: smallest index with negative reduced cost *)
      let entering = ref (-1) in
      (try
         for j = 0 to Int.min (forbid - 1) (t.n - 1) do
           if red.(j) < -.eps then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !entering < 0 then `Optimal
      else begin
        let col = !entering in
        (* leaving row: min ratio b_i / a_ic over a_ic > 0; ties by
           smallest basis index (Bland). *)
        let best_row = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to t.m - 1 do
          let aic = t.a.(i).(col) in
          if aic > eps then begin
            let ratio = t.a.(i).(t.n) /. aic in
            if
              ratio < !best_ratio -. eps
              || (Float.abs (ratio -. !best_ratio) <= eps
                 && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
            then begin
              best_ratio := ratio;
              best_row := i
            end
          end
        done;
        if !best_row < 0 then `Unbounded
        else begin
          pivot t ~row:!best_row ~col;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

let solve ?max_iter p =
  validate p;
  let constraints = Array.of_list p.constraints in
  let m = Array.length constraints in
  let nv = p.num_vars in
  (* Count slack/surplus columns. *)
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 constraints
  in
  let n = nv + n_slack + m in
  (* every row gets an artificial; simpler and robust *)
  let a = Array.make_matrix m (n + 1) 0.0 in
  let basis = Array.make m 0 in
  let slack_idx = ref nv in
  let art_base = nv + n_slack in
  Array.iteri
    (fun i c ->
      let sign = if c.rhs < 0.0 then -1.0 else 1.0 in
      List.iter (fun (j, v) -> a.(i).(j) <- a.(i).(j) +. (sign *. v)) c.coeffs;
      a.(i).(n) <- sign *. c.rhs;
      (match c.relation with
      | Le ->
          a.(i).(!slack_idx) <- sign *. 1.0;
          incr slack_idx
      | Ge ->
          a.(i).(!slack_idx) <- sign *. -1.0;
          incr slack_idx
      | Eq -> ());
      a.(i).(art_base + i) <- 1.0;
      basis.(i) <- art_base + i)
    constraints;
  let t = { m; n; a; basis } in
  let max_iter =
    match max_iter with Some k -> k | None -> 50 * (m + n)
  in
  (* Phase 1: minimize sum of artificials. *)
  let phase1_cost = Array.make n 0.0 in
  for j = art_base to n - 1 do
    phase1_cost.(j) <- 1.0
  done;
  (match run_phase t phase1_cost ~forbid:n ~max_iter with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `MaxIter -> ()
  | `Optimal -> ());
  if objective_value t phase1_cost > 1e-7 then Infeasible
  else begin
    (* Drive any artificial still basic (at zero) out of the basis. *)
    for r = 0 to m - 1 do
      if t.basis.(r) >= art_base then begin
        let found = ref (-1) in
        (try
           for j = 0 to art_base - 1 do
             if Float.abs t.a.(r).(j) > eps then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot t ~row:r ~col:!found
        (* else: the row is all zeros — redundant constraint; the
           artificial stays basic at value 0, which is harmless as long
           as it never re-enters (it is forbidden in phase 2). *)
      end
    done;
    (* Phase 2. *)
    let phase2_cost = Array.make n 0.0 in
    let sgn = if p.minimize then 1.0 else -1.0 in
    List.iter (fun (j, v) -> phase2_cost.(j) <- phase2_cost.(j) +. (sgn *. v)) p.objective;
    match run_phase t phase2_cost ~forbid:art_base ~max_iter with
    | `Unbounded -> Unbounded
    | `MaxIter | `Optimal ->
        let solution = Array.make nv 0.0 in
        for r = 0 to m - 1 do
          if t.basis.(r) < nv then solution.(t.basis.(r)) <- t.a.(r).(n)
        done;
        let value = sgn *. objective_value t phase2_cost in
        Optimal { objective_value = value; solution }
  end

let solve_free ?max_iter p =
  (* x_j = x_j^+ - x_j^- ; both parts >= 0. *)
  let split row =
    List.concat_map (fun (j, v) -> [ (2 * j, v); ((2 * j) + 1, -.v) ]) row
  in
  let p' =
    {
      num_vars = 2 * p.num_vars;
      objective = split p.objective;
      minimize = p.minimize;
      constraints =
        List.map (fun c -> { c with coeffs = split c.coeffs }) p.constraints;
    }
  in
  match solve ?max_iter p' with
  | Optimal { objective_value; solution } ->
      let merged =
        Array.init p.num_vars (fun j -> solution.(2 * j) -. solution.((2 * j) + 1))
      in
      Optimal { objective_value; solution = merged }
  | (Infeasible | Unbounded) as r -> r
