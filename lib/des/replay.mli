(** Replay mode: turn a simulated trace into a paced multi-tenant
    event stream — the load generator behind the serving daemon's
    chaos soak.

    The simulator produces one consolidated trace; a serving daemon
    ingests {e streams}: events arriving in completion order, tagged
    with a tenant key, interleaved across tenants, at a wall-clock
    rate. {!plan} bridges the two deterministically (no RNG, no
    clock): events are ordered by departure time, each task is
    assigned a stable tenant key, emit offsets are the departure
    times rescaled by [speedup], and — because a soak must also prove
    poison input is quarantined rather than fatal — [poison]
    deliberately malformed lines are interleaved at evenly spaced
    positions. The same plan streams over HTTP POST or writes to a
    file for the daemon's tail ingester; either way the receiver must
    quarantine exactly [poison] lines, which is the soak's dead-letter
    invariant. *)

type item = {
  at : float;  (** emit offset in seconds from the start of the replay *)
  line : string;  (** one JSONL event — or one poison line *)
  poison : bool;
}

val tenant_key : tenants:int -> int -> string
(** [tenant_key ~tenants task] — the stable key ["t<k>"] with
    [k = task mod tenants]. *)

val poison_line : int -> string
(** The [i]-th poison line — cycles through a fixed set of realistic
    corruptions (truncated JSON, NaN fields, bad queue ids, binary
    junk). Every variant is rejected by the daemon's ingest decoder;
    none is empty (empty lines are skipped, not quarantined). *)

val plan :
  ?speedup:float -> ?poison:int -> tenants:int -> Qnet_trace.Trace.t -> item list
(** [plan ~tenants trace] — the replay schedule, sorted by [at]
    (ties: original event order). [speedup] (default 1.0) divides the
    simulated timeline; [poison] (default 0) malformed lines are
    interleaved evenly. Raises [Invalid_argument] when [tenants < 1],
    [speedup <= 0] or [poison < 0]. *)
