module Trace = Qnet_trace.Trace

type item = { at : float; line : string; poison : bool }

let tenant_key ~tenants task = Printf.sprintf "t%d" (task mod tenants)

let poison_variants =
  [|
    (* truncated JSON *)
    "{\"tenant\":\"t0\",\"task\":1,\"queue\":0,\"arr";
    (* NaN field *)
    "t0,7,0,1,nan,2.5";
    (* queue id far out of range *)
    "{\"tenant\":\"t0\",\"task\":3,\"queue\":999,\"arrival\":0.1,\"departure\":0.2}";
    (* wrong field count *)
    "t1,4,0";
    (* tenant key with a forbidden character *)
    "{\"tenant\":\"no spaces\",\"task\":2,\"queue\":0,\"arrival\":0.1,\"departure\":0.2}";
    (* negative time *)
    "t2,5,0,1,-3.0,1.0";
    (* binary junk *)
    "\x01\x02\x7fgarbage";
  |]

let poison_line i = poison_variants.(i mod Array.length poison_variants)

let event_line ~tenants (e : Trace.event) =
  Printf.sprintf
    "{\"tenant\":\"%s\",\"task\":%d,\"state\":%d,\"queue\":%d,\"arrival\":%.17g,\"departure\":%.17g}"
    (tenant_key ~tenants e.Trace.task)
    e.Trace.task e.Trace.state e.Trace.queue e.Trace.arrival e.Trace.departure

let plan ?(speedup = 1.0) ?(poison = 0) ~tenants trace =
  if tenants < 1 then invalid_arg "Replay.plan: tenants must be >= 1";
  if speedup <= 0.0 || not (Float.is_finite speedup) then
    invalid_arg "Replay.plan: speedup must be positive";
  if poison < 0 then invalid_arg "Replay.plan: poison must be >= 0";
  let events = Array.copy trace.Trace.events in
  (* stable sort: completion order, original order on ties *)
  let indexed = Array.mapi (fun i e -> (i, e)) events in
  Array.sort
    (fun (i, (a : Trace.event)) (j, b) ->
      match Float.compare a.Trace.departure b.Trace.departure with
      | 0 -> Int.compare i j
      | c -> c)
    indexed;
  let n = Array.length indexed in
  let t0 = if n = 0 then 0.0 else (snd indexed.(0)).Trace.departure in
  let base =
    Array.to_list
      (Array.map
         (fun (_, e) ->
           {
             at = (e.Trace.departure -. t0) /. speedup;
             line = event_line ~tenants e;
             poison = false;
           })
         indexed)
  in
  if poison = 0 then base
  else begin
    (* interleave poison evenly: after every [stride] clean lines,
       inheriting the preceding event's offset so pacing is unchanged *)
    let stride = Stdlib.max 1 (n / (poison + 1)) in
    let rec weave i injected acc = function
      | [] ->
          (* any poison not yet placed (short traces) trails the end *)
          let rec trail k acc =
            if k >= poison then List.rev acc
            else
              let at =
                match acc with [] -> 0.0 | it :: _ -> it.at
              in
              trail (k + 1) ({ at; line = poison_line k; poison = true } :: acc)
          in
          trail injected acc
      | it :: rest ->
          let acc = it :: acc in
          if injected < poison && (i + 1) mod stride = 0 then
            weave (i + 1) (injected + 1)
              ({ at = it.at; line = poison_line injected; poison = true }
               :: acc)
              rest
          else weave (i + 1) injected acc rest
    in
    weave 0 0 [] base
  end
