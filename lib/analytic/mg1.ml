module D = Qnet_prob.Distributions

let second_moment service =
  let m = D.mean service in
  let v = D.variance service in
  if Float.is_nan m || Float.is_nan v || Float.equal v infinity then
    invalid_arg "Mg1: service distribution needs finite first two moments";
  v +. (m *. m)

let check_stable arrival_rate service =
  if arrival_rate <= 0.0 then invalid_arg "Mg1: arrival_rate must be > 0";
  let rho = arrival_rate *. D.mean service in
  if rho >= 1.0 then invalid_arg "Mg1: unstable queue (rho >= 1)";
  rho

let mean_waiting_time ~arrival_rate ~service =
  let rho = check_stable arrival_rate service in
  arrival_rate *. second_moment service /. (2.0 *. (1.0 -. rho))

let mean_response_time ~arrival_rate ~service =
  mean_waiting_time ~arrival_rate ~service +. D.mean service

let mean_queue_length ~arrival_rate ~service =
  arrival_rate *. mean_waiting_time ~arrival_rate ~service

let waiting_inflation_vs_mm1 ~service =
  (1.0 +. D.squared_cv service) /. 2.0
