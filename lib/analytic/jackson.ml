module D = Qnet_prob.Distributions
module Fsm = Qnet_fsm.Fsm
module Network = Qnet_des.Network

type queue_report = {
  queue : int;
  visit_ratio : float;
  effective_arrival_rate : float;
  service_rate : float;
  utilization : float;
  mean_waiting_time : float;
  mean_response_time : float;
}

let analyze ~arrival_rate net =
  if arrival_rate <= 0.0 then invalid_arg "Jackson.analyze: arrival_rate must be > 0";
  let fsm = Network.fsm net in
  let q0 = Network.arrival_queue net in
  let visits = Fsm.expected_visits fsm in
  let reports = ref [] in
  for q = Network.num_queues net - 1 downto 0 do
    if q <> q0 then begin
      let service_rate =
        match Network.service net q with
        | D.Exponential mu -> mu
        | d ->
            invalid_arg
              (Format.asprintf
                 "Jackson.analyze: queue %d has non-exponential service %a" q D.pp d)
      in
      let v = visits.(q) in
      let lam = arrival_rate *. v in
      let rho = lam /. service_rate in
      let wq, w =
        if Float.equal v 0.0 then (0.0, 0.0)
        else if rho >= 1.0 then (infinity, infinity)
        else
          ( rho /. (service_rate -. lam),
            1.0 /. (service_rate -. lam) )
      in
      reports :=
        {
          queue = q;
          visit_ratio = v;
          effective_arrival_rate = lam;
          service_rate;
          utilization = rho;
          mean_waiting_time = wq;
          mean_response_time = w;
        }
        :: !reports
    end
  done;
  Array.of_list !reports

let bottleneck reports =
  if Array.length reports = 0 then invalid_arg "Jackson.bottleneck: empty report";
  Array.fold_left
    (fun best r -> if r.utilization > best.utilization then r else best)
    reports.(0) reports

let mean_end_to_end_response reports =
  Array.fold_left
    (fun acc r -> acc +. (r.visit_ratio *. r.mean_response_time))
    0.0 reports
