(** Event traces: the common currency between the simulator, the
    observation model, and the inference engine.

    A trace is the complete record of a set of tasks flowing through a
    queueing network — one {!event} per (task, queue-visit), including
    the special initial event at the arrival queue [q0] (arrival time
    0, departure = the time the task entered the system, per Section 2
    of the paper). *)

type event = {
  task : int;  (** task identifier *)
  state : int;  (** FSM state that emitted this visit *)
  queue : int;  (** queue visited *)
  arrival : float;  (** time the task joined the queue *)
  departure : float;  (** time service completed *)
}

type t = {
  num_queues : int;
  num_tasks : int;
  events : event array;
      (** sorted by [(task, arrival)]; each task's first event is its
          initial event *)
}

val create : num_queues:int -> event list -> t
(** [create ~num_queues events] groups, sorts and validates a raw
    event list into a trace. Validation checks: non-negative times,
    [departure >= arrival] per event, in-range queue ids, each task's
    events form a chain ([arrival] of each non-initial event equals
    the [departure] of the task's previous event, within 1e-9), and
    exactly one initial event per task. Raises [Invalid_argument]
    otherwise. *)

val events_of_task : t -> int -> event array
(** Events of one task in path order (initial event first). *)

val tasks : t -> int array
(** The distinct task ids, ascending. *)

val queue_events : t -> int -> event array
(** Events at one queue in arrival order. *)

val service_times : t -> int -> float array
(** Realized service times at a queue, in arrival order:
    [departure - max arrival (previous departure)] under FIFO. *)

val waiting_times : t -> int -> float array
(** Realized waiting times at a queue, in arrival order:
    [max arrival (previous departure) - arrival]. *)

val response_times : t -> int -> float array
(** [departure - arrival] per event at a queue. *)

val end_to_end_response : t -> (int * float) array
(** Per task: total time from system entry (departure of the initial
    event) to the final departure. *)

val utilization : t -> int -> float
(** Busy fraction of a queue's server over the trace's time span. *)

val span : t -> float * float
(** [(earliest arrival, latest departure)] over all events. *)

val to_csv : t -> string
(** Serialize as CSV with header [task,state,queue,arrival,departure]
    (times printed with 17 significant digits, round-trippable). *)

val of_csv : num_queues:int -> string -> (t, string) result
(** Parse the format written by {!to_csv}. Strict: the first corrupt
    line rejects the whole file. *)

(** {1 Lenient ingestion}

    Production trace files are dirty: truncated writes, NaN fields
    from broken exporters, duplicated records from at-least-once
    shippers, clock skew between hosts. Lenient mode classifies and
    skips corrupt records instead of rejecting the file, then repairs
    the task chains so the surviving events still satisfy every model
    constraint ({!create} and [Event_store.of_trace] both succeed on
    the result). *)

type corruption =
  | Malformed_line  (** truncated line / wrong field count / unparseable *)
  | Nan_field
  | Negative_time
  | Out_of_order  (** departure earlier than arrival *)
  | Bad_queue
  | Duplicate_event
  | Broken_chain  (** clock skew: arrival disagrees with predecessor departure *)
  | Missing_initial  (** task has no entry event at time 0 *)
  | Inconsistent_route
      (** task enters at a minority arrival queue, or revisits it *)

val corruption_label : corruption -> string

type line_error = {
  line : int option;  (** 1-based source line; [None] for task-level drops *)
  task_id : int option;
  reason : corruption;
  detail : string;
}

type ingest_report = {
  errors : line_error list;  (** newest first *)
  lines_read : int;  (** non-empty lines, header included *)
  events_kept : int;
  events_dropped : int;
  tasks_dropped : int;  (** tasks dropped wholesale (partial drops are events) *)
}

val pp_ingest_report : Format.formatter -> ingest_report -> unit

val of_csv_lenient :
  num_queues:int -> string -> (t * ingest_report, ingest_report) result
(** [of_csv_lenient ~num_queues text] parses as much of [text] as
    possible: corrupt lines are classified and skipped, exact
    duplicates dropped, each task's chain truncated at the first
    skew/gap, and tasks that enter away from the (majority) arrival
    queue removed. [Error report] only when {e no} event survives. *)

val load_lenient :
  num_queues:int ->
  string ->
  ((t * ingest_report, ingest_report) result, string) result
(** File variant of {!of_csv_lenient}; the outer [Error] is an I/O
    failure. *)

val save : t -> string -> unit
(** [save t path] writes {!to_csv} output to [path]. *)

val load : num_queues:int -> string -> (t, string) result

val pp_summary : Format.formatter -> t -> unit
(** Multi-line human-readable summary: per-queue counts, mean
    service/waiting times, utilization. *)
