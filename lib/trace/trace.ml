type event = {
  task : int;
  state : int;
  queue : int;
  arrival : float;
  departure : float;
}

type t = { num_queues : int; num_tasks : int; events : event array }

let chain_tolerance = 1e-9

let compare_task_arrival a b =
  (* ties on arrival (e.g. a task entering at exactly time 0, whose
     initial event departs at 0 too) resolve by departure so the chain
     order is preserved *)
  match compare a.task b.task with
  | 0 -> (
      match compare a.arrival b.arrival with
      | 0 -> compare a.departure b.departure
      | c -> c)
  | c -> c

let create ~num_queues events =
  let events = Array.of_list events in
  Array.sort compare_task_arrival events;
  Array.iter
    (fun e ->
      if e.queue < 0 || e.queue >= num_queues then
        invalid_arg
          (Printf.sprintf "Trace.create: queue %d out of range [0,%d)" e.queue num_queues);
      if Float.is_nan e.arrival || Float.is_nan e.departure then
        invalid_arg "Trace.create: NaN time";
      if e.arrival < 0.0 then invalid_arg "Trace.create: negative arrival time";
      if e.departure < e.arrival -. chain_tolerance then
        invalid_arg
          (Printf.sprintf "Trace.create: departure %.12g before arrival %.12g (task %d)"
             e.departure e.arrival e.task))
    events;
  (* Per-task chain check. *)
  let num_tasks = ref 0 in
  let n = Array.length events in
  let i = ref 0 in
  while !i < n do
    let task = events.(!i).task in
    incr num_tasks;
    let first = events.(!i) in
    if not (Float.equal first.arrival 0.0) then
      invalid_arg
        (Printf.sprintf "Trace.create: task %d has no initial event at time 0" task);
    let j = ref (!i + 1) in
    while !j < n && events.(!j).task = task do
      let prev = events.(!j - 1) and cur = events.(!j) in
      if Float.abs (cur.arrival -. prev.departure) > chain_tolerance then
        invalid_arg
          (Printf.sprintf
             "Trace.create: task %d broken chain: arrival %.12g <> previous departure %.12g"
             task cur.arrival prev.departure);
      incr j
    done;
    i := !j
  done;
  { num_queues; num_tasks = !num_tasks; events }

let tasks t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  Array.iter
    (fun e ->
      if not (Hashtbl.mem seen e.task) then begin
        Hashtbl.add seen e.task ();
        acc := e.task :: !acc
      end)
    t.events;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let events_of_task t task =
  let es = Array.of_list (List.filter (fun e -> e.task = task) (Array.to_list t.events)) in
  Array.sort (fun a b -> compare a.arrival b.arrival) es;
  es

let queue_events t q =
  let es = Array.of_list (List.filter (fun e -> e.queue = q) (Array.to_list t.events)) in
  (* FIFO order: by arrival, ties (notably the all-zero arrivals at q0)
     by departure, then task for determinism. *)
  Array.sort
    (fun a b ->
      match compare a.arrival b.arrival with
      | 0 -> (
          match compare a.departure b.departure with
          | 0 -> compare a.task b.task
          | c -> c)
      | c -> c)
    es;
  es

let service_and_waiting t q =
  let es = queue_events t q in
  let n = Array.length es in
  let service = Array.make n 0.0 and waiting = Array.make n 0.0 in
  let last_departure = ref neg_infinity in
  for i = 0 to n - 1 do
    let e = es.(i) in
    let start = Float.max e.arrival !last_departure in
    service.(i) <- e.departure -. start;
    waiting.(i) <- start -. e.arrival;
    last_departure := e.departure
  done;
  (service, waiting)

let service_times t q = fst (service_and_waiting t q)
let waiting_times t q = snd (service_and_waiting t q)

let response_times t q =
  Array.map (fun e -> e.departure -. e.arrival) (queue_events t q)

let end_to_end_response t =
  (* events are sorted by (task, arrival): one pass suffices *)
  let acc = ref [] in
  let n = Array.length t.events in
  let i = ref 0 in
  while !i < n do
    let task = t.events.(!i).task in
    let entry = t.events.(!i).departure in
    let last = ref entry in
    let j = ref !i in
    while !j < n && t.events.(!j).task = task do
      last := t.events.(!j).departure;
      incr j
    done;
    acc := (task, !last -. entry) :: !acc;
    i := !j
  done;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let span t =
  Array.fold_left
    (fun (lo, hi) e -> (Float.min lo e.arrival, Float.max hi e.departure))
    (infinity, neg_infinity) t.events

let utilization t q =
  let busy = Array.fold_left ( +. ) 0.0 (service_times t q) in
  let lo, hi = span t in
  if hi <= lo then 0.0 else busy /. (hi -. lo)

let to_csv t =
  let buf = Buffer.create (Array.length t.events * 64) in
  Buffer.add_string buf "task,state,queue,arrival,departure\n";
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%.17g,%.17g\n" e.task e.state e.queue e.arrival
           e.departure))
    t.events;
  Buffer.contents buf

let of_csv ~num_queues text =
  let lines = String.split_on_char '\n' text in
  let parse_line lineno line =
    match String.split_on_char ',' (String.trim line) with
    | [ task; state; queue; arrival; departure ] -> (
        try
          Ok
            {
              task = int_of_string task;
              state = int_of_string state;
              queue = int_of_string queue;
              arrival = float_of_string arrival;
              departure = float_of_string departure;
            }
        with Failure _ ->
          (* int_of_string / float_of_string reject with Failure;
             anything else (OOM-class) must propagate *)
          Error (Printf.sprintf "line %d: malformed fields" lineno))
    | _ -> Error (Printf.sprintf "line %d: expected 5 comma-separated fields" lineno)
  in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else if lineno = 1 && String.length line >= 4 && String.sub line 0 4 = "task" then
          go (lineno + 1) acc rest
        else begin
          match parse_line lineno line with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error msg -> Error msg
        end
  in
  match go 1 [] lines with
  | Error msg -> Error msg
  | Ok events -> (
      try Ok (create ~num_queues events) with Invalid_argument msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Lenient ingestion: real-world trace files arrive with truncated
   lines, NaN fields, duplicated records, clock skew and reordering.
   Strict mode ([of_csv]) rejects the whole file; lenient mode
   classifies and skips the corrupt records, keeps every task whose
   event chain survives intact, and reports exactly what was dropped
   and why. *)

type corruption =
  | Malformed_line  (** truncated line / wrong field count / unparseable *)
  | Nan_field
  | Negative_time
  | Out_of_order  (** departure earlier than arrival *)
  | Bad_queue
  | Duplicate_event
  | Broken_chain  (** clock skew: arrival disagrees with predecessor departure *)
  | Missing_initial  (** task has no entry event at time 0 *)
  | Inconsistent_route
      (** task enters at a minority arrival queue, or revisits it *)

let corruption_label = function
  | Malformed_line -> "malformed-line"
  | Nan_field -> "nan-field"
  | Negative_time -> "negative-time"
  | Out_of_order -> "out-of-order"
  | Bad_queue -> "bad-queue"
  | Duplicate_event -> "duplicate-event"
  | Broken_chain -> "broken-chain"
  | Missing_initial -> "missing-initial"
  | Inconsistent_route -> "inconsistent-route"

type line_error = {
  line : int option;  (** 1-based source line; [None] for task-level drops *)
  task_id : int option;
  reason : corruption;
  detail : string;
}

type ingest_report = {
  errors : line_error list;
  lines_read : int;
  events_kept : int;
  events_dropped : int;
  tasks_dropped : int;
}

let pp_ingest_report ppf r =
  Format.fprintf ppf
    "ingest: %d lines read, %d events kept, %d events dropped, %d tasks dropped@."
    r.lines_read r.events_kept r.events_dropped r.tasks_dropped;
  let counts = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = corruption_label e.reason in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    r.errors;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Format.fprintf ppf "  %-18s %d@." k v);
  List.iter
    (fun e ->
      Format.fprintf ppf "  [%s]%s%s %s@."
        (corruption_label e.reason)
        (match e.line with Some l -> Printf.sprintf " line %d:" l | None -> "")
        (match e.task_id with Some t -> Printf.sprintf " task %d:" t | None -> "")
        e.detail)
    (List.rev r.errors)

let of_csv_lenient ~num_queues text =
  if num_queues <= 0 then invalid_arg "Trace.of_csv_lenient: num_queues must be positive";
  let errors = ref [] in
  let record ?line ?task reason detail =
    errors := { line; task_id = task; reason; detail } :: !errors
  in
  let lines = String.split_on_char '\n' text in
  let lines_read = ref 0 in
  let data_lines = ref 0 in
  (* Pass 1: per-line parsing and per-field sanity. *)
  let parsed = ref [] (* (line number, event), newest first *) in
  let lineno = ref 0 in
  List.iter
    (fun raw ->
      incr lineno;
      let line = String.trim raw in
      if line <> "" then begin
        incr lines_read;
        let is_header =
          !lineno = 1 && String.length line >= 4 && String.sub line 0 4 = "task"
        in
        if not is_header then begin
          incr data_lines;
          match String.split_on_char ',' line with
          | [ task; state; queue; arrival; departure ] -> (
              match
                ( int_of_string_opt (String.trim task),
                  int_of_string_opt (String.trim state),
                  int_of_string_opt (String.trim queue),
                  float_of_string_opt (String.trim arrival),
                  float_of_string_opt (String.trim departure) )
              with
              | Some task, Some state, Some queue, Some arrival, Some departure ->
                  let e = { task; state; queue; arrival; departure } in
                  if Float.is_nan arrival || Float.is_nan departure then
                    record ~line:!lineno ~task:e.task Nan_field
                      "NaN arrival or departure"
                  else if queue < 0 || queue >= num_queues then
                    record ~line:!lineno ~task:e.task Bad_queue
                      (Printf.sprintf "queue %d outside [0,%d)" queue num_queues)
                  else if arrival < 0.0 || departure < 0.0 then
                    record ~line:!lineno ~task:e.task Negative_time
                      (Printf.sprintf "negative time (arrival %g, departure %g)"
                         arrival departure)
                  else if departure < arrival -. chain_tolerance then
                    record ~line:!lineno ~task:e.task Out_of_order
                      (Printf.sprintf "departure %g before arrival %g" departure
                         arrival)
                  else parsed := (!lineno, e) :: !parsed
              | _ ->
                  record ~line:!lineno Malformed_line "unparseable numeric field")
          | fields ->
              record ~line:!lineno Malformed_line
                (Printf.sprintf "expected 5 comma-separated fields, got %d"
                   (List.length fields))
        end
      end)
    lines;
  let parsed = List.rev !parsed in
  (* Pass 2: drop exact duplicates (keep the first occurrence). *)
  let seen = Hashtbl.create 256 in
  let deduped =
    List.filter
      (fun (line, e) ->
        let key = (e.task, e.state, e.queue, e.arrival, e.departure) in
        if Hashtbl.mem seen key then begin
          record ~line ~task:e.task Duplicate_event "exact duplicate record";
          false
        end
        else begin
          Hashtbl.add seen key ();
          true
        end)
      parsed
  in
  (* Pass 3: per-task chain repair. Sort each task's events by arrival
     and keep the longest valid prefix of the chain; a clock-skewed or
     missing record invalidates everything after it (the later arrivals
     can no longer be tied to a departure), not the whole task. *)
  let by_task = Hashtbl.create 64 in
  let task_order = ref [] in
  List.iter
    (fun (_line, e) ->
      match Hashtbl.find_opt by_task e.task with
      | None ->
          Hashtbl.add by_task e.task (ref [ e ]);
          task_order := e.task :: !task_order
      | Some l -> l := e :: !l)
    deduped;
  let task_order = List.rev !task_order in
  let tasks_dropped = ref 0 in
  let chains =
    List.filter_map
      (fun task ->
        let events = List.rev !(Hashtbl.find by_task task) in
        let events =
          List.sort
            (fun a b ->
              match compare a.arrival b.arrival with
              | 0 -> compare a.departure b.departure
              | c -> c)
            events
        in
        match events with
        | [] -> None
        | first :: _ when not (Float.equal first.arrival 0.0) ->
            record ~task Missing_initial
              (Printf.sprintf "first event arrives at %g, not 0" first.arrival);
            incr tasks_dropped;
            None
        | first :: rest ->
            let kept = ref [ first ] in
            let prev = ref first in
            let broken = ref false in
            List.iter
              (fun e ->
                if not !broken then begin
                  if Float.abs (e.arrival -. !prev.departure) > chain_tolerance
                  then begin
                    record ~task Broken_chain
                      (Printf.sprintf
                         "arrival %g disagrees with predecessor departure %g; \
                          dropping the task's remaining events"
                         e.arrival !prev.departure);
                    broken := true
                  end
                  else begin
                    kept := e :: !kept;
                    prev := e
                  end
                end)
              rest;
            Some (task, List.rev !kept))
      task_order
  in
  (* Pass 4: route consistency — every surviving task must enter at the
     same (majority) arrival queue and never revisit it, or
     [Event_store.of_trace] would reject the whole trace later. *)
  let entry_counts = Hashtbl.create 8 in
  List.iter
    (fun (_task, events) ->
      let q = (List.hd events).queue in
      Hashtbl.replace entry_counts q
        (1 + Option.value ~default:0 (Hashtbl.find_opt entry_counts q)))
    chains;
  let arrival_queue =
    Hashtbl.fold
      (fun q c best ->
        match best with
        | Some (_, c') when c' >= c -> best
        | _ -> Some (q, c))
      entry_counts None
  in
  let chains =
    match arrival_queue with
    | None -> []
    | Some (q0, _) ->
        List.filter_map
          (fun (task, events) ->
            let entry = List.hd events in
            if entry.queue <> q0 then begin
              record ~task Inconsistent_route
                (Printf.sprintf "task enters at queue %d, not the arrival queue %d"
                   entry.queue q0);
              incr tasks_dropped;
              None
            end
            else begin
              (* truncate at the first revisit of q0 *)
              let kept = ref [ entry ] in
              let ok = ref true in
              List.iter
                (fun e ->
                  if !ok then
                    if e.queue = q0 then begin
                      record ~task Inconsistent_route
                        "task revisits the arrival queue; dropping its remaining \
                         events";
                      ok := false
                    end
                    else kept := e :: !kept)
                (List.tl events);
              Some (task, List.rev !kept)
            end)
          chains
  in
  let events = List.concat_map snd chains in
  let report kept =
    {
      errors = !errors;
      lines_read = !lines_read;
      events_kept = kept;
      (* every non-header data line was a candidate record *)
      events_dropped = !data_lines - kept;
      tasks_dropped = !tasks_dropped;
    }
  in
  match events with
  | [] -> Error (report 0)
  | events -> (
      try Ok (create ~num_queues events, report (List.length events))
      with Invalid_argument msg ->
        (* The repair passes above should make this unreachable, but a
           residual inconsistency must degrade into a report, not an
           exception — that is the lenient contract. *)
        record Malformed_line ("residual inconsistency: " ^ msg);
        Error (report 0))

let load_lenient ~num_queues path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        Ok (of_csv_lenient ~num_queues text))
  with Sys_error msg -> Error msg

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let load ~num_queues path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        of_csv ~num_queues text)
  with Sys_error msg -> Error msg

let pp_summary ppf t =
  let lo, hi = span t in
  Format.fprintf ppf "trace: %d tasks, %d events, %d queues, time span [%.3f, %.3f]@."
    t.num_tasks (Array.length t.events) t.num_queues lo hi;
  Format.fprintf ppf "%6s %8s %12s %12s %8s@." "queue" "events" "mean-serv" "mean-wait"
    "util";
  for q = 0 to t.num_queues - 1 do
    let service, waiting = service_and_waiting t q in
    let n = Array.length service in
    if n > 0 then begin
      let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
      Format.fprintf ppf "%6d %8d %12.5f %12.5f %8.3f@." q n (mean service)
        (mean waiting) (utilization t q)
    end
  done
