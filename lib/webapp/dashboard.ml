(* One self-contained page. The JavaScript keeps a bounded client-side
   history of snapshots so the sparklines work without any server-side
   storage: the server stays stateless, the page owns presentation. *)

let html =
  {page|<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>qnet inference dashboard</title>
<style>
  :root { --bg:#11151a; --panel:#1a2029; --ink:#d7dde5; --dim:#78828e;
          --good:#3fb950; --warn:#d29922; --bad:#f85149; --acc:#58a6ff; }
  body { background:var(--bg); color:var(--ink); margin:0;
         font:14px/1.45 "SF Mono","Cascadia Code",Menlo,Consolas,monospace; }
  header { padding:14px 22px; border-bottom:1px solid #2a3139;
           display:flex; align-items:baseline; gap:18px; flex-wrap:wrap; }
  h1 { font-size:16px; margin:0; font-weight:600; }
  main { padding:18px 22px; max-width:1100px; }
  .cards { display:flex; gap:14px; flex-wrap:wrap; margin-bottom:18px; }
  .card { background:var(--panel); border:1px solid #2a3139; border-radius:8px;
          padding:12px 16px; min-width:150px; }
  .card .k { color:var(--dim); font-size:11px; text-transform:uppercase;
             letter-spacing:.08em; }
  .card .v { font-size:22px; margin-top:4px; }
  .badge { display:inline-block; border-radius:10px; padding:1px 9px;
           font-size:12px; border:1px solid transparent; }
  .b-good { color:var(--good); border-color:var(--good); }
  .b-warn { color:var(--warn); border-color:var(--warn); }
  .b-bad  { color:var(--bad);  border-color:var(--bad); }
  svg.spark { display:block; margin-top:6px; }
  table { border-collapse:collapse; width:100%; margin:6px 0 18px; }
  th, td { text-align:right; padding:5px 10px; border-bottom:1px solid #2a3139; }
  th { color:var(--dim); font-weight:500; font-size:12px; }
  th:first-child, td:first-child { text-align:left; }
  tr.bottleneck td { background:#2b1d1f; }
  tr.arrival td { color:var(--dim); }
  .section { color:var(--dim); font-size:12px; text-transform:uppercase;
             letter-spacing:.08em; margin:20px 0 4px; }
  #err { color:var(--bad); margin-left:auto; font-size:12px; }
  .chains { display:flex; gap:8px; flex-wrap:wrap; }
</style>
</head>
<body>
<header>
  <h1>qnet inference</h1>
  <span id="status" class="badge b-warn">connecting</span>
  <span id="conv" class="badge b-warn">&ndash;</span>
  <span id="wall" style="color:var(--dim)"></span>
  <span id="err"></span>
</header>
<main>
  <div class="cards">
    <div class="card"><div class="k">max R&#770; (service)</div>
      <div class="v" id="rhat">&ndash;</div>
      <svg id="spark-rhat" class="spark" width="160" height="34"></svg></div>
    <div class="card"><div class="k">total ESS</div>
      <div class="v" id="ess">&ndash;</div>
      <svg id="spark-ess" class="spark" width="160" height="34"></svg></div>
    <div class="card"><div class="k">iterations</div><div class="v" id="iters">&ndash;</div></div>
    <div class="card"><div class="k">bottleneck</div><div class="v" id="bneck">&ndash;</div></div>
  </div>
  <div class="section">chains</div>
  <div class="chains" id="chains"></div>
  <div class="section">per-queue posterior</div>
  <table id="queues">
    <thead><tr>
      <th>queue</th><th>mean svc</th><th>q05</th><th>q50</th><th>q95</th>
      <th>mean wait</th><th>wait frac</th><th>R&#770;</th><th>ESS</th>
      <th>ESS/s</th><th>acf1</th><th>n</th>
    </tr></thead><tbody></tbody>
  </table>
  <div class="section">runtime</div>
  <table id="runtime"><tbody></tbody></table>
</main>
<script>
"use strict";
const hist = { rhat: [], ess: [] };          // bounded client-side history
const HIST_MAX = 240;
const $ = id => document.getElementById(id);
const fmt = (x, d) => (x === null || x === undefined || !isFinite(x))
  ? "–" : Number(x).toFixed(d === undefined ? 3 : d);
const fmtInt = x => (x === null || x === undefined || !isFinite(x))
  ? "–" : Math.round(x).toLocaleString();

function badge(el, text, cls) {
  el.textContent = text;
  el.className = "badge " + cls;
}

function spark(svg, data, good) {
  const w = svg.width.baseVal.value, h = svg.height.baseVal.value;
  const pts = data.filter(x => x !== null && isFinite(x));
  if (pts.length < 2) { svg.innerHTML = ""; return; }
  const lo = Math.min(...pts), hi = Math.max(...pts), span = (hi - lo) || 1;
  const step = w / (pts.length - 1);
  const d = pts.map((x, i) =>
    (i ? "L" : "M") + (i * step).toFixed(1) + "," +
    (h - 3 - (h - 6) * (x - lo) / span).toFixed(1)).join(" ");
  svg.innerHTML = '<path d="' + d + '" fill="none" stroke="' +
    (good ? "#3fb950" : "#58a6ff") + '" stroke-width="1.5"/>';
}

function chainBadge(c) {
  const s = c.status || "";
  const cls = s === "healthy" ? "b-good"
    : s.startsWith("quarantined") ? "b-warn" : "b-bad";
  const el = document.createElement("span");
  el.className = "badge " + cls;
  el.title = s;
  el.textContent = "chain " + c.chain + " · " + s.split(":")[0] +
    " · " + fmtInt(c.iterations) + " it";
  return el;
}

function render(s) {
  $("err").textContent = "";
  const es = s.ensemble_status || "running";
  badge($("status"), es,
    es === "running" || es === "quorum" ? "b-good"
    : es === "degraded" ? "b-warn" : "b-bad");
  if (s.max_rhat === null || !isFinite(s.max_rhat))
    badge($("conv"), "warming up", "b-warn");
  else badge($("conv"), s.converged ? "converged" : "mixing",
             s.converged ? "b-good" : "b-warn");
  $("wall").textContent = fmt(s.wall_seconds, 1) + "s";
  $("rhat").textContent = fmt(s.max_rhat);
  $("iters").textContent = fmtInt(s.iterations_total);
  const queues = s.queues || [];
  const essTotal = queues.reduce((a, q) =>
    a + (isFinite(q.ess) && q.ess !== null ? q.ess : 0), 0);
  $("ess").textContent = fmtInt(essTotal);
  $("bneck").textContent = s.bottleneck >= 0 ? "queue " + s.bottleneck : "–";
  hist.rhat.push(isFinite(s.max_rhat) ? s.max_rhat : null);
  hist.ess.push(essTotal || null);
  if (hist.rhat.length > HIST_MAX) { hist.rhat.shift(); hist.ess.shift(); }
  spark($("spark-rhat"), hist.rhat, s.converged);
  spark($("spark-ess"), hist.ess, true);

  const ch = $("chains");
  ch.innerHTML = "";
  (s.chains || []).forEach(c => ch.appendChild(chainBadge(c)));

  const tb = $("queues").tBodies[0];
  tb.innerHTML = "";
  queues.forEach(q => {
    const tr = tb.insertRow();
    if (q.queue === s.bottleneck) tr.className = "bottleneck";
    if (q.queue === s.arrival_queue) tr.className = "arrival";
    const name = q.queue === s.arrival_queue
      ? "q" + q.queue + " (arrivals)" : "q" + q.queue;
    [name, fmt(q.mean_service, 4), fmt(q.service_q05, 4), fmt(q.service_q50, 4),
     fmt(q.service_q95, 4), fmt(q.mean_waiting, 4), fmt(q.wait_fraction, 3),
     fmt(q.rhat), fmtInt(q.ess), fmt(q.ess_per_sec, 1), fmt(q.acf1),
     fmtInt(q.samples)]
      .forEach(v => { tr.insertCell().textContent = v; });
  });

  const rt = $("runtime").tBodies[0];
  const gc = s.gc || {}, k = s.kernels || {};
  const shrinkRate = (k.slice_steps > 0)
    ? (k.slice_shrinks / k.slice_steps) : null;
  rt.innerHTML = "";
  [["minor words", fmtInt(gc.minor_words)],
   ["promoted words", fmtInt(gc.promoted_words)],
   ["major heap words", fmtInt(gc.heap_words)],
   ["minor / major GCs", fmtInt(gc.minor_collections) + " / " +
                         fmtInt(gc.major_collections)],
   ["piecewise kernels (pt/tail/bdd)",
    fmtInt(k.piecewise_point) + " / " + fmtInt(k.piecewise_tail) + " / " +
    fmtInt(k.piecewise_bounded)],
   ["slice steps", fmtInt(k.slice_steps)],
   ["slice shrinks per step", fmt(shrinkRate, 2)],
   ["skipped samples", fmtInt(s.skipped_samples)]]
    .forEach(([kk, vv]) => {
      const tr = rt.insertRow();
      tr.insertCell().textContent = kk;
      tr.insertCell().textContent = vv;
    });
}

async function tick() {
  try {
    const r = await fetch("/diagnostics.json", { cache: "no-store" });
    if (!r.ok) throw new Error("HTTP " + r.status);
    render(await r.json());
  } catch (e) {
    $("err").textContent = "poll failed: " + e.message;
    badge($("status"), "unreachable", "b-bad");
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
|page}
