(** The live inference dashboard served at [GET /dashboard]: one
    self-contained HTML document (inline CSS and JavaScript, no
    external assets — it must render from a loopback-only server on an
    air-gapped box) that polls [/diagnostics.json] once a second and
    renders convergence at a glance: the R̂/ESS headline with a
    converged/mixing badge, per-chain supervisor verdict badges,
    sparklines of max-R̂ and total ESS history accumulated client-side,
    a per-queue table (posterior mean and 90% interval, waiting
    fraction with the bottleneck row highlighted, R̂, ESS/sec, lag-1
    autocorrelation), and GC/kernel gauges. *)

val html : string
(** The complete document, ready to serve with
    [Content-Type: text/html]. *)
