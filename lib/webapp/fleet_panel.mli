val html : string
(** The [/fleet] page: a self-contained HTML document that polls
    [/fleet.json] once a second and renders per-tenant p50/p95/p99
    latency plus the queue-wait/refit/serve bottleneck ranking. No
    external assets; the server stays stateless. *)
