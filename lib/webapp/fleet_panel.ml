(* Self-contained like Dashboard: the server stays stateless, the
   page polls /fleet.json and owns all presentation. *)

let html =
  {page|<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>qnet fleet latency</title>
<style>
  :root { --bg:#11151a; --panel:#1a2029; --ink:#d7dde5; --dim:#78828e;
          --good:#3fb950; --warn:#d29922; --bad:#f85149; --acc:#58a6ff; }
  body { background:var(--bg); color:var(--ink); margin:0;
         font:14px/1.45 "SF Mono","Cascadia Code",Menlo,Consolas,monospace; }
  header { padding:14px 22px; border-bottom:1px solid #2a3139;
           display:flex; align-items:baseline; gap:18px; flex-wrap:wrap; }
  h1 { font-size:16px; margin:0; font-weight:600; }
  main { padding:18px 22px; max-width:1200px; }
  .cards { display:flex; gap:14px; flex-wrap:wrap; margin-bottom:18px; }
  .card { background:var(--panel); border:1px solid #2a3139; border-radius:8px;
          padding:12px 16px; min-width:170px; }
  .card .k { color:var(--dim); font-size:11px; text-transform:uppercase;
             letter-spacing:.08em; }
  .card .v { font-size:20px; margin-top:4px; }
  .badge { display:inline-block; border-radius:10px; padding:1px 9px;
           font-size:12px; border:1px solid transparent; }
  .b-good { color:var(--good); border-color:var(--good); }
  .b-warn { color:var(--warn); border-color:var(--warn); }
  .b-bad  { color:var(--bad);  border-color:var(--bad); }
  table { border-collapse:collapse; width:100%; margin:6px 0 18px; }
  th, td { text-align:right; padding:5px 10px; border-bottom:1px solid #2a3139; }
  th { color:var(--dim); font-weight:500; font-size:12px; }
  th:first-child, td:first-child { text-align:left; }
  .section { color:var(--dim); font-size:12px; text-transform:uppercase;
             letter-spacing:.08em; margin:20px 0 4px; }
  .bar { display:inline-block; height:10px; background:var(--acc);
         border-radius:2px; vertical-align:middle; }
  .bar.b0 { background:var(--bad); }
  #err { color:var(--bad); margin-left:auto; font-size:12px; }
</style>
</head>
<body>
<header>
  <h1>qnet fleet latency</h1>
  <span id="status" class="badge b-warn">connecting</span>
  <span id="drops" style="color:var(--dim)"></span>
  <span id="err"></span>
</header>
<main>
  <div class="cards" id="fleet-cards"></div>
  <div class="section">per-tenant latency (p50 / p95 / p99, seconds)</div>
  <table id="tenants">
    <thead><tr>
      <th>tenant</th>
      <th>ingest p95</th><th>queue-wait p50</th><th>queue-wait p95</th>
      <th>queue-wait p99</th><th>refit p50</th><th>refit p95</th>
      <th>refit p99</th><th>serve p95</th><th>bottleneck</th>
    </tr></thead><tbody></tbody>
  </table>
  <div class="section">where is my latency going?</div>
  <table id="bottlenecks">
    <thead><tr><th>tenant</th><th>ranking (fraction of pipeline time)</th></tr></thead>
    <tbody></tbody>
  </table>
</main>
<script>
"use strict";
const $ = id => document.getElementById(id);
const fmt = x => (x === null || x === undefined || !isFinite(x))
  ? "–" : (x >= 0.1 ? Number(x).toFixed(3) : Number(x).toExponential(2));

function badge(el, text, cls) {
  el.textContent = text;
  el.className = "badge " + cls;
}

function card(k, v) {
  return '<div class="card"><div class="k">' + k +
    '</div><div class="v">' + v + "</div></div>";
}

function render(s) {
  $("err").textContent = "";
  badge($("status"), "live", "b-good");
  $("drops").textContent = s.spans_dropped > 0
    ? s.spans_dropped + " spans dropped" : "";
  const f = s.fleet || {};
  $("fleet-cards").innerHTML =
    ["ingest", "queue_wait", "refit", "serve"].map(p => {
      const ph = f[p] || {};
      return card(p.replace("_", "-") + " p95",
        fmt(ph.p95) + '<span style="color:var(--dim);font-size:12px"> · n=' +
        (ph.count || 0) + "</span>");
    }).join("");
  const tb = $("tenants").tBodies[0];
  tb.innerHTML = "";
  (s.tenants || []).forEach(t => {
    const r = tb.insertRow();
    const q = t.queue_wait || {}, rf = t.refit || {};
    const cells = [
      t.tenant, fmt((t.ingest || {}).p95),
      fmt(q.p50), fmt(q.p95), fmt(q.p99),
      fmt(rf.p50), fmt(rf.p95), fmt(rf.p99),
      fmt((t.serve || {}).p95),
      (t.bottleneck && t.bottleneck.length) ? t.bottleneck[0].phase : "–",
    ];
    cells.forEach(c => { r.insertCell().textContent = c; });
  });
  const bb = $("bottlenecks").tBodies[0];
  bb.innerHTML = "";
  (s.tenants || []).forEach(t => {
    if (!t.bottleneck || !t.bottleneck.length) return;
    const r = bb.insertRow();
    r.insertCell().textContent = t.tenant;
    const cell = r.insertCell();
    cell.style.textAlign = "left";
    t.bottleneck.forEach((b, i) => {
      const w = Math.max(2, Math.round(180 * b.fraction));
      const bar = document.createElement("span");
      bar.className = "bar" + (i === 0 ? " b0" : "");
      bar.style.width = w + "px";
      cell.appendChild(bar);
      cell.appendChild(document.createTextNode(
        " " + b.phase + " " + (100 * b.fraction).toFixed(1) + "%  "));
    });
  });
}

async function tick() {
  try {
    const r = await fetch("/fleet.json", { cache: "no-store" });
    if (!r.ok) throw new Error("HTTP " + r.status);
    render(await r.json());
  } catch (e) {
    badge($("status"), "offline", "b-bad");
    $("err").textContent = String(e);
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
|page}
