module Metrics = Qnet_obs.Metrics
module Diagnostics = Qnet_obs.Diagnostics

type request = { meth : string; path : string; body : string }

type response = {
  status : string;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

let response ?(extra_headers = []) ?(content_type = "application/json")
    ~status body =
  { status; content_type; extra_headers; body }

type handler = request -> response option

type bind_error = {
  kind : [ `Addr_in_use | `Permission_denied | `Bad_host | `Other ];
  detail : string;
}

let bind_error_message e = e.detail

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  fell_back : bool;
  stopping : bool Atomic.t;
  mutable acceptor : Thread.t option;
}

let render_response (r : response) =
  let headers = Buffer.create 256 in
  Buffer.add_string headers (Printf.sprintf "HTTP/1.1 %s\r\n" r.status);
  Buffer.add_string headers
    (Printf.sprintf "Content-Type: %s\r\n" r.content_type);
  List.iter
    (fun (k, v) -> Buffer.add_string headers (Printf.sprintf "%s: %s\r\n" k v))
    r.extra_headers;
  Buffer.add_string headers
    (Printf.sprintf "Content-Length: %d\r\nConnection: close\r\n\r\n"
       (String.length r.body));
  Buffer.contents headers ^ r.body

(* Bounded request reader: request line, headers (only Content-Length
   is interpreted), then exactly Content-Length body bytes. Headers
   must be consumed even when ignored: closing a socket with unread
   data makes the kernel send RST and the client sees ECONNRESET
   instead of our response. Returns [None] on a malformed or oversized
   request. *)
let max_head_bytes = 16 * 1024
let max_body_bytes = 8 * 1024 * 1024

type raw = { request_line : string; content_length : int; body : string }

let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  (* accumulate until the blank line ending the headers *)
  let rec fill_head () =
    let head = Buffer.contents buf in
    let marker =
      let rec find i =
        if i + 3 >= String.length head then None
        else if
          head.[i] = '\r' && head.[i + 1] = '\n' && head.[i + 2] = '\r'
          && head.[i + 3] = '\n'
        then Some (i + 4)
        else find (i + 1)
      in
      find 0
    in
    match marker with
    | Some stop -> Some (head, String.length head - stop)
    | None ->
        if Buffer.length buf >= max_head_bytes then None
        else (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              fill_head ()
          | exception Unix.Unix_error _ -> None)
  in
  match fill_head () with
  | None -> None
  | Some (head, surplus) -> (
      let lines = String.split_on_char '\n' head in
      match lines with
      | [] -> None
      | request_line :: headers ->
          let request_line = String.trim request_line in
          let content_length =
            List.fold_left
              (fun acc line ->
                match String.index_opt line ':' with
                | None -> acc
                | Some i ->
                    let key =
                      String.lowercase_ascii (String.trim (String.sub line 0 i))
                    in
                    if key = "content-length" then begin
                      let v =
                        String.trim
                          (String.sub line (i + 1) (String.length line - i - 1))
                      in
                      match int_of_string_opt v with
                      | Some n when n >= 0 -> n
                      | _ -> acc
                    end
                    else acc)
              0 headers
          in
          if content_length > max_body_bytes then None
          else begin
            let body = Buffer.create (Stdlib.min content_length 65536) in
            (* body bytes that arrived with the head *)
            let head_len = String.length head in
            Buffer.add_string body
              (String.sub head (head_len - surplus) surplus);
            let rec fill_body () =
              if Buffer.length body >= content_length then true
              else
                match
                  Unix.read fd chunk 0
                    (Stdlib.min (Bytes.length chunk)
                       (content_length - Buffer.length body))
                with
                | 0 -> false
                | n ->
                    Buffer.add_subbytes body chunk 0 n;
                    fill_body ()
                | exception Unix.Unix_error _ -> false
            in
            if fill_body () then
              Some
                {
                  request_line;
                  content_length;
                  body = String.sub (Buffer.contents body) 0 content_length;
                }
            else None
          end)

let builtin_routes registry diagnostics req =
  match (req.meth, req.path) with
  | "GET", "/metrics" ->
      Some
        (response ~status:"200 OK"
           ~content_type:"text/plain; version=0.0.4; charset=utf-8"
           (Metrics.to_prometheus registry))
  | "GET", "/metrics.json" ->
      Some
        (response ~status:"200 OK" ~content_type:"application/x-ndjson"
           (Metrics.to_jsonl ~ts:(Qnet_obs.Clock.now ()) registry))
  | "GET", "/healthz" ->
      Some (response ~status:"200 OK" ~content_type:"text/plain" "ok\n")
  | "GET", "/diagnostics.json" ->
      Some
        (response ~status:"200 OK"
           (Diagnostics.snapshot_json diagnostics ^ "\n"))
  | "GET", ("/dashboard" | "/dashboard/") ->
      Some
        (response ~status:"200 OK" ~content_type:"text/html; charset=utf-8"
           Dashboard.html)
  | _ -> None

let route registry diagnostics handler raw =
  match String.split_on_char ' ' raw.request_line with
  | [ meth; path; _ ] | [ meth; path ] -> (
      let path =
        match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      let req =
        { meth = String.uppercase_ascii meth; path; body = raw.body }
      in
      let extension =
        match handler with
        | None -> None
        | Some h -> (
            try h req
            with e ->
              Some
                (response ~status:"500 Internal Server Error"
                   ~content_type:"text/plain"
                   (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))))
      in
      match extension with
      | Some r -> r
      | None -> (
          match builtin_routes registry diagnostics req with
          | Some r -> r
          | None ->
              if req.meth = "GET" then
                response ~status:"404 Not Found" ~content_type:"text/plain"
                  "not found\n"
              else
                response ~status:"405 Method Not Allowed"
                  ~content_type:"text/plain" "method not served here\n"))
  | _ ->
      response ~status:"400 Bad Request" ~content_type:"text/plain"
        "malformed request line\n"

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> ()
      | k -> go (off + k)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let serve_client registry diagnostics handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | None ->
          write_all fd
            (render_response
               (response ~status:"400 Bad Request" ~content_type:"text/plain"
                  "malformed or oversized request\n"))
      | Some raw ->
          write_all fd (render_response (route registry diagnostics handler raw)))

let accept_loop t registry diagnostics handler =
  let continue_ = ref true in
  while !continue_ && not (Atomic.get t.stopping) do
    match Unix.accept t.sock with
    | client, _ ->
        ignore
          (Thread.create
             (fun () -> serve_client registry diagnostics handler client)
             ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listening socket closed by [stop] *)
        continue_ := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Thread.yield ()
  done

let bind_once ~host ~port =
  match
    let addr = Unix.inet_addr_of_string host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (addr, port));
       Unix.listen sock 64
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    let bound_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (sock, bound_port)
  with
  | exception Unix.Unix_error (err, fn, _) ->
      let kind =
        match err with
        | Unix.EADDRINUSE -> `Addr_in_use
        | Unix.EACCES | Unix.EPERM -> `Permission_denied
        | _ -> `Other
      in
      Error
        {
          kind;
          detail =
            Printf.sprintf "cannot bind %s:%d: %s (%s)" host port
              (Unix.error_message err) fn;
        }
  | exception Failure _ ->
      Error { kind = `Bad_host; detail = Printf.sprintf "invalid host %S" host }
  | pair -> Ok pair

let start ?(registry = Metrics.default) ?(diagnostics = Diagnostics.default)
    ?handler ?(retry_ephemeral = false) ?(host = "127.0.0.1") ~port () =
  let bound =
    match bind_once ~host ~port with
    | Ok (sock, p) -> Ok (sock, p, false)
    | Error ({ kind = `Addr_in_use; _ } as e) when retry_ephemeral && port <> 0
      -> (
        (* the requested port is taken: a daemon would rather come up
           on an ephemeral port than not at all *)
        match bind_once ~host ~port:0 with
        | Ok (sock, p) -> Ok (sock, p, true)
        | Error _ -> Error e)
    | Error e -> Error e
  in
  match bound with
  | Error e -> Error e
  | Ok (sock, bound_port, fell_back) ->
      let t =
        { sock; bound_port; fell_back; stopping = Atomic.make false;
          acceptor = None }
      in
      t.acceptor <-
        Some
          (Thread.create (fun () -> accept_loop t registry diagnostics handler) ());
      Ok t

let port t = t.bound_port
let fell_back t = t.fell_back

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    match t.acceptor with None -> () | Some th -> Thread.join th
  end
