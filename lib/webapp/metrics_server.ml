module Metrics = Qnet_obs.Metrics
module Diagnostics = Qnet_obs.Diagnostics

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  mutable acceptor : Thread.t option;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let read_request_line fd =
  (* Read through the end of the headers (blank line, 8 KiB cap) but
     return only the request line — headers are ignored, yet must be
     consumed: closing a socket with unread data makes the kernel send
     RST and the client sees ECONNRESET instead of our response. *)
  let line = Buffer.create 256 in
  let chunk = Bytes.create 1 in
  let rec go n ~in_line ~blank =
    if n >= 8192 then ()
    else
      match Unix.read fd chunk 0 1 with
      | 0 -> ()
      | _ -> (
          match Bytes.get chunk 0 with
          | '\n' -> if not blank then go (n + 1) ~in_line:false ~blank:true
          | '\r' -> go (n + 1) ~in_line ~blank
          | c ->
              if in_line then Buffer.add_char line c;
              go (n + 1) ~in_line ~blank:false)
      | exception Unix.Unix_error _ -> ()
  in
  go 0 ~in_line:true ~blank:false;
  Buffer.contents line

let route registry diagnostics line =
  match String.split_on_char ' ' line with
  | [ "GET"; path; _ ] | [ "GET"; path ] -> (
      let path =
        match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      match path with
      | "/metrics" ->
          http_response ~status:"200 OK"
            ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (Metrics.to_prometheus registry)
      | "/metrics.json" ->
          http_response ~status:"200 OK" ~content_type:"application/x-ndjson"
            (Metrics.to_jsonl ~ts:(Qnet_obs.Clock.now ()) registry)
      | "/healthz" ->
          http_response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
      | "/diagnostics.json" ->
          http_response ~status:"200 OK" ~content_type:"application/json"
            (Diagnostics.snapshot_json diagnostics ^ "\n")
      | "/dashboard" | "/dashboard/" ->
          http_response ~status:"200 OK"
            ~content_type:"text/html; charset=utf-8" Dashboard.html
      | _ ->
          http_response ~status:"404 Not Found" ~content_type:"text/plain"
            "not found\n")
  | _ ->
      http_response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET is served\n"

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> ()
      | k -> go (off + k)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let serve_client registry diagnostics fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let line = read_request_line fd in
      write_all fd (route registry diagnostics line))

let accept_loop t registry diagnostics =
  let continue_ = ref true in
  while !continue_ && not (Atomic.get t.stopping) do
    match Unix.accept t.sock with
    | client, _ ->
        ignore
          (Thread.create (fun () -> serve_client registry diagnostics client) ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listening socket closed by [stop] *)
        continue_ := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Thread.yield ()
  done

let start ?(registry = Metrics.default) ?(diagnostics = Diagnostics.default)
    ?(host = "127.0.0.1") ~port () =
  match
    let addr = Unix.inet_addr_of_string host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (addr, port));
       Unix.listen sock 16
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    let bound_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    { sock; bound_port; stopping = Atomic.make false; acceptor = None }
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "cannot bind %s:%d: %s (%s)" host port
               (Unix.error_message err) fn)
  | exception Failure _ -> Error (Printf.sprintf "invalid host %S" host)
  | t ->
      t.acceptor <-
        Some (Thread.create (fun () -> accept_loop t registry diagnostics) ());
      Ok t

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    match t.acceptor with None -> () | Some th -> Thread.join th
  end
