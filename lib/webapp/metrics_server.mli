(** A minimal, dependency-free HTTP endpoint exposing the telemetry
    registry — the same discipline the paper assumes of the services
    being modeled, applied to our own inference runtime.

    Routes:
    - [GET /metrics] — Prometheus text exposition format;
    - [GET /metrics.json] — JSONL snapshot (one sample per line);
    - [GET /diagnostics.json] — one inference-quality snapshot from the
      {!Qnet_obs.Diagnostics} hub (split-R̂, ESS/sec, per-queue
      posterior summaries, GC and kernel counters);
    - [GET /dashboard] — the self-contained live HTML dashboard
      ({!Dashboard.html}) polling [/diagnostics.json];
    - [GET /healthz] — liveness probe, returns [ok].

    The server is a single accept-loop thread plus one short-lived
    thread per connection, listening on the loopback interface only.
    It serves scrapes concurrently with a running inference: the
    registry's shard design makes reads lock-free and always
    consistent per-cell. This is an operational endpoint for scrapers
    and smoke tests, not a hardened public server. *)

type t

val start :
  ?registry:Qnet_obs.Metrics.registry ->
  ?diagnostics:Qnet_obs.Diagnostics.t ->
  ?host:string ->
  port:int ->
  unit ->
  (t, string) result
(** [start ~port ()] binds [host] (default ["127.0.0.1"]) on [port]
    ([0] picks an ephemeral port — see {!port}) and serves until
    {!stop}. [diagnostics] (default {!Qnet_obs.Diagnostics.default})
    backs [/diagnostics.json] and the dashboard. [Error] if the
    address cannot be bound. *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val stop : t -> unit
(** Close the listening socket and join the accept loop. Connections
    already accepted finish serving; idempotent. *)
