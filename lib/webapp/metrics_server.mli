(** A minimal, dependency-free HTTP endpoint exposing the telemetry
    registry — the same discipline the paper assumes of the services
    being modeled, applied to our own inference runtime.

    Built-in routes:
    - [GET /metrics] — Prometheus text exposition format;
    - [GET /metrics.json] — JSONL snapshot (one sample per line);
    - [GET /diagnostics.json] — one inference-quality snapshot from the
      {!Qnet_obs.Diagnostics} hub (split-R̂, ESS/sec, per-queue
      posterior summaries, GC and kernel counters);
    - [GET /dashboard] — the self-contained live HTML dashboard
      ({!Dashboard.html}) polling [/diagnostics.json];
    - [GET /healthz] — liveness probe, returns [ok].

    A caller can graft additional routes — including [POST] routes
    with a request body — through the [handler] hook; the serving
    daemon ([Qnet_serve.Daemon]) mounts [/ingest], [/shards.json] and
    [/tenants/:id/posterior.json] this way, sharing one listener with
    the scrape endpoints above.

    The server is a single accept-loop thread plus one short-lived
    thread per connection, listening on the loopback interface only
    by default. It serves scrapes concurrently with a running
    inference: the registry's shard design makes reads lock-free and
    always consistent per-cell. This is an operational endpoint for
    scrapers and smoke tests, not a hardened public server. *)

type t

(** {1 Requests and responses (for [handler] extensions)} *)

type request = {
  meth : string;  (** verb, uppercased: ["GET"], ["POST"], ... *)
  path : string;  (** request path with any [?query] suffix stripped *)
  body : string;  (** request body (["" ] when absent); capped at 8 MiB *)
}

type response = {
  status : string;  (** e.g. ["200 OK"], ["429 Too Many Requests"] *)
  content_type : string;
  extra_headers : (string * string) list;
      (** e.g. [[("Retry-After", "1")]]; [Content-Type],
          [Content-Length] and [Connection] are always emitted *)
  body : string;
}

val response :
  ?extra_headers:(string * string) list ->
  ?content_type:string ->
  status:string ->
  string ->
  response
(** Response constructor; [content_type] defaults to
    ["application/json"]. *)

type handler = request -> response option
(** Consulted before the built-in routes; [None] falls through to
    them. A handler raising an exception yields a [500] (the
    connection thread never dies silently). *)

(** {1 Startup errors} *)

type bind_error = {
  kind : [ `Addr_in_use | `Permission_denied | `Bad_host | `Other ];
  detail : string;  (** human-readable cause, host and port included *)
}

val bind_error_message : bind_error -> string

val start :
  ?registry:Qnet_obs.Metrics.registry ->
  ?diagnostics:Qnet_obs.Diagnostics.t ->
  ?handler:handler ->
  ?retry_ephemeral:bool ->
  ?host:string ->
  port:int ->
  unit ->
  (t, bind_error) result
(** [start ~port ()] binds [host] (default ["127.0.0.1"]) on [port]
    ([0] picks an ephemeral port — see {!port}) and serves until
    {!stop}. [diagnostics] (default {!Qnet_obs.Diagnostics.default})
    backs [/diagnostics.json] and the dashboard.

    Bind failures are typed, never raised: a daemon can match on
    [`Addr_in_use] and decide. With [retry_ephemeral:true] (default
    [false]) an [`Addr_in_use] on a nonzero [port] is retried once on
    an ephemeral port ([0]), so startup survives port collisions; use
    {!port} and {!fell_back} to learn where the server actually
    landed. *)

val port : t -> int
(** The actually bound port (useful with [port:0] or after an
    ephemeral fallback). *)

val fell_back : t -> bool
(** [true] when [retry_ephemeral] rebound the server on an ephemeral
    port because the requested one was taken. *)

val stop : t -> unit
(** Close the listening socket and join the accept loop. Connections
    already accepted finish serving; idempotent. *)
