let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else if fa *. fb > 0.0 then invalid_arg "Roots.bisect: root not bracketed"
  else begin
    let rec loop a b fa n =
      let m = 0.5 *. (a +. b) in
      if n = 0 || b -. a <= tol then m
      else
        let fm = f m in
        if Float.equal fm 0.0 then m
        else if fa *. fm < 0.0 then loop a m fa (n - 1)
        else loop m b fm (n - 1)
    in
    loop (Float.min a b) (Float.max a b) fa max_iter
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else if fa *. fb > 0.0 then invalid_arg "Roots.brent: root not bracketed"
  else begin
    (* Standard Brent: keep the bracket [a, b] with |f b| <= |f a|. *)
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let iter = ref 0 in
    while Float.abs !fb > 0.0 && Float.abs (!b -. !a) > tol && !iter < max_iter do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo = (3.0 *. !a +. !b) /. 4.0 and hi = !b in
      let lo, hi = (Float.min lo hi, Float.max lo hi) in
      let cond1 = s < lo || s > hi in
      let cond2 = !mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0 in
      let cond3 = (not !mflag) && Float.abs (s -. !b) >= Float.abs !d /. 2.0 in
      let s =
        if cond1 || cond2 || cond3 then begin
          mflag := true;
          0.5 *. (!a +. !b)
        end
        else begin
          mflag := false;
          s
        end
      in
      let fs = f s in
      d := !c -. !b;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0.0 then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end
    done;
    !b
  end

let inv_phi = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section_min ?(tol = 1e-10) f a b =
  let rec loop a b c d fc fd n =
    if Float.abs (b -. a) <= tol || n = 0 then 0.5 *. (a +. b)
    else if fc < fd then begin
      let b = d in
      let d = c in
      let fd = fc in
      let c = b -. (inv_phi *. (b -. a)) in
      loop a b c d (f c) fd (n - 1)
    end
    else begin
      let a = c in
      let c = d in
      let fc = fd in
      let d = a +. (inv_phi *. (b -. a)) in
      loop a b c d fc (f d) (n - 1)
    end
  in
  let c = b -. (inv_phi *. (b -. a)) in
  let d = a +. (inv_phi *. (b -. a)) in
  loop a b c d (f c) (f d) 300

let kahan_sum xs =
  let sum = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := t -. !sum -. y;
      sum := t)
    xs;
  !sum
