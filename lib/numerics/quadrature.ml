let simpson a b fa fm fb =
  let h = b -. a in
  h /. 6.0 *. (fa +. (4.0 *. fm) +. fb)

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 48) f a b =
  if not (Float.is_finite a && Float.is_finite b) then
    invalid_arg "Quadrature.adaptive_simpson: endpoints must be finite";
  if a > b then invalid_arg "Quadrature.adaptive_simpson: a > b";
  if a = b then 0.0
  else begin
    let rec go a b fa fm fb whole tol depth =
      let m = 0.5 *. (a +. b) in
      let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
      let flm = f lm and frm = f rm in
      let left = simpson a m fa flm fm in
      let right = simpson m b fm frm fb in
      let delta = left +. right -. whole in
      if depth <= 0 || Float.abs delta <= 15.0 *. tol then
        left +. right +. (delta /. 15.0)
      else
        go a m fa flm fm left (tol /. 2.0) (depth - 1)
        +. go m b fm frm fb right (tol /. 2.0) (depth - 1)
    in
    let fa = f a and fb = f b and fm = f (0.5 *. (a +. b)) in
    let whole = simpson a b fa fm fb in
    go a b fa fm fb whole tol max_depth
  end

let trapezoid ?(n = 1024) f a b =
  if n <= 0 then invalid_arg "Quadrature.trapezoid: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let acc = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (float_of_int i *. h))
  done;
  !acc *. h

let log_integral_exp ?(n = 4096) log_f a b =
  if a >= b then neg_infinity
  else begin
    let n = if n mod 2 = 0 then n else n + 1 in
    let h = (b -. a) /. float_of_int n in
    (* Composite Simpson applied to exp (log_f x - m) with m the max
       of the sampled log values. *)
    let logs = Array.init (n + 1) (fun i -> log_f (a +. (float_of_int i *. h))) in
    let m = Array.fold_left Float.max neg_infinity logs in
    if Float.equal m neg_infinity then neg_infinity
    else begin
      let acc = ref 0.0 in
      for i = 0 to n do
        let w =
          if i = 0 || i = n then 1.0 else if i mod 2 = 1 then 4.0 else 2.0
        in
        acc := !acc +. (w *. exp (logs.(i) -. m))
      done;
      m +. log (!acc *. h /. 3.0)
    end
  end
