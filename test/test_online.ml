(* Tests for the queue-length timeline and online (windowed) StEM. *)

module Rng = Qnet_prob.Rng
module Trace = Qnet_trace.Trace
module Timeline = Qnet_trace.Timeline
module Topologies = Qnet_des.Topologies
module Network = Qnet_des.Network
module Obs = Qnet_core.Observation
module Online_stem = Qnet_core.Online_stem
module Params = Qnet_core.Params

let check_close ?(eps = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

let ev task state queue arrival departure =
  { Trace.task; state; queue; arrival; departure }

(* queue 1: task 0 in system [1, 2]; task 1 in system [1.5, 3] *)
let small () =
  Trace.create ~num_queues:2
    [
      ev 0 0 0 0.0 1.0;
      ev 0 1 1 1.0 2.0;
      ev 1 0 0 0.0 1.5;
      ev 1 1 1 1.5 3.0;
    ]

let test_queue_length_steps () =
  let t = small () in
  let steps = Timeline.queue_length t 1 in
  let as_list = Array.to_list (Array.map (fun p -> (p.Timeline.time, p.Timeline.count)) steps) in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "step function"
    [ (1.0, 1); (1.5, 2); (2.0, 1); (3.0, 0) ]
    as_list

let test_time_average_length () =
  let t = small () in
  (* N(t) over [1, 3]: 1 on [1,1.5), 2 on [1.5,2), 1 on [2,3):
     integral = 0.5 + 1.0 + 1.0 = 2.5 over width 2 => 1.25 *)
  check_close ~eps:1e-9 "L over [1,3]" 1.25
    (Timeline.time_average_length ~from_:1.0 ~until:3.0 t 1);
  (* narrower window inside the double-occupancy period *)
  check_close ~eps:1e-9 "L over [1.5,2]" 2.0
    (Timeline.time_average_length ~from_:1.5 ~until:2.0 t 1)

let test_peak_length () =
  let t = small () in
  let peak, at = Timeline.peak_length t 1 in
  Alcotest.(check int) "peak" 2 peak;
  check_close "peak time" 1.5 at

let test_littles_law_on_mm1 () =
  let rng = Rng.create ~seed:801 () in
  let net = Topologies.single_mm1 ~arrival_rate:4.0 ~service_rate:6.0 in
  let trace = Net_helpers.simulate_n rng net 30_000 in
  let r = Timeline.littles_law_residual trace 1 in
  Alcotest.(check bool) (Printf.sprintf "residual %.4f" r) true (r < 0.03)

let test_littles_law_empty_queue () =
  let t = small () in
  (* build a 3-queue trace where queue 2 is empty *)
  let t3 = Trace.create ~num_queues:3 (Array.to_list t.Trace.events) in
  Alcotest.(check bool) "nan on empty" true
    (Float.is_nan (Timeline.littles_law_residual t3 2))

(* ------------------------------------------------------------------ *)
(* Online StEM *)

let ramped_trace ~seed ~tasks =
  let net = Topologies.tandem ~arrival_rate:4.0 ~service_rates:[ 20.0 ] in
  let rng = Rng.create ~seed () in
  let workload =
    Qnet_des.Workload.Ramp { initial_rate = 1.0; final_rate = 8.0; duration = 150.0 }
  in
  Network.simulate_tasks rng net ~workload ~num_tasks:tasks

let test_online_tracks_ramp () =
  let trace = ramped_trace ~seed:802 ~tasks:600 in
  let rng = Rng.create ~seed:803 () in
  let mask = Obs.mask rng (Obs.Task_fraction 0.25) trace in
  let steps = Online_stem.run ~config:{ Online_stem.default_config with Online_stem.num_windows = 4 } rng trace ~mask in
  Alcotest.(check bool) "several windows" true (List.length steps >= 3);
  let rates = List.map (fun (_, r) -> r) (Online_stem.arrival_rate_trajectory steps) in
  (match (rates, List.rev rates) with
  | first :: _, last :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "rate rises: %.2f -> %.2f" first last)
        true
        (last > 1.5 *. first)
  | _ -> Alcotest.fail "empty trajectory");
  (* the service-rate estimate stays roughly constant *)
  List.iter
    (fun s ->
      let m = s.Online_stem.mean_service.(1) in
      Alcotest.(check bool)
        (Printf.sprintf "service estimate %.4f near 0.05" m)
        true
        (m > 0.02 && m < 0.1))
    steps

let test_online_whole_trace_single_window () =
  (* one window must agree with a plain StEM run on the same data *)
  let net = Topologies.tandem ~arrival_rate:5.0 ~service_rates:[ 9.0 ] in
  let rng = Rng.create ~seed:804 () in
  let trace = Network.simulate_poisson rng net ~num_tasks:300 in
  let mask = Obs.mask rng (Obs.Task_fraction 0.3) trace in
  let steps =
    Online_stem.run
      ~config:{ Online_stem.num_windows = 1; iterations = 120; min_tasks = 5 }
      (Rng.create ~seed:805 ())
      trace ~mask
  in
  match steps with
  | [ s ] ->
      Alcotest.(check int) "all tasks" 300 s.Online_stem.num_tasks;
      check_close ~eps:0.02 "service estimate" (1.0 /. 9.0) s.Online_stem.mean_service.(1)
  | _ -> Alcotest.failf "expected one step, got %d" (List.length steps)

let test_online_min_tasks_skips () =
  let trace = ramped_trace ~seed:806 ~tasks:80 in
  let rng = Rng.create ~seed:807 () in
  let mask = Obs.mask rng (Obs.Task_fraction 0.5) trace in
  let steps =
    Online_stem.run
      ~config:{ Online_stem.num_windows = 40; iterations = 30; min_tasks = 15 }
      rng trace ~mask
  in
  (* many of the 40 tiny windows are skipped *)
  Alcotest.(check bool)
    (Printf.sprintf "windows kept: %d" (List.length steps))
    true
    (List.length steps < 40)

let test_online_mask_length_checked () =
  let trace = ramped_trace ~seed:808 ~tasks:50 in
  let rng = Rng.create () in
  match Online_stem.run rng trace ~mask:[| true |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mask length checked"

(* --- windowing hardening: adversarial ingestion ------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let collect_warnings () =
  let warnings = ref [] in
  ((fun w -> warnings := w :: !warnings), warnings)

(* Corrupt one task's entry timestamp in place (bypassing
   Trace.create's validation, the way a broken ingestion path would). *)
let poison_entry trace task value =
  let events = Array.copy trace.Trace.events in
  Array.iteri
    (fun i e ->
      if e.Trace.task = task && e.Trace.arrival = 0.0 then
        events.(i) <- { e with Trace.departure = value })
    events;
  { trace with Trace.events }

let test_online_nonfinite_entry_dropped () =
  let trace = ramped_trace ~seed:809 ~tasks:300 in
  let rng = Rng.create ~seed:810 () in
  let mask = Obs.mask rng (Obs.Task_fraction 0.25) trace in
  let victim = trace.Trace.events.(0).Trace.task in
  let bad = poison_entry trace victim infinity in
  let on_warning, warnings = collect_warnings () in
  let steps =
    Online_stem.run
      ~config:{ Online_stem.default_config with Online_stem.num_windows = 3 }
      ~on_warning rng bad ~mask
  in
  Alcotest.(check bool) "windows still fitted" true (List.length steps >= 2);
  Alcotest.(check bool) "drop warned" true
    (List.exists (fun w -> contains w "non-finite") !warnings)

let test_online_missing_entry_dropped () =
  let trace = ramped_trace ~seed:811 ~tasks:200 in
  let rng = Rng.create ~seed:812 () in
  let mask = Obs.mask rng (Obs.Task_fraction 0.25) trace in
  (* shift one task's entry event off arrival time 0, so entry_times
     never sees it: the task has no usable entry at all *)
  let victim = trace.Trace.events.(0).Trace.task in
  let events = Array.copy trace.Trace.events in
  Array.iteri
    (fun i e ->
      if e.Trace.task = victim && e.Trace.arrival = 0.0 then
        events.(i) <- { e with Trace.arrival = 0.5 })
    events;
  let bad = { trace with Trace.events } in
  let on_warning, warnings = collect_warnings () in
  let steps =
    Online_stem.run
      ~config:{ Online_stem.default_config with Online_stem.num_windows = 3 }
      ~on_warning rng bad ~mask
  in
  Alcotest.(check bool) "windows still fitted" true (List.length steps >= 2);
  Alcotest.(check bool) "missing entry warned" true
    (List.exists (fun w -> contains w "no usable entry") !warnings)

let test_online_out_of_order_entries_warn () =
  (* task ids numbered against time order: windowing must assign by
     timestamp value (as if sorted) and flag the reordering *)
  let ev task queue arrival departure =
    { Trace.task; state = 0; queue; arrival; departure }
  in
  let trace =
    Trace.create ~num_queues:1
      [ ev 0 0 0.0 9.0; ev 1 0 0.0 5.0; ev 2 0 0.0 1.0 ]
  in
  let mask = Array.map (fun _ -> true) trace.Trace.events in
  let on_warning, warnings = collect_warnings () in
  let steps =
    Online_stem.run
      ~config:{ Online_stem.num_windows = 2; iterations = 4; min_tasks = 1000 }
      ~on_warning (Rng.create ()) trace ~mask
  in
  Alcotest.(check int) "all windows below min_tasks" 0 (List.length steps);
  Alcotest.(check bool) "reordering warned" true
    (List.exists (fun w -> contains w "out of task order") !warnings)

let test_online_degenerate_span_survives () =
  (* every task enters at the same instant: unit-width fallback instead
     of an inverted window or a hard failure *)
  let ev task queue arrival departure =
    { Trace.task; state = 0; queue; arrival; departure }
  in
  let trace =
    Trace.create ~num_queues:1
      [ ev 0 0 0.0 2.0; ev 1 0 0.0 2.0; ev 2 0 0.0 2.0 ]
  in
  let mask = Array.map (fun _ -> true) trace.Trace.events in
  let on_warning, warnings = collect_warnings () in
  let steps =
    Online_stem.run
      ~config:{ Online_stem.num_windows = 4; iterations = 4; min_tasks = 1000 }
      ~on_warning (Rng.create ()) trace ~mask
  in
  Alcotest.(check int) "no window reaches min_tasks" 0 (List.length steps);
  Alcotest.(check bool) "degeneracy warned" true
    (List.exists (fun w -> contains w "degenerate") !warnings)

let test_online_all_entries_corrupt_rejected () =
  let ev task queue arrival departure =
    { Trace.task; state = 0; queue; arrival; departure }
  in
  let trace =
    Trace.create ~num_queues:1 [ ev 0 0 0.0 1.0; ev 1 0 0.0 2.0 ]
  in
  let bad = poison_entry (poison_entry trace 0 infinity) 1 infinity in
  let mask = Array.map (fun _ -> true) bad.Trace.events in
  match Online_stem.run (Rng.create ()) bad ~mask with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "clear error" true (contains msg "finite entry")
  | _ -> Alcotest.fail "expected Invalid_argument when no entry is usable"

let () =
  Alcotest.run "qnet_online"
    [
      ( "timeline",
        [
          Alcotest.test_case "queue length steps" `Quick test_queue_length_steps;
          Alcotest.test_case "time-average L" `Quick test_time_average_length;
          Alcotest.test_case "peak" `Quick test_peak_length;
          Alcotest.test_case "little's law on M/M/1" `Slow test_littles_law_on_mm1;
          Alcotest.test_case "empty queue nan" `Quick test_littles_law_empty_queue;
        ] );
      ( "online-stem",
        [
          Alcotest.test_case "tracks ramp" `Slow test_online_tracks_ramp;
          Alcotest.test_case "single window = plain StEM" `Slow
            test_online_whole_trace_single_window;
          Alcotest.test_case "min_tasks skips" `Quick test_online_min_tasks_skips;
          Alcotest.test_case "mask length" `Quick test_online_mask_length_checked;
          Alcotest.test_case "non-finite entry dropped" `Quick
            test_online_nonfinite_entry_dropped;
          Alcotest.test_case "missing entry dropped" `Quick
            test_online_missing_entry_dropped;
          Alcotest.test_case "out-of-order entries warn" `Quick
            test_online_out_of_order_entries_warn;
          Alcotest.test_case "degenerate span survives" `Quick
            test_online_degenerate_span_survives;
          Alcotest.test_case "all entries corrupt rejected" `Quick
            test_online_all_entries_corrupt_rejected;
        ] );
    ]
