(* qnet_lint: every rule against small inline sources (positive,
   negative, suppressed), the suppression/baseline machinery, the
   reporters, and a whole-repo smoke test asserting the tree is
   lint-clean. *)

module Finding = Qnet_lint_lib.Finding
module Driver = Qnet_lint_lib.Driver
module Rules = Qnet_lint_lib.Rules
module Baseline = Qnet_lint_lib.Baseline
module Suppress = Qnet_lint_lib.Suppress
module Reporter = Qnet_lint_lib.Reporter
module Jsonx = Qnet_obs.Jsonx

let default_path = "lib/core/sample.ml"

let active ?only ?(path = default_path) src =
  fst (Driver.lint_source ?only ~path src)

let suppressed ?only ?(path = default_path) src =
  snd (Driver.lint_source ?only ~path src)

let codes findings = List.map (fun f -> f.Finding.code) findings

let check_codes what expected findings =
  Alcotest.(check (list string)) what expected (codes findings)

(* --------------------------------------------------------------- *)
(* D001                                                             *)

let test_d001_positive () =
  let fs = active "let t = Unix.gettimeofday ()" in
  check_codes "gettimeofday flagged" [ "D001" ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "line" 1 f.Finding.line;
  check_codes "Unix.time flagged" [ "D001" ] (active "let t = Unix.time ()");
  check_codes "Random flagged" [ "D001" ] (active "let r = Random.int 10");
  check_codes "Random alias flagged" [ "D001" ] (active "module R = Random");
  check_codes "bin/ is linted too" [ "D001" ]
    (active ~path:"bin/tool.ml" "let t = Unix.gettimeofday ()")

let test_d001_negative () =
  check_codes "clock.ml allowlisted" []
    (active ~path:"lib/obs/clock.ml" "let now () = Unix.gettimeofday ()");
  check_codes "Rng is fine" [] (active "let x r = Rng.float_unit r");
  check_codes "other Unix fine" [] (active "let p () = Unix.getpid ()")

(* --------------------------------------------------------------- *)
(* D002                                                             *)

let test_d002_positive () =
  check_codes "top-level Hashtbl" [ "D002" ]
    (active "let table = Hashtbl.create 16");
  check_codes "top-level ref" [ "D002" ] (active "let cache = ref None");
  check_codes "inside a submodule" [ "D002" ]
    (active "module M = struct let t = Hashtbl.create 4 end")

let test_d002_negative () =
  check_codes "created per call" [] (active "let make () = Hashtbl.create 16");
  check_codes "Atomic is the sanctioned form" []
    (active "let state = Atomic.make 0");
  check_codes "domain-local state is per-domain" []
    (active "let key = Domain.DLS.new_key (fun () -> ref [])");
  check_codes "lazy is forced under its own lock" []
    (active "let t = lazy (Hashtbl.create 4)");
  check_codes "experiments are single-domain drivers" []
    (active ~path:"lib/experiments/foo.ml" "let table = Hashtbl.create 16");
  check_codes "bin executables out of scope" []
    (active ~path:"bin/tool.ml" "let table = Hashtbl.create 16")

(* --------------------------------------------------------------- *)
(* E001                                                             *)

let test_e001_positive () =
  check_codes "wildcard swallow" [ "E001" ]
    (active "let f g = try g () with _ -> 0");
  check_codes "unused variable swallow" [ "E001" ]
    (active "let f g = try g () with _e -> 0");
  check_codes "catch-all branch of a multi-case handler" [ "E001" ]
    (active "let f g = try g () with Failure _ -> 1 | _ -> 0")

let test_e001_negative () =
  check_codes "specific exception" []
    (active "let f g = try g () with Failure _ -> 0");
  check_codes "re-raise is hygiene" []
    (active "let f g = try g () with e -> cleanup (); raise e");
  check_codes "inspected exception" []
    (active "let f g = try g () with exn -> log (Printexc.to_string exn)")

(* --------------------------------------------------------------- *)
(* E002                                                             *)

let test_e002_positive () =
  check_codes "lock without unlock" [ "E002" ]
    (active "let f m = Mutex.lock m; work ()");
  check_codes "two locks one unlock" [ "E002" ]
    (active "let f m n = Mutex.lock m; Mutex.lock n; Mutex.unlock m")

let test_e002_negative () =
  check_codes "balanced lock/unlock" []
    (active "let f m = Mutex.lock m; let r = work () in Mutex.unlock m; r");
  check_codes "Fun.protect guards the section" []
    (active
       "let f m = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock \
        m) work");
  check_codes "no locking at all" [] (active "let f () = work ()")

(* --------------------------------------------------------------- *)
(* P001                                                             *)

let test_p001_positive () =
  check_codes "print_endline in lib" [ "P001" ]
    (active "let f () = print_endline \"x\"");
  check_codes "Printf.printf in lib" [ "P001" ]
    (active "let f () = Printf.printf \"%d\" 3")

let test_p001_negative () =
  check_codes "experiments own their tables" []
    (active ~path:"lib/experiments/fig9.ml" "let f () = print_endline \"x\"");
  check_codes "bin owns stdout" []
    (active ~path:"bin/tool.ml" "let f () = print_endline \"x\"");
  check_codes "Printf.sprintf is pure" []
    (active "let f x = Printf.sprintf \"%d\" x")

(* --------------------------------------------------------------- *)
(* O001 / F001                                                      *)

let test_o001 () =
  check_codes "Obj.magic" [ "O001" ] (active "let f x = Obj.magic x");
  check_codes "Obj.repr" [ "O001" ] (active "let f x = Obj.repr x");
  check_codes "no Obj" [] (active "let f x = x")

let test_f001_positive () =
  check_codes "= on 0.0" [ "F001" ] (active "let f x = x = 0.0");
  check_codes "<> on 1.0" [ "F001" ] (active "let f x = x <> 1.0");
  check_codes "= nan is always false" [ "F001" ] (active "let f x = x = nan");
  check_codes "literal on the left" [ "F001" ] (active "let f x = 0.0 = x")

let test_f001_negative () =
  check_codes "ordering comparisons are fine" [] (active "let f x = x < 0.0");
  check_codes "Float.equal is the fix" []
    (active "let f x = Float.equal x 0.0");
  check_codes "int literals out of scope" [] (active "let f x = x = 0")

(* --------------------------------------------------------------- *)
(* Suppressions                                                     *)

let test_suppression_trailing () =
  let src =
    "let t = Unix.gettimeofday () (* qnet-lint: allow D001 test fixture *)"
  in
  check_codes "no active finding" [] (active src);
  match suppressed src with
  | [ (f, reason) ] ->
      Alcotest.(check string) "code" "D001" f.Finding.code;
      Alcotest.(check string) "reason" "test fixture" reason
  | other ->
      Alcotest.failf "expected one suppressed finding, got %d"
        (List.length other)

let test_suppression_standalone () =
  let src =
    "(* qnet-lint: allow D001 test fixture *)\nlet t = Unix.gettimeofday ()"
  in
  check_codes "no active finding" [] (active src);
  Alcotest.(check int) "one suppressed" 1 (List.length (suppressed src))

let test_suppression_wrong_code () =
  let src =
    "let t = Unix.gettimeofday () (* qnet-lint: allow F001 wrong code *)"
  in
  check_codes "D001 still fires" [ "D001" ] (active src);
  Alcotest.(check int) "nothing suppressed" 0 (List.length (suppressed src))

let test_suppression_needs_reason () =
  let src = "(* qnet-lint: allow D001 *)\nlet x = 1" in
  check_codes "reasonless directive is itself a finding" [ "S001" ]
    (active src)

let test_suppression_in_string_ignored () =
  let src = "let s = \"(* qnet-lint: allow D001 nope *)\"" in
  check_codes "directives inside string literals are text" [] (active src)

(* --------------------------------------------------------------- *)
(* Parse failures                                                   *)

let test_parse_error () =
  match active "let = junk (" with
  | [ f ] -> Alcotest.(check string) "code" "X001" f.Finding.code
  | other -> Alcotest.failf "expected one X001, got %d" (List.length other)

(* --------------------------------------------------------------- *)
(* Driver: temp trees, baseline, M001                               *)

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let with_temp_tree files f =
  let root = Filename.temp_dir "qnet_lint_test" "" in
  List.iter
    (fun (rel, content) ->
      let abs = Filename.concat root rel in
      let rec ensure dir =
        if not (Sys.file_exists dir) then begin
          ensure (Filename.dirname dir);
          Sys.mkdir dir 0o755
        end
      in
      ensure (Filename.dirname abs);
      write_file abs content)
    files;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm root)
    (fun () -> f root)

let test_driver_m001 () =
  with_temp_tree
    [
      ("lib/a.ml", "let answer = 42\n");
      ("lib/a.mli", "val answer : int\n");
      ("lib/b.ml", "let broken = 43\n");
    ]
    (fun root ->
      let o = Driver.run (Driver.default_options root) in
      check_codes "only the module without an mli" [ "M001" ] o.Driver.findings;
      Alcotest.(check string)
        "finding names the file" "lib/b.ml"
        (List.hd o.Driver.findings).Finding.file;
      Alcotest.(check int) "exit nonzero" 1 (Driver.exit_code o))

let test_driver_baseline () =
  with_temp_tree
    [
      ("lib/a.ml", "let t = Unix.gettimeofday ()\n");
      ("lib/a.mli", "val t : float\n");
    ]
    (fun root ->
      let o1 = Driver.run (Driver.default_options root) in
      check_codes "fresh finding" [ "D001" ] o1.Driver.findings;
      Baseline.save
        (Filename.concat root Driver.default_baseline)
        o1.Driver.findings;
      let o2 = Driver.run (Driver.default_options root) in
      check_codes "baselined away" [] o2.Driver.findings;
      check_codes "still visible as baselined" [ "D001" ] o2.Driver.baselined;
      Alcotest.(check int) "exit clean" 0 (Driver.exit_code o2))

let test_baseline_round_trip () =
  let f =
    Finding.v ~code:"D001" ~file:"lib/x.ml" ~line:7 ~col:3 "irrelevant"
  in
  match Baseline.of_string (Baseline.to_string [ f ]) with
  | Ok [ e ] ->
      Alcotest.(check string) "code" "D001" e.Baseline.code;
      Alcotest.(check string) "file" "lib/x.ml" e.Baseline.file;
      Alcotest.(check int) "line" 7 e.Baseline.line;
      Alcotest.(check bool) "covers" true (Baseline.covers [ e ] f)
  | Ok other -> Alcotest.failf "expected one entry, got %d" (List.length other)
  | Error m -> Alcotest.fail m

(* --------------------------------------------------------------- *)
(* Reporters                                                        *)

let outcome_of findings =
  {
    Driver.findings;
    suppressed = [];
    baselined = [];
    files_scanned = List.length findings;
  }

let test_reporter_text () =
  let o =
    outcome_of
      [ Finding.v ~code:"D001" ~file:"lib/x.ml" ~line:7 ~col:3 "boom" ]
  in
  let text = Reporter.text o in
  let contains hay needle =
    let rec go i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "compiler-style prefix" true
    (contains text "lib/x.ml:7:3: error D001: boom");
  Alcotest.(check bool)
    "summary counts findings" true
    (contains text "1 finding(s)")

let test_reporter_json () =
  let o =
    outcome_of
      [ Finding.v ~code:"F001" ~file:"lib/x.ml" ~line:2 ~col:0 "msg" ]
  in
  match Jsonx.parse_object (Reporter.json o) with
  | Error m -> Alcotest.fail ("reporter JSON does not parse: " ^ m)
  | Ok fields -> (
      (match List.assoc_opt "ok" fields with
      | Some (Jsonx.Bool b) -> Alcotest.(check bool) "ok is false" false b
      | _ -> Alcotest.fail "missing ok field");
      match List.assoc_opt "findings" fields with
      | Some (Jsonx.Arr [ Jsonx.Obj f ]) ->
          Alcotest.(check bool)
            "code serialized" true
            (List.assoc_opt "code" f = Some (Jsonx.Str "F001"))
      | _ -> Alcotest.fail "findings array malformed")

let test_rule_catalogue () =
  let codes = List.map (fun (c, _, _) -> c) Rules.catalogue in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " catalogued") true (List.mem c codes))
    [ "D001"; "D002"; "E001"; "E002"; "P001"; "O001"; "F001"; "M001"; "X001";
      "S001" ]

(* --------------------------------------------------------------- *)
(* Whole-repo smoke test                                            *)

let find_repo_root () =
  let rec go dir depth =
    if depth > 8 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
      && Sys.file_exists (Filename.concat dir "bin")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent (depth + 1)
  in
  go (Sys.getcwd ()) 0

let test_repo_is_clean () =
  match find_repo_root () with
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"
  | Some root ->
      let o = Driver.run (Driver.default_options root) in
      Alcotest.(check bool)
        "scanned a real tree" true
        (o.Driver.files_scanned > 50);
      if o.Driver.findings <> [] then
        Alcotest.failf "repo has unsuppressed lint findings:\n%s"
          (Reporter.text o)

let () =
  Alcotest.run "lint"
    [
      ( "d001",
        [
          Alcotest.test_case "positive" `Quick test_d001_positive;
          Alcotest.test_case "negative" `Quick test_d001_negative;
        ] );
      ( "d002",
        [
          Alcotest.test_case "positive" `Quick test_d002_positive;
          Alcotest.test_case "negative" `Quick test_d002_negative;
        ] );
      ( "e001",
        [
          Alcotest.test_case "positive" `Quick test_e001_positive;
          Alcotest.test_case "negative" `Quick test_e001_negative;
        ] );
      ( "e002",
        [
          Alcotest.test_case "positive" `Quick test_e002_positive;
          Alcotest.test_case "negative" `Quick test_e002_negative;
        ] );
      ( "p001",
        [
          Alcotest.test_case "positive" `Quick test_p001_positive;
          Alcotest.test_case "negative" `Quick test_p001_negative;
        ] );
      ( "o001-f001",
        [
          Alcotest.test_case "o001" `Quick test_o001;
          Alcotest.test_case "f001 positive" `Quick test_f001_positive;
          Alcotest.test_case "f001 negative" `Quick test_f001_negative;
        ] );
      ( "suppress",
        [
          Alcotest.test_case "trailing" `Quick test_suppression_trailing;
          Alcotest.test_case "standalone" `Quick test_suppression_standalone;
          Alcotest.test_case "wrong code" `Quick test_suppression_wrong_code;
          Alcotest.test_case "needs reason" `Quick test_suppression_needs_reason;
          Alcotest.test_case "string literal" `Quick
            test_suppression_in_string_ignored;
        ] );
      ( "driver",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "m001" `Quick test_driver_m001;
          Alcotest.test_case "baseline" `Quick test_driver_baseline;
          Alcotest.test_case "baseline round-trip" `Quick
            test_baseline_round_trip;
        ] );
      ( "report",
        [
          Alcotest.test_case "text" `Quick test_reporter_text;
          Alcotest.test_case "json" `Quick test_reporter_json;
          Alcotest.test_case "catalogue" `Quick test_rule_catalogue;
        ] );
      ( "smoke",
        [ Alcotest.test_case "repo is lint-clean" `Quick test_repo_is_clean ] );
    ]
