(* qnet_lint: every rule against small inline sources (positive,
   negative, suppressed), the suppression/baseline machinery, the
   reporters, and a whole-repo smoke test asserting the tree is
   lint-clean. *)

module Finding = Qnet_lint_lib.Finding
module Driver = Qnet_lint_lib.Driver
module Rules = Qnet_lint_lib.Rules
module Baseline = Qnet_lint_lib.Baseline
module Suppress = Qnet_lint_lib.Suppress
module Reporter = Qnet_lint_lib.Reporter
module Concurrency = Qnet_lint_lib.Concurrency
module Jsonx = Qnet_obs.Jsonx

let default_path = "lib/core/sample.ml"

let active ?only ?(path = default_path) src =
  fst (Driver.lint_source ?only ~path src)

let suppressed ?only ?(path = default_path) src =
  snd (Driver.lint_source ?only ~path src)

let codes findings = List.map (fun f -> f.Finding.code) findings

let check_codes what expected findings =
  Alcotest.(check (list string)) what expected (codes findings)

(* --------------------------------------------------------------- *)
(* D001                                                             *)

let test_d001_positive () =
  let fs = active "let t = Unix.gettimeofday ()" in
  check_codes "gettimeofday flagged" [ "D001" ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "line" 1 f.Finding.line;
  check_codes "Unix.time flagged" [ "D001" ] (active "let t = Unix.time ()");
  check_codes "Random flagged" [ "D001" ] (active "let r = Random.int 10");
  check_codes "Random alias flagged" [ "D001" ] (active "module R = Random");
  check_codes "bin/ is linted too" [ "D001" ]
    (active ~path:"bin/tool.ml" "let t = Unix.gettimeofday ()")

let test_d001_negative () =
  check_codes "clock.ml allowlisted" []
    (active ~path:"lib/obs/clock.ml" "let now () = Unix.gettimeofday ()");
  check_codes "Rng is fine" [] (active "let x r = Rng.float_unit r");
  check_codes "other Unix fine" [] (active "let p () = Unix.getpid ()")

(* --------------------------------------------------------------- *)
(* D002                                                             *)

let test_d002_positive () =
  check_codes "top-level Hashtbl" [ "D002" ]
    (active "let table = Hashtbl.create 16");
  check_codes "top-level ref" [ "D002" ] (active "let cache = ref None");
  check_codes "inside a submodule" [ "D002" ]
    (active "module M = struct let t = Hashtbl.create 4 end")

let test_d002_negative () =
  check_codes "created per call" [] (active "let make () = Hashtbl.create 16");
  check_codes "Atomic is the sanctioned form" []
    (active "let state = Atomic.make 0");
  check_codes "domain-local state is per-domain" []
    (active "let key = Domain.DLS.new_key (fun () -> ref [])");
  check_codes "lazy is forced under its own lock" []
    (active "let t = lazy (Hashtbl.create 4)");
  check_codes "experiments are single-domain drivers" []
    (active ~path:"lib/experiments/foo.ml" "let table = Hashtbl.create 16");
  check_codes "bin executables out of scope" []
    (active ~path:"bin/tool.ml" "let table = Hashtbl.create 16")

(* --------------------------------------------------------------- *)
(* E001                                                             *)

let test_e001_positive () =
  check_codes "wildcard swallow" [ "E001" ]
    (active "let f g = try g () with _ -> 0");
  check_codes "unused variable swallow" [ "E001" ]
    (active "let f g = try g () with _e -> 0");
  check_codes "catch-all branch of a multi-case handler" [ "E001" ]
    (active "let f g = try g () with Failure _ -> 1 | _ -> 0")

let test_e001_negative () =
  check_codes "specific exception" []
    (active "let f g = try g () with Failure _ -> 0");
  check_codes "re-raise is hygiene" []
    (active "let f g = try g () with e -> cleanup (); raise e");
  check_codes "inspected exception" []
    (active "let f g = try g () with exn -> log (Printexc.to_string exn)")

(* --------------------------------------------------------------- *)
(* E002                                                             *)

let test_e002_positive () =
  check_codes "lock without unlock" [ "E002" ]
    (active "let f m = Mutex.lock m; work ()");
  check_codes "two locks one unlock" [ "E002" ]
    (active "let f m n = Mutex.lock m; Mutex.lock n; Mutex.unlock m")

let test_e002_negative () =
  check_codes "balanced lock/unlock" []
    (active "let f m = Mutex.lock m; let r = work () in Mutex.unlock m; r");
  check_codes "Fun.protect guards the section" []
    (active
       "let f m = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock \
        m) work");
  check_codes "no locking at all" [] (active "let f () = work ()")

(* --------------------------------------------------------------- *)
(* P001                                                             *)

let test_p001_positive () =
  check_codes "print_endline in lib" [ "P001" ]
    (active "let f () = print_endline \"x\"");
  check_codes "Printf.printf in lib" [ "P001" ]
    (active "let f () = Printf.printf \"%d\" 3")

let test_p001_negative () =
  check_codes "experiments own their tables" []
    (active ~path:"lib/experiments/fig9.ml" "let f () = print_endline \"x\"");
  check_codes "bin owns stdout" []
    (active ~path:"bin/tool.ml" "let f () = print_endline \"x\"");
  check_codes "Printf.sprintf is pure" []
    (active "let f x = Printf.sprintf \"%d\" x")

(* --------------------------------------------------------------- *)
(* O001 / F001                                                      *)

let test_o001 () =
  check_codes "Obj.magic" [ "O001" ] (active "let f x = Obj.magic x");
  check_codes "Obj.repr" [ "O001" ] (active "let f x = Obj.repr x");
  check_codes "no Obj" [] (active "let f x = x")

let test_f001_positive () =
  check_codes "= on 0.0" [ "F001" ] (active "let f x = x = 0.0");
  check_codes "<> on 1.0" [ "F001" ] (active "let f x = x <> 1.0");
  check_codes "= nan is always false" [ "F001" ] (active "let f x = x = nan");
  check_codes "literal on the left" [ "F001" ] (active "let f x = 0.0 = x")

let test_f001_negative () =
  check_codes "ordering comparisons are fine" [] (active "let f x = x < 0.0");
  check_codes "Float.equal is the fix" []
    (active "let f x = Float.equal x 0.0");
  check_codes "int literals out of scope" [] (active "let f x = x = 0")

(* --------------------------------------------------------------- *)
(* Suppressions                                                     *)

let test_suppression_trailing () =
  let src =
    "let t = Unix.gettimeofday () (* qnet-lint: allow D001 test fixture *)"
  in
  check_codes "no active finding" [] (active src);
  match suppressed src with
  | [ (f, reason) ] ->
      Alcotest.(check string) "code" "D001" f.Finding.code;
      Alcotest.(check string) "reason" "test fixture" reason
  | other ->
      Alcotest.failf "expected one suppressed finding, got %d"
        (List.length other)

let test_suppression_standalone () =
  let src =
    "(* qnet-lint: allow D001 test fixture *)\nlet t = Unix.gettimeofday ()"
  in
  check_codes "no active finding" [] (active src);
  Alcotest.(check int) "one suppressed" 1 (List.length (suppressed src))

let test_suppression_wrong_code () =
  let src =
    "let t = Unix.gettimeofday () (* qnet-lint: allow F001 wrong code *)"
  in
  check_codes "D001 still fires" [ "D001" ] (active src);
  Alcotest.(check int) "nothing suppressed" 0 (List.length (suppressed src))

let test_suppression_needs_reason () =
  let src = "(* qnet-lint: allow D001 *)\nlet x = 1" in
  check_codes "reasonless directive is itself a finding" [ "S001" ]
    (active src)

let test_suppression_in_string_ignored () =
  let src = "let s = \"(* qnet-lint: allow D001 nope *)\"" in
  check_codes "directives inside string literals are text" [] (active src)

(* --------------------------------------------------------------- *)
(* Parse failures                                                   *)

let test_parse_error () =
  match active "let = junk (" with
  | [ f ] -> Alcotest.(check string) "code" "X001" f.Finding.code
  | other -> Alcotest.failf "expected one X001, got %d" (List.length other)

(* --------------------------------------------------------------- *)
(* Driver: temp trees, baseline, M001                               *)

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let with_temp_tree files f =
  let root = Filename.temp_dir "qnet_lint_test" "" in
  List.iter
    (fun (rel, content) ->
      let abs = Filename.concat root rel in
      let rec ensure dir =
        if not (Sys.file_exists dir) then begin
          ensure (Filename.dirname dir);
          Sys.mkdir dir 0o755
        end
      in
      ensure (Filename.dirname abs);
      write_file abs content)
    files;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm root)
    (fun () -> f root)

let test_driver_m001 () =
  with_temp_tree
    [
      ("lib/a.ml", "let answer = 42\n");
      ("lib/a.mli", "val answer : int\n");
      ("lib/b.ml", "let broken = 43\n");
    ]
    (fun root ->
      let o = Driver.run (Driver.default_options root) in
      check_codes "only the module without an mli" [ "M001" ] o.Driver.findings;
      Alcotest.(check string)
        "finding names the file" "lib/b.ml"
        (List.hd o.Driver.findings).Finding.file;
      Alcotest.(check int) "exit nonzero" 1 (Driver.exit_code o))

let test_driver_baseline () =
  with_temp_tree
    [
      ("lib/a.ml", "let t = Unix.gettimeofday ()\n");
      ("lib/a.mli", "val t : float\n");
    ]
    (fun root ->
      let o1 = Driver.run (Driver.default_options root) in
      check_codes "fresh finding" [ "D001" ] o1.Driver.findings;
      Baseline.save
        (Filename.concat root Driver.default_baseline)
        o1.Driver.findings;
      let o2 = Driver.run (Driver.default_options root) in
      check_codes "baselined away" [] o2.Driver.findings;
      check_codes "still visible as baselined" [ "D001" ] o2.Driver.baselined;
      Alcotest.(check int) "exit clean" 0 (Driver.exit_code o2))

(* Regenerating a baseline must be idempotent: the second run's
   findings arrive already split into fresh + baselined, and the
   rewrite keeps both (bin/qnet_lint.ml concatenates them). *)
let test_baseline_regenerate_idempotent () =
  with_temp_tree
    [
      ("lib/a.ml", "let t = Unix.gettimeofday ()\n");
      ("lib/a.mli", "val t : float\n");
    ]
    (fun root ->
      let path = Filename.concat root Driver.default_baseline in
      let o1 = Driver.run (Driver.default_options root) in
      Baseline.save path (o1.Driver.findings @ o1.Driver.baselined);
      let first = Baseline.to_string (o1.Driver.findings @ o1.Driver.baselined) in
      let o2 = Driver.run (Driver.default_options root) in
      check_codes "all grandfathered" [] o2.Driver.findings;
      Alcotest.(check string)
        "rewrite reproduces the same baseline" first
        (Baseline.to_string (o2.Driver.findings @ o2.Driver.baselined)))

let test_baseline_deterministic () =
  let f code file line =
    Finding.v ~code ~file ~line ~col:0 "irrelevant"
  in
  let shuffled =
    [ f "F001" "lib/z.ml" 9; f "D001" "./lib/b.ml" 3; f "D001" "lib/a.ml" 7;
      f "D001" "lib\\a.ml" 7; f "D001" "lib/a.ml" 2 ]
  in
  let rendered = Baseline.to_string shuffled in
  Alcotest.(check string)
    "same text whatever the walk order" rendered
    (Baseline.to_string (List.rev shuffled));
  match Baseline.of_string rendered with
  | Error m -> Alcotest.fail m
  | Ok entries ->
      Alcotest.(check (list string))
        "sorted by (code, path, line), duplicates dropped"
        [ "D001:lib/a.ml:2"; "D001:lib/a.ml:7"; "D001:lib/b.ml:3";
          "F001:lib/z.ml:9" ]
        (List.map
           (fun e ->
             Printf.sprintf "%s:%s:%d" e.Baseline.code e.Baseline.file
               e.Baseline.line)
           entries)

let test_baseline_normalized_covers () =
  let e = { Baseline.code = "D001"; file = "./lib/x.ml"; line = 7 } in
  let f = Finding.v ~code:"D001" ~file:"lib\\x.ml" ~line:7 ~col:0 "m" in
  Alcotest.(check bool)
    "windows separators and ./ prefixes compare equal" true
    (Baseline.covers [ e ] f)

let test_baseline_round_trip () =
  let f =
    Finding.v ~code:"D001" ~file:"lib/x.ml" ~line:7 ~col:3 "irrelevant"
  in
  match Baseline.of_string (Baseline.to_string [ f ]) with
  | Ok [ e ] ->
      Alcotest.(check string) "code" "D001" e.Baseline.code;
      Alcotest.(check string) "file" "lib/x.ml" e.Baseline.file;
      Alcotest.(check int) "line" 7 e.Baseline.line;
      Alcotest.(check bool) "covers" true (Baseline.covers [ e ] f)
  | Ok other -> Alcotest.failf "expected one entry, got %d" (List.length other)
  | Error m -> Alcotest.fail m

(* --------------------------------------------------------------- *)
(* Deep (cross-module) analysis: C001-C005, racy-ok, S002           *)

(* Each fixture is a temp tree linted with [deep = true]. The
   assertions look only at concurrency codes so the fixtures don't
   have to dodge the shallow rules (D002 fires on every top-level ref
   these fixtures need). *)
let deep_run files f =
  with_temp_tree files (fun root ->
      f (Driver.run { (Driver.default_options root) with Driver.deep = true }))

let concurrency_codes o =
  codes o.Driver.findings
  |> List.filter (fun c -> c.[0] = 'C' || c = "S002")

let suppressed_concurrency o =
  codes (List.map fst o.Driver.suppressed)
  |> List.filter (fun c -> c.[0] = 'C')

let report_of o =
  match o.Driver.deep with
  | Some (r, _) -> r
  | None -> Alcotest.fail "deep run produced no report"

(* C001: bare ref mutated by a function a sibling module hands to
   Domain.spawn. The declaring unit must itself mention concurrency
   vocabulary (the unused mutex) to contribute entities. *)
let c001_state guard =
  [ ( "lib/state.ml",
      "let lock = Mutex.create ()\n" ^ "let cache = ref 0" ^ guard ^ "\n"
      ^ "let bump () = cache := !cache + 1\n" );
    ("lib/worker.ml", "let start () = Domain.spawn (fun () -> State.bump ())\n")
  ]

let test_deep_c001_positive () =
  deep_run (c001_state "") (fun o ->
      Alcotest.(check (list string)) "flagged" [ "C001" ] (concurrency_codes o);
      let f =
        List.find (fun f -> f.Finding.code = "C001") o.Driver.findings
      in
      Alcotest.(check string) "at the bare access" "lib/state.ml"
        f.Finding.file;
      Alcotest.(check int) "access line" 3 f.Finding.line)

let test_deep_c001_suppressed () =
  deep_run
    (c001_state "  (* qnet-lint: racy-ok C001 test fixture *)")
    (fun o ->
      Alcotest.(check (list string)) "no active" [] (concurrency_codes o);
      Alcotest.(check (list string))
        "suppressed via the declaration line" [ "C001" ]
        (suppressed_concurrency o))

let test_deep_c001_clean () =
  deep_run
    [ ( "lib/state.ml",
        "let lock = Mutex.create ()\n" ^ "let cache = ref 0\n"
        ^ "let bump () = Mutex.protect lock (fun () -> cache := !cache + 1)\n"
      );
      ( "lib/worker.ml",
        "let start () = Domain.spawn (fun () -> State.bump ())\n" ) ]
    (fun o ->
      Alcotest.(check (list string))
        "uniformly guarded state is fine" [] (concurrency_codes o))

(* C002: a three-module lock-order cycle, visible only interprocedurally
   (each unit acquires its own mutex and calls the next). *)
let lock_cycle =
  [ ( "lib/alpha.ml",
      "let m = Mutex.create ()\n"
      ^ "let grab () = Mutex.protect m (fun () -> Beta.grab ())\n" );
    ( "lib/beta.ml",
      "let m = Mutex.create ()\n"
      ^ "let grab () = Mutex.protect m (fun () -> Gamma.grab ())\n" );
    ( "lib/gamma.ml",
      "let m = Mutex.create ()\n"
      ^ "let grab () = Mutex.protect m (fun () -> Alpha.grab ())\n" ) ]

let test_deep_c002_cycle () =
  deep_run lock_cycle (fun o ->
      Alcotest.(check (list string)) "one cycle finding" [ "C002" ]
        (concurrency_codes o);
      let r = report_of o in
      Alcotest.(check int) "one SCC" 1 (List.length r.Concurrency.r_cycles);
      Alcotest.(check int)
        "three mutexes in it" 3
        (List.length (List.hd r.Concurrency.r_cycles)))

let test_deep_c002_clean () =
  (* same shape, but gamma doesn't call back: a DAG, no finding *)
  deep_run
    [ List.nth lock_cycle 0; List.nth lock_cycle 1;
      ( "lib/gamma.ml",
        "let m = Mutex.create ()\n"
        ^ "let grab () = Mutex.protect m (fun () -> ())\n" ) ]
    (fun o ->
      Alcotest.(check (list string)) "no cycle" [] (concurrency_codes o);
      let r = report_of o in
      (* alpha->beta, beta->gamma, plus the transitive alpha->gamma
         edge from the interprocedural Acquires* closure *)
      Alcotest.(check int) "graph has edges" 3
        (List.length r.Concurrency.r_edges);
      Alcotest.(check int) "but no SCC" 0
        (List.length r.Concurrency.r_cycles))

(* C003: guarded writes, one bare read reachable from a spawn. *)
let c003_state decl_suffix =
  [ ( "lib/state.ml",
      "let lock = Mutex.create ()\n" ^ "let cache = ref 0" ^ decl_suffix
      ^ "\n"
      ^ "let bump () = Mutex.protect lock (fun () -> cache := !cache + 1)\n"
      ^ "let peek () = !cache\n" );
    ( "lib/worker.ml",
      "let start () = Domain.spawn (fun () -> State.peek ())\n" ) ]

let test_deep_c003_positive () =
  deep_run (c003_state "") (fun o ->
      Alcotest.(check (list string)) "flagged" [ "C003" ] (concurrency_codes o);
      let f =
        List.find (fun f -> f.Finding.code = "C003") o.Driver.findings
      in
      Alcotest.(check int) "at the bare read, not the guarded write" 4
        f.Finding.line)

let test_deep_c003_suppressed () =
  deep_run
    (c003_state "  (* qnet-lint: racy-ok C003 test fixture *)")
    (fun o ->
      Alcotest.(check (list string)) "no active" [] (concurrency_codes o);
      Alcotest.(check (list string)) "suppressed" [ "C003" ]
        (suppressed_concurrency o))

(* C004: blocking call inside a critical section. *)
let c004_src site_suffix =
  [ ( "lib/slow.ml",
      "let lock = Mutex.create ()\n" ^ "let nap () =\n"
      ^ "  Mutex.protect lock (fun () ->\n" ^ "      Thread.delay 0.1"
      ^ site_suffix ^ ")\n" ) ]

let test_deep_c004_positive () =
  deep_run (c004_src "") (fun o ->
      Alcotest.(check (list string)) "flagged" [ "C004" ] (concurrency_codes o))

let test_deep_c004_suppressed () =
  deep_run
    (c004_src " (* qnet-lint: racy-ok C004 test fixture *)")
    (fun o ->
      Alcotest.(check (list string)) "no active" [] (concurrency_codes o);
      Alcotest.(check (list string)) "suppressed" [ "C004" ]
        (suppressed_concurrency o))

let test_deep_c004_clean () =
  deep_run
    [ ( "lib/slow.ml",
        "let lock = Mutex.create ()\n"
        ^ "let nap () = Mutex.protect lock (fun () -> ()); Thread.delay 0.1\n"
      ) ]
    (fun o ->
      Alcotest.(check (list string))
        "blocking outside the section is fine" [] (concurrency_codes o))

(* C005: Atomic.get then Atomic.set of one target in one function. *)
let c005_src set_suffix =
  [ ( "lib/count.ml",
      "let counter = Atomic.make 0\n" ^ "let bump () =\n"
      ^ "  let v = Atomic.get counter in\n" ^ "  Atomic.set counter (v + 1)"
      ^ set_suffix ^ "\n" ) ]

let test_deep_c005_positive () =
  deep_run (c005_src "") (fun o ->
      Alcotest.(check (list string)) "flagged" [ "C005" ] (concurrency_codes o))

let test_deep_c005_suppressed () =
  deep_run
    (c005_src " (* qnet-lint: racy-ok C005 test fixture *)")
    (fun o ->
      Alcotest.(check (list string)) "no active" [] (concurrency_codes o);
      Alcotest.(check (list string)) "suppressed" [ "C005" ]
        (suppressed_concurrency o))

let test_deep_c005_clean () =
  deep_run
    [ ( "lib/count.ml",
        "let counter = Atomic.make 0\n"
        ^ "let bump () = Atomic.incr counter\n"
        ^ "let spin () = while not (Atomic.compare_and_set counter 0 1) do () \
           done\n" ) ]
    (fun o ->
      Alcotest.(check (list string)) "RMW forms are fine" []
        (concurrency_codes o))

(* S002: the audit of the audit — a racy-ok that suppresses nothing. *)
let test_deep_s002_orphan () =
  deep_run
    [ ("lib/tidy.ml", "let x = 1 (* qnet-lint: racy-ok C001 nothing here *)\n")
    ]
    (fun o ->
      Alcotest.(check (list string)) "orphan flagged" [ "S002" ]
        (concurrency_codes o);
      let f =
        List.find (fun f -> f.Finding.code = "S002") o.Driver.findings
      in
      Alcotest.(check int) "at the directive" 1 f.Finding.line)

let test_deep_s002_not_in_shallow_runs () =
  with_temp_tree
    [ ("lib/tidy.ml", "let x = 1 (* qnet-lint: racy-ok C001 nothing here *)\n")
    ]
    (fun root ->
      let o = Driver.run (Driver.default_options root) in
      Alcotest.(check bool)
        "shallow runs cannot judge orphanhood" false
        (List.mem "S002" (codes o.Driver.findings)))

(* --------------------------------------------------------------- *)
(* Reporters                                                        *)

let outcome_of findings =
  {
    Driver.findings;
    suppressed = [];
    baselined = [];
    files_scanned = List.length findings;
    deep = None;
  }

let test_reporter_text () =
  let o =
    outcome_of
      [ Finding.v ~code:"D001" ~file:"lib/x.ml" ~line:7 ~col:3 "boom" ]
  in
  let text = Reporter.text o in
  let contains hay needle =
    let rec go i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "compiler-style prefix" true
    (contains text "lib/x.ml:7:3: error D001: boom");
  Alcotest.(check bool)
    "summary counts findings" true
    (contains text "1 finding(s)")

let test_reporter_json () =
  let o =
    outcome_of
      [ Finding.v ~code:"F001" ~file:"lib/x.ml" ~line:2 ~col:0 "msg" ]
  in
  match Jsonx.parse_object (Reporter.json o) with
  | Error m -> Alcotest.fail ("reporter JSON does not parse: " ^ m)
  | Ok fields -> (
      (match List.assoc_opt "ok" fields with
      | Some (Jsonx.Bool b) -> Alcotest.(check bool) "ok is false" false b
      | _ -> Alcotest.fail "missing ok field");
      match List.assoc_opt "findings" fields with
      | Some (Jsonx.Arr [ Jsonx.Obj f ]) ->
          Alcotest.(check bool)
            "code serialized" true
            (List.assoc_opt "code" f = Some (Jsonx.Str "F001"))
      | _ -> Alcotest.fail "findings array malformed")

let test_rule_catalogue () =
  let codes = List.map (fun (c, _, _) -> c) Rules.catalogue in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " catalogued") true (List.mem c codes))
    [ "D001"; "D002"; "E001"; "E002"; "P001"; "O001"; "F001"; "M001"; "X001";
      "S001"; "S002"; "C001"; "C002"; "C003"; "C004"; "C005" ]

(* --------------------------------------------------------------- *)
(* Whole-repo smoke test                                            *)

let find_repo_root () =
  let rec go dir depth =
    if depth > 8 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
      && Sys.file_exists (Filename.concat dir "bin")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent (depth + 1)
  in
  go (Sys.getcwd ()) 0

let test_repo_is_clean () =
  match find_repo_root () with
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"
  | Some root ->
      let o = Driver.run (Driver.default_options root) in
      Alcotest.(check bool)
        "scanned a real tree" true
        (o.Driver.files_scanned > 50);
      if o.Driver.findings <> [] then
        Alcotest.failf "repo has unsuppressed lint findings:\n%s"
          (Reporter.text o)

(* The committed guarantee that the runtime's lock-order graph is
   acyclic, and that --deep over the real tree is finding-free (every
   racy-by-design cell carries an audited racy-ok). *)
let test_repo_deep_clean () =
  match find_repo_root () with
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"
  | Some root ->
      let o =
        Driver.run { (Driver.default_options root) with Driver.deep = true }
      in
      if o.Driver.findings <> [] then
        Alcotest.failf "repo has unsuppressed deep findings:\n%s"
          (Reporter.text o);
      let r = report_of o in
      let s = r.Concurrency.r_stats in
      Alcotest.(check bool)
        "indexed a real tree" true
        (s.Concurrency.st_units > 50 && s.Concurrency.st_active > 5);
      Alcotest.(check bool)
        "found the runtime's mutexes and spawns" true
        (s.Concurrency.st_mutexes > 0 && s.Concurrency.st_spawns > 0);
      (match r.Concurrency.r_cycles with
      | [] -> ()
      | cyc :: _ ->
          Alcotest.failf "lock-order graph has a cycle: %s"
            (String.concat " -> " cyc));
      Alcotest.(check bool)
        "lock graph is non-trivial" true
        (List.length r.Concurrency.r_edges > 0)

let () =
  Alcotest.run "lint"
    [
      ( "d001",
        [
          Alcotest.test_case "positive" `Quick test_d001_positive;
          Alcotest.test_case "negative" `Quick test_d001_negative;
        ] );
      ( "d002",
        [
          Alcotest.test_case "positive" `Quick test_d002_positive;
          Alcotest.test_case "negative" `Quick test_d002_negative;
        ] );
      ( "e001",
        [
          Alcotest.test_case "positive" `Quick test_e001_positive;
          Alcotest.test_case "negative" `Quick test_e001_negative;
        ] );
      ( "e002",
        [
          Alcotest.test_case "positive" `Quick test_e002_positive;
          Alcotest.test_case "negative" `Quick test_e002_negative;
        ] );
      ( "p001",
        [
          Alcotest.test_case "positive" `Quick test_p001_positive;
          Alcotest.test_case "negative" `Quick test_p001_negative;
        ] );
      ( "o001-f001",
        [
          Alcotest.test_case "o001" `Quick test_o001;
          Alcotest.test_case "f001 positive" `Quick test_f001_positive;
          Alcotest.test_case "f001 negative" `Quick test_f001_negative;
        ] );
      ( "suppress",
        [
          Alcotest.test_case "trailing" `Quick test_suppression_trailing;
          Alcotest.test_case "standalone" `Quick test_suppression_standalone;
          Alcotest.test_case "wrong code" `Quick test_suppression_wrong_code;
          Alcotest.test_case "needs reason" `Quick test_suppression_needs_reason;
          Alcotest.test_case "string literal" `Quick
            test_suppression_in_string_ignored;
        ] );
      ( "driver",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "m001" `Quick test_driver_m001;
          Alcotest.test_case "baseline" `Quick test_driver_baseline;
          Alcotest.test_case "baseline round-trip" `Quick
            test_baseline_round_trip;
          Alcotest.test_case "baseline deterministic" `Quick
            test_baseline_deterministic;
          Alcotest.test_case "baseline normalized covers" `Quick
            test_baseline_normalized_covers;
          Alcotest.test_case "baseline regenerate idempotent" `Quick
            test_baseline_regenerate_idempotent;
        ] );
      ( "deep",
        [
          Alcotest.test_case "c001 positive" `Quick test_deep_c001_positive;
          Alcotest.test_case "c001 suppressed" `Quick test_deep_c001_suppressed;
          Alcotest.test_case "c001 clean" `Quick test_deep_c001_clean;
          Alcotest.test_case "c002 cycle" `Quick test_deep_c002_cycle;
          Alcotest.test_case "c002 clean" `Quick test_deep_c002_clean;
          Alcotest.test_case "c003 positive" `Quick test_deep_c003_positive;
          Alcotest.test_case "c003 suppressed" `Quick test_deep_c003_suppressed;
          Alcotest.test_case "c004 positive" `Quick test_deep_c004_positive;
          Alcotest.test_case "c004 suppressed" `Quick test_deep_c004_suppressed;
          Alcotest.test_case "c004 clean" `Quick test_deep_c004_clean;
          Alcotest.test_case "c005 positive" `Quick test_deep_c005_positive;
          Alcotest.test_case "c005 suppressed" `Quick test_deep_c005_suppressed;
          Alcotest.test_case "c005 clean" `Quick test_deep_c005_clean;
          Alcotest.test_case "s002 orphan" `Quick test_deep_s002_orphan;
          Alcotest.test_case "s002 deep-only" `Quick
            test_deep_s002_not_in_shallow_runs;
        ] );
      ( "report",
        [
          Alcotest.test_case "text" `Quick test_reporter_text;
          Alcotest.test_case "json" `Quick test_reporter_json;
          Alcotest.test_case "catalogue" `Quick test_rule_catalogue;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "repo is lint-clean" `Quick test_repo_is_clean;
          Alcotest.test_case "repo is deep-clean, lock graph acyclic" `Quick
            test_repo_deep_clean;
        ] );
    ]
