(* Tests for qnet_obs: metrics registry exactness under domain
   parallelism, Prometheus/JSONL export, span tracing, the trace
   summary, and the /metrics HTTP endpoint. *)

module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span
module Jsonx = Qnet_obs.Jsonx
module Metrics_server = Qnet_webapp.Metrics_server

let check_float = Alcotest.(check (float 1e-12))

(* --- metrics: exact totals under hammering domains ----------------- *)

let test_counter_domains () =
  let reg = Metrics.create_registry () in
  let c = Metrics.Counter.create ~registry:reg "hammer_total" in
  let domains = 4 and per_domain = 25_000 in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.Counter.inc c
            done))
  in
  Array.iter Domain.join workers;
  check_float "every increment counted exactly"
    (float_of_int (domains * per_domain))
    (Metrics.Counter.value c)

let test_counter_by_domains () =
  let reg = Metrics.create_registry () in
  let c = Metrics.Counter.create ~registry:reg "weighted_total" in
  let workers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            (* 0.25 sums exactly in binary floating point *)
            for _ = 1 to 10_000 do
              Metrics.Counter.inc ~by:(0.25 *. float_of_int (d + 1)) c
            done))
  in
  Array.iter Domain.join workers;
  (* 10_000 * 0.25 * (1+2+3+4) = 25_000 *)
  check_float "weighted increments exact" 25_000.0 (Metrics.Counter.value c)

let test_histogram_domains () =
  let reg = Metrics.create_registry () in
  let h =
    Metrics.Histogram.create ~registry:reg ~buckets:[| 1.0; 2.0; 4.0 |]
      "hammer_seconds"
  in
  let values = [| 0.5; 1.5; 3.0; 5.0 |] in
  let per_domain = 10_000 in
  let workers =
    Array.init (Array.length values) (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.Histogram.observe h values.(d)
            done))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "count" 40_000 (Metrics.Histogram.count h);
  (* all values are multiples of 0.5, so the sum is exact *)
  check_float "sum" 100_000.0 (Metrics.Histogram.sum h);
  let cum = Metrics.Histogram.cumulative_buckets h in
  Alcotest.(check (list (pair (float 0.0) int)))
    "cumulative buckets"
    [ (1.0, 10_000); (2.0, 20_000); (4.0, 30_000); (infinity, 40_000) ]
    (Array.to_list cum)

(* --- metrics: registration and cell semantics ---------------------- *)

let test_idempotent_handles () =
  let reg = Metrics.create_registry () in
  let a = Metrics.Counter.create ~registry:reg ~labels:[ ("k", "v") ] "idem_total" in
  let b = Metrics.Counter.create ~registry:reg ~labels:[ ("k", "v") ] "idem_total" in
  Metrics.Counter.inc a;
  Metrics.Counter.inc b;
  check_float "same (name, labels) is the same cell" 2.0 (Metrics.Counter.value a);
  let other = Metrics.Counter.create ~registry:reg ~labels:[ ("k", "w") ] "idem_total" in
  check_float "different labels are a different cell" 0.0
    (Metrics.Counter.value other)

let test_kind_conflict () =
  let reg = Metrics.create_registry () in
  let _ = Metrics.Counter.create ~registry:reg "conflict_total" in
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Metrics: \"conflict_total\" already registered as a counter, not a gauge")
    (fun () -> ignore (Metrics.Gauge.create ~registry:reg "conflict_total"))

let test_validation () =
  let reg = Metrics.create_registry () in
  (try
     ignore (Metrics.Counter.create ~registry:reg "bad name");
     Alcotest.fail "metric name with a space accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Metrics.Counter.create ~registry:reg ~labels:[ ("0bad", "v") ] "ok_total");
     Alcotest.fail "label name starting with a digit accepted"
   with Invalid_argument _ -> ());
  let c = Metrics.Counter.create ~registry:reg "mono_total" in
  (try
     Metrics.Counter.inc ~by:(-1.0) c;
     Alcotest.fail "negative increment accepted"
   with Invalid_argument _ -> ());
  check_float "counter untouched by rejected increment" 0.0
    (Metrics.Counter.value c)

let test_gauge () =
  let reg = Metrics.create_registry () in
  let g = Metrics.Gauge.create ~registry:reg "level" in
  Metrics.Gauge.set g 36.5;
  Metrics.Gauge.add g 1.0;
  check_float "set then add" 37.5 (Metrics.Gauge.value g)

let test_histogram_nan () =
  let reg = Metrics.create_registry () in
  let h = Metrics.Histogram.create ~registry:reg ~buckets:[| 1.0 |] "nan_seconds" in
  Metrics.Histogram.observe h 0.5;
  Metrics.Histogram.observe h Float.nan;
  Alcotest.(check int) "NaN excluded from count" 1 (Metrics.Histogram.count h);
  Alcotest.(check int) "NaN tallied separately" 1 (Metrics.Histogram.nan_count h);
  check_float "NaN excluded from sum" 0.5 (Metrics.Histogram.sum h)

(* --- export formats ------------------------------------------------ *)

let golden_registry () =
  let reg = Metrics.create_registry () in
  let h =
    Metrics.Histogram.create ~registry:reg ~buckets:[| 0.1; 1.0 |]
      ~help:"Observed latency" "golden_latency_seconds"
  in
  Metrics.Histogram.observe h 0.05;
  Metrics.Histogram.observe h 0.5;
  Metrics.Histogram.observe h 5.0;
  let c =
    Metrics.Counter.create ~registry:reg ~help:"Requests served"
      "golden_requests_total"
  in
  Metrics.Counter.inc ~by:3.0 c;
  let lc =
    Metrics.Counter.create ~registry:reg ~help:"Requests served"
      ~labels:[ ("method", "get"); ("code", "200") ]
      "golden_requests_total"
  in
  Metrics.Counter.inc ~by:2.0 lc;
  let esc =
    Metrics.Counter.create ~registry:reg ~help:"Label escaping probe"
      ~labels:[ ("path", "/a\"b\\c\nd") ]
      "golden_tricky_total"
  in
  Metrics.Counter.inc esc;
  let g = Metrics.Gauge.create ~registry:reg ~help:"A temperature" "golden_temperature" in
  Metrics.Gauge.set g 36.5;
  reg

let test_prometheus_golden () =
  let actual = Metrics.to_prometheus (golden_registry ()) in
  let golden =
    let ic = open_in "golden_metrics.prom" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if actual <> golden then
    Alcotest.failf
      "Prometheus text drifted from golden_metrics.prom.@\nActual:@\n%s" actual

let test_jsonl_parses () =
  let out = Metrics.to_jsonl ~ts:1234.5 (golden_registry ()) in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "one line per sample" 5 (List.length lines);
  List.iter
    (fun line ->
      match Jsonx.parse_object line with
      | Error m -> Alcotest.failf "unparseable JSONL line %S: %s" line m
      | Ok fields ->
          (match List.assoc_opt "ts" fields with
          | Some (Jsonx.Num 1234.5) -> ()
          | _ -> Alcotest.failf "missing/wrong ts in %S" line);
          if not (List.mem_assoc "name" fields) then
            Alcotest.failf "missing name in %S" line)
    lines

(* --- spans --------------------------------------------------------- *)

let test_span_nesting () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  let r =
    Span.with_span "outer" (fun () ->
        Span.with_span ~attrs:[ ("k", "v") ] "inner" (fun () -> 7) + 1)
  in
  Alcotest.(check int) "value threaded through" 8 r;
  match Span.drain () with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner name" "inner" inner.Span.name;
      Alcotest.(check string) "outer name" "outer" outer.Span.name;
      Alcotest.(check (option int)) "inner parented to outer" (Some outer.Span.id)
        inner.Span.parent;
      Alcotest.(check (option int)) "outer is a root" None outer.Span.parent;
      Alcotest.(check (list (pair string string)))
        "attrs kept" [ ("k", "v") ] inner.Span.attrs;
      if inner.Span.duration > outer.Span.duration then
        Alcotest.fail "child outlives parent"
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_safe () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  (try Span.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Span.with_span "after" (fun () -> ());
  match Span.drain () with
  | [ boom; after ] ->
      Alcotest.(check string) "raising span recorded" "boom" boom.Span.name;
      Alcotest.(check (option int)) "stack unwound: next span is a root" None
        after.Span.parent
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_ring_overflow () =
  Span.enable ~capacity:8 ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  for i = 1 to 20 do
    Span.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let spans = Span.drain () in
  Alcotest.(check int) "ring keeps newest [capacity]" 8 (List.length spans);
  Alcotest.(check int) "overwrites counted" 12 (Span.dropped ());
  Alcotest.(check (list string))
    "newest survive, in completion order"
    [ "s13"; "s14"; "s15"; "s16"; "s17"; "s18"; "s19"; "s20" ]
    (List.map (fun s -> s.Span.name) spans)

let test_span_disabled_is_free () =
  Span.disable ();
  let r = Span.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.drain ()))

let test_span_json_roundtrip () =
  let s =
    {
      Span.id = 17;
      parent = Some 3;
      name = "gibbs.sweep";
      start = 1.25;
      duration = 0.0625;
      attrs = [ ("chain", "2"); ("note", "a\"b\\c") ];
    }
  in
  (match Span.of_json (Span.to_json s) with
  | Error m -> Alcotest.failf "roundtrip failed: %s" m
  | Ok s' ->
      Alcotest.(check int) "id" s.Span.id s'.Span.id;
      Alcotest.(check (option int)) "parent" s.Span.parent s'.Span.parent;
      Alcotest.(check string) "name" s.Span.name s'.Span.name;
      check_float "start" s.Span.start s'.Span.start;
      check_float "duration" s.Span.duration s'.Span.duration;
      Alcotest.(check (list (pair string string))) "attrs" s.Span.attrs s'.Span.attrs);
  let root = { s with Span.parent = None } in
  match Span.of_json (Span.to_json root) with
  | Error m -> Alcotest.failf "null-parent roundtrip failed: %s" m
  | Ok r -> Alcotest.(check (option int)) "null parent" None r.Span.parent

let test_read_jsonl_malformed () =
  let path = Filename.temp_file "qnet_obs" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let good1 =
    Span.to_json
      { Span.id = 1; parent = None; name = "a"; start = 0.0; duration = 1.0; attrs = [] }
  in
  let good2 =
    Span.to_json
      { Span.id = 2; parent = Some 1; name = "b"; start = 0.1; duration = 0.5; attrs = [] }
  in
  let oc = open_out path in
  output_string oc (good1 ^ "\n{not json}\n" ^ good2 ^ "\n\n");
  close_out oc;
  match Span.read_jsonl path with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok (spans, bad) ->
      Alcotest.(check int) "good spans kept" 2 (List.length spans);
      Alcotest.(check int) "malformed lines counted, blanks ignored" 1 bad

let test_summary () =
  let mk id parent name start duration =
    { Span.id; parent; name; start; duration; attrs = [] }
  in
  (* root [0,10] with children [0,4] and [5,8]; a second root [10,12] *)
  let spans =
    [
      mk 2 (Some 1) "child" 0.0 4.0;
      mk 3 (Some 1) "child" 5.0 3.0;
      mk 1 None "root" 0.0 10.0;
      mk 4 None "tail" 10.0 2.0;
    ]
  in
  let s = Span.Summary.of_spans spans in
  check_float "wall spans earliest start to latest end" 12.0 s.Span.Summary.wall;
  check_float "roots cover everything" 1.0 s.Span.Summary.coverage;
  let phase name =
    List.find (fun p -> p.Span.Summary.name = name) s.Span.Summary.phases
  in
  check_float "root self excludes direct children" 3.0 (phase "root").Span.Summary.self;
  Alcotest.(check int) "phases aggregate by name" 2 (phase "child").Span.Summary.count;
  check_float "child total" 7.0 (phase "child").Span.Summary.total;
  check_float "child max" 4.0 (phase "child").Span.Summary.max_duration

(* --- /metrics endpoint --------------------------------------------- *)

let http_get port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "%s HTTP/1.1\r\nHost: localhost\r\n\r\n" target in
  ignore (Unix.write_substring sock req 0 (String.length req));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read sock chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
  ln = 0 || at 0

let test_metrics_server () =
  let reg = golden_registry () in
  match Metrics_server.start ~registry:reg ~port:0 () with
  | Error m -> Alcotest.failf "cannot start server: %s" m
  | Ok srv ->
      Fun.protect ~finally:(fun () -> Metrics_server.stop srv) @@ fun () ->
      let port = Metrics_server.port srv in
      let metrics = http_get port "GET /metrics" in
      if not (contains metrics "200 OK") then Alcotest.fail "/metrics not 200";
      if not (contains metrics "golden_requests_total 3") then
        Alcotest.failf "scrape missing counter:@\n%s" metrics;
      if not (contains metrics "# TYPE golden_latency_seconds histogram") then
        Alcotest.fail "scrape missing histogram family";
      let health = http_get port "GET /healthz" in
      if not (contains health "ok") then Alcotest.fail "/healthz not ok";
      if not (contains (http_get port "GET /nope") "404") then
        Alcotest.fail "unknown path should 404";
      if not (contains (http_get port "POST /metrics") "405") then
        Alcotest.fail "non-GET should 405"

let test_metrics_server_stop_idempotent () =
  match Metrics_server.start ~port:0 () with
  | Error m -> Alcotest.failf "cannot start server: %s" m
  | Ok srv ->
      Metrics_server.stop srv;
      Metrics_server.stop srv;
      (* the port is released: a new server can bind an ephemeral port
         and serve again *)
      (match Metrics_server.start ~port:0 () with
      | Error m -> Alcotest.failf "restart failed: %s" m
      | Ok srv2 -> Metrics_server.stop srv2)

let () =
  Alcotest.run "obs"
    [
      ( "metrics-concurrency",
        [
          Alcotest.test_case "counter: N domains, exact total" `Quick
            test_counter_domains;
          Alcotest.test_case "counter: weighted increments exact" `Quick
            test_counter_by_domains;
          Alcotest.test_case "histogram: N domains, exact buckets" `Quick
            test_histogram_domains;
        ] );
      ( "metrics-registry",
        [
          Alcotest.test_case "idempotent handles" `Quick test_idempotent_handles;
          Alcotest.test_case "kind conflict rejected" `Quick test_kind_conflict;
          Alcotest.test_case "name/label/increment validation" `Quick test_validation;
          Alcotest.test_case "gauge set/add" `Quick test_gauge;
          Alcotest.test_case "histogram NaN quarantine" `Quick test_histogram_nan;
        ] );
      ( "metrics-export",
        [
          Alcotest.test_case "Prometheus text matches golden file" `Quick
            test_prometheus_golden;
          Alcotest.test_case "JSONL lines parse" `Quick test_jsonl_parses;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and parent ids" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick test_span_exception_safe;
          Alcotest.test_case "ring overflow drops oldest" `Quick
            test_span_ring_overflow;
          Alcotest.test_case "disabled tracer records nothing" `Quick
            test_span_disabled_is_free;
          Alcotest.test_case "JSON roundtrip" `Quick test_span_json_roundtrip;
          Alcotest.test_case "read_jsonl skips malformed lines" `Quick
            test_read_jsonl_malformed;
          Alcotest.test_case "summary: self time and coverage" `Quick test_summary;
        ] );
      ( "metrics-server",
        [
          Alcotest.test_case "scrape /metrics, /healthz, 404, 405" `Quick
            test_metrics_server;
          Alcotest.test_case "stop is idempotent and releases the port" `Quick
            test_metrics_server_stop_idempotent;
        ] );
    ]
