(* Tests for qnet_obs: metrics registry exactness under domain
   parallelism, Prometheus/JSONL export, span tracing, the trace
   summary, and the /metrics HTTP endpoint. *)

module Metrics = Qnet_obs.Metrics
module Span = Qnet_obs.Span
module Jsonx = Qnet_obs.Jsonx
module Diagnostics = Qnet_obs.Diagnostics
module Metrics_server = Qnet_webapp.Metrics_server

let check_float = Alcotest.(check (float 1e-12))

(* --- metrics: exact totals under hammering domains ----------------- *)

let test_counter_domains () =
  let reg = Metrics.create_registry () in
  let c = Metrics.Counter.create ~registry:reg "hammer_total" in
  let domains = 4 and per_domain = 25_000 in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.Counter.inc c
            done))
  in
  Array.iter Domain.join workers;
  check_float "every increment counted exactly"
    (float_of_int (domains * per_domain))
    (Metrics.Counter.value c)

let test_counter_by_domains () =
  let reg = Metrics.create_registry () in
  let c = Metrics.Counter.create ~registry:reg "weighted_total" in
  let workers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            (* 0.25 sums exactly in binary floating point *)
            for _ = 1 to 10_000 do
              Metrics.Counter.inc ~by:(0.25 *. float_of_int (d + 1)) c
            done))
  in
  Array.iter Domain.join workers;
  (* 10_000 * 0.25 * (1+2+3+4) = 25_000 *)
  check_float "weighted increments exact" 25_000.0 (Metrics.Counter.value c)

let test_histogram_domains () =
  let reg = Metrics.create_registry () in
  let h =
    Metrics.Histogram.create ~registry:reg ~buckets:[| 1.0; 2.0; 4.0 |]
      "hammer_seconds"
  in
  let values = [| 0.5; 1.5; 3.0; 5.0 |] in
  let per_domain = 10_000 in
  let workers =
    Array.init (Array.length values) (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.Histogram.observe h values.(d)
            done))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "count" 40_000 (Metrics.Histogram.count h);
  (* all values are multiples of 0.5, so the sum is exact *)
  check_float "sum" 100_000.0 (Metrics.Histogram.sum h);
  let cum = Metrics.Histogram.cumulative_buckets h in
  Alcotest.(check (list (pair (float 0.0) int)))
    "cumulative buckets"
    [ (1.0, 10_000); (2.0, 20_000); (4.0, 30_000); (infinity, 40_000) ]
    (Array.to_list cum)

(* --- metrics: registration and cell semantics ---------------------- *)

let test_idempotent_handles () =
  let reg = Metrics.create_registry () in
  let a = Metrics.Counter.create ~registry:reg ~labels:[ ("k", "v") ] "idem_total" in
  let b = Metrics.Counter.create ~registry:reg ~labels:[ ("k", "v") ] "idem_total" in
  Metrics.Counter.inc a;
  Metrics.Counter.inc b;
  check_float "same (name, labels) is the same cell" 2.0 (Metrics.Counter.value a);
  let other = Metrics.Counter.create ~registry:reg ~labels:[ ("k", "w") ] "idem_total" in
  check_float "different labels are a different cell" 0.0
    (Metrics.Counter.value other)

let test_kind_conflict () =
  let reg = Metrics.create_registry () in
  let _ = Metrics.Counter.create ~registry:reg "conflict_total" in
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Metrics: \"conflict_total\" already registered as a counter, not a gauge")
    (fun () -> ignore (Metrics.Gauge.create ~registry:reg "conflict_total"))

let test_validation () =
  let reg = Metrics.create_registry () in
  (try
     ignore (Metrics.Counter.create ~registry:reg "bad name");
     Alcotest.fail "metric name with a space accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Metrics.Counter.create ~registry:reg ~labels:[ ("0bad", "v") ] "ok_total");
     Alcotest.fail "label name starting with a digit accepted"
   with Invalid_argument _ -> ());
  let c = Metrics.Counter.create ~registry:reg "mono_total" in
  (try
     Metrics.Counter.inc ~by:(-1.0) c;
     Alcotest.fail "negative increment accepted"
   with Invalid_argument _ -> ());
  check_float "counter untouched by rejected increment" 0.0
    (Metrics.Counter.value c)

let test_gauge () =
  let reg = Metrics.create_registry () in
  let g = Metrics.Gauge.create ~registry:reg "level" in
  Metrics.Gauge.set g 36.5;
  Metrics.Gauge.add g 1.0;
  check_float "set then add" 37.5 (Metrics.Gauge.value g)

let test_histogram_nan () =
  let reg = Metrics.create_registry () in
  let h = Metrics.Histogram.create ~registry:reg ~buckets:[| 1.0 |] "nan_seconds" in
  Metrics.Histogram.observe h 0.5;
  Metrics.Histogram.observe h Float.nan;
  Alcotest.(check int) "NaN excluded from count" 1 (Metrics.Histogram.count h);
  Alcotest.(check int) "NaN tallied separately" 1 (Metrics.Histogram.nan_count h);
  check_float "NaN excluded from sum" 0.5 (Metrics.Histogram.sum h)

(* --- export formats ------------------------------------------------ *)

let golden_registry () =
  let reg = Metrics.create_registry () in
  let h =
    Metrics.Histogram.create ~registry:reg ~buckets:[| 0.1; 1.0 |]
      ~help:"Observed latency" "golden_latency_seconds"
  in
  Metrics.Histogram.observe h 0.05;
  Metrics.Histogram.observe h 0.5;
  Metrics.Histogram.observe h 5.0;
  let c =
    Metrics.Counter.create ~registry:reg ~help:"Requests served"
      "golden_requests_total"
  in
  Metrics.Counter.inc ~by:3.0 c;
  let lc =
    Metrics.Counter.create ~registry:reg ~help:"Requests served"
      ~labels:[ ("method", "get"); ("code", "200") ]
      "golden_requests_total"
  in
  Metrics.Counter.inc ~by:2.0 lc;
  let esc =
    Metrics.Counter.create ~registry:reg ~help:"Label escaping probe"
      ~labels:[ ("path", "/a\"b\\c\nd") ]
      "golden_tricky_total"
  in
  Metrics.Counter.inc esc;
  let g = Metrics.Gauge.create ~registry:reg ~help:"A temperature" "golden_temperature" in
  Metrics.Gauge.set g 36.5;
  reg

let test_prometheus_golden () =
  let actual = Metrics.to_prometheus (golden_registry ()) in
  let golden =
    let ic = open_in "golden_metrics.prom" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if actual <> golden then
    Alcotest.failf
      "Prometheus text drifted from golden_metrics.prom.@\nActual:@\n%s" actual

let test_jsonl_parses () =
  let out = Metrics.to_jsonl ~ts:1234.5 (golden_registry ()) in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "one line per sample" 5 (List.length lines);
  List.iter
    (fun line ->
      match Jsonx.parse_object line with
      | Error m -> Alcotest.failf "unparseable JSONL line %S: %s" line m
      | Ok fields ->
          (match List.assoc_opt "ts" fields with
          | Some (Jsonx.Num 1234.5) -> ()
          | _ -> Alcotest.failf "missing/wrong ts in %S" line);
          if not (List.mem_assoc "name" fields) then
            Alcotest.failf "missing name in %S" line)
    lines

(* --- spans --------------------------------------------------------- *)

let test_span_nesting () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  let r =
    Span.with_span "outer" (fun () ->
        Span.with_span ~attrs:[ ("k", "v") ] "inner" (fun () -> 7) + 1)
  in
  Alcotest.(check int) "value threaded through" 8 r;
  match Span.drain () with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner name" "inner" inner.Span.name;
      Alcotest.(check string) "outer name" "outer" outer.Span.name;
      Alcotest.(check (option int)) "inner parented to outer" (Some outer.Span.id)
        inner.Span.parent;
      Alcotest.(check (option int)) "outer is a root" None outer.Span.parent;
      Alcotest.(check (list (pair string string)))
        "attrs kept" [ ("k", "v") ] inner.Span.attrs;
      if inner.Span.duration > outer.Span.duration then
        Alcotest.fail "child outlives parent"
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_safe () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  (try Span.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Span.with_span "after" (fun () -> ());
  match Span.drain () with
  | [ boom; after ] ->
      Alcotest.(check string) "raising span recorded" "boom" boom.Span.name;
      Alcotest.(check (option int)) "stack unwound: next span is a root" None
        after.Span.parent
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_ring_overflow () =
  Span.enable ~capacity:8 ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  for i = 1 to 20 do
    Span.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let spans = Span.drain () in
  Alcotest.(check int) "ring keeps newest [capacity]" 8 (List.length spans);
  Alcotest.(check int) "overwrites counted" 12 (Span.dropped ());
  Alcotest.(check (list string))
    "newest survive, in completion order"
    [ "s13"; "s14"; "s15"; "s16"; "s17"; "s18"; "s19"; "s20" ]
    (List.map (fun s -> s.Span.name) spans)

let test_span_disabled_is_free () =
  Span.disable ();
  let r = Span.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.drain ()))

let test_span_json_roundtrip () =
  let s =
    {
      Span.id = 17;
      parent = Some 3;
      name = "gibbs.sweep";
      start = 1.25;
      duration = 0.0625;
      attrs = [ ("chain", "2"); ("note", "a\"b\\c") ];
    }
  in
  (match Span.of_json (Span.to_json s) with
  | Error m -> Alcotest.failf "roundtrip failed: %s" m
  | Ok s' ->
      Alcotest.(check int) "id" s.Span.id s'.Span.id;
      Alcotest.(check (option int)) "parent" s.Span.parent s'.Span.parent;
      Alcotest.(check string) "name" s.Span.name s'.Span.name;
      check_float "start" s.Span.start s'.Span.start;
      check_float "duration" s.Span.duration s'.Span.duration;
      Alcotest.(check (list (pair string string))) "attrs" s.Span.attrs s'.Span.attrs);
  let root = { s with Span.parent = None } in
  match Span.of_json (Span.to_json root) with
  | Error m -> Alcotest.failf "null-parent roundtrip failed: %s" m
  | Ok r -> Alcotest.(check (option int)) "null parent" None r.Span.parent

let test_read_jsonl_malformed () =
  let path = Filename.temp_file "qnet_obs" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let good1 =
    Span.to_json
      { Span.id = 1; parent = None; name = "a"; start = 0.0; duration = 1.0; attrs = [] }
  in
  let good2 =
    Span.to_json
      { Span.id = 2; parent = Some 1; name = "b"; start = 0.1; duration = 0.5; attrs = [] }
  in
  let oc = open_out path in
  output_string oc (good1 ^ "\n{not json}\n" ^ good2 ^ "\n\n");
  close_out oc;
  match Span.read_jsonl path with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok { Span.spans; malformed; dropped } ->
      Alcotest.(check int) "good spans kept" 2 (List.length spans);
      Alcotest.(check int) "malformed lines counted, blanks ignored" 1 malformed;
      Alcotest.(check int) "no trailer -> dropped 0" 0 dropped

let test_read_jsonl_truncated () =
  (* a crashed writer leaves the tail of a spans file cut mid-document;
     read_jsonl must keep every whole span and count the wreckage, and
     the summary must still work over the survivors *)
  let path = Filename.temp_file "qnet_obs_trunc" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let mk id parent name =
    Span.to_json
      { Span.id; parent; name; start = float_of_int id; duration = 1.0; attrs = [] }
  in
  let good1 = mk 1 None "root" and good2 = mk 2 (Some 1) "child" in
  let oc = open_out path in
  output_string oc (good1 ^ "\n");
  (* valid JSON, wrong shape *)
  output_string oc "{\"id\":true}\n";
  (* a burst of binary garbage (disk corruption) *)
  output_string oc "\x00\xff\x13span\x07\n";
  output_string oc (good2 ^ "\n");
  (* the final line truncated mid-JSON, no trailing newline *)
  output_string oc (String.sub good1 0 (String.length good1 / 2));
  close_out oc;
  match Span.read_jsonl path with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok { Span.spans; malformed; dropped = _ } ->
      Alcotest.(check int) "whole spans kept" 2 (List.length spans);
      Alcotest.(check int) "wrong-shape + garbage + truncated counted" 3 malformed;
      let s = Span.Summary.of_spans spans in
      Alcotest.(check int) "summary runs over survivors" 2 s.Span.Summary.spans

(* --- folded stacks (flamegraph export) ----------------------------- *)

let test_folded_stacks () =
  let mk id parent name duration = { Span.id; parent; name; start = 0.0; duration; attrs = [] } in
  let spans =
    [
      mk 1 None "root" 10.0;
      (* child name exercises separator sanitization: ';' and ' ' would
         corrupt the folded line format *)
      mk 2 (Some 1) "gibbs sweep;hot" 4.0;
      (* zero self time must not emit a stack *)
      mk 3 None "zero" 0.0;
      (* parent overwritten in the ring before draining: the stack
         truncates at the orphan rather than dropping it *)
      mk 4 (Some 99) "orphan" 2.0;
    ]
  in
  Alcotest.(check (list (pair string int)))
    "self time per sanitized stack, sorted"
    [
      ("orphan", 2_000_000);
      ("root", 6_000_000);
      ("root;gibbs_sweep:hot", 4_000_000);
    ]
    (Span.to_folded spans)

let test_folded_merges_identical_stacks () =
  let mk id name duration = { Span.id; parent = None; name; start = 0.0; duration; attrs = [] } in
  Alcotest.(check (list (pair string int)))
    "same stack aggregates"
    [ ("sweep", 3_500_000) ]
    (Span.to_folded [ mk 1 "sweep" 1.5; mk 2 "sweep" 2.0 ])

let test_summary () =
  let mk id parent name start duration =
    { Span.id; parent; name; start; duration; attrs = [] }
  in
  (* root [0,10] with children [0,4] and [5,8]; a second root [10,12] *)
  let spans =
    [
      mk 2 (Some 1) "child" 0.0 4.0;
      mk 3 (Some 1) "child" 5.0 3.0;
      mk 1 None "root" 0.0 10.0;
      mk 4 None "tail" 10.0 2.0;
    ]
  in
  let s = Span.Summary.of_spans spans in
  check_float "wall spans earliest start to latest end" 12.0 s.Span.Summary.wall;
  check_float "roots cover everything" 1.0 s.Span.Summary.coverage;
  let phase name =
    List.find (fun p -> p.Span.Summary.name = name) s.Span.Summary.phases
  in
  check_float "root self excludes direct children" 3.0 (phase "root").Span.Summary.self;
  Alcotest.(check int) "phases aggregate by name" 2 (phase "child").Span.Summary.count;
  check_float "child total" 7.0 (phase "child").Span.Summary.total;
  check_float "child max" 4.0 (phase "child").Span.Summary.max_duration

(* --- diagnostics hub ----------------------------------------------- *)

(* Two chains, deterministic mixing series. The wobble keeps the
   within-chain variance positive (a constant window makes R-hat
   0/0) while both chains share a distribution, so split R-hat must
   land near 1. Queue 2 gets triple the waiting time of queue 1, so
   the bottleneck ranking must blame it. Queue 0 is the arrival
   queue and must be excluded from the verdict. *)
let feed_mixing_hub hub =
  Diagnostics.set_arrival_queue hub 0;
  for i = 1 to 32 do
    let wobble = 0.01 *. float_of_int (i mod 5) in
    for chain = 0 to 1 do
      Diagnostics.observe_iteration hub ~chain
        ~waiting:[| 0.5; 1.0; 3.0 |]
        [| 9.0 +. wobble; 1.0 +. wobble; 1.0 -. wobble |]
    done
  done

let test_diag_snapshot () =
  let reg = Metrics.create_registry () in
  let hub = Diagnostics.create ~registry:reg ~window:64 ~publish_every:1000 () in
  feed_mixing_hub hub;
  let s = Diagnostics.snapshot hub in
  Alcotest.(check int) "iterations pooled over chains" 64 s.Diagnostics.iterations_total;
  Alcotest.(check int) "no skipped samples" 0 s.Diagnostics.skipped_samples;
  Alcotest.(check int) "three queues" 3 (Array.length s.Diagnostics.queues);
  Alcotest.(check int) "two chains" 2 (Array.length s.Diagnostics.chains);
  Alcotest.(check int) "arrival queue recorded" 0 s.Diagnostics.arrival_queue;
  let q1 = s.Diagnostics.queues.(1) and q2 = s.Diagnostics.queues.(2) in
  Alcotest.(check int) "samples pooled" 64 q1.Diagnostics.samples;
  if not (Float.is_finite q1.Diagnostics.rhat) then
    Alcotest.fail "service-queue R-hat not finite";
  if Float.abs (q1.Diagnostics.rhat -. 1.0) > 0.2 then
    Alcotest.failf "identical chains should mix: R-hat %f" q1.Diagnostics.rhat;
  if not (Float.is_finite s.Diagnostics.max_rhat) then
    Alcotest.fail "max R-hat not finite";
  Alcotest.(check bool) "mixing chains converge" true s.Diagnostics.converged;
  (* waiting 3.0 against service ~1.0 dominates waiting 1.0 *)
  Alcotest.(check int) "bottleneck is the waiting-dominated queue" 2
    s.Diagnostics.bottleneck;
  if q2.Diagnostics.wait_fraction <= q1.Diagnostics.wait_fraction then
    Alcotest.fail "wait_fraction ranking inverted";
  if Float.abs (q1.Diagnostics.mean_service -. 1.02) > 0.01 then
    Alcotest.failf "pooled mean off: %f" q1.Diagnostics.mean_service;
  if q1.Diagnostics.ess < 1.0 then Alcotest.fail "ESS below the [1,n] clamp";
  if Float.abs q1.Diagnostics.acf1 > 1.0 then
    Alcotest.failf "acf1 outside [-1,1]: %f" q1.Diagnostics.acf1

let test_diag_nonfinite_skipped () =
  let reg = Metrics.create_registry () in
  let hub = Diagnostics.create ~registry:reg () in
  Diagnostics.observe_iteration hub ~chain:0 [| 1.0; 2.0 |];
  Diagnostics.observe_iteration hub ~chain:0 [| Float.nan; 2.0 |];
  Diagnostics.observe_iteration hub ~chain:0 [| 1.0; Float.infinity |];
  let s = Diagnostics.snapshot hub in
  Alcotest.(check int) "non-finite entries counted" 2 s.Diagnostics.skipped_samples;
  Alcotest.(check int) "queue 0 kept its finite iterates" 2
    s.Diagnostics.queues.(0).Diagnostics.samples;
  Alcotest.(check int) "queue 1 kept its finite iterates" 2
    s.Diagnostics.queues.(1).Diagnostics.samples

let test_diag_dimension_mismatch () =
  let reg = Metrics.create_registry () in
  let hub = Diagnostics.create ~registry:reg () in
  Diagnostics.observe_iteration hub ~chain:0 [| 1.0; 2.0; 3.0 |];
  (try
     Diagnostics.observe_iteration hub ~chain:1 [| 1.0 |];
     Alcotest.fail "queue-count change accepted"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "hub state intact after rejection" 1
    (Diagnostics.snapshot hub).Diagnostics.iterations_total

let test_diag_reset () =
  let reg = Metrics.create_registry () in
  let hub = Diagnostics.create ~registry:reg () in
  feed_mixing_hub hub;
  Diagnostics.reset hub;
  let s = Diagnostics.snapshot hub in
  Alcotest.(check int) "no iterations after reset" 0 s.Diagnostics.iterations_total;
  Alcotest.(check int) "no queues after reset" 0 (Array.length s.Diagnostics.queues);
  Alcotest.(check int) "arrival queue unset" (-1) s.Diagnostics.arrival_queue;
  (* and the hub is reusable with a different shape *)
  Diagnostics.observe_iteration hub ~chain:0 [| 1.0 |];
  Alcotest.(check int) "reusable with a new queue count" 1
    (Array.length (Diagnostics.snapshot hub).Diagnostics.queues)

let test_diag_sink_and_json () =
  let reg = Metrics.create_registry () in
  let hub = Diagnostics.create ~registry:reg ~publish_every:1000 () in
  feed_mixing_hub hub;
  let lines = ref [] in
  Diagnostics.set_sink hub (Some (fun l -> lines := l :: !lines));
  Diagnostics.publish hub;
  Diagnostics.set_sink hub None;
  Diagnostics.publish hub;
  Alcotest.(check int) "one line per publish while installed" 1
    (List.length !lines);
  let line = List.hd !lines in
  (match Jsonx.parse_object line with
  | Error m -> Alcotest.failf "sink line is not a JSON object: %s" m
  | Ok fields ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            Alcotest.failf "sink line missing %S" k)
        [ "ts"; "max_rhat"; "converged"; "queues"; "chains"; "gc"; "kernels" ]);
  (* /diagnostics.json serves the same document shape *)
  match Jsonx.parse_object (Diagnostics.snapshot_json hub) with
  | Error m -> Alcotest.failf "snapshot_json unparseable: %s" m
  | Ok _ -> ()

let test_diag_publish_gauges () =
  let reg = Metrics.create_registry () in
  let hub = Diagnostics.create ~registry:reg ~publish_every:1000 () in
  feed_mixing_hub hub;
  Diagnostics.publish hub;
  let gauge ?labels name = Metrics.Gauge.value (Metrics.Gauge.create ~registry:reg ?labels name) in
  check_float "chain count gauge" 2.0 (gauge "qnet_diag_chains");
  check_float "converged gauge" 1.0 (gauge "qnet_diag_converged");
  let rhat1 = gauge ~labels:[ ("queue", "1") ] "qnet_diag_rhat" in
  if not (Float.is_finite rhat1 && rhat1 > 0.0) then
    Alcotest.failf "per-queue R-hat gauge not published: %f" rhat1;
  let max_rhat = gauge "qnet_diag_max_rhat" in
  if not (Float.is_finite max_rhat && max_rhat > 0.0) then
    Alcotest.failf "max R-hat gauge not published: %f" max_rhat

let test_diag_gc_tick () =
  let reg = Metrics.create_registry () in
  let hub = Diagnostics.create ~registry:reg () in
  Diagnostics.gc_tick hub;
  ignore (Sys.opaque_identity (Array.init 100_000 (fun i -> float_of_int i)));
  Diagnostics.gc_tick hub;
  let s = Diagnostics.snapshot hub in
  if s.Diagnostics.gc.Diagnostics.minor_words <= 0.0 then
    Alcotest.fail "allocation not reflected in GC minor words";
  if s.Diagnostics.gc.Diagnostics.heap_words <= 0 then
    Alcotest.fail "heap words not sampled"

let test_diag_register_golden () =
  let reg = Metrics.create_registry () in
  Diagnostics.register_metrics ~registry:reg ();
  let actual = Metrics.to_prometheus reg in
  let golden =
    let ic = open_in "golden_diagnostics.prom" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if actual <> golden then
    Alcotest.failf
      "present-zeros scrape drifted from golden_diagnostics.prom.@\nActual:@\n%s"
      actual

(* --- /metrics endpoint --------------------------------------------- *)

let http_get port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "%s HTTP/1.1\r\nHost: localhost\r\n\r\n" target in
  ignore (Unix.write_substring sock req 0 (String.length req));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read sock chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
  ln = 0 || at 0

let test_metrics_server () =
  let reg = golden_registry () in
  let hub = Diagnostics.create ~registry:reg ~publish_every:1000 () in
  feed_mixing_hub hub;
  match Metrics_server.start ~registry:reg ~diagnostics:hub ~port:0 () with
  | Error e -> Alcotest.failf "cannot start server: %s" (Metrics_server.bind_error_message e)
  | Ok srv ->
      Fun.protect ~finally:(fun () -> Metrics_server.stop srv) @@ fun () ->
      let port = Metrics_server.port srv in
      let metrics = http_get port "GET /metrics" in
      if not (contains metrics "200 OK") then Alcotest.fail "/metrics not 200";
      if not (contains metrics "golden_requests_total 3") then
        Alcotest.failf "scrape missing counter:@\n%s" metrics;
      if not (contains metrics "# TYPE golden_latency_seconds histogram") then
        Alcotest.fail "scrape missing histogram family";
      let health = http_get port "GET /healthz" in
      if not (contains health "ok") then Alcotest.fail "/healthz not ok";
      let diag = http_get port "GET /diagnostics.json" in
      if not (contains diag "200 OK") then Alcotest.fail "/diagnostics.json not 200";
      if not (contains diag "\"max_rhat\":") then
        Alcotest.failf "/diagnostics.json missing max_rhat:@\n%s" diag;
      let dash = http_get port "GET /dashboard" in
      if not (contains dash "200 OK") then Alcotest.fail "/dashboard not 200";
      if not (contains dash "<title>qnet inference dashboard</title>") then
        Alcotest.fail "/dashboard missing the dashboard page";
      if not (contains (http_get port "GET /nope") "404") then
        Alcotest.fail "unknown path should 404";
      if not (contains (http_get port "POST /metrics") "405") then
        Alcotest.fail "non-GET should 405"

let test_metrics_server_stop_idempotent () =
  match Metrics_server.start ~port:0 () with
  | Error e -> Alcotest.failf "cannot start server: %s" (Metrics_server.bind_error_message e)
  | Ok srv ->
      Metrics_server.stop srv;
      Metrics_server.stop srv;
      (* the port is released: a new server can bind an ephemeral port
         and serve again *)
      (match Metrics_server.start ~port:0 () with
      | Error e -> Alcotest.failf "restart failed: %s" (Metrics_server.bind_error_message e)
      | Ok srv2 -> Metrics_server.stop srv2)

let test_bind_collision_typed_error () =
  match Metrics_server.start ~port:0 () with
  | Error e -> Alcotest.failf "cannot start server: %s" (Metrics_server.bind_error_message e)
  | Ok srv ->
      Fun.protect ~finally:(fun () -> Metrics_server.stop srv) @@ fun () ->
      let taken = Metrics_server.port srv in
      (* without retry: a typed `Addr_in_use, not a raw exception *)
      (match Metrics_server.start ~port:taken () with
      | Ok srv2 ->
          Metrics_server.stop srv2;
          Alcotest.fail "second bind on a taken port should fail"
      | Error { Metrics_server.kind = `Addr_in_use; detail } ->
          if not (contains detail "bind") then
            Alcotest.failf "detail should name the bind: %s" detail
      | Error e ->
          Alcotest.failf "expected `Addr_in_use, got: %s"
            (Metrics_server.bind_error_message e));
      (* with retry: the server comes up on an ephemeral port instead *)
      match Metrics_server.start ~retry_ephemeral:true ~port:taken () with
      | Error e ->
          Alcotest.failf "retry_ephemeral should succeed: %s"
            (Metrics_server.bind_error_message e)
      | Ok srv3 ->
          Fun.protect ~finally:(fun () -> Metrics_server.stop srv3) @@ fun () ->
          Alcotest.(check bool) "fell back" true (Metrics_server.fell_back srv3);
          if Metrics_server.port srv3 = taken then
            Alcotest.fail "fallback must land on a different port";
          if not (contains (http_get (Metrics_server.port srv3) "GET /healthz") "ok")
          then Alcotest.fail "fallback server should serve /healthz"

let test_bad_host_typed_error () =
  match Metrics_server.start ~host:"not-an-ip" ~port:0 () with
  | Ok srv ->
      Metrics_server.stop srv;
      Alcotest.fail "bad host should fail"
  | Error { Metrics_server.kind = `Bad_host; _ } -> ()
  | Error e ->
      Alcotest.failf "expected `Bad_host, got: %s"
        (Metrics_server.bind_error_message e)

(* --- histogram bucket boundaries and batched observation ----------- *)

(* the serve SLO bucket ladder: log-scale from 1 microsecond to 100 s *)
let slo_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let cum_counts h =
  Array.map snd (Metrics.Histogram.cumulative_buckets h)

let test_histogram_bucket_boundaries () =
  let reg = Metrics.create_registry () in
  let h =
    Metrics.Histogram.create ~registry:reg ~buckets:slo_buckets "edge_seconds"
  in
  (* sub-microsecond: below every bound, lands in the first bucket *)
  Metrics.Histogram.observe h 5e-7;
  Alcotest.(check (array int))
    "sub-microsecond lands in le=1e-6"
    [| 1; 1; 1; 1; 1; 1; 1; 1; 1; 1 |]
    (cum_counts h);
  (* an exact bucket edge: le semantics, v <= bound counts the bound's
     own bucket, not the next one up *)
  Metrics.Histogram.observe h 1e-3;
  Alcotest.(check (array int))
    "exact edge 1e-3 counted at le=1e-3"
    [| 1; 1; 1; 2; 2; 2; 2; 2; 2; 2 |]
    (cum_counts h);
  (* past the largest finite bound: only the +Inf bucket *)
  Metrics.Histogram.observe h 1e6;
  Alcotest.(check (array int))
    "overflow lands only in +Inf"
    [| 1; 1; 1; 2; 2; 2; 2; 2; 2; 3 |]
    (cum_counts h);
  Alcotest.(check int) "count" 3 (Metrics.Histogram.count h)

let test_histogram_observe_n () =
  let reg = Metrics.create_registry () in
  let h =
    Metrics.Histogram.create ~registry:reg ~buckets:[| 1.0; 2.0 |] "batch_seconds"
  in
  Metrics.Histogram.observe_n h ~n:32 0.5;
  Metrics.Histogram.observe_n h ~n:7 1.5;
  Metrics.Histogram.observe_n h ~n:0 100.0;
  Alcotest.(check int) "count sums the weights" 39 (Metrics.Histogram.count h);
  check_float "sum is n*v per batch" (32.0 *. 0.5 +. 7.0 *. 1.5)
    (Metrics.Histogram.sum h);
  Alcotest.(check (array int))
    "weighted buckets" [| 32; 39; 39 |] (cum_counts h);
  (try
     Metrics.Histogram.observe_n h ~n:(-1) 0.5;
     Alcotest.fail "negative weight accepted"
   with Invalid_argument _ -> ());
  Metrics.Histogram.observe_n h ~n:5 Float.nan;
  Alcotest.(check int) "NaN batch quarantined with its weight" 5
    (Metrics.Histogram.nan_count h);
  Alcotest.(check int) "NaN batch not counted" 39 (Metrics.Histogram.count h)

let test_histogram_quantile () =
  let reg = Metrics.create_registry () in
  let h =
    Metrics.Histogram.create ~registry:reg ~buckets:[| 1.0; 2.0; 4.0 |]
      "quant_seconds"
  in
  Alcotest.(check bool)
    "empty histogram has no quantiles" true
    (Float.is_nan (Metrics.Histogram.quantile h 0.5));
  (* 100 observations uniformly attributed inside (1, 2] *)
  Metrics.Histogram.observe_n h ~n:100 1.5;
  check_float "median interpolates inside the bucket" 1.5
    (Metrics.Histogram.quantile h 0.5);
  check_float "q=0 clamps to the bucket floor" 1.0
    (Metrics.Histogram.quantile h 0.0);
  (* push mass past the largest finite bound: the +Inf bucket has no
     upper edge, so the quantile clamps to the largest finite bound *)
  Metrics.Histogram.observe_n h ~n:900 100.0;
  check_float "+Inf bucket clamps to largest finite bound" 4.0
    (Metrics.Histogram.quantile h 0.99);
  (try
     ignore (Metrics.Histogram.quantile h 1.5);
     Alcotest.fail "quantile outside [0,1] accepted"
   with Invalid_argument _ -> ())

(* --- trace sampling determinism ------------------------------------ *)

module Trace_ctx = Qnet_obs.Trace_ctx

let decisions sampler n =
  List.init n (fun _ ->
      match Trace_ctx.sample ~born:0.0 sampler with
      | None -> None
      | Some c -> Some c.Trace_ctx.id)

let test_trace_sampling_determinism () =
  let mk () = Trace_ctx.make_sampler ~rate:0.05 ~seed:42 () in
  let a = decisions (mk ()) 2000 and b = decisions (mk ()) 2000 in
  Alcotest.(check (list (option int)))
    "same seed, same mint order: identical sampled set and ids" a b;
  let sampled = List.filter Option.is_some a in
  Alcotest.(check bool)
    "a 5% coin over 2000 mints samples something" true
    (List.length sampled > 0);
  Alcotest.(check bool)
    "...but not everything" true
    (List.length sampled < 2000);
  let zero = Trace_ctx.make_sampler ~rate:0.0 ~seed:42 () in
  Alcotest.(check bool)
    "rate 0 samples nothing" true
    (List.for_all Option.is_none (decisions zero 500));
  let one = Trace_ctx.make_sampler ~rate:1.0 ~seed:42 () in
  Alcotest.(check bool)
    "rate 1 samples everything" true
    (List.for_all Option.is_some (decisions one 500));
  Alcotest.(check int) "every flip counts as minted" 500 (Trace_ctx.minted one);
  let other = decisions (Trace_ctx.make_sampler ~rate:0.05 ~seed:43 ()) 2000 in
  Alcotest.(check bool) "a different seed samples a different set" true
    (a <> other)

(* --- span drop accounting and the dropped trailer ------------------ *)

let test_span_dropped_trailer_roundtrip () =
  let path = Filename.temp_file "qnet_obs_drop" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Span.enable ~capacity:4 ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  for i = 1 to 10 do
    Span.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let spans = Span.drain () in
  let dropped = Span.dropped () in
  Alcotest.(check int) "ring of 4 keeps 4 of 10" 4 (List.length spans);
  Alcotest.(check int) "6 oldest dropped" 6 dropped;
  let by_domain = Span.dropped_by_domain () in
  Alcotest.(check int)
    "per-domain drops sum to the total" dropped
    (List.fold_left (fun acc (_, n) -> acc + n) 0 by_domain);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Span.write_jsonl ~dropped oc spans);
  match Span.read_jsonl path with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok { Span.spans = back; malformed; dropped = d } ->
      Alcotest.(check int) "spans round-trip" 4 (List.length back);
      Alcotest.(check int) "trailer is not a malformed line" 0 malformed;
      Alcotest.(check int) "dropped count survives the file" 6 d

(* --- allocation/GC-pause profiler ---------------------------------- *)

module Prof = Qnet_obs.Prof

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains name hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" name needle hay

(* Keep the global profiler stopped between tests so the suite stays
   order-independent. *)
let with_prof ?config f =
  Prof.stop ();
  let backend = Prof.start ?config () in
  Fun.protect ~finally:(fun () -> Prof.stop ()) (fun () -> f backend)

let test_prof_off_by_default () =
  Prof.stop ();
  let before = Prof.stats () in
  Alcotest.(check bool) "not running" false before.Prof.is_running;
  (* Every gated entry point must be a pure pass-through when off. *)
  let r = Prof.with_phase "off.phase" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_phase passes the value through" 42 r;
  Prof.pause_probe ();
  Prof.record_site ~stack:[ "ghost" ] ~bytes:1024.0;
  Prof.record_pause Prof.Minor 0.5;
  let after = Prof.stats () in
  Alcotest.(check int) "no probes sampled" before.Prof.probes after.Prof.probes;
  Alcotest.(check int) "no memprof callbacks" before.Prof.memprof_callbacks
    after.Prof.memprof_callbacks;
  Alcotest.(check int) "no pauses recorded" before.Prof.pauses_recorded
    after.Prof.pauses_recorded;
  Alcotest.(check int) "no site rows added" before.Prof.site_rows
    after.Prof.site_rows

let test_prof_counters_accounting () =
  with_prof ~config:{ Prof.sampling_rate = 1.0; max_sites = 64 }
    (fun backend ->
      Alcotest.(check bool) "running" true (Prof.running ());
      let keep =
        Prof.with_phase "outer" (fun () ->
            Prof.with_phase "inner" (fun () -> Array.make 100_000 0.0))
      in
      Alcotest.(check int) "computation intact" 100_000 (Array.length keep);
      match backend with
      | Prof.Memprof ->
          (* statistical: just require the session to have sampled *)
          Alcotest.(check bool) "sampled something" true
            ((Prof.stats ()).Prof.memprof_callbacks > 0)
      | Prof.Counters ->
          (* exact Gc.counters deltas: the 100k-float array (~800KB)
             must land on the inner phase, and the outer phase's SELF
             bytes must exclude it *)
          let find path =
            match
              List.find_opt (fun r -> String.equal r.Prof.path path)
                (Prof.sites ())
            with
            | Some r -> r
            | None -> Alcotest.failf "no site row for %s" path
          in
          let inner = find "outer;inner" and outer = find "outer" in
          Alcotest.(check bool)
            (Printf.sprintf "inner holds the array (%.0f bytes)"
               inner.Prof.bytes)
            true
            (inner.Prof.bytes >= 800_000.0 && inner.Prof.bytes < 4_000_000.0);
          Alcotest.(check bool)
            (Printf.sprintf "outer self excludes it (%.0f bytes)"
               outer.Prof.bytes)
            true
            (outer.Prof.bytes >= 0.0 && outer.Prof.bytes < 200_000.0);
          Alcotest.(check bool) "session-wide bytes cover the array" true
            (Prof.allocated_bytes () >= 800_000.0))

let test_prof_folded_golden () =
  with_prof (fun _ ->
      Prof.record_site ~stack:[ "a b"; "x;y"; "" ] ~bytes:1024.0;
      Prof.record_site ~stack:[ "root" ] ~bytes:2048.0;
      Prof.record_site ~stack:[ "a b"; "x;y"; "" ] ~bytes:1024.0;
      Prof.record_site ~stack:[ "zero" ] ~bytes:0.0;
      Prof.record_site ~stack:[ "bad" ] ~bytes:Float.nan;
      Prof.record_site ~stack:[ "neg" ] ~bytes:(-5.0);
      (* sanitized (spaces -> _, ';' -> ':', "" -> (anonymous)),
         identical stacks merged, zero/non-finite/negative dropped,
         deterministically sorted by stack *)
      Alcotest.(check (list (pair string int)))
        "folded golden"
        [ ("a_b;x:y;(anonymous)", 2048); ("root", 2048) ]
        (Prof.to_folded ()))

let test_prof_pause_buckets () =
  with_prof (fun _ ->
      let base = (Prof.stats ()).Prof.pauses_recorded in
      Prof.record_pause Prof.Minor 1e-6;
      (* exactly on the first SLO bucket edge *)
      Prof.record_pause Prof.Minor 1e-9;
      (* below the ladder: clamps into the first bucket *)
      Prof.record_pause Prof.Minor (-3.0);
      (* negative clamps to 0 *)
      Prof.record_pause Prof.Major 1000.0;
      (* beyond the ladder: p99 clamps to the top edge *)
      Prof.record_pause Prof.Compaction 0.25;
      let summary = Prof.pause_summary () in
      (match summary with
      | [ (Prof.Minor, mi); (Prof.Major, ma); (Prof.Compaction, co) ] ->
          Alcotest.(check int) "three minor pauses" 3 mi.Prof.count;
          Alcotest.(check bool) "minor p99 in the microsecond decade" true
            (mi.Prof.p99_s <= 1e-5 +. 1e-12);
          Alcotest.(check int) "one major pause" 1 ma.Prof.count;
          Alcotest.(check bool)
            (Printf.sprintf "major p99 clamps to the 100s top edge (%g)"
               ma.Prof.p99_s)
            true
            (Float.is_finite ma.Prof.p99_s && ma.Prof.p99_s <= 100.0 +. 1e-9);
          Alcotest.(check int) "one compaction pause" 1 co.Prof.count;
          Alcotest.(check bool) "compaction p50 near 0.25s" true
            (co.Prof.p50_s >= 0.1 && co.Prof.p50_s <= 1.0)
      | _ -> Alcotest.fail "pause_summary is not [Minor; Major; Compaction]");
      Alcotest.(check int) "stats counts the recorded pauses" (base + 5)
        ((Prof.stats ()).Prof.pauses_recorded))

let test_prof_snapshot_json () =
  (* Jsonx.parse_object only descends two levels, so the snapshot is
     checked by substring, the same way the verify scripts consume it. *)
  with_prof (fun _ ->
      ignore (Prof.with_phase "snap.phase" (fun () -> Array.make 50_000 0.0));
      Prof.record_pause Prof.Minor 0.002;
      let live = Prof.snapshot_json () in
      check_contains "running" live "\"running\":true";
      check_contains "backend" live "\"backend\":\"";
      check_contains "alloc block" live "\"alloc\":{\"total_bytes\":";
      check_contains "pause block" live "\"minor\":{\"count\":";
      check_contains "major cycle block" live "\"major_cycle\":{\"count\":";
      check_contains "gc deltas" live "\"minor_collections\":";
      check_contains "probes" live "\"probes\":";
      check_contains "domains rollup" live "\"domains\":[");
  (* stop is idempotent and the data stays readable after it *)
  Prof.stop ();
  Prof.stop ();
  let stopped = Prof.snapshot_json () in
  check_contains "stopped" stopped "\"running\":false";
  check_contains "site table survives stop" stopped "\"stack\":\"";
  Alcotest.(check bool) "folded survives stop" true (Prof.to_folded () <> [])

let test_prof_restart_clears () =
  with_prof (fun _ -> Prof.record_site ~stack:[ "old" ] ~bytes:512.0);
  Alcotest.(check bool) "data readable after stop" true
    (List.mem_assoc "old" (Prof.to_folded ()));
  with_prof (fun _ ->
      Alcotest.(check (list (pair string int)))
        "restart clears the previous session" [] (Prof.to_folded ()))

let test_prof_start_validation () =
  Prof.stop ();
  let bad config =
    match Prof.start ~config () with
    | _ ->
        Prof.stop ();
        Alcotest.fail "invalid config accepted"
    | exception Invalid_argument _ -> ()
  in
  bad { Prof.sampling_rate = 0.0; max_sites = 16 };
  bad { Prof.sampling_rate = 1.5; max_sites = 16 };
  bad { Prof.sampling_rate = Float.nan; max_sites = 16 };
  bad { Prof.sampling_rate = 0.5; max_sites = 0 };
  Alcotest.(check bool) "nothing started" false (Prof.running ());
  (* a second start while running is a no-op returning the live backend *)
  with_prof (fun first ->
      let again = Prof.start () in
      Alcotest.(check bool) "no-op restart keeps the backend" true
        (first = again))

let test_prof_rusage () =
  match Prof.Rusage.sample () with
  | None ->
      if Sys.os_type = "Unix" && Sys.file_exists "/proc/self/stat" then
        Alcotest.fail "rusage unavailable despite /proc"
  | Some r ->
      Alcotest.(check bool) "rss positive" true (r.Prof.Rusage.rss_bytes > 0.0);
      Alcotest.(check bool) "peak >= current rss" true
        (r.Prof.Rusage.max_rss_bytes >= r.Prof.Rusage.rss_bytes);
      Alcotest.(check bool) "cpu times non-negative" true
        (r.Prof.Rusage.utime_s >= 0.0 && r.Prof.Rusage.stime_s >= 0.0)

let () =
  Alcotest.run "obs"
    [
      ( "metrics-concurrency",
        [
          Alcotest.test_case "counter: N domains, exact total" `Quick
            test_counter_domains;
          Alcotest.test_case "counter: weighted increments exact" `Quick
            test_counter_by_domains;
          Alcotest.test_case "histogram: N domains, exact buckets" `Quick
            test_histogram_domains;
        ] );
      ( "metrics-registry",
        [
          Alcotest.test_case "idempotent handles" `Quick test_idempotent_handles;
          Alcotest.test_case "kind conflict rejected" `Quick test_kind_conflict;
          Alcotest.test_case "name/label/increment validation" `Quick test_validation;
          Alcotest.test_case "gauge set/add" `Quick test_gauge;
          Alcotest.test_case "histogram NaN quarantine" `Quick test_histogram_nan;
          Alcotest.test_case "histogram bucket boundaries (SLO ladder)" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "histogram batched observe_n" `Quick
            test_histogram_observe_n;
          Alcotest.test_case "histogram quantile interpolation" `Quick
            test_histogram_quantile;
        ] );
      ( "trace-sampling",
        [
          Alcotest.test_case "deterministic head-based sampling" `Quick
            test_trace_sampling_determinism;
        ] );
      ( "metrics-export",
        [
          Alcotest.test_case "Prometheus text matches golden file" `Quick
            test_prometheus_golden;
          Alcotest.test_case "JSONL lines parse" `Quick test_jsonl_parses;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and parent ids" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick test_span_exception_safe;
          Alcotest.test_case "ring overflow drops oldest" `Quick
            test_span_ring_overflow;
          Alcotest.test_case "disabled tracer records nothing" `Quick
            test_span_disabled_is_free;
          Alcotest.test_case "JSON roundtrip" `Quick test_span_json_roundtrip;
          Alcotest.test_case "read_jsonl skips malformed lines" `Quick
            test_read_jsonl_malformed;
          Alcotest.test_case "read_jsonl survives truncated/corrupt tails" `Quick
            test_read_jsonl_truncated;
          Alcotest.test_case "summary: self time and coverage" `Quick test_summary;
          Alcotest.test_case "drop accounting and dropped trailer" `Quick
            test_span_dropped_trailer_roundtrip;
        ] );
      ( "folded-stacks",
        [
          Alcotest.test_case "self time, sanitization, orphans, zero-drop" `Quick
            test_folded_stacks;
          Alcotest.test_case "identical stacks aggregate" `Quick
            test_folded_merges_identical_stacks;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "snapshot: R-hat, ESS, bottleneck, convergence" `Quick
            test_diag_snapshot;
          Alcotest.test_case "non-finite iterates skipped and counted" `Quick
            test_diag_nonfinite_skipped;
          Alcotest.test_case "queue-count change rejected" `Quick
            test_diag_dimension_mismatch;
          Alcotest.test_case "reset drops state, hub reusable" `Quick test_diag_reset;
          Alcotest.test_case "sink lines and snapshot JSON parse" `Quick
            test_diag_sink_and_json;
          Alcotest.test_case "publish refreshes qnet_diag_* gauges" `Quick
            test_diag_publish_gauges;
          Alcotest.test_case "gc_tick folds allocation deltas" `Quick
            test_diag_gc_tick;
          Alcotest.test_case "register_metrics matches golden present-zeros scrape"
            `Quick test_diag_register_golden;
        ] );
      ( "prof",
        [
          Alcotest.test_case "off by default: pure pass-through" `Quick
            test_prof_off_by_default;
          Alcotest.test_case "counters backend: exact phase accounting" `Quick
            test_prof_counters_accounting;
          Alcotest.test_case "folded export golden" `Quick
            test_prof_folded_golden;
          Alcotest.test_case "pause ladder edges and clamps" `Quick
            test_prof_pause_buckets;
          Alcotest.test_case "snapshot JSON shape, stop idempotent" `Quick
            test_prof_snapshot_json;
          Alcotest.test_case "restart clears the previous session" `Quick
            test_prof_restart_clears;
          Alcotest.test_case "start validates config" `Quick
            test_prof_start_validation;
          Alcotest.test_case "rusage sample" `Quick test_prof_rusage;
        ] );
      ( "metrics-server",
        [
          Alcotest.test_case "scrape /metrics, /healthz, 404, 405" `Quick
            test_metrics_server;
          Alcotest.test_case "stop is idempotent and releases the port" `Quick
            test_metrics_server_stop_idempotent;
          Alcotest.test_case "port collision: typed error, ephemeral fallback"
            `Quick test_bind_collision_typed_error;
          Alcotest.test_case "invalid host: typed `Bad_host" `Quick
            test_bad_host_typed_error;
        ] );
    ]
