(* Tests for the probability substrate: RNG, special functions,
   distributions, the piecewise-exponential sampler, statistics. *)

module Rng = Qnet_prob.Rng
module Special = Qnet_prob.Special
module D = Qnet_prob.Distributions
module Piecewise = Qnet_prob.Piecewise
module Stats = Qnet_prob.Statistics
module Quad = Qnet_numerics.Quadrature

let check_close ?(eps = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (diff %.3g)" name expected actual
      (Float.abs (expected -. actual))

let check_rel ?(eps = 1e-6) name expected actual =
  let denom = Float.max (Float.abs expected) 1e-30 in
  if Float.abs (expected -. actual) /. denom > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel %.3g)" name expected actual
      (Float.abs (expected -. actual) /. denom)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 () and b = Rng.create ~seed:7 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:2 () in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr equal
  done;
  Alcotest.(check bool) "different seeds diverge" true (!equal < 4)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:3 () in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy resumes at same point" xa xb;
  (* advancing a further must not affect b *)
  let _ = Rng.bits64 a in
  let xa2 = Rng.bits64 a and xb2 = Rng.bits64 b in
  Alcotest.(check bool) "streams independent after copy" true (xa2 <> xb2 || xa2 = xb2)

let test_rng_split_diverges () =
  let a = Rng.create ~seed:5 () in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_float_unit_range () =
  let rng = Rng.create ~seed:11 () in
  for _ = 1 to 10_000 do
    let x = Rng.float_unit rng in
    if not (x >= 0.0 && x < 1.0) then Alcotest.failf "float_unit out of range: %g" x
  done

let test_float_pos_range () =
  let rng = Rng.create ~seed:12 () in
  for _ = 1 to 10_000 do
    let x = Rng.float_pos rng in
    if not (x > 0.0 && x <= 1.0) then Alcotest.failf "float_pos out of range: %g" x
  done

let test_float_unit_mean () =
  let rng = Rng.create ~seed:13 () in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float_unit rng
  done;
  check_close ~eps:0.01 "uniform mean" 0.5 (!acc /. float_of_int n)

let test_int_bounds () =
  let rng = Rng.create ~seed:14 () in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of range: %d" x
  done

let test_int_uniformity () =
  let rng = Rng.create ~seed:15 () in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Rng.int rng 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      if Float.abs (freq -. 0.2) > 0.01 then
        Alcotest.failf "bucket %d frequency %.4f too far from 0.2" i freq)
    counts

let test_int_rejects_nonpositive () =
  let rng = Rng.create () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:16 () in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:17 () in
  for _ = 1 to 100 do
    let l = Rng.sample_without_replacement rng 5 20 in
    Alcotest.(check int) "size" 5 (List.length l);
    Alcotest.(check bool) "sorted distinct" true (List.sort_uniq compare l = l);
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20)) l
  done

let test_sample_without_replacement_all () =
  let rng = Rng.create ~seed:18 () in
  let l = Rng.sample_without_replacement rng 10 10 in
  Alcotest.(check (list int)) "k = n selects everything" (List.init 10 Fun.id) l

let test_sample_without_replacement_uniform () =
  let rng = Rng.create ~seed:19 () in
  let counts = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    List.iter (fun i -> counts.(i) <- counts.(i) + 1) (Rng.sample_without_replacement rng 3 10)
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      if Float.abs (freq -. 0.3) > 0.02 then
        Alcotest.failf "index %d frequency %.4f too far from 0.3" i freq)
    counts

let test_categorical_frequencies () =
  let rng = Rng.create ~seed:20 () in
  let w = [| 1.0; 2.0; 3.0; 4.0 |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.categorical rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      let expect = w.(i) /. 10.0 in
      if Float.abs (freq -. expect) > 0.01 then
        Alcotest.failf "weight %d freq %.4f vs %.4f" i freq expect)
    counts

let test_categorical_zero_weights () =
  let rng = Rng.create ~seed:21 () in
  for _ = 1 to 1000 do
    let i = Rng.categorical rng [| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "only positive weight wins" 1 i
  done

let test_categorical_rejects_all_zero () =
  let rng = Rng.create () in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.categorical: no positive weight") (fun () ->
      ignore (Rng.categorical rng [| 0.0; 0.0 |]))

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_log_sum_exp2 () =
  check_rel "lse2 basic" (log (exp 1.0 +. exp 2.0)) (Special.log_sum_exp2 1.0 2.0);
  check_rel "lse2 large" (1000.0 +. log 2.0) (Special.log_sum_exp2 1000.0 1000.0);
  check_close "lse2 neg_inf left" 3.0 (Special.log_sum_exp2 neg_infinity 3.0);
  check_close "lse2 neg_inf right" 3.0 (Special.log_sum_exp2 3.0 neg_infinity)

let test_log_sum_exp () =
  check_rel "lse array"
    (log (exp 0.5 +. exp 1.5 +. exp (-0.5)))
    (Special.log_sum_exp [| 0.5; 1.5; -0.5 |]);
  check_close "lse empty" neg_infinity (Special.log_sum_exp [||]);
  check_rel "lse huge" (-1000.0 +. log 3.0)
    (Special.log_sum_exp [| -1000.0; -1000.0; -1000.0 |])

let test_log1mexp () =
  check_rel "log1mexp moderate" (log (1.0 -. exp (-1.0))) (Special.log1mexp (-1.0));
  check_rel "log1mexp tiny" (log (-.Float.expm1 (-1e-10))) (Special.log1mexp (-1e-10));
  (* at -50, 1 - e^-50 rounds to 1.; log1mexp keeps the -e^-50 term *)
  check_close ~eps:1e-30 "log1mexp large" (-.exp (-50.0)) (Special.log1mexp (-50.0));
  check_close "log1mexp zero" neg_infinity (Special.log1mexp 0.0)

let test_log_expm1 () =
  check_rel "log_expm1 moderate" (log (Float.expm1 2.0)) (Special.log_expm1 2.0);
  check_rel "log_expm1 small" (log (Float.expm1 1e-8)) (Special.log_expm1 1e-8);
  check_rel "log_expm1 huge" 100.0 (Special.log_expm1 100.0)

let test_log_gamma_known_values () =
  check_rel "gamma(1)" 1.0 (exp (Special.log_gamma 1.0));
  check_rel "gamma(2)" 1.0 (exp (Special.log_gamma 2.0));
  check_rel ~eps:1e-10 "gamma(5) = 24" (log 24.0) (Special.log_gamma 5.0);
  check_rel ~eps:1e-10 "gamma(0.5) = sqrt pi"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5);
  (* recurrence Gamma(x+1) = x Gamma(x) *)
  let x = 3.7 in
  check_rel ~eps:1e-10 "recurrence"
    (Special.log_gamma x +. log x)
    (Special.log_gamma (x +. 1.0))

let test_log_factorial () =
  check_close "0!" 0.0 (Special.log_factorial 0);
  check_close "1!" 0.0 (Special.log_factorial 1);
  check_rel "10!" (log 3628800.0) (Special.log_factorial 10);
  check_rel ~eps:1e-10 "50! matches log_gamma" (Special.log_gamma 51.0)
    (Special.log_factorial 50)

let test_erf_known_values () =
  (* reference values from standard tables *)
  check_rel ~eps:1e-6 "erf(0.5)" 0.5204998778130465 (Special.erf 0.5);
  check_rel ~eps:1e-6 "erf(1)" 0.8427007929497149 (Special.erf 1.0);
  check_rel ~eps:1e-6 "erf(2)" 0.9953222650189527 (Special.erf 2.0);
  check_close "erf(0)" 0.0 (Special.erf 0.0);
  check_rel ~eps:1e-6 "erf odd" (-.Special.erf 1.3) (Special.erf (-1.3))

let test_erfc_tail () =
  (* erfc(x) ~ exp(-x^2)/(x sqrt pi) for large x; check positivity and
     monotone decay where naive 1 - erf underflows *)
  let e5 = Special.erfc 5.0 in
  check_rel ~eps:1e-5 "erfc(5)" 1.5374597944280351e-12 e5;
  Alcotest.(check bool) "erfc decreasing" true (Special.erfc 6.0 < e5)

let test_std_normal_cdf () =
  check_close ~eps:1e-9 "Phi(0)" 0.5 (Special.std_normal_cdf 0.0);
  check_rel ~eps:1e-6 "Phi(1.96)" 0.9750021048517795 (Special.std_normal_cdf 1.96);
  check_rel ~eps:1e-6 "Phi(-1)" 0.15865525393145707 (Special.std_normal_cdf (-1.0))

let test_std_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Special.std_normal_quantile p in
      check_close ~eps:1e-9 (Printf.sprintf "roundtrip p=%g" p) p
        (Special.std_normal_cdf x))
    [ 0.001; 0.025; 0.2; 0.5; 0.8; 0.975; 0.999 ]

let test_incomplete_gamma () =
  (* P(1, x) = 1 - e^-x *)
  List.iter
    (fun x ->
      check_rel ~eps:1e-10
        (Printf.sprintf "P(1,%g)" x)
        (1.0 -. exp (-.x))
        (Special.lower_incomplete_gamma_regularized 1.0 x))
    [ 0.1; 1.0; 3.0; 10.0 ];
  (* P(2, x) = 1 - e^-x (1 + x) *)
  List.iter
    (fun x ->
      check_rel ~eps:1e-10
        (Printf.sprintf "P(2,%g)" x)
        (1.0 -. (exp (-.x) *. (1.0 +. x)))
        (Special.lower_incomplete_gamma_regularized 2.0 x))
    [ 0.5; 2.0; 8.0 ];
  check_close "P(a,0)" 0.0 (Special.lower_incomplete_gamma_regularized 3.0 0.0)

(* ------------------------------------------------------------------ *)
(* Distributions *)

let sample_many rng d n = Array.init n (fun _ -> D.sample rng d)

let test_dist_validate () =
  let bad =
    [
      D.Exponential 0.0;
      D.Exponential (-1.0);
      D.Uniform (2.0, 1.0);
      D.Gamma (0.0, 1.0);
      D.Erlang (0, 1.0);
      D.Normal (0.0, 0.0);
      D.Lognormal (0.0, -1.0);
      D.Pareto (0.0, 1.0);
      D.Hyperexponential [||];
      D.Hyperexponential [| (0.0, 1.0) |];
      D.Truncated_exponential (1.0, 0.0);
    ]
  in
  List.iter
    (fun d ->
      match D.validate d with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "expected validation failure: %s" (Format.asprintf "%a" D.pp d))
    bad;
  let good =
    [
      D.Exponential 2.0;
      D.Uniform (0.0, 1.0);
      D.Gamma (2.5, 3.0);
      D.Erlang (3, 2.0);
      D.Normal (1.0, 2.0);
      D.Lognormal (0.0, 0.5);
      D.Deterministic 4.0;
      D.Pareto (1.0, 2.5);
      D.Hyperexponential [| (0.5, 1.0); (0.5, 10.0) |];
      D.Truncated_exponential (-3.0, 2.0);
    ]
  in
  List.iter
    (fun d ->
      match D.validate d with
      | Ok () -> ()
      | Error m -> Alcotest.failf "unexpected validation failure: %s" m)
    good

let test_sample_moments d name eps =
  let rng = Rng.create ~seed:31 () in
  let n = 200_000 in
  let xs = sample_many rng d n in
  let sample_mean = Stats.mean xs in
  let sample_var = Stats.variance xs in
  check_rel ~eps (name ^ " mean") (D.mean d) sample_mean;
  check_rel ~eps:(3.0 *. eps) (name ^ " variance") (D.variance d) sample_var

let test_exponential_moments () = test_sample_moments (D.Exponential 4.0) "exp" 0.02
let test_uniform_moments () = test_sample_moments (D.Uniform (2.0, 5.0)) "unif" 0.02
let test_gamma_moments () = test_sample_moments (D.Gamma (2.5, 3.0)) "gamma" 0.02
let test_gamma_small_shape_moments () = test_sample_moments (D.Gamma (0.4, 1.0)) "gamma<1" 0.03
let test_erlang_moments () = test_sample_moments (D.Erlang (4, 8.0)) "erlang" 0.02
let test_normal_moments () = test_sample_moments (D.Normal (3.0, 1.5)) "normal" 0.02
let test_lognormal_moments () = test_sample_moments (D.Lognormal (0.2, 0.4)) "lognorm" 0.02

let test_hyperexp_moments () =
  test_sample_moments (D.Hyperexponential [| (0.7, 2.0); (0.3, 0.5) |]) "hyperexp" 0.03

let test_trunc_exp_moments () =
  test_sample_moments (D.Truncated_exponential (2.0, 1.5)) "trexp" 0.02;
  test_sample_moments (D.Truncated_exponential (-2.0, 1.5)) "trexp-neg" 0.02

let test_deterministic () =
  let rng = Rng.create () in
  let d = D.Deterministic 3.5 in
  Alcotest.(check (float 0.0)) "sample" 3.5 (D.sample rng d);
  Alcotest.(check (float 0.0)) "mean" 3.5 (D.mean d);
  Alcotest.(check (float 0.0)) "variance" 0.0 (D.variance d);
  Alcotest.(check (float 0.0)) "cdf below" 0.0 (D.cdf d 3.0);
  Alcotest.(check (float 0.0)) "cdf at" 1.0 (D.cdf d 3.5)

let ks_check name d =
  let rng = Rng.create ~seed:37 () in
  let n = 20_000 in
  let xs = sample_many rng d n in
  let ks = Stats.ks_statistic_against xs (D.cdf d) in
  (* 99.9% KS critical value ~ 1.95 / sqrt n *)
  let critical = 1.95 /. sqrt (float_of_int n) in
  if ks > critical then Alcotest.failf "%s: KS %.5f > %.5f" name ks critical

let test_ks_exponential () = ks_check "exp" (D.Exponential 2.5)
let test_ks_gamma () = ks_check "gamma" (D.Gamma (3.2, 1.1))
let test_ks_erlang () = ks_check "erlang" (D.Erlang (3, 5.0))
let test_ks_normal () = ks_check "normal" (D.Normal (-1.0, 2.0))
let test_ks_lognormal () = ks_check "lognormal" (D.Lognormal (0.5, 0.8))
let test_ks_pareto () = ks_check "pareto" (D.Pareto (1.5, 3.0))
let test_ks_uniform () = ks_check "uniform" (D.Uniform (-2.0, 7.0))

let test_ks_hyperexp () =
  ks_check "hyperexp" (D.Hyperexponential [| (0.4, 1.0); (0.6, 6.0) |])

let test_ks_trunc_exp () =
  ks_check "trexp+" (D.Truncated_exponential (3.0, 0.7));
  ks_check "trexp-" (D.Truncated_exponential (-3.0, 0.7));
  ks_check "trexp0" (D.Truncated_exponential (1e-14, 0.7))

let test_quantile_roundtrip () =
  let dists =
    [
      D.Exponential 2.0;
      D.Uniform (1.0, 4.0);
      D.Gamma (2.0, 1.5);
      D.Erlang (3, 2.0);
      D.Normal (0.0, 1.0);
      D.Lognormal (0.1, 0.6);
      D.Pareto (1.0, 2.0);
      D.Hyperexponential [| (0.5, 1.0); (0.5, 5.0) |];
      D.Truncated_exponential (2.0, 3.0);
    ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun p ->
          let x = D.quantile d p in
          check_close ~eps:1e-6
            (Format.asprintf "roundtrip %a p=%g" D.pp d p)
            p (D.cdf d x))
        [ 0.05; 0.3; 0.5; 0.7; 0.95 ])
    dists

let test_pdf_integrates_to_cdf () =
  (* integrate the pdf numerically and compare with the cdf *)
  let dists =
    [
      (D.Exponential 1.5, 0.0, 2.0);
      (D.Gamma (2.0, 2.0), 0.0, 3.0);
      (D.Normal (0.0, 1.0), -3.0, 1.0);
      (D.Lognormal (0.0, 0.5), 1e-9, 2.0);
      (D.Truncated_exponential (2.0, 1.0), 0.0, 0.8);
    ]
  in
  List.iter
    (fun (d, lo, hi) ->
      let integral = Quad.adaptive_simpson (D.pdf d) lo hi in
      check_rel ~eps:1e-6
        (Format.asprintf "pdf integral %a" D.pp d)
        (D.cdf d hi -. D.cdf d lo)
        integral)
    dists

let test_squared_cv () =
  check_rel "exp scv = 1" 1.0 (D.squared_cv (D.Exponential 3.0));
  Alcotest.(check bool) "erlang scv < 1" true (D.squared_cv (D.Erlang (4, 1.0)) < 1.0);
  Alcotest.(check bool) "hyperexp scv > 1" true
    (D.squared_cv (D.Hyperexponential [| (0.9, 10.0); (0.1, 0.2) |]) > 1.0)

let test_exponential_mle () =
  check_rel "mle basic" 0.5 (D.exponential_mle [ 2.0; 2.0; 2.0 ]);
  let rng = Rng.create ~seed:41 () in
  let xs = Array.to_list (sample_many rng (D.Exponential 3.0) 100_000) in
  check_rel ~eps:0.02 "mle recovers rate" 3.0 (D.exponential_mle xs)

(* ------------------------------------------------------------------ *)
(* Piecewise log-linear sampler *)

let compile_simple () =
  Piecewise.compile ~lower:0.0 ~upper:2.0 ~linear:(-1.0) ~hinges:[]

let test_piecewise_simple_exponential () =
  (* density ∝ e^{-x} on [0,2]: cdf known in closed form *)
  let pw = compile_simple () in
  let z = 1.0 -. exp (-2.0) in
  List.iter
    (fun x ->
      check_rel ~eps:1e-10
        (Printf.sprintf "cdf at %g" x)
        ((1.0 -. exp (-.x)) /. z)
        (Piecewise.cdf pw x))
    [ 0.2; 0.7; 1.3; 1.9 ]

let test_piecewise_uniform () =
  let pw = Piecewise.compile ~lower:1.0 ~upper:3.0 ~linear:0.0 ~hinges:[] in
  check_rel ~eps:1e-12 "uniform cdf" 0.25 (Piecewise.cdf pw 1.5);
  check_rel ~eps:1e-10 "uniform mean" 2.0 (Piecewise.mean pw);
  check_rel ~eps:1e-12 "uniform quantile" 2.5 (Piecewise.quantile pw 0.75)

let test_piecewise_hinge_breakpoints () =
  let pw =
    Piecewise.compile ~lower:0.0 ~upper:10.0 ~linear:(-2.0)
      ~hinges:[ { Piecewise.knee = 3.0; slope = 1.5 }; { knee = 7.0; slope = 0.5 } ]
  in
  match Piecewise.pieces pw with
  | [ (a0, b0, r0); (a1, b1, r1); (a2, b2, r2) ] ->
      check_close "piece0 lo" 0.0 a0;
      check_close "piece0 hi" 3.0 b0;
      check_close "piece0 rate" (-2.0) r0;
      check_close "piece1 lo" 3.0 a1;
      check_close "piece1 hi" 7.0 b1;
      check_close "piece1 rate" (-0.5) r1;
      check_close "piece2 lo" 7.0 a2;
      check_close "piece2 hi" 10.0 b2;
      check_close "piece2 rate" 0.0 r2
  | ps -> Alcotest.failf "expected 3 pieces, got %d" (List.length ps)

let test_piecewise_knee_outside () =
  (* knee left of the interval folds into the base slope; right of it
     is dropped *)
  let pw =
    Piecewise.compile ~lower:2.0 ~upper:4.0 ~linear:(-1.0)
      ~hinges:[ { Piecewise.knee = 0.0; slope = 3.0 }; { knee = 9.0; slope = -5.0 } ]
  in
  match Piecewise.pieces pw with
  | [ (_, _, r) ] -> check_close "folded slope" 2.0 r
  | ps -> Alcotest.failf "expected 1 piece, got %d" (List.length ps)

let test_piecewise_density_continuity () =
  let pw =
    Piecewise.compile ~lower:0.0 ~upper:5.0 ~linear:1.0
      ~hinges:[ { Piecewise.knee = 2.0; slope = -3.0 } ]
  in
  let eps = 1e-7 in
  let left = Piecewise.log_density pw (2.0 -. eps) in
  let right = Piecewise.log_density pw (2.0 +. eps) in
  check_close ~eps:1e-5 "continuous at knee" left right

let test_piecewise_normalizer_vs_quadrature () =
  let cases =
    [
      (0.0, 1.0, -2.0, [ { Piecewise.knee = 0.4; slope = 5.0 } ]);
      (0.0, 3.0, 0.0, [ { Piecewise.knee = 1.0; slope = -1.0 }; { knee = 2.0; slope = 2.5 } ]);
      (5.0, 6.0, 100.0, []);
      (0.0, 1.0, -200.0, [ { Piecewise.knee = 0.5; slope = 400.0 } ]);
    ]
  in
  List.iteri
    (fun i (lo, hi, linear, hinges) ->
      let pw = Piecewise.compile ~lower:lo ~upper:hi ~linear ~hinges in
      let log_z = Piecewise.log_normalizer pw in
      let log_z_quad =
        Quad.log_integral_exp (fun x -> Piecewise.log_density pw x) lo hi
      in
      check_rel ~eps:1e-6 (Printf.sprintf "normalizer case %d" i) log_z_quad log_z)
    cases

let test_piecewise_cdf_vs_quadrature () =
  let pw =
    Piecewise.compile ~lower:0.0 ~upper:4.0 ~linear:(-1.5)
      ~hinges:[ { Piecewise.knee = 1.0; slope = 2.0 }; { knee = 2.5; slope = 1.0 } ]
  in
  let log_z = Piecewise.log_normalizer pw in
  List.iter
    (fun x ->
      let log_part =
        Quad.log_integral_exp (fun u -> Piecewise.log_density pw u) 0.0 x
      in
      check_rel ~eps:1e-5
        (Printf.sprintf "cdf(%g) vs quadrature" x)
        (exp (log_part -. log_z))
        (Piecewise.cdf pw x))
    [ 0.5; 1.0; 1.7; 3.0; 3.9 ]

let test_piecewise_quantile_roundtrip () =
  let pw =
    Piecewise.compile ~lower:(-1.0) ~upper:2.0 ~linear:2.0
      ~hinges:[ { Piecewise.knee = 0.0; slope = -4.0 } ]
  in
  List.iter
    (fun p ->
      check_close ~eps:1e-9 (Printf.sprintf "quantile roundtrip %g" p) p
        (Piecewise.cdf pw (Piecewise.quantile pw p)))
    [ 0.01; 0.2; 0.5; 0.77; 0.99 ]

let test_piecewise_sampler_ks () =
  let rng = Rng.create ~seed:55 () in
  let pw =
    Piecewise.compile ~lower:0.0 ~upper:3.0 ~linear:(-2.0)
      ~hinges:[ { Piecewise.knee = 1.0; slope = 3.5 } ]
  in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Piecewise.sample rng pw) in
  let ks = Stats.ks_statistic_against xs (Piecewise.cdf pw) in
  let critical = 1.95 /. sqrt (float_of_int n) in
  if ks > critical then Alcotest.failf "piecewise sampler KS %.5f > %.5f" ks critical

let test_piecewise_sampler_extreme_rates () =
  (* very steep densities must stay inside the support and near the
     favoured edge *)
  let rng = Rng.create ~seed:56 () in
  let pw = Piecewise.compile ~lower:0.0 ~upper:1.0 ~linear:(-500.0) ~hinges:[] in
  for _ = 1 to 1000 do
    let x = Piecewise.sample rng pw in
    if x < 0.0 || x > 1.0 then Alcotest.failf "sample out of support: %g" x;
    if x > 0.1 then Alcotest.failf "steep-decay sample too far right: %g" x
  done;
  let pw_up = Piecewise.compile ~lower:0.0 ~upper:1.0 ~linear:500.0 ~hinges:[] in
  for _ = 1 to 1000 do
    let x = Piecewise.sample rng pw_up in
    if x < 0.9 then Alcotest.failf "steep-growth sample too far left: %g" x
  done

let test_piecewise_mean_vs_sampling () =
  let rng = Rng.create ~seed:57 () in
  let pw =
    Piecewise.compile ~lower:0.0 ~upper:2.0 ~linear:1.0
      ~hinges:[ { Piecewise.knee = 0.7; slope = -2.5 } ]
  in
  let n = 200_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Piecewise.sample rng pw
  done;
  check_rel ~eps:0.01 "analytic mean matches sampler" (Piecewise.mean pw)
    (!acc /. float_of_int n)

let test_piecewise_degenerate_rejected () =
  Alcotest.check_raises "reversed interval"
    (Invalid_argument "Piecewise.compile: need lower < upper") (fun () ->
      ignore (Piecewise.compile ~lower:1.0 ~upper:1.0 ~linear:0.0 ~hinges:[]))

(* qcheck: random piecewise densities have valid samplers *)
let qcheck_piecewise_sampler_in_support =
  QCheck.Test.make ~name:"piecewise samples stay in support" ~count:200
    QCheck.(
      quad (float_bound_exclusive 10.0) (float_bound_exclusive 5.0)
        (float_range (-20.0) 20.0)
        (list_of_size (Gen.int_bound 3)
           (pair (float_bound_exclusive 10.0) (float_range (-15.0) 15.0))))
    (fun (lo, width, linear, hinge_spec) ->
      let lower = lo and upper = lo +. width +. 0.001 in
      let hinges =
        List.map (fun (pos, slope) -> { Piecewise.knee = lo +. pos; slope }) hinge_spec
      in
      let pw = Piecewise.compile ~lower ~upper ~linear ~hinges in
      let rng = Rng.create ~seed:58 () in
      let ok = ref true in
      for _ = 1 to 20 do
        let x = Piecewise.sample rng pw in
        if x < lower -. 1e-9 || x > upper +. 1e-9 then ok := false
      done;
      !ok)

let qcheck_piecewise_cdf_monotone =
  QCheck.Test.make ~name:"piecewise cdf monotone in [0,1]" ~count:200
    QCheck.(
      pair (float_range (-30.0) 30.0)
        (list_of_size (Gen.int_bound 3)
           (pair (float_bound_exclusive 4.0) (float_range (-25.0) 25.0))))
    (fun (linear, hinge_spec) ->
      let hinges =
        List.map (fun (pos, slope) -> { Piecewise.knee = pos; slope }) hinge_spec
      in
      let pw = Piecewise.compile ~lower:0.0 ~upper:4.0 ~linear ~hinges in
      let xs = List.init 21 (fun i -> 0.2 *. float_of_int i) in
      let cdfs = List.map (Piecewise.cdf pw) xs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
        | _ -> true
      in
      monotone cdfs
      && List.for_all (fun c -> c >= -1e-12 && c <= 1.0 +. 1e-12) cdfs)

(* ------------------------------------------------------------------ *)
(* Statistics *)

let test_welford_matches_direct () =
  let xs = [| 1.0; 2.5; -0.5; 4.0; 3.3; 0.2 |] in
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) xs;
  check_rel "welford mean" (Stats.mean xs) (Stats.Welford.mean w);
  check_rel "welford var" (Stats.variance xs) (Stats.Welford.variance w);
  Alcotest.(check int) "count" 6 (Stats.Welford.count w);
  check_close "min" (-0.5) (Stats.Welford.min w);
  check_close "max" 4.0 (Stats.Welford.max w)

let test_welford_merge () =
  let xs = Array.init 100 (fun i -> sin (float_of_int i)) in
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  Array.iteri (fun i x -> Stats.Welford.add (if i < 40 then a else b) x) xs;
  let merged = Stats.Welford.merge a b in
  check_rel "merged mean" (Stats.mean xs) (Stats.Welford.mean merged);
  check_rel "merged var" (Stats.variance xs) (Stats.Welford.variance merged)

let test_quantile_interpolation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "q0" 1.0 (Stats.quantile xs 0.0);
  check_close "q1" 4.0 (Stats.quantile xs 1.0);
  check_close "median" 2.5 (Stats.quantile xs 0.5);
  check_close "q25" 1.75 (Stats.quantile xs 0.25)

let test_median_and_mad () =
  check_close "odd median" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_close "mad" 1.0 (Stats.median_absolute_deviation [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_histogram_counts () =
  let xs = [| 0.1; 0.2; 0.9; 1.9; 2.0 |] in
  let h = Stats.histogram ~bins:2 xs in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "total count" 5 (c0 + c1);
  Alcotest.(check int) "first bin" 3 c0

let test_empirical_cdf () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "below" 0.0 (Stats.empirical_cdf xs 0.5);
  check_close "mid" 0.5 (Stats.empirical_cdf xs 2.0);
  check_close "above" 1.0 (Stats.empirical_cdf xs 9.0)

let test_ks_two_sample_identical () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  check_close "identical samples" 0.0 (Stats.ks_two_sample xs xs)

let test_ks_two_sample_disjoint () =
  let xs = [| 1.0; 2.0 |] and ys = [| 10.0; 11.0 |] in
  check_close "disjoint samples" 1.0 (Stats.ks_two_sample xs ys)

let test_autocorrelation () =
  let xs = Array.init 1000 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  check_rel ~eps:0.01 "alternating lag1" (-1.0) (Stats.autocorrelation xs 1);
  check_rel ~eps:0.01 "alternating lag2" 1.0 (Stats.autocorrelation xs 2);
  check_close "constant series" 0.0 (Stats.autocorrelation (Array.make 10 2.0) 1)

let test_ess_iid () =
  let rng = Rng.create ~seed:61 () in
  let xs = Array.init 4000 (fun _ -> Rng.float_unit rng) in
  let ess = Stats.effective_sample_size xs in
  Alcotest.(check bool)
    (Printf.sprintf "iid ESS near n (got %.0f)" ess)
    true
    (ess > 2000.0)

let test_ess_correlated () =
  (* AR(1) with strong correlation has a much smaller ESS *)
  let rng = Rng.create ~seed:62 () in
  let n = 4000 in
  let xs = Array.make n 0.0 in
  for i = 1 to n - 1 do
    xs.(i) <- (0.95 *. xs.(i - 1)) +. Rng.float_unit rng -. 0.5
  done;
  let ess = Stats.effective_sample_size xs in
  Alcotest.(check bool)
    (Printf.sprintf "AR(1) ESS much smaller than n (got %.0f)" ess)
    true (ess < 1000.0)

let test_gelman_rubin_same_dist () =
  let rng = Rng.create ~seed:63 () in
  let chains = Array.init 4 (fun _ -> Array.init 2000 (fun _ -> Rng.float_unit rng)) in
  let r = Stats.gelman_rubin chains in
  Alcotest.(check bool) (Printf.sprintf "R-hat near 1 (got %.3f)" r) true (r < 1.05)

let test_gelman_rubin_detects_divergence () =
  let rng = Rng.create ~seed:64 () in
  let chains =
    Array.init 2 (fun c ->
        Array.init 1000 (fun _ -> Rng.float_unit rng +. (float_of_int c *. 10.0)))
  in
  let r = Stats.gelman_rubin chains in
  Alcotest.(check bool) (Printf.sprintf "R-hat large (got %.3f)" r) true (r > 2.0)

(* --- split-R-hat / pooled-ESS edge cases --------------------------- *)
(* The exact values below are the documented contract the streaming
   diagnostics hub (Qnet_obs.Diagnostics) builds on; a change here is
   an API change, not a refactor. *)

let test_split_rhat_single_chain () =
  (* one trending chain: the two halves occupy different regions, so
     splitting exposes the drift as R-hat >> 1. By hand: halves
     [1..4],[5..8] give B = 32, W = 5/3, var+ = 9.25,
     R-hat = sqrt(9.25 / (5/3)) = sqrt 5.55. *)
  let trending = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |] in
  check_close "trending single chain pinned"
    (sqrt (9.25 /. (5.0 /. 3.0)))
    (Stats.split_gelman_rubin [| trending |]);
  (* one stationary chain: identical halves make B = 0, and the
     finite-sample statistic dips below 1 (var+ < W) — pinned so the
     convention "R-hat < 1 is possible and fine" stays explicit *)
  let alternating = [| 1.0; 2.0; 1.0; 2.0; 1.0; 2.0; 1.0; 2.0 |] in
  check_close "stationary single chain pinned" (sqrt 0.75)
    (Stats.split_gelman_rubin [| alternating |])

let test_split_rhat_constant_chains () =
  (* zero within-chain variance pins R-hat to exactly 1.0 — even when
     chain means disagree. W = 0 makes the ratio undefined; returning
     1 (not inf) keeps a just-started, not-yet-moving ensemble from
     reading as divergent. *)
  check_close "one constant chain" 1.0
    (Stats.split_gelman_rubin [| Array.make 8 2.0 |]);
  check_close "disagreeing constant chains still 1.0" 1.0
    (Stats.split_gelman_rubin [| Array.make 8 1.0; Array.make 8 2.0 |])

let test_split_rhat_nan_chain () =
  (* NaN flows through the moments to a NaN R-hat: screening is the
     caller's job (the streaming accumulators skip NaN at the door) *)
  let r = Stats.split_gelman_rubin [| [| 1.0; 2.0; Float.nan; 4.0 |] |] in
  Alcotest.(check bool) "NaN-bearing chain yields NaN" true (Float.is_nan r)

let test_split_rhat_odd_length () =
  (* length 9 gives half = 4: only the most recent 2*4 samples enter,
     so the oldest sample — burn-in — falls out of the window *)
  let with_spike = [| 99.0; 1.0; 2.0; 1.0; 2.0; 1.0; 2.0; 1.0; 2.0 |] in
  let without = Array.sub with_spike 1 8 in
  check_close "odd length drops the oldest sample"
    (Stats.split_gelman_rubin [| without |])
    (Stats.split_gelman_rubin [| with_spike |]);
  (* unequal chain lengths (post-restart): the shortest decides the
     window and every chain contributes its most recent samples *)
  let short = [| 1.0; 2.0; 1.0; 2.0 |] in
  let long = [| 50.0; 50.0; 1.0; 2.0; 1.0; 2.0 |] in
  check_close "shortest chain decides the window"
    (Stats.split_gelman_rubin [| short; Array.sub long 2 4 |])
    (Stats.split_gelman_rubin [| short; long |])

let test_split_rhat_too_short () =
  Alcotest.check_raises "three samples cannot split"
    (Invalid_argument "Statistics.split_gelman_rubin: chains too short")
    (fun () -> ignore (Stats.split_gelman_rubin [| [| 1.0; 2.0; 3.0 |] |]));
  Alcotest.check_raises "no chains rejected"
    (Invalid_argument "Statistics.split_gelman_rubin: need >= 1 chain")
    (fun () -> ignore (Stats.split_gelman_rubin [||]))

let test_pooled_ess_edges () =
  (* a chain shorter than 4 contributes its raw length *)
  check_close "single short chain" 3.0
    (Stats.pooled_effective_sample_size [| [| 1.0; 2.0; 3.0 |] |]);
  (* a constant chain has zero autocorrelation by convention and
     counts in full *)
  check_close "constant chain counts in full" 5.0
    (Stats.pooled_effective_sample_size [| Array.make 5 7.0 |]);
  (* pooling is the plain sum of per-chain ESS *)
  check_close "sums across chains" 8.0
    (Stats.pooled_effective_sample_size
       [| Array.make 5 7.0; [| 1.0; 2.0; 3.0 |] |]);
  (* a NaN anywhere poisons that chain's moments and thus the total *)
  Alcotest.(check bool) "NaN-bearing chain yields NaN total" true
    (Float.is_nan
       (Stats.pooled_effective_sample_size
          [| [| 1.0; Float.nan; 2.0; 3.0; 4.0 |] |]));
  Alcotest.check_raises "no chains rejected"
    (Invalid_argument "Statistics.pooled_effective_sample_size: need >= 1 chain")
    (fun () -> ignore (Stats.pooled_effective_sample_size [||]))

(* --- streaming (Online) accumulators ------------------------------- *)

let test_online_acf_matches_batch () =
  let rng = Rng.create ~seed:65 () in
  let n = 4000 in
  let xs = Array.make n 0.0 in
  for i = 1 to n - 1 do
    xs.(i) <- (0.6 *. xs.(i - 1)) +. Rng.float_unit rng -. 0.5
  done;
  let t = Stats.Online.acf ~max_lag:8 () in
  Array.iter (Stats.Online.push t) xs;
  Alcotest.(check int) "count" n (Stats.Online.count t);
  check_close ~eps:1e-9 "mean" (Stats.mean xs) (Stats.Online.mean t);
  (* global-mean centering is an O(1/n) approximation of the batch
     estimator; at n = 4000 they agree to a few percent *)
  for k = 1 to 3 do
    let b = Stats.autocorrelation xs k and s = Stats.Online.autocorrelation t k in
    if Float.abs (b -. s) > 0.02 then
      Alcotest.failf "lag %d drifted: batch %f streaming %f" k b s
  done;
  let be = Stats.effective_sample_size xs and se = Stats.Online.ess t in
  if Float.abs (be -. se) /. be > 0.25 then
    Alcotest.failf "ESS drifted: batch %f streaming %f" be se

let test_online_clamps_and_nan () =
  (* non-finite samples are skipped and counted, never poisoning the
     moments *)
  let t = Stats.Online.acf ~max_lag:4 () in
  List.iter (Stats.Online.push t)
    [ 1.0; Float.nan; 2.0; Float.infinity; 1.0; 2.0; 1.0; 2.0 ];
  Alcotest.(check int) "finite samples accepted" 6 (Stats.Online.count t);
  Alcotest.(check int) "non-finite counted" 2 (Stats.Online.skipped t);
  check_close "mean over accepted" 1.5 (Stats.Online.mean t);
  (* while a series still trends, the streaming autocovariance can
     overshoot gamma_0; the autocorrelation must stay clamped *)
  let trend = Stats.Online.acf ~max_lag:4 () in
  for i = 1 to 12 do
    Stats.Online.push trend (float_of_int i)
  done;
  let a1 = Stats.Online.autocorrelation trend 1 in
  Alcotest.(check bool)
    (Printf.sprintf "acf1 within [-1,1] (got %f)" a1)
    true
    (a1 >= -1.0 && a1 <= 1.0);
  let e = Stats.Online.ess trend in
  Alcotest.(check bool)
    (Printf.sprintf "ESS within [1,n] (got %f)" e)
    true
    (e >= 1.0 && e <= 12.0);
  (* empty accumulator conventions *)
  let empty = Stats.Online.acf () in
  check_close "empty ESS is 0" 0.0 (Stats.Online.ess empty);
  Alcotest.(check bool) "empty mean is NaN" true
    (Float.is_nan (Stats.Online.mean empty))

let qcheck_quantile_bounds =
  QCheck.Test.make ~name:"quantile stays within data range" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_range (-100.) 100.)) (float_bound_inclusive 1.0))
    (fun (l, p) ->
      let xs = Array.of_list l in
      let q = Stats.quantile xs p in
      let lo = Array.fold_left Float.min infinity xs in
      let hi = Array.fold_left Float.max neg_infinity xs in
      q >= lo -. 1e-9 && q <= hi +. 1e-9)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qnet_prob"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "float_unit range" `Quick test_float_unit_range;
          Alcotest.test_case "float_pos range" `Quick test_float_pos_range;
          Alcotest.test_case "float_unit mean" `Quick test_float_unit_mean;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample w/o replacement all" `Quick
            test_sample_without_replacement_all;
          Alcotest.test_case "sample w/o replacement uniform" `Quick
            test_sample_without_replacement_uniform;
          Alcotest.test_case "categorical frequencies" `Quick test_categorical_frequencies;
          Alcotest.test_case "categorical zero weights" `Quick test_categorical_zero_weights;
          Alcotest.test_case "categorical all-zero rejected" `Quick
            test_categorical_rejects_all_zero;
        ] );
      ( "special",
        [
          Alcotest.test_case "log_sum_exp2" `Quick test_log_sum_exp2;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
          Alcotest.test_case "log1mexp" `Quick test_log1mexp;
          Alcotest.test_case "log_expm1" `Quick test_log_expm1;
          Alcotest.test_case "log_gamma" `Quick test_log_gamma_known_values;
          Alcotest.test_case "log_factorial" `Quick test_log_factorial;
          Alcotest.test_case "erf" `Quick test_erf_known_values;
          Alcotest.test_case "erfc tail" `Quick test_erfc_tail;
          Alcotest.test_case "normal cdf" `Quick test_std_normal_cdf;
          Alcotest.test_case "normal quantile roundtrip" `Quick
            test_std_normal_quantile_roundtrip;
          Alcotest.test_case "incomplete gamma" `Quick test_incomplete_gamma;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "validate" `Quick test_dist_validate;
          Alcotest.test_case "exponential moments" `Slow test_exponential_moments;
          Alcotest.test_case "uniform moments" `Slow test_uniform_moments;
          Alcotest.test_case "gamma moments" `Slow test_gamma_moments;
          Alcotest.test_case "gamma shape<1 moments" `Slow test_gamma_small_shape_moments;
          Alcotest.test_case "erlang moments" `Slow test_erlang_moments;
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "lognormal moments" `Slow test_lognormal_moments;
          Alcotest.test_case "hyperexp moments" `Slow test_hyperexp_moments;
          Alcotest.test_case "truncated-exp moments" `Slow test_trunc_exp_moments;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "KS exponential" `Slow test_ks_exponential;
          Alcotest.test_case "KS gamma" `Slow test_ks_gamma;
          Alcotest.test_case "KS erlang" `Slow test_ks_erlang;
          Alcotest.test_case "KS normal" `Slow test_ks_normal;
          Alcotest.test_case "KS lognormal" `Slow test_ks_lognormal;
          Alcotest.test_case "KS pareto" `Slow test_ks_pareto;
          Alcotest.test_case "KS uniform" `Slow test_ks_uniform;
          Alcotest.test_case "KS hyperexp" `Slow test_ks_hyperexp;
          Alcotest.test_case "KS truncated exp" `Slow test_ks_trunc_exp;
          Alcotest.test_case "quantile roundtrip" `Quick test_quantile_roundtrip;
          Alcotest.test_case "pdf integrates to cdf" `Quick test_pdf_integrates_to_cdf;
          Alcotest.test_case "squared CV ordering" `Quick test_squared_cv;
          Alcotest.test_case "exponential MLE" `Slow test_exponential_mle;
        ] );
      ( "piecewise",
        [
          Alcotest.test_case "simple exponential cdf" `Quick
            test_piecewise_simple_exponential;
          Alcotest.test_case "uniform piece" `Quick test_piecewise_uniform;
          Alcotest.test_case "hinge breakpoints" `Quick test_piecewise_hinge_breakpoints;
          Alcotest.test_case "knees outside interval" `Quick test_piecewise_knee_outside;
          Alcotest.test_case "density continuity" `Quick test_piecewise_density_continuity;
          Alcotest.test_case "normalizer vs quadrature" `Quick
            test_piecewise_normalizer_vs_quadrature;
          Alcotest.test_case "cdf vs quadrature" `Quick test_piecewise_cdf_vs_quadrature;
          Alcotest.test_case "quantile roundtrip" `Quick test_piecewise_quantile_roundtrip;
          Alcotest.test_case "sampler KS" `Slow test_piecewise_sampler_ks;
          Alcotest.test_case "extreme rates" `Quick test_piecewise_sampler_extreme_rates;
          Alcotest.test_case "mean vs sampling" `Slow test_piecewise_mean_vs_sampling;
          Alcotest.test_case "degenerate rejected" `Quick test_piecewise_degenerate_rejected;
          qc qcheck_piecewise_sampler_in_support;
          qc qcheck_piecewise_cdf_monotone;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "welford vs direct" `Quick test_welford_matches_direct;
          Alcotest.test_case "welford merge" `Quick test_welford_merge;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "median and MAD" `Quick test_median_and_mad;
          Alcotest.test_case "histogram" `Quick test_histogram_counts;
          Alcotest.test_case "empirical cdf" `Quick test_empirical_cdf;
          Alcotest.test_case "ks two-sample identical" `Quick test_ks_two_sample_identical;
          Alcotest.test_case "ks two-sample disjoint" `Quick test_ks_two_sample_disjoint;
          Alcotest.test_case "autocorrelation" `Quick test_autocorrelation;
          Alcotest.test_case "ESS iid" `Slow test_ess_iid;
          Alcotest.test_case "ESS correlated" `Slow test_ess_correlated;
          Alcotest.test_case "gelman-rubin converged" `Slow test_gelman_rubin_same_dist;
          Alcotest.test_case "gelman-rubin divergent" `Quick
            test_gelman_rubin_detects_divergence;
          Alcotest.test_case "split R-hat: single chain" `Quick
            test_split_rhat_single_chain;
          Alcotest.test_case "split R-hat: constant chains" `Quick
            test_split_rhat_constant_chains;
          Alcotest.test_case "split R-hat: NaN chain" `Quick test_split_rhat_nan_chain;
          Alcotest.test_case "split R-hat: odd/unequal lengths" `Quick
            test_split_rhat_odd_length;
          Alcotest.test_case "split R-hat: too-short rejected" `Quick
            test_split_rhat_too_short;
          Alcotest.test_case "pooled ESS: edge cases pinned" `Quick
            test_pooled_ess_edges;
          Alcotest.test_case "online acf/ess matches batch" `Quick
            test_online_acf_matches_batch;
          Alcotest.test_case "online clamps and NaN hygiene" `Quick
            test_online_clamps_and_nan;
          qc qcheck_quantile_bounds;
        ] );
    ]
