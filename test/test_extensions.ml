(* Tests for the extensions beyond the paper's §3-4 core:
   - Event_store.move_event (mutable within-queue chains)
   - Path_move: Metropolis–Hastings routing resampling
   - Bayes: full posterior over rates *)

module Rng = Qnet_prob.Rng
module Stats = Qnet_prob.Statistics
module Fsm = Qnet_fsm.Fsm
module Trace = Qnet_trace.Trace
module Topologies = Qnet_des.Topologies
module Network = Qnet_des.Network
module Obs = Qnet_core.Observation
module Store = Qnet_core.Event_store
module Params = Qnet_core.Params
module Gibbs = Qnet_core.Gibbs
module Path_move = Qnet_core.Path_move
module Bayes = Qnet_core.Bayes

let check_close ?(eps = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

let ev task state queue arrival departure =
  { Trace.task; state; queue; arrival; departure }

(* one task visiting queue 1; queue 2 exists but is empty *)
let one_task_trace ~service =
  Trace.create ~num_queues:3
    [ ev 0 0 0 0.0 1.0; ev 0 1 1 1.0 (1.0 +. service) ]

(* FSM whose state 1 emits queue 1 with prob p1 and queue 2 with 1-p1 *)
let balancer_fsm p1 =
  Fsm.create ~num_states:3 ~num_queues:3 ~initial:0 ~final:2
    ~transitions:[ (0, [ (1, 1.0) ]); (1, [ (2, 1.0) ]) ]
    ~emissions:[ (0, [ (0, 1.0) ]); (1, [ (1, p1); (2, 1.0 -. p1) ]) ]

(* ------------------------------------------------------------------ *)
(* move_event *)

let two_task_two_queue_trace () =
  Trace.create ~num_queues:3
    [
      ev 0 0 0 0.0 1.0;
      ev 0 1 1 1.0 2.0;
      ev 1 0 0 0.0 1.5;
      ev 1 1 1 1.5 3.0;
    ]

let test_move_event_relinks () =
  let store = Store.of_trace ~observed:[| true; false; true; false |] (two_task_two_queue_trace ()) in
  (* move task 1's service event (index 3) from queue 1 to queue 2 *)
  Store.move_event store 3 ~queue:2;
  Alcotest.(check int) "queue updated" 2 (Store.queue store 3);
  Alcotest.(check (array int)) "queue 1 chain" [| 1 |] (Store.events_at_queue store 1);
  Alcotest.(check (array int)) "queue 2 chain" [| 3 |] (Store.events_at_queue store 2);
  Alcotest.(check int) "no rho in fresh queue" (-1) (Store.rho store 3);
  Alcotest.(check int) "old chain healed" (-1) (Store.rho_inv store 1);
  (match Store.validate store with Ok () -> () | Error m -> Alcotest.fail m);
  (* move back: insertion must restore order by arrival *)
  Store.move_event store 3 ~queue:1;
  Alcotest.(check (array int)) "restored chain" [| 1; 3 |] (Store.events_at_queue store 1);
  Alcotest.(check int) "rho restored" 1 (Store.rho store 3)

let test_move_event_insert_in_middle () =
  (* three events at queue 1 arriving 1.0 < 1.5 < 2.2; move the middle
     one away and back — it must return to the middle *)
  let trace =
    Trace.create ~num_queues:3
      [
        ev 0 0 0 0.0 1.0;
        ev 0 1 1 1.0 1.2;
        ev 1 0 0 0.0 1.5;
        ev 1 1 1 1.5 2.0;
        ev 2 0 0 0.0 2.2;
        ev 2 1 1 2.2 3.0;
      ]
  in
  let store = Store.of_trace trace in
  (* indexes: task0 = 0,1; task1 = 2,3; task2 = 4,5 *)
  Store.move_event store 3 ~queue:2;
  Alcotest.(check (array int)) "two left" [| 1; 5 |] (Store.events_at_queue store 1);
  Store.move_event store 3 ~queue:1;
  Alcotest.(check (array int)) "middle restored" [| 1; 3; 5 |]
    (Store.events_at_queue store 1)

let test_move_event_rejections () =
  let store = Store.of_trace (two_task_two_queue_trace ()) in
  (match Store.move_event store 0 ~queue:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "initial events immovable");
  match Store.move_event store 1 ~queue:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arrival queue is off-limits"

let test_move_event_preserves_services_elsewhere () =
  let rng = Rng.create ~seed:601 () in
  let net =
    Topologies.three_tier ~arrival_rate:8.0 ~tier_sizes:(3, 1, 1) ~service_rate:9.0 ()
  in
  let trace = Net_helpers.simulate_n rng net 100 in
  let store = Store.of_trace trace in
  (* record services of events at tier2/tier3 *)
  let tier2 = Store.events_at_queue store 4 in
  let before = Array.map (fun i -> Store.service store i) tier2 in
  (* move a tier-1 event between servers *)
  let tier1 = Store.events_at_queue store 1 in
  let victim = tier1.(Array.length tier1 / 2) in
  Store.move_event store victim ~queue:2;
  let after = Array.map (fun i -> Store.service store i) tier2 in
  Alcotest.(check bool) "downstream services untouched" true (before = after)

(* ------------------------------------------------------------------ *)
(* Path_move: exact posterior checks *)

(* With the event's departure OBSERVED, the route posterior is
   proportional to p(q) mu_q e^{-mu_q s}. *)
let test_route_posterior_observed_departure () =
  let s = 0.5 in
  let trace = one_task_trace ~service:s in
  let store = Store.of_trace trace in
  (* everything observed: only the route moves *)
  let p1 = 0.3 in
  let fsm = balancer_fsm p1 in
  let mu1 = 2.0 and mu2 = 10.0 in
  let params = Params.create ~rates:[| 1.0; mu1; mu2 |] ~arrival_queue:0 in
  let w1 = p1 *. mu1 *. exp (-.mu1 *. s) in
  let w2 = (1.0 -. p1) *. mu2 *. exp (-.mu2 *. s) in
  let expected = w1 /. (w1 +. w2) in
  let rng = Rng.create ~seed:602 () in
  let n = 40_000 in
  let at_q1 = ref 0 in
  for _ = 1 to n do
    ignore (Path_move.resample_event rng store params fsm 1);
    if Store.queue store 1 = 1 then incr at_q1
  done;
  check_close ~eps:0.01 "route posterior" expected (float_of_int !at_q1 /. float_of_int n)

(* With the departure also latent (resampled by Gibbs between route
   moves), the service integrates out and the route posterior reverts
   to the emission prior. *)
let test_route_posterior_free_departure () =
  let trace = one_task_trace ~service:0.5 in
  let mask = [| true; false |] in
  let store = Store.of_trace ~observed:mask trace in
  let p1 = 0.3 in
  let fsm = balancer_fsm p1 in
  let params = Params.create ~rates:[| 1.0; 2.0; 10.0 |] ~arrival_queue:0 in
  let rng = Rng.create ~seed:603 () in
  let n = 40_000 in
  let at_q1 = ref 0 in
  for _ = 1 to n do
    Gibbs.resample_event rng store params 1;
    ignore (Path_move.resample_event rng store params fsm 1);
    if Store.queue store 1 = 1 then incr at_q1
  done;
  check_close ~eps:0.012 "marginal route = prior" p1
    (float_of_int !at_q1 /. float_of_int n)

let test_path_sweep_preserves_validity () =
  let rng = Rng.create ~seed:604 () in
  let net =
    Topologies.three_tier ~arrival_rate:8.0 ~tier_sizes:(4, 1, 2) ~service_rate:6.0 ()
  in
  let fsm = Network.fsm net in
  let trace = Net_helpers.simulate_n rng net 200 in
  let mask = Obs.mask rng (Obs.Task_fraction 0.1) trace in
  let store = Store.of_trace ~observed:mask trace in
  let params = Params.of_network net in
  let total = ref 0 in
  for _ = 1 to 10 do
    Gibbs.sweep ~shuffle:true rng store params;
    let stats = Path_move.sweep rng store params fsm in
    total := !total + stats.Path_move.accepted;
    match Store.validate store with
    | Ok () -> ()
    | Error m -> Alcotest.failf "invalid after path sweep: %s" m
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some moves accepted (%d)" !total)
    true (!total > 0)

let test_path_sweep_stats_consistent () =
  let rng = Rng.create ~seed:605 () in
  let net =
    Topologies.three_tier ~arrival_rate:8.0 ~tier_sizes:(2, 1, 2) ~service_rate:6.0 ()
  in
  let fsm = Network.fsm net in
  let trace = Net_helpers.simulate_n rng net 100 in
  let mask = Obs.mask rng (Obs.Task_fraction 0.2) trace in
  let store = Store.of_trace ~observed:mask trace in
  let params = Params.of_network net in
  let stats = Path_move.sweep rng store params fsm in
  Alcotest.(check bool) "accepted <= proposed" true
    (stats.Path_move.accepted <= stats.Path_move.proposed);
  Alcotest.(check bool) "infeasible <= proposed" true
    (stats.Path_move.infeasible <= stats.Path_move.proposed)

let test_ineligible_cases () =
  let trace = one_task_trace ~service:0.5 in
  let store = Store.of_trace trace in
  let fsm_single = balancer_fsm 1.0 in
  (* state 1 emits only queue 1 (p = 1): no alternatives *)
  Alcotest.(check bool) "single emission ineligible" false
    (Path_move.eligible store fsm_single 1);
  (* initial events are never eligible *)
  Alcotest.(check bool) "initial ineligible" false
    (Path_move.eligible store (balancer_fsm 0.5) 0)

let test_route_recovery_from_scrambled_assignment () =
  (* deliberately scramble tier assignments of latent tasks, then let
     the joint chain recover: per-server event counts should drift back
     toward balance *)
  let rng = Rng.create ~seed:606 () in
  let net =
    Topologies.three_tier ~arrival_rate:6.0 ~tier_sizes:(2, 1, 1) ~service_rate:8.0 ()
  in
  let fsm = Network.fsm net in
  let trace = Net_helpers.simulate_n rng net 300 in
  let mask = Obs.mask rng (Obs.Task_fraction 0.05) trace in
  let store = Store.of_trace ~observed:mask trace in
  let params = Params.of_network net in
  (* move every movable tier-1 event to server 1 (queue 1), keeping
     only moves that leave the state feasible *)
  Array.iter
    (fun i ->
      if (not (Store.observed store i)) && Store.queue store i = 2 then begin
        Store.move_event store i ~queue:1;
        let succ = Store.rho_inv store i in
        let ok =
          Store.service store i >= 0.0
          && (succ < 0 || Store.service store succ >= 0.0)
        in
        if not ok then Store.move_event store i ~queue:2
      end)
    (Store.unobserved_events store);
  (match Store.validate store with
  | Ok () -> ()
  | Error m -> Alcotest.failf "scrambled state invalid: %s" m);
  let count q = Array.length (Store.events_at_queue store q) in
  let skew_before = abs (count 1 - count 2) in
  for _ = 1 to 60 do
    Gibbs.sweep ~shuffle:true rng store params;
    ignore (Path_move.sweep rng store params fsm)
  done;
  let skew_after = abs (count 1 - count 2) in
  Alcotest.(check bool)
    (Printf.sprintf "skew %d -> %d" skew_before skew_after)
    true
    (skew_after < skew_before / 2);
  match Store.validate store with Ok () -> () | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Bayes *)

let test_bayes_recovers_tandem () =
  let rng = Rng.create ~seed:607 () in
  let net = Topologies.tandem ~arrival_rate:10.0 ~service_rates:[ 15.0; 12.0 ] in
  let trace = Net_helpers.simulate_n rng net 500 in
  let mask = Obs.mask rng (Obs.Task_fraction 0.2) trace in
  let store = Store.of_trace ~observed:mask trace in
  let result = Bayes.run rng store in
  check_close ~eps:0.02 "lambda mean service" 0.1 result.Bayes.mean_service.(0);
  check_close ~eps:0.015 "mu1" (1.0 /. 15.0) result.Bayes.mean_service.(1);
  check_close ~eps:0.015 "mu2" (1.0 /. 12.0) result.Bayes.mean_service.(2)

let test_bayes_intervals_cover_truth () =
  let rng = Rng.create ~seed:608 () in
  let net = Topologies.tandem ~arrival_rate:10.0 ~service_rates:[ 15.0; 12.0 ] in
  let trace = Net_helpers.simulate_n rng net 400 in
  let mask = Obs.mask rng (Obs.Task_fraction 0.25) trace in
  let store = Store.of_trace ~observed:mask trace in
  let result = Bayes.run rng store in
  let truths = [| 0.1; 1.0 /. 15.0; 1.0 /. 12.0 |] in
  Array.iteri
    (fun q truth ->
      let lo, hi = result.Bayes.service_interval.(q) in
      Alcotest.(check bool)
        (Printf.sprintf "queue %d: %.4f in [%.4f, %.4f]" q truth lo hi)
        true
        (lo < hi && lo > 0.0)
      (* coverage of the individual interval is stochastic; require the
         truth to be within the interval widened by 50% *)
      ;
      let pad = 0.5 *. (hi -. lo) in
      Alcotest.(check bool)
        (Printf.sprintf "queue %d covered" q)
        true
        (truth >= lo -. pad && truth <= hi +. pad))
    truths

let test_bayes_interval_narrows_with_data () =
  let width frac seed =
    let rng = Rng.create ~seed () in
    let net = Topologies.tandem ~arrival_rate:10.0 ~service_rates:[ 15.0 ] in
    let trace = Net_helpers.simulate_n rng net 400 in
    let mask = Obs.mask rng (Obs.Task_fraction frac) trace in
    let store = Store.of_trace ~observed:mask trace in
    let result = Bayes.run rng store in
    let lo, hi = result.Bayes.service_interval.(1) in
    hi -. lo
  in
  let w_small = width 0.02 609 in
  let w_big = width 0.8 610 in
  Alcotest.(check bool)
    (Printf.sprintf "interval narrows: %.4f -> %.4f" w_small w_big)
    true (w_big < w_small)

let test_bayes_ess_positive () =
  let rng = Rng.create ~seed:611 () in
  let net = Topologies.tandem ~arrival_rate:8.0 ~service_rates:[ 12.0 ] in
  let trace = Net_helpers.simulate_n rng net 200 in
  let mask = Obs.mask rng (Obs.Task_fraction 0.3) trace in
  let store = Store.of_trace ~observed:mask trace in
  let result = Bayes.run rng store in
  Array.iteri
    (fun q e ->
      Alcotest.(check bool) (Printf.sprintf "queue %d ess %.1f" q e) true (e > 5.0))
    result.Bayes.ess;
  Alcotest.(check bool) "samples retained" true
    (Array.length result.Bayes.rate_samples.(0) > 50)

let test_bayes_config_validation () =
  let rng = Rng.create () in
  let net = Topologies.tandem ~arrival_rate:8.0 ~service_rates:[ 12.0 ] in
  let trace = Net_helpers.simulate_n rng net 20 in
  let store = Store.of_trace trace in
  List.iter
    (fun config ->
      match Bayes.run ~config rng store with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected config rejection")
    [
      { Bayes.default_config with Bayes.sweeps = 1 };
      { Bayes.default_config with Bayes.burn_in = 400 };
      { Bayes.default_config with Bayes.thin = 0 };
      { Bayes.default_config with Bayes.prior_rate = 0.0 };
    ]

let test_bayes_agrees_with_stem () =
  let run_both seed =
    let rng = Rng.create ~seed () in
    let net = Topologies.tandem ~arrival_rate:10.0 ~service_rates:[ 14.0 ] in
    let trace = Net_helpers.simulate_n rng net 400 in
    let mask = Obs.mask rng (Obs.Task_fraction 0.2) trace in
    let s1 = Store.of_trace ~observed:mask trace in
    let s2 = Store.of_trace ~observed:mask trace in
    let bayes = Bayes.run (Rng.create ~seed:(seed + 1) ()) s1 in
    let stem = Qnet_core.Stem.run (Rng.create ~seed:(seed + 1) ()) s2 in
    (bayes.Bayes.mean_service.(1), stem.Qnet_core.Stem.mean_service.(1))
  in
  let b, s = run_both 612 in
  Alcotest.(check bool)
    (Printf.sprintf "bayes %.4f vs stem %.4f" b s)
    true
    (Float.abs (b -. s) < 0.01)


(* ------------------------------------------------------------------ *)
(* Interval_report *)

module Interval_report = Qnet_core.Interval_report

let interval_trace () =
  (* two tasks at queue 1: first arrives 1.0 busy 1.0-2.0; second
     arrives 1.5, waits until 2.0, busy 2.0-3.0 *)
  Trace.create ~num_queues:2
    [
      ev 0 0 0 0.0 1.0;
      ev 0 1 1 1.0 2.0;
      ev 1 0 0 0.0 1.5;
      ev 1 1 1 1.5 3.0;
    ]

let test_interval_snapshot_counts () =
  let store = Store.of_trace (interval_trace ()) in
  let r = Interval_report.snapshot store ~window:(1.2, 2.5) in
  let q1 = r.Interval_report.queues.(1) in
  (* only task 1's event arrives inside [1.2, 2.5) *)
  Alcotest.(check int) "arrivals" 1 q1.Interval_report.arrivals;
  check_close "waiting of that event" 0.5 q1.Interval_report.mean_waiting;
  check_close "service of that event" 1.0 q1.Interval_report.mean_service;
  (* busy overlap: task0 served 1.2-2.0 (0.8) + task1 served 2.0-2.5
     (0.5) over width 1.3 *)
  check_close ~eps:1e-9 "utilization" (1.3 /. 1.3) q1.Interval_report.utilization

let test_interval_full_window_matches_trace () =
  let trace = interval_trace () in
  let store = Store.of_trace trace in
  let r = Interval_report.snapshot store ~window:(0.0, 10.0) in
  let q1 = r.Interval_report.queues.(1) in
  Alcotest.(check int) "all arrivals" 2 q1.Interval_report.arrivals;
  check_close "mean waiting" 0.25 q1.Interval_report.mean_waiting;
  check_close "mean service" 1.0 q1.Interval_report.mean_service

let test_interval_busiest () =
  let store = Store.of_trace (interval_trace ()) in
  let r = Interval_report.snapshot store ~window:(1.0, 3.0) in
  Alcotest.(check int) "queue 1 busiest" 1
    (Interval_report.busiest r).Interval_report.queue

let test_interval_bad_window () =
  let store = Store.of_trace (interval_trace ()) in
  match Interval_report.snapshot store ~window:(2.0, 1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reversed window rejected"

let test_interval_posterior_close_to_truth () =
  (* with 20% observation, the posterior window report should be close
     to the fully-observed snapshot *)
  let rng = Rng.create ~seed:620 () in
  let net = Topologies.tandem ~arrival_rate:8.0 ~service_rates:[ 10.0 ] in
  let trace = Net_helpers.simulate_n rng net 400 in
  let full = Store.of_trace trace in
  let window = (5.0, 20.0) in
  let truth = Interval_report.snapshot full ~window in
  let mask = Obs.mask rng (Obs.Task_fraction 0.2) trace in
  let store = Store.of_trace ~observed:mask trace in
  let params = Params.create ~rates:[| 8.0; 10.0 |] ~arrival_queue:0 in
  let post = Interval_report.posterior rng store params ~window in
  let tq = truth.Interval_report.queues.(1)
  and pq = post.Interval_report.queues.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "arrivals %d vs %d" pq.Interval_report.arrivals
       tq.Interval_report.arrivals)
    true
    (abs (pq.Interval_report.arrivals - tq.Interval_report.arrivals) <= 6);
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f vs %.3f" pq.Interval_report.utilization
       tq.Interval_report.utilization)
    true
    (Float.abs (pq.Interval_report.utilization -. tq.Interval_report.utilization)
     < 0.12)

let test_interval_pp_runs () =
  let store = Store.of_trace (interval_trace ()) in
  let r = Interval_report.snapshot store ~window:(0.0, 3.0) in
  let s = Format.asprintf "%a" Interval_report.pp r in
  Alcotest.(check bool) "prints" true (String.length s > 20)


(* ------------------------------------------------------------------ *)
(* Parallel (chromatic) Gibbs — appended suite *)

module Parallel_gibbs = Qnet_core.Parallel_gibbs

let parallel_fixture ~seed ~tasks ~frac =
  let rng = Rng.create ~seed () in
  let net = Topologies.three_tier ~arrival_rate:9.0 ~tier_sizes:(2, 1, 2) ~service_rate:6.0 () in
  let trace = Net_helpers.simulate_n rng net 0 |> fun _ -> Net_helpers.simulate_n rng net tasks in
  let mask = Obs.mask rng (Obs.Task_fraction frac) trace in
  let store = Store.of_trace ~observed:mask trace in
  let params = Params.create ~rates:[| 9.0; 6.0; 6.0; 6.0; 6.0; 6.0 |] ~arrival_queue:0 in
  (store, params)

let test_parallel_plan_is_proper_coloring () =
  let store, _ = parallel_fixture ~seed:630 ~tasks:200 ~frac:0.1 in
  let t = Parallel_gibbs.plan ~num_domains:4 store in
  Alcotest.(check bool) "some colors" true (Parallel_gibbs.num_colors t >= 2);
  Alcotest.(check int) "domains recorded" 4 (Parallel_gibbs.num_domains t)

let test_parallel_sweep_covers_every_event_once () =
  (* after one parallel sweep from a scrambled-but-feasible state, the
     state must be feasible and all latent events' windows respected *)
  let store, params = parallel_fixture ~seed:631 ~tasks:300 ~frac:0.1 in
  let t = Parallel_gibbs.plan ~num_domains:3 store in
  let rng = Rng.create ~seed:632 () in
  for _ = 1 to 10 do
    Parallel_gibbs.sweep rng t store params;
    match Store.validate store with
    | Ok () -> ()
    | Error m -> Alcotest.failf "parallel sweep broke feasibility: %s" m
  done

let test_parallel_matches_serial_statistics () =
  (* the chromatic chain must target the same posterior as the serial
     chain: compare long-run imputed mean services *)
  let serial_store, params = parallel_fixture ~seed:633 ~tasks:400 ~frac:0.1 in
  let parallel_store, _ = parallel_fixture ~seed:633 ~tasks:400 ~frac:0.1 in
  let sweeps = 120 and burn = 40 in
  let collect run_sweep store =
    let acc = Array.make (Store.num_queues store) 0.0 in
    for s = 1 to sweeps do
      run_sweep store;
      if s > burn then begin
        let m = Store.mean_service_by_queue store in
        Array.iteri (fun q v -> acc.(q) <- acc.(q) +. (v /. float_of_int (sweeps - burn))) m
      end
    done;
    acc
  in
  let rng1 = Rng.create ~seed:634 () in
  let serial = collect (fun st -> Gibbs.sweep ~shuffle:true rng1 st params) serial_store in
  let t = Parallel_gibbs.plan ~num_domains:4 parallel_store in
  let rng2 = Rng.create ~seed:635 () in
  let parallel = collect (fun st -> Parallel_gibbs.sweep rng2 t st params) parallel_store in
  Array.iteri
    (fun q s ->
      let p = parallel.(q) in
      if Float.abs (s -. p) > 0.02 +. (0.12 *. s) then
        Alcotest.failf "queue %d: serial %.4f vs parallel %.4f" q s p)
    serial

let test_parallel_single_domain () =
  let store, params = parallel_fixture ~seed:636 ~tasks:100 ~frac:0.2 in
  let t = Parallel_gibbs.plan ~num_domains:1 store in
  let rng = Rng.create ~seed:637 () in
  Parallel_gibbs.run ~sweeps:5 rng t store params;
  match Store.validate store with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* a non-initial event that can legally be re-homed to another queue *)
let movable_event store =
  let q0 = Store.arrival_queue store in
  let nq = Store.num_queues store in
  let found = ref None in
  for i = 0 to Store.num_events store - 1 do
    if !found = None && Store.queue store i <> q0 then begin
      let target = ref (-1) in
      for q = 0 to nq - 1 do
        if !target < 0 && q <> q0 && q <> Store.queue store i then target := q
      done;
      if !target >= 0 then found := Some (i, !target)
    end
  done;
  match !found with Some x -> x | None -> Alcotest.fail "no movable event"

let test_stale_plan_fails_fast () =
  let store, params = parallel_fixture ~seed:638 ~tasks:120 ~frac:0.2 in
  let t = Parallel_gibbs.plan ~num_domains:2 store in
  Alcotest.(check bool) "fresh plan" false (Parallel_gibbs.is_stale t store);
  let gen0 = Store.generation store in
  let i, q' = movable_event store in
  Store.move_event store i ~queue:q';
  Alcotest.(check bool) "move bumps generation" true (Store.generation store > gen0);
  Alcotest.(check bool) "plan now stale" true (Parallel_gibbs.is_stale t store);
  let rng = Rng.create ~seed:639 () in
  (match Parallel_gibbs.sweep rng t store params with
  | () -> Alcotest.fail "sweep on a stale plan must raise"
  | exception Invalid_argument _ -> ());
  (match Parallel_gibbs.run ~sweeps:1 rng t store params with
  | () -> Alcotest.fail "run on a stale plan must raise"
  | exception Invalid_argument _ -> ());
  (* refresh replans against the rearranged structure *)
  let t' = Parallel_gibbs.refresh t store in
  Alcotest.(check bool) "refreshed plan valid" false (Parallel_gibbs.is_stale t' store);
  Alcotest.(check int) "domains preserved" (Parallel_gibbs.num_domains t)
    (Parallel_gibbs.num_domains t');
  Alcotest.(check bool) "refresh of a fresh plan is the identity" true
    (Parallel_gibbs.refresh t' store == t')

let test_departure_only_restore_keeps_plan () =
  let store, params = parallel_fixture ~seed:640 ~tasks:120 ~frac:0.2 in
  let t = Parallel_gibbs.plan ~num_domains:2 store in
  let snap = Store.snapshot store in
  let rng = Rng.create ~seed:641 () in
  Parallel_gibbs.sweep rng t store params;
  (* rollback that only rewinds departures must not invalidate *)
  Store.restore store snap;
  Alcotest.(check bool) "plan survives departure-only restore" false
    (Parallel_gibbs.is_stale t store);
  Parallel_gibbs.sweep rng t store params

let test_structural_restore_invalidates_plan () =
  let store, params = parallel_fixture ~seed:642 ~tasks:120 ~frac:0.2 in
  let snap = Store.snapshot store in
  let i, q' = movable_event store in
  Store.move_event store i ~queue:q';
  let t = Parallel_gibbs.plan ~num_domains:2 store in
  (* restoring the pre-move structure rearranges the chains again *)
  Store.restore store snap;
  Alcotest.(check bool) "plan stale after structural restore" true
    (Parallel_gibbs.is_stale t store);
  let rng = Rng.create ~seed:643 () in
  (match Parallel_gibbs.sweep rng t store params with
  | () -> Alcotest.fail "sweep must refuse the stale plan"
  | exception Invalid_argument _ -> ());
  let t' = Parallel_gibbs.refresh t store in
  Parallel_gibbs.sweep rng t' store params;
  match Store.validate store with
  | Ok () -> ()
  | Error m -> Alcotest.failf "refreshed sweep broke feasibility: %s" m

let () =
  Alcotest.run "qnet_extensions"
    [
      ( "move-event",
        [
          Alcotest.test_case "relink" `Quick test_move_event_relinks;
          Alcotest.test_case "insert in middle" `Quick test_move_event_insert_in_middle;
          Alcotest.test_case "rejections" `Quick test_move_event_rejections;
          Alcotest.test_case "downstream untouched" `Quick
            test_move_event_preserves_services_elsewhere;
        ] );
      ( "path-move",
        [
          Alcotest.test_case "posterior, observed departure" `Slow
            test_route_posterior_observed_departure;
          Alcotest.test_case "posterior, free departure" `Slow
            test_route_posterior_free_departure;
          Alcotest.test_case "sweep preserves validity" `Quick
            test_path_sweep_preserves_validity;
          Alcotest.test_case "stats consistent" `Quick test_path_sweep_stats_consistent;
          Alcotest.test_case "ineligible cases" `Quick test_ineligible_cases;
          Alcotest.test_case "recovers scrambled routes" `Slow
            test_route_recovery_from_scrambled_assignment;
        ] );
      ( "interval-report",
        [
          Alcotest.test_case "snapshot counts" `Quick test_interval_snapshot_counts;
          Alcotest.test_case "full window" `Quick test_interval_full_window_matches_trace;
          Alcotest.test_case "busiest" `Quick test_interval_busiest;
          Alcotest.test_case "bad window" `Quick test_interval_bad_window;
          Alcotest.test_case "posterior near truth" `Slow
            test_interval_posterior_close_to_truth;
          Alcotest.test_case "printer" `Quick test_interval_pp_runs;
        ] );
      ( "parallel-gibbs",
        [
          Alcotest.test_case "proper coloring plan" `Quick
            test_parallel_plan_is_proper_coloring;
          Alcotest.test_case "sweeps preserve feasibility" `Quick
            test_parallel_sweep_covers_every_event_once;
          Alcotest.test_case "matches serial statistics" `Slow
            test_parallel_matches_serial_statistics;
          Alcotest.test_case "single domain" `Quick test_parallel_single_domain;
          Alcotest.test_case "stale plan fails fast" `Quick test_stale_plan_fails_fast;
          Alcotest.test_case "departure-only restore keeps plan" `Quick
            test_departure_only_restore_keeps_plan;
          Alcotest.test_case "structural restore invalidates" `Quick
            test_structural_restore_invalidates_plan;
        ] );
      ( "bayes",
        [
          Alcotest.test_case "recovers tandem" `Slow test_bayes_recovers_tandem;
          Alcotest.test_case "intervals cover truth" `Slow test_bayes_intervals_cover_truth;
          Alcotest.test_case "interval narrows" `Slow test_bayes_interval_narrows_with_data;
          Alcotest.test_case "ess positive" `Quick test_bayes_ess_positive;
          Alcotest.test_case "config validation" `Quick test_bayes_config_validation;
          Alcotest.test_case "agrees with StEM" `Slow test_bayes_agrees_with_stem;
        ] );
    ]
