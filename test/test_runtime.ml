(* Tests for the fault-tolerant runtime: checkpoint codec and
   atomicity, kill/resume bit-identity, health checking, rollback
   recovery, budgets, fault-injected lenient ingestion, and the
   numeric guards the runtime relies on (Gibbs compile, Welford). *)

module Rng = Qnet_prob.Rng
module Piecewise = Qnet_prob.Piecewise
module Statistics = Qnet_prob.Statistics
module Trace = Qnet_trace.Trace
module Store = Qnet_core.Event_store
module Params = Qnet_core.Params
module Stem = Qnet_core.Stem
module Gibbs = Qnet_core.Gibbs
module Obs = Qnet_core.Observation
module Topologies = Qnet_des.Topologies
module Checkpoint = Qnet_runtime.Checkpoint
module Health = Qnet_runtime.Health
module Fault = Qnet_runtime.Fault
module Runtime = Qnet_runtime.Runtime

let tandem_net () = Topologies.tandem ~arrival_rate:10.0 ~service_rates:[ 15.0; 12.0 ]

(* A reproducible masked store: same seeds, same store, every call. *)
let fresh_store ?(sim_seed = 41) ?(tasks = 120) () =
  let rng = Rng.create ~seed:sim_seed () in
  Net_helpers.masked_store ~scheme:(Obs.Task_fraction 0.3) rng (tandem_net ()) tasks

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_params name a b =
  Alcotest.(check int) (name ^ " dims") (Params.num_queues a) (Params.num_queues b);
  for q = 0 to Params.num_queues a - 1 do
    check_bits (Printf.sprintf "%s rate q%d" name q) (Params.rate a q) (Params.rate b q)
  done

let runtime_config ?(checkpoint_path = None) ?(checkpoint_every = 8)
    ?(validate_every = 6) ?(max_retries = 3) ?max_seconds ~iterations () =
  {
    Runtime.stem =
      { Stem.default_config with Stem.iterations; burn_in = Stdlib.min 8 (iterations / 2) };
    checkpoint_every;
    checkpoint_path;
    validate_every;
    max_retries;
    max_seconds;
  }

(* Poison one unobserved latent. Event_store.set_departure refuses
   NaN, so go through snapshot/restore like real memory corruption
   would: no API politely asks permission. *)
let poison_store store =
  let s = Store.snapshot store in
  let u = Store.unobserved_events store in
  s.Store.s_departure.(u.(Array.length u / 2)) <- nan;
  Store.restore store s

(* ------------------------------------------------------------------ *)
(* Checkpoint codec *)

let make_checkpoint () =
  let _, _, store = fresh_store () in
  let rng = Rng.create ~seed:7 () in
  let p0 = Stem.initial_guess store in
  let p1 = Params.create ~rates:[| 9.5; 14.2; 11.9 |] ~arrival_queue:0 in
  {
    Checkpoint.iteration = 2;
    rng_state = Rng.state rng;
    params = p1;
    anchor = p0;
    snapshot = Store.snapshot store;
    history = [| p0; p1 |];
    llh = [| -1.5; -1.25 |];
  }

let test_codec_round_trip () =
  let ck = make_checkpoint () in
  match Checkpoint.of_bytes (Checkpoint.to_bytes ck) with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok ck' ->
      Alcotest.(check int) "iteration" ck.Checkpoint.iteration ck'.Checkpoint.iteration;
      Alcotest.(check (array int64)) "rng state" ck.Checkpoint.rng_state
        ck'.Checkpoint.rng_state;
      check_params "params" ck.Checkpoint.params ck'.Checkpoint.params;
      check_params "anchor" ck.Checkpoint.anchor ck'.Checkpoint.anchor;
      let s = ck.Checkpoint.snapshot and s' = ck'.Checkpoint.snapshot in
      Alcotest.(check int) "snapshot size" (Array.length s.Store.s_departure)
        (Array.length s'.Store.s_departure);
      Array.iteri
        (fun i d -> check_bits (Printf.sprintf "departure %d" i) d s'.Store.s_departure.(i))
        s.Store.s_departure;
      Alcotest.(check (array int)) "rho" s.Store.s_rho s'.Store.s_rho;
      Alcotest.(check (array int)) "rho_inv" s.Store.s_rho_inv s'.Store.s_rho_inv;
      Alcotest.(check (array int)) "queue" s.Store.s_queue s'.Store.s_queue;
      Alcotest.(check (array int)) "heads" s.Store.s_heads s'.Store.s_heads;
      Alcotest.(check int) "history" 2 (Array.length ck'.Checkpoint.history);
      check_params "history.0" ck.Checkpoint.history.(0) ck'.Checkpoint.history.(0);
      check_bits "llh.1" ck.Checkpoint.llh.(1) ck'.Checkpoint.llh.(1)

let test_codec_rejects_corruption () =
  let ck = make_checkpoint () in
  let good = Checkpoint.to_bytes ck in
  let expect_error what bytes =
    match Checkpoint.of_bytes bytes with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  (* single flipped byte in the middle of the payload *)
  let flipped = Bytes.of_string good in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xFF));
  expect_error "bit flip" (Bytes.to_string flipped);
  expect_error "truncation" (String.sub good 0 (String.length good / 2));
  expect_error "empty" "";
  let bad_magic = Bytes.of_string good in
  Bytes.set bad_magic 0 'X';
  expect_error "bad magic" (Bytes.to_string bad_magic)

(* Patch the version word of an encoded checkpoint and recompute the
   trailing FNV-1a checksum, so the reader's version check — not the
   checksum — must reject it. *)
let patch_version delta good =
  let payload = Bytes.of_string (String.sub good 0 (String.length good - 8)) in
  let v = Bytes.get_int64_le payload 8 in
  Bytes.set_int64_le payload 8 (Int64.add v (Int64.of_int delta));
  let h = ref 0xCBF29CE484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    payload;
  let out = Buffer.create (String.length good) in
  Buffer.add_bytes out payload;
  Buffer.add_int64_le out !h;
  Buffer.contents out

let test_codec_rejects_future_version () =
  let good = Checkpoint.to_bytes (make_checkpoint ()) in
  match Checkpoint.of_bytes (patch_version 1 good) with
  | Error m ->
      let mentions_version =
        let nh = String.length m and needle = "version" in
        let nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub m i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the version" true mentions_version
  | Ok _ -> Alcotest.fail "checkpoint from the future accepted"

let test_load_truncated_file () =
  let ck = make_checkpoint () in
  let path = Filename.temp_file "qnet_test_trunc" ".ckpt" in
  Checkpoint.save ~path ck;
  let full = In_channel.with_open_bin path In_channel.input_all in
  List.iter
    (fun keep ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 keep));
      match Checkpoint.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "file truncated to %d bytes accepted" keep)
    [ 0; 4; String.length full / 3; String.length full - 1 ];
  Sys.remove path

(* Decoding must be total: garbage and mutated checkpoints produce
   [Error], never an exception (or worse). *)
let test_codec_never_raises () =
  let rng = Rng.create ~seed:99 () in
  let good = Checkpoint.to_bytes (make_checkpoint ()) in
  for _ = 1 to 200 do
    let len = Rng.int rng 200 in
    let garbage = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    (match Checkpoint.of_bytes garbage with Ok _ | Error _ -> ());
    let mutated = Bytes.of_string good in
    let pos = Rng.int rng (Bytes.length mutated) in
    Bytes.set mutated pos (Char.chr (Rng.int rng 256));
    match Checkpoint.of_bytes (Bytes.to_string mutated) with
    | Ok _ | Error _ -> ()
  done

let test_save_load_file () =
  let ck = make_checkpoint () in
  let path = Filename.temp_file "qnet_test" ".ckpt" in
  Checkpoint.save ~path ck;
  (match Checkpoint.load ~path with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok ck' ->
      Alcotest.(check int) "iteration survives disk" ck.Checkpoint.iteration
        ck'.Checkpoint.iteration;
      Alcotest.(check (array int64)) "rng survives disk" ck.Checkpoint.rng_state
        ck'.Checkpoint.rng_state);
  Alcotest.(check bool) "no tmp file left" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path;
  match Checkpoint.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load of missing file must be Error"

(* ------------------------------------------------------------------ *)
(* Kill / resume bit-identity *)

let test_kill_resume_bit_identical () =
  let iters = 24 and kill_at = 16 in
  let ckpt = Filename.temp_file "qnet_test_resume" ".ckpt" in
  let ckpt2 = Filename.temp_file "qnet_test_resume2" ".ckpt" in
  (* Run A: uninterrupted. *)
  let _, _, store_a = fresh_store () in
  let full =
    Runtime.run
      ~config:(runtime_config ~iterations:iters ())
      (Rng.create ~seed:99 ()) store_a
  in
  (* Run B: killed at [kill_at] (simulated by configuring a shorter
     run; the checkpoint written at iteration 16 is exactly what a
     SIGKILL at that point would leave behind)... *)
  let _, _, store_b = fresh_store () in
  let _ =
    Runtime.run
      ~config:(runtime_config ~iterations:kill_at ~checkpoint_path:(Some ckpt) ())
      (Rng.create ~seed:99 ()) store_b
  in
  (* ...then resumed in a fresh process: new store, new RNG (both are
     overwritten wholesale from the checkpoint). *)
  let _, _, store_c = fresh_store () in
  let resumed =
    match
      Runtime.resume_file
        ~config:(runtime_config ~iterations:iters ~checkpoint_path:(Some ckpt2) ())
        ~path:ckpt
        (Rng.create ~seed:31337 ())
        store_c
    with
    | Error m -> Alcotest.failf "resume failed: %s" m
    | Ok r -> r
  in
  Alcotest.(check (option int))
    "resumed at the kill point" (Some kill_at) resumed.Runtime.report.Runtime.resumed_at;
  (* latent state: every departure bit-identical *)
  let da = (Store.snapshot store_a).Store.s_departure in
  let dc = (Store.snapshot store_c).Store.s_departure in
  Alcotest.(check int) "event count" (Array.length da) (Array.length dc);
  Array.iteri (fun i d -> check_bits (Printf.sprintf "latent %d" i) d dc.(i)) da;
  (* parameters and posterior summaries *)
  check_params "final iterate" full.Runtime.params_last resumed.Runtime.params_last;
  check_params "posterior mean" full.Runtime.params resumed.Runtime.params;
  Alcotest.(check int) "history length" iters (Array.length resumed.Runtime.history);
  Array.iteri
    (fun i p -> check_params (Printf.sprintf "history %d" i) p resumed.Runtime.history.(i))
    full.Runtime.history;
  Array.iteri
    (fun q s -> check_bits (Printf.sprintf "mean service q%d" q) s resumed.Runtime.mean_service.(q))
    full.Runtime.mean_service;
  Array.iteri
    (fun i l -> check_bits (Printf.sprintf "llh %d" i) l resumed.Runtime.log_likelihood_history.(i))
    full.Runtime.log_likelihood_history;
  Sys.remove ckpt;
  if Sys.file_exists ckpt2 then Sys.remove ckpt2

let test_resume_rejects_wrong_store () =
  let ckpt = Filename.temp_file "qnet_test_mismatch" ".ckpt" in
  let _, _, store = fresh_store () in
  let _ =
    Runtime.run
      ~config:(runtime_config ~iterations:8 ~checkpoint_path:(Some ckpt) ())
      (Rng.create ~seed:5 ()) store
  in
  let _, _, other = fresh_store ~tasks:60 () in
  (match
     Runtime.resume_file
       ~config:(runtime_config ~iterations:8 ())
       ~path:ckpt (Rng.create ()) other
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "checkpoint for a different store must be rejected");
  Sys.remove ckpt

(* ------------------------------------------------------------------ *)
(* Health checking *)

let test_health_clean () =
  let _, _, store = fresh_store () in
  let p = Stem.initial_guess store in
  Alcotest.(check int) "no violations on a fresh store" 0
    (List.length (Health.check store p))

let test_health_detects_nan_latent () =
  let _, _, store = fresh_store () in
  let p = Stem.initial_guess store in
  poison_store store;
  let vs = Health.check store p in
  Alcotest.(check bool) "violations found" true (vs <> []);
  Alcotest.(check bool) "includes nan-latent" true
    (List.exists (function Health.Nan_latent _ -> true | _ -> false) vs);
  Alcotest.(check bool) "describe is non-empty" true
    (String.length (Health.describe vs) > 0)

let test_health_detects_degenerate_rate () =
  let _, _, store = fresh_store () in
  (* Params.create refuses non-positive rates outright, so the
     reachable collapse mode is the runaway MLE: rates beyond any
     physical service time. *)
  let bad = Params.create ~rates:[| 10.0; 1e13; 1e15 |] ~arrival_queue:0 in
  let vs = Health.check store bad in
  let degen = List.filter (function Health.Degenerate_rate _ -> true | _ -> false) vs in
  Alcotest.(check int) "both degenerate rates flagged" 2 (List.length degen)

(* ------------------------------------------------------------------ *)
(* Recovery, abort, budget *)

let test_recovers_from_one_fault () =
  let _, _, store = fresh_store () in
  let fired = ref false in
  let chaos it store =
    if it = 9 && not !fired then begin
      fired := true;
      poison_store store
    end
  in
  let r =
    Runtime.run
      ~config:(runtime_config ~iterations:20 ~checkpoint_every:5 ~validate_every:5 ())
      ~chaos (Rng.create ~seed:11 ()) store
  in
  Alcotest.(check bool) "completed" true (r.Runtime.status = Runtime.Completed);
  Alcotest.(check int) "all iterations done" 20 r.Runtime.report.Runtime.iterations_done;
  Alcotest.(check int) "one retry" 1 r.Runtime.report.Runtime.retries;
  Alcotest.(check int) "one incident" 1 (List.length r.Runtime.report.Runtime.incidents);
  (* the run recovered into a healthy state *)
  Alcotest.(check int) "final state healthy" 0
    (List.length (Health.check store r.Runtime.params_last));
  Array.iter
    (fun s -> Alcotest.(check bool) "finite estimate" true (Float.is_finite s))
    r.Runtime.mean_service

let test_aborts_after_max_retries () =
  let _, _, store = fresh_store () in
  let chaos _ store = poison_store store in
  let r =
    Runtime.run
      ~config:
        (runtime_config ~iterations:20 ~checkpoint_every:5 ~validate_every:1
           ~max_retries:2 ())
      ~chaos (Rng.create ~seed:12 ()) store
  in
  (match r.Runtime.status with
  | Runtime.Aborted _ -> ()
  | _ -> Alcotest.fail "persistent faults must abort");
  Alcotest.(check int) "retries exhausted" 2 r.Runtime.report.Runtime.retries;
  Alcotest.(check int) "every attempt recorded" 3
    (List.length r.Runtime.report.Runtime.incidents);
  Alcotest.(check bool) "partial run" true
    (r.Runtime.report.Runtime.iterations_done < 20)

let test_budget_exhaustion () =
  let _, _, store = fresh_store () in
  let r =
    Runtime.run
      ~config:(runtime_config ~iterations:500 ~max_seconds:0.0 ())
      (Rng.create ~seed:13 ()) store
  in
  Alcotest.(check bool) "budget status" true
    (r.Runtime.status = Runtime.Budget_exhausted);
  Alcotest.(check bool) "stopped early with partial results" true
    (r.Runtime.report.Runtime.iterations_done >= 1
    && r.Runtime.report.Runtime.iterations_done < 500);
  Array.iter
    (fun s -> Alcotest.(check bool) "partial estimate finite" true (Float.is_finite s))
    r.Runtime.mean_service

(* ------------------------------------------------------------------ *)
(* Fault injection + lenient ingestion *)

let test_lenient_survives_injected_faults () =
  let rng = Rng.create ~seed:21 () in
  let trace = Net_helpers.simulate_n rng (tandem_net ()) 80 in
  let csv = Trace.to_csv trace in
  let corrupted, applied = Fault.inject (Rng.create ~seed:22 ()) csv in
  Alcotest.(check int) "every mode applied" (List.length Fault.all_modes)
    (List.length applied);
  List.iter
    (fun (m, n) ->
      Alcotest.(check bool) (Fault.mode_label m ^ " applied at least once") true (n > 0))
    applied;
  (* strict ingestion must still refuse the file *)
  (match Trace.of_csv ~num_queues:3 corrupted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict parser accepted a corrupted trace");
  (* lenient ingestion returns survivors plus a structured report *)
  match Trace.of_csv_lenient ~num_queues:3 corrupted with
  | Error _ -> Alcotest.fail "lenient ingestion lost every event"
  | Ok (t, report) ->
      Alcotest.(check bool) "errors reported" true (report.Trace.errors <> []);
      let distinct =
        List.sort_uniq compare
          (List.map (fun e -> e.Trace.reason) report.Trace.errors)
      in
      Alcotest.(check bool)
        (Printf.sprintf "≥4 distinct corruption kinds (got %d)" (List.length distinct))
        true
        (List.length distinct >= 4);
      Alcotest.(check bool) "events survive" true (report.Trace.events_kept > 0);
      Alcotest.(check int) "kept matches trace" report.Trace.events_kept
        (Array.length t.Trace.events);
      Alcotest.(check bool) "drops accounted" true (report.Trace.events_dropped > 0);
      let s = Format.asprintf "%a" Trace.pp_ingest_report report in
      Alcotest.(check bool) "report printer" true (String.length s > 0);
      (* survivors support inference end to end *)
      let store = Store.of_trace t in
      (match Store.validate store with
      | Ok () -> ()
      | Error m -> Alcotest.failf "survivors violate model constraints: %s" m);
      let rng = Rng.create ~seed:23 () in
      let mask = Obs.mask rng (Obs.Task_fraction 0.5) t in
      let store = Store.of_trace ~observed:mask t in
      let result =
        Stem.run
          ~config:{ Stem.default_config with Stem.iterations = 5; burn_in = 2 }
          rng store
      in
      Array.iter
        (fun s ->
          Alcotest.(check bool) "inference on survivors finite" true
            (Float.is_finite s && s > 0.0))
        result.Stem.mean_service

let test_lenient_clean_trace_no_errors () =
  let rng = Rng.create ~seed:24 () in
  let trace = Net_helpers.simulate_n rng (tandem_net ()) 40 in
  match Trace.of_csv_lenient ~num_queues:3 (Trace.to_csv trace) with
  | Error _ -> Alcotest.fail "clean trace must parse"
  | Ok (t, report) ->
      Alcotest.(check (list reject)) "no errors" []
        (List.map (fun _ -> ()) report.Trace.errors);
      Alcotest.(check int) "all events kept" (Array.length trace.Trace.events)
        (Array.length t.Trace.events)

(* ------------------------------------------------------------------ *)
(* Gibbs compile guards (degenerate windows never raise / emit NaN) *)

let mk ?(lower = 0.0) ?upper ?(linear = 0.0) ?(hinges = []) () =
  { Gibbs.event = 0; lower; upper; linear; hinges }

let test_compile_degenerate_windows () =
  let point what ld expected =
    match Gibbs.compile ld with
    | `Point x -> check_bits what expected x
    | _ -> Alcotest.failf "%s: expected `Point" what
  in
  point "zero width" (mk ~lower:2.0 ~upper:2.0 ()) 2.0;
  point "negative width" (mk ~lower:3.0 ~upper:1.0 ()) 3.0;
  point "width below resolution" (mk ~lower:1.0 ~upper:(1.0 +. 1e-15) ()) 1.0;
  point "nan lower, finite upper" (mk ~lower:nan ~upper:4.0 ()) 4.0;
  point "infinite upper" (mk ~lower:1.5 ~upper:infinity ()) 1.5;
  point "tail with non-contracting slope" (mk ~lower:1.0 ~linear:1.0 ()) 1.0;
  point "tail with nan slope" (mk ~lower:1.0 ~linear:nan ()) 1.0;
  match Gibbs.compile (mk ~lower:1.0 ~linear:(-2.0) ()) with
  | `Tail (origin, rate) ->
      check_bits "tail origin" 1.0 origin;
      check_bits "tail rate" 2.0 rate
  | _ -> Alcotest.fail "healthy tail must stay a tail"

let test_compile_filters_nan_hinges () =
  let ld =
    mk ~lower:0.0 ~upper:1.0 ~linear:(-0.5)
      ~hinges:
        [
          { Piecewise.knee = nan; slope = 5.0 };
          { Piecewise.knee = 0.5; slope = infinity };
          { Piecewise.knee = 0.5; slope = -1.0 };
        ]
      ()
  in
  match Gibbs.compile ld with
  | `Bounded pw ->
      let rng = Rng.create ~seed:25 () in
      for _ = 1 to 100 do
        let x = Piecewise.sample rng pw in
        Alcotest.(check bool) "sample finite and in window" true
          (Float.is_finite x && x >= 0.0 && x <= 1.0)
      done
  | _ -> Alcotest.fail "finite window with salvageable hinges must stay bounded"

(* An adversarial sweep: corrupt one latent to -inf via snapshot (NaN
   neighbourhoods collapse to points) and check a full sweep neither
   raises nor writes NaN. *)
let test_sweep_survives_corrupt_neighbourhood () =
  let _, _, store = fresh_store ~tasks:40 () in
  let p = Stem.initial_guess store in
  let s = Store.snapshot store in
  let u = Store.unobserved_events store in
  s.Store.s_departure.(u.(0)) <- neg_infinity;
  Store.restore store s;
  let rng = Rng.create ~seed:26 () in
  Gibbs.sweep rng store p;
  let d = (Store.snapshot store).Store.s_departure in
  Array.iter
    (fun x -> Alcotest.(check bool) "no NaN written" true (not (Float.is_nan x)))
    d

(* ------------------------------------------------------------------ *)
(* Welford NaN robustness *)

let test_welford_skips_nan () =
  let w = Statistics.Welford.create () in
  List.iter (Statistics.Welford.add w) [ 1.0; nan; 2.0; nan; 3.0 ];
  Alcotest.(check int) "count excludes nan" 3 (Statistics.Welford.count w);
  Alcotest.(check int) "skipped counted" 2 (Statistics.Welford.skipped w);
  check_bits "mean unpoisoned" 2.0 (Statistics.Welford.mean w);
  Alcotest.(check bool) "variance finite" true
    (Float.is_finite (Statistics.Welford.variance w))

let test_welford_merge_combines_skipped () =
  let a = Statistics.Welford.create () and b = Statistics.Welford.create () in
  List.iter (Statistics.Welford.add a) [ 1.0; nan ];
  List.iter (Statistics.Welford.add b) [ 3.0; nan; nan ];
  let m = Statistics.Welford.merge a b in
  Alcotest.(check int) "merged count" 2 (Statistics.Welford.count m);
  Alcotest.(check int) "merged skipped" 3 (Statistics.Welford.skipped m);
  check_bits "merged mean" 2.0 (Statistics.Welford.mean m)

let () =
  Alcotest.run "qnet_runtime"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "codec round trip" `Quick test_codec_round_trip;
          Alcotest.test_case "rejects corruption" `Quick test_codec_rejects_corruption;
          Alcotest.test_case "rejects future version" `Quick
            test_codec_rejects_future_version;
          Alcotest.test_case "rejects truncated file" `Quick test_load_truncated_file;
          Alcotest.test_case "decode is total" `Quick test_codec_never_raises;
          Alcotest.test_case "save/load file" `Quick test_save_load_file;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill/resume bit-identical" `Slow
            test_kill_resume_bit_identical;
          Alcotest.test_case "wrong store rejected" `Quick test_resume_rejects_wrong_store;
        ] );
      ( "health",
        [
          Alcotest.test_case "clean store" `Quick test_health_clean;
          Alcotest.test_case "nan latent" `Quick test_health_detects_nan_latent;
          Alcotest.test_case "degenerate rate" `Quick test_health_detects_degenerate_rate;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recovers from one fault" `Slow test_recovers_from_one_fault;
          Alcotest.test_case "aborts after max retries" `Quick
            test_aborts_after_max_retries;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
        ] );
      ( "lenient ingestion",
        [
          Alcotest.test_case "survives injected faults" `Slow
            test_lenient_survives_injected_faults;
          Alcotest.test_case "clean trace clean report" `Quick
            test_lenient_clean_trace_no_errors;
        ] );
      ( "gibbs guards",
        [
          Alcotest.test_case "degenerate windows" `Quick test_compile_degenerate_windows;
          Alcotest.test_case "nan hinges filtered" `Quick test_compile_filters_nan_hinges;
          Alcotest.test_case "sweep survives corruption" `Quick
            test_sweep_survives_corrupt_neighbourhood;
        ] );
      ( "welford",
        [
          Alcotest.test_case "skips nan" `Quick test_welford_skips_nan;
          Alcotest.test_case "merge combines skipped" `Quick
            test_welford_merge_combines_skipped;
        ] );
    ]
