(* Tests for the serving layer: ingestion hardening, admission
   control, shard checkpoints, the replay load generator, and the
   daemon's HTTP surface (driven in-process through Daemon.handle —
   the same code path the listener uses, without socket flakiness). *)

module Ingest = Qnet_serve.Ingest
module Bounded_queue = Qnet_serve.Bounded_queue
module Router = Qnet_serve.Router
module Shard = Qnet_serve.Shard
module Daemon = Qnet_serve.Daemon
module Serve_metrics = Qnet_serve.Serve_metrics
module Replay = Qnet_des.Replay
module Fault = Qnet_runtime.Fault
module Metrics = Qnet_obs.Metrics
module Jsonx = Qnet_obs.Jsonx
module Server = Qnet_webapp.Metrics_server
module Trace = Qnet_trace.Trace
module Rng = Qnet_prob.Rng
module Network = Qnet_des.Network
module Topologies = Qnet_des.Topologies

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let until ?(timeout = 30.0) ?(what = "condition") pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Ingest decoding                                                     *)
(* ------------------------------------------------------------------ *)

let test_decode_json () =
  match
    Ingest.decode_line ~num_queues:3
      "{\"tenant\":\"acme\",\"task\":7,\"state\":2,\"queue\":1,\"arrival\":0.5,\"departure\":0.9,\"extra\":true}"
  with
  | Error m -> Alcotest.failf "valid json rejected: %s" m
  | Ok r ->
      Alcotest.(check string) "tenant" "acme" r.Ingest.tenant;
      Alcotest.(check int) "task" 7 r.Ingest.task;
      Alcotest.(check int) "state" 2 r.Ingest.state;
      Alcotest.(check int) "queue" 1 r.Ingest.queue

let test_decode_json_state_optional () =
  match
    Ingest.decode_line ~num_queues:2
      "{\"tenant\":\"t0\",\"task\":1,\"queue\":0,\"arrival\":0,\"departure\":1}"
  with
  | Error m -> Alcotest.failf "json without state rejected: %s" m
  | Ok r -> Alcotest.(check int) "state defaults to 0" 0 r.Ingest.state

let test_decode_csv () =
  match Ingest.decode_line ~num_queues:3 "acme,3,1,2,0.25,0.75" with
  | Error m -> Alcotest.failf "valid csv rejected: %s" m
  | Ok r ->
      Alcotest.(check string) "tenant" "acme" r.Ingest.tenant;
      Alcotest.(check int) "queue" 2 r.Ingest.queue

let expect_reject name line =
  match Ingest.decode_line ~num_queues:3 line with
  | Ok _ -> Alcotest.failf "%s: expected rejection of %S" name line
  | Error reason ->
      if String.length reason = 0 then
        Alcotest.failf "%s: empty rejection reason" name

let test_decode_rejects () =
  expect_reject "truncated json" "{\"tenant\":\"t0\",\"task\":1,";
  expect_reject "queue out of range" "t0,1,0,9,0.1,0.2";
  expect_reject "nan time" "t0,1,0,1,nan,0.2";
  expect_reject "negative time" "t0,1,0,1,-1.0,0.2";
  expect_reject "departure before arrival" "t0,1,0,1,2.0,1.0";
  expect_reject "bad tenant" "{\"tenant\":\"no spaces\",\"task\":1,\"queue\":0,\"arrival\":0,\"departure\":1}";
  expect_reject "wrong field count" "t0,1,0";
  expect_reject "binary junk" "\x01\x02\x7fgarbage";
  expect_reject "oversized line" (String.make 5000 'x')

let test_json_roundtrip () =
  let r =
    {
      Ingest.tenant = "web-1";
      task = 42;
      state = 3;
      queue = 2;
      arrival = 1.25;
      departure = 2.5;
    }
  in
  match Ingest.decode_line ~num_queues:3 (Ingest.to_json_line r) with
  | Error m -> Alcotest.failf "canonical line rejected: %s" m
  | Ok r' ->
      Alcotest.(check bool) "round-trips" true (r = r')

let test_valid_tenant () =
  Alcotest.(check bool) "simple" true (Ingest.valid_tenant "acme-1.web_2");
  Alcotest.(check bool) "empty" false (Ingest.valid_tenant "");
  Alcotest.(check bool) "spaces" false (Ingest.valid_tenant "a b");
  Alcotest.(check bool) "slash" false (Ingest.valid_tenant "a/b");
  Alcotest.(check bool) "too long" false (Ingest.valid_tenant (String.make 65 'a'))

let test_dead_letter () =
  let dir = fresh_dir "qnet-dl" in
  let path = Filename.concat dir "dead.jsonl" in
  (match Ingest.Dead_letter.open_ ~path with
  | Error m -> Alcotest.failf "cannot open dead letter: %s" m
  | Ok dl ->
      Ingest.Dead_letter.write dl ~line:"garbage" ~reason:"bad json";
      Ingest.Dead_letter.write dl ~line:"more \"quoted\" junk" ~reason:"nan";
      Alcotest.(check int) "count" 2 (Ingest.Dead_letter.count dl);
      Ingest.Dead_letter.close dl;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check int) "file lines" 2 (List.length !lines);
      List.iter
        (fun l ->
          match Jsonx.parse_object l with
          | Error m -> Alcotest.failf "unparseable dead-letter line %S: %s" l m
          | Ok fields ->
              if not (List.mem_assoc "reason" fields) then
                Alcotest.fail "dead-letter line missing reason";
              if not (List.mem_assoc "line" fields) then
                Alcotest.fail "dead-letter line missing original line")
        !lines);
  let nul = Ingest.Dead_letter.null () in
  Ingest.Dead_letter.write nul ~line:"x" ~reason:"y";
  Alcotest.(check int) "null sink counts" 1 (Ingest.Dead_letter.count nul)

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let test_queue_shed () =
  let q = Bounded_queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bounded_queue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bounded_queue.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Bounded_queue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bounded_queue.length q)

let test_queue_fifo_batch () =
  let q = Bounded_queue.create ~capacity:10 in
  List.iter (fun i -> ignore (Bounded_queue.try_push q i : bool)) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int))
    "fifo, capped at max" [ 1; 2; 3 ]
    (Bounded_queue.pop_batch ~max:3 ~timeout:0.1 q);
  Alcotest.(check (list int))
    "remainder" [ 4 ]
    (Bounded_queue.pop_batch ~timeout:0.1 q);
  Alcotest.(check (list int))
    "empty after timeout" []
    (Bounded_queue.pop_batch ~timeout:0.05 q)

let test_queue_push_wait () =
  let q = Bounded_queue.create ~capacity:1 in
  Alcotest.(check bool) "fill" true (Bounded_queue.try_push q 1);
  Alcotest.(check bool)
    "push_wait times out when full" false
    (Bounded_queue.push_wait ~timeout:0.1 q 2);
  let consumer =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        ignore (Bounded_queue.pop_batch ~timeout:1.0 q : int list))
      ()
  in
  Alcotest.(check bool)
    "push_wait succeeds once drained" true
    (Bounded_queue.push_wait ~timeout:2.0 q 2);
  Thread.join consumer

let test_queue_close () =
  let q = Bounded_queue.create ~capacity:4 in
  ignore (Bounded_queue.try_push q 1 : bool);
  Bounded_queue.close q;
  Alcotest.(check bool) "closed" true (Bounded_queue.is_closed q);
  Alcotest.(check bool) "push after close" false (Bounded_queue.try_push q 2);
  Alcotest.(check (list int))
    "drain after close" [ 1 ]
    (Bounded_queue.pop_batch ~timeout:0.1 q);
  Alcotest.(check (list int))
    "drained+closed returns []" []
    (Bounded_queue.pop_batch ~timeout:0.1 q)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router () =
  List.iter
    (fun tenants ->
      let s = Router.shard_of_tenant ~shards:4 tenants in
      Alcotest.(check int)
        "deterministic" s
        (Router.shard_of_tenant ~shards:4 tenants);
      if s < 0 || s >= 4 then Alcotest.failf "shard %d out of range" s)
    [ "t0"; "t1"; "acme"; "web-frontend"; "a"; "" ];
  (* the stream tenants t0..t7 must not all land on one of two shards *)
  let hits = Array.make 2 0 in
  for i = 0 to 7 do
    let s = Router.shard_of_tenant ~shards:2 (Printf.sprintf "t%d" i) in
    hits.(s) <- hits.(s) + 1
  done;
  Alcotest.(check bool) "both shards used" true (hits.(0) > 0 && hits.(1) > 0)

(* ------------------------------------------------------------------ *)
(* Checkpoint codec + backoff                                          *)
(* ------------------------------------------------------------------ *)

let snapshot () =
  {
    Shard.Ckpt.iterations = 120;
    rounds = 7;
    restarts = 1;
    tenants =
      [
        {
          Shard.Ckpt.tenant = "acme";
          rates = [| 2.0; 1.5; 0.75 |];
          arrival_queue = 0;
          mean_service = [| 0.5; 0.666; 1.333 |];
          iteration = 120;
          round = 7;
          num_events = 240;
        };
        {
          Shard.Ckpt.tenant = "web";
          rates = [| 1.0; 1.0; 1.0 |];
          arrival_queue = 0;
          mean_service = [| 1.0; 1.0; 1.0 |];
          iteration = 100;
          round = 6;
          num_events = 180;
        };
      ];
  }

let test_ckpt_roundtrip () =
  let s = snapshot () in
  match Shard.Ckpt.of_line (Shard.Ckpt.to_line s) with
  | Error m -> Alcotest.failf "round-trip failed: %s" m
  | Ok s' ->
      Alcotest.(check int) "iterations" s.Shard.Ckpt.iterations s'.Shard.Ckpt.iterations;
      Alcotest.(check int) "rounds" s.Shard.Ckpt.rounds s'.Shard.Ckpt.rounds;
      Alcotest.(check int)
        "tenant count" 2
        (List.length s'.Shard.Ckpt.tenants);
      let t = List.hd s'.Shard.Ckpt.tenants in
      Alcotest.(check string) "tenant" "acme" t.Shard.Ckpt.tenant;
      Alcotest.(check (float 1e-12)) "rate" 2.0 t.Shard.Ckpt.rates.(0)

let test_ckpt_rejects () =
  let expect_err name line =
    match Shard.Ckpt.of_line line with
    | Ok _ -> Alcotest.failf "%s: expected rejection" name
    | Error _ -> ()
  in
  expect_err "garbage" "not json at all";
  expect_err "wrong version"
    "{\"version\":99,\"iterations\":1,\"rounds\":1,\"restarts\":0,\"tenants\":[]}";
  expect_err "missing fields" "{\"version\":1}";
  expect_err "bad rates"
    "{\"version\":1,\"iterations\":1,\"rounds\":1,\"restarts\":0,\"tenants\":[{\"tenant\":\"a\",\"rates\":[-1],\"arrival_queue\":0,\"mean_service\":[1],\"iteration\":1,\"round\":1,\"num_events\":1}]}"

let test_backoff () =
  let b = Shard.backoff ~base:0.25 ~max_:4.0 in
  Alcotest.(check (float 1e-12)) "1st" 0.25 (b 1);
  Alcotest.(check (float 1e-12)) "2nd" 0.5 (b 2);
  Alcotest.(check (float 1e-12)) "3rd" 1.0 (b 3);
  Alcotest.(check (float 1e-12)) "4th" 2.0 (b 4);
  Alcotest.(check (float 1e-12)) "5th" 4.0 (b 5);
  Alcotest.(check (float 1e-12)) "capped" 4.0 (b 9)

(* ------------------------------------------------------------------ *)
(* Service fault specs                                                 *)
(* ------------------------------------------------------------------ *)

let test_service_fault_parse () =
  (match Fault.parse_service_fault "0:ingest-stall=1.5@4" with
  | Ok { Fault.shard = 0; after; kind = Fault.Ingest_stall s } ->
      Alcotest.(check (float 1e-12)) "after" 4.0 after;
      Alcotest.(check (float 1e-12)) "stall seconds" 1.5 s
  | Ok _ -> Alcotest.fail "parsed into the wrong fault"
  | Error m -> Alcotest.failf "rejected valid spec: %s" m);
  (match Fault.parse_service_fault "1:crash@6" with
  | Ok { Fault.shard = 1; kind = Fault.Shard_crash; _ } -> ()
  | _ -> Alcotest.fail "crash spec");
  (match Fault.parse_service_fault "0:ckpt-fail@8" with
  | Ok { Fault.kind = Fault.Checkpoint_write_failure; _ } -> ()
  | _ -> Alcotest.fail "ckpt-fail spec");
  (match Fault.parse_service_fault "1:slow@3" with
  | Ok { Fault.kind = Fault.Slow_consumer _; _ } -> ()
  | _ -> Alcotest.fail "slow spec");
  List.iter
    (fun bad ->
      match Fault.parse_service_fault bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ ""; "crash@6"; "0:crash"; "x:crash@6"; "0:unknown@6"; "0:crash@-1" ]

(* ------------------------------------------------------------------ *)
(* Replay plans                                                        *)
(* ------------------------------------------------------------------ *)

let small_sim_trace () =
  let rng = Rng.create ~seed:11 () in
  let net =
    Topologies.tandem ~arrival_rate:10.0 ~service_rates:[ 5.0; 5.0 ]
  in
  Network.simulate_poisson rng net ~num_tasks:40

let test_replay_plan () =
  let trace = small_sim_trace () in
  let n_events = Array.length trace.Trace.events in
  let items = Replay.plan ~speedup:10.0 ~poison:5 ~tenants:3 trace in
  Alcotest.(check int) "total lines" (n_events + 5) (List.length items);
  Alcotest.(check int)
    "poison lines" 5
    (List.length (List.filter (fun it -> it.Replay.poison) items));
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Replay.at <= b.Replay.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by emit offset" true (sorted items);
  List.iter
    (fun it ->
      match Ingest.decode_line ~num_queues:3 it.Replay.line with
      | Ok _ when it.Replay.poison ->
          Alcotest.failf "poison line decodes cleanly: %S" it.Replay.line
      | Error m when not it.Replay.poison ->
          Alcotest.failf "clean line rejected (%s): %S" m it.Replay.line
      | _ -> ())
    items

(* ------------------------------------------------------------------ *)
(* Golden file for the qnet_serve_* metric families                    *)
(* ------------------------------------------------------------------ *)

let test_serve_metrics_golden () =
  let reg = Metrics.create_registry () in
  Serve_metrics.force_register ~registry:reg ();
  let actual = Metrics.to_prometheus reg in
  let golden =
    let ic = open_in "golden_serve_metrics.prom" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if actual <> golden then
    Alcotest.failf
      "qnet_serve_* families drifted from golden_serve_metrics.prom.@\n\
       Actual:@\n%s" actual

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end (in-process, through the route handler)           *)
(* ------------------------------------------------------------------ *)

let get d path = Daemon.handle d { Server.meth = "GET"; path; body = "" }
let post d path body = Daemon.handle d { Server.meth = "POST"; path; body }

let body_field resp key =
  match Jsonx.parse_object resp.Server.body with
  | Error m -> Alcotest.failf "unparseable response body %S: %s" resp.Server.body m
  | Ok fields -> List.assoc_opt key fields

let expect_some name = function
  | Some v -> v
  | None -> Alcotest.failf "%s: handler did not claim the route" name

(* A clean, chain-consistent stream for one tenant: each task enters
   the system (queue 0) and then visits queue 1. *)
let tenant_lines tenant n =
  List.concat_map
    (fun i ->
      let t_in = 0.1 *. float_of_int (i + 1) in
      [
        Printf.sprintf
          "{\"tenant\":\"%s\",\"task\":%d,\"state\":0,\"queue\":0,\"arrival\":0,\"departure\":%.6f}"
          tenant i t_in;
        Printf.sprintf
          "{\"tenant\":\"%s\",\"task\":%d,\"state\":1,\"queue\":1,\"arrival\":%.6f,\"departure\":%.6f}"
          tenant i t_in (t_in +. 0.05);
      ])
    (List.init n (fun i -> i))

let fast_shard_config =
  {
    Shard.default_config with
    Shard.num_queues = 2;
    refit_events = 20;
    refit_interval = 0.2;
    min_tenant_events = 12;
    chains = 1;
    min_chains = 1;
    fit_iterations = 6;
    poll_interval = 0.02;
  }

let daemon_config dir =
  {
    Daemon.default_config with
    Daemon.shards = 2;
    data_dir = dir;
    port = 0;
    dead_letter = Some (Filename.concat dir "dead.jsonl");
    shard = fast_shard_config;
  }

let with_daemon cfg f =
  match Daemon.create cfg with
  | Error m -> Alcotest.failf "daemon failed to start: %s" m
  | Ok d -> Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f d)

let test_daemon_ingest_and_posterior () =
  let dir = fresh_dir "qnet-daemon" in
  with_daemon (daemon_config dir) (fun d ->
      (* batch with two poison lines: accepted wholesale, poison
         quarantined exactly once *)
      let lines = tenant_lines "acme" 20 @ [ "garbage line"; "t0,1,0" ] in
      let resp =
        expect_some "ingest" (post d "/ingest" (String.concat "\n" lines))
      in
      Alcotest.(check string) "accepted" "200 OK" resp.Server.status;
      (match body_field resp "accepted" with
      | Some (Jsonx.Num n) ->
          Alcotest.(check int) "events accepted" 40 (int_of_float n)
      | _ -> Alcotest.fail "missing accepted count");
      (match body_field resp "quarantined" with
      | Some (Jsonx.Num n) ->
          Alcotest.(check int) "poison quarantined" 2 (int_of_float n)
      | _ -> Alcotest.fail "missing quarantined count");
      Alcotest.(check int) "dead letter" 2 (Daemon.dead_letter_count d);
      (* the posterior appears once the shard has fitted *)
      until ~what:"posterior ready" (fun () ->
          match get d "/tenants/acme/posterior.json" with
          | Some r -> (
              String.equal r.Server.status "200 OK"
              &&
              match body_field r "ready" with
              | Some (Jsonx.Bool b) -> b
              | _ -> false)
          | None -> false);
      let post_resp =
        expect_some "posterior" (get d "/tenants/acme/posterior.json")
      in
      (match body_field post_resp "stale" with
      | Some (Jsonx.Bool false) -> ()
      | _ -> Alcotest.fail "fresh posterior must not be stale");
      (match body_field post_resp "rates" with
      | Some (Jsonx.Arr rates) ->
          Alcotest.(check int) "one rate per queue" 2 (List.length rates)
      | _ -> Alcotest.fail "missing rates");
      (* unknown tenants 404, never 500 *)
      let missing =
        expect_some "unknown tenant" (get d "/tenants/nosuch/posterior.json")
      in
      Alcotest.(check string) "404" "404 Not Found" missing.Server.status;
      (* shards.json reports both shards *)
      let shards = expect_some "shards" (get d "/shards.json") in
      (match body_field shards "shards" with
      | Some (Jsonx.Arr l) -> Alcotest.(check int) "two shards" 2 (List.length l)
      | _ -> Alcotest.fail "missing shards array");
      (* unrelated routes fall through to the built-ins *)
      Alcotest.(check bool)
        "metrics falls through" true
        (Daemon.handle d { Server.meth = "GET"; path = "/metrics"; body = "" }
         = None))

let test_daemon_backpressure_batch_atomic () =
  let dir = fresh_dir "qnet-429" in
  let cfg =
    {
      (daemon_config dir) with
      Daemon.shard = { fast_shard_config with Shard.queue_capacity = 8 };
    }
  in
  with_daemon cfg (fun d ->
      let before_dead = Daemon.dead_letter_count d in
      (* a batch bigger than any queue can take — with poison inside *)
      let lines = tenant_lines "acme" 30 @ [ "poison!" ] in
      let resp =
        expect_some "overflow" (post d "/ingest" (String.concat "\n" lines))
      in
      Alcotest.(check string)
        "whole batch rejected" "429 Too Many Requests" resp.Server.status;
      Alcotest.(check bool)
        "Retry-After present" true
        (List.mem_assoc "Retry-After" resp.Server.extra_headers);
      (* batch-atomic: the rejected batch had no side effects at all *)
      Alcotest.(check int)
        "nothing quarantined on reject" before_dead
        (Daemon.dead_letter_count d);
      (* a batch that fits is accepted *)
      let ok =
        expect_some "small batch"
          (post d "/ingest" (String.concat "\n" (tenant_lines "acme" 3)))
      in
      Alcotest.(check string) "accepted" "200 OK" ok.Server.status)

let test_daemon_resume_and_stale () =
  let dir = fresh_dir "qnet-resume" in
  let iterations_before = ref 0 in
  with_daemon (daemon_config dir) (fun d ->
      let _ =
        expect_some "ingest"
          (post d "/ingest" (String.concat "\n" (tenant_lines "acme" 20)))
      in
      until ~what:"first fit" (fun () ->
          match get d "/tenants/acme/posterior.json" with
          | Some r -> (
              match body_field r "ready" with
              | Some (Jsonx.Bool b) -> b
              | _ -> false)
          | None -> false);
      iterations_before :=
        List.fold_left
          (fun acc s -> Stdlib.max acc (Shard.iterations s))
          0 (Daemon.shards d));
  (* restart over the same data dir, with refits effectively disabled
     so the resumed posterior stays checkpoint-sourced *)
  let frozen =
    {
      (daemon_config dir) with
      Daemon.shard =
        {
          fast_shard_config with
          Shard.refit_events = 1_000_000;
          refit_interval = 1e9;
          min_tenant_events = 1_000_000;
          max_tenant_events = 2_000_000;
        };
    }
  in
  with_daemon frozen (fun d ->
      Alcotest.(check bool)
        "a shard resumed" true
        (List.exists Shard.resumed (Daemon.shards d));
      let resumed_iters =
        List.fold_left
          (fun acc s -> Stdlib.max acc (Shard.iterations s))
          0 (Daemon.shards d)
      in
      Alcotest.(check bool)
        "iteration counters monotone across restart" true
        (resumed_iters >= !iterations_before && !iterations_before > 0);
      let resp =
        expect_some "posterior after resume"
          (get d "/tenants/acme/posterior.json")
      in
      Alcotest.(check string) "still served" "200 OK" resp.Server.status;
      match body_field resp "stale" with
      | Some (Jsonx.Bool true) -> ()
      | _ -> Alcotest.fail "checkpoint-sourced posterior must be stale-flagged")

let test_daemon_shard_crash_recovers () =
  let dir = fresh_dir "qnet-crash" in
  let cfg =
    {
      (daemon_config dir) with
      Daemon.faults =
        [ { Fault.shard = 0; after = 0.2; kind = Fault.Shard_crash } ];
    }
  in
  with_daemon cfg (fun d ->
      let shard0 =
        List.find (fun s -> Shard.id s = 0) (Daemon.shards d)
      in
      until ~what:"crash + restart" (fun () -> Shard.restarts shard0 >= 1);
      until ~what:"return to healthy" (fun () ->
          match Shard.status shard0 with Shard.Healthy -> true | _ -> false);
      (* the daemon kept serving throughout *)
      let shards = expect_some "shards" (get d "/shards.json") in
      Alcotest.(check string) "shards 200" "200 OK" shards.Server.status)

let () =
  Alcotest.run "qnet_serve"
    [
      ( "ingest",
        [
          Alcotest.test_case "decode json" `Quick test_decode_json;
          Alcotest.test_case "state optional" `Quick test_decode_json_state_optional;
          Alcotest.test_case "decode csv" `Quick test_decode_csv;
          Alcotest.test_case "rejects poison" `Quick test_decode_rejects;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "tenant keys" `Quick test_valid_tenant;
          Alcotest.test_case "dead letter" `Quick test_dead_letter;
        ] );
      ( "bounded-queue",
        [
          Alcotest.test_case "shed at capacity" `Quick test_queue_shed;
          Alcotest.test_case "fifo batches" `Quick test_queue_fifo_batch;
          Alcotest.test_case "push_wait blocks" `Quick test_queue_push_wait;
          Alcotest.test_case "close semantics" `Quick test_queue_close;
        ] );
      ( "router",
        [ Alcotest.test_case "stable fnv routing" `Quick test_router ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_ckpt_roundtrip;
          Alcotest.test_case "rejects corrupt" `Quick test_ckpt_rejects;
          Alcotest.test_case "backoff schedule" `Quick test_backoff;
        ] );
      ( "faults",
        [ Alcotest.test_case "service fault specs" `Quick test_service_fault_parse ] );
      ( "replay",
        [ Alcotest.test_case "plan shape" `Quick test_replay_plan ] );
      ( "metrics",
        [ Alcotest.test_case "golden families" `Quick test_serve_metrics_golden ] );
      ( "daemon",
        [
          Alcotest.test_case "ingest to posterior" `Quick
            test_daemon_ingest_and_posterior;
          Alcotest.test_case "backpressure batch-atomic" `Quick
            test_daemon_backpressure_batch_atomic;
          Alcotest.test_case "resume + stale flag" `Quick
            test_daemon_resume_and_stale;
          Alcotest.test_case "crash recovery" `Quick
            test_daemon_shard_crash_recovers;
        ] );
    ]
